// Command lcexp regenerates the figures and tables of the LC-ASGD paper's
// evaluation section on the simulated cluster. Each experiment id maps to
// one paper artifact (see DESIGN.md's experiment index):
//
//	lcexp -exp fig2              DC-ASGD degradation with worker count
//	lcexp -exp fig3 -workers 8   error vs epoch, all five algorithms
//	lcexp -exp fig4 -workers 8   error vs virtual wall-clock
//	lcexp -exp fig5 -workers 8   ImageNet-scale error vs epoch
//	lcexp -exp fig6 -workers 8   ImageNet-scale error vs wall-clock
//	lcexp -exp fig7              loss-predictor trace
//	lcexp -exp fig8              step-predictor trace
//	lcexp -exp tab1              final-error grid, BN vs Async-BN
//	lcexp -exp tab2              predictor overhead, CIFAR-scale
//	lcexp -exp tab3              predictor overhead, ImageNet-scale
//	lcexp -exp robust            algorithms × cluster scenarios (beyond the paper)
//	lcexp -exp all               everything above in sequence
//
// The -exp list is validated up front: an unknown id aborts the run before
// any experiment starts, instead of failing halfway through.
//
// -full switches from the quick CPU-budget profiles to the paper-scale
// ones; -seeds averages headline tables (tab1 and robust) over several
// seeds; -csv emits the series as CSV instead of charts; -jobs runs that
// many experiment cells concurrently per sweep (default GOMAXPROCS;
// byte-identical output at any value); -parallel instead fans worker
// compute within each cell across goroutines (bit-identical results,
// faster wall-clock on multi-core — mutually exclusive with -jobs > 1
// since both divide the same cores); -scenario replays a canned cluster-event
// timeline (congestion windows, crashes/recoveries, elastic resizes,
// network partitions) under every experiment; -cpuprofile/-memprofile
// write pprof profiles of the whole run so perf work can attach evidence
// (go tool pprof lcexp cpu.out).
//
// Persistence: -ckpt-dir opens an on-disk experiment store; every run
// persists its config, a checkpoint at each -ckpt-every epoch barrier, its
// learning curve and its final result, content-addressed by configuration.
// A killed invocation re-run with -resume skips completed runs and resumes
// interrupted ones from their last checkpoint, bit-identically — which is
// what makes the paper-scale `-full -exp robust` sweep feasible on
// preemptible runners. -ckpt-keep retains the newest K checkpoints per run
// so resume can fall back past a corrupted latest one. -ckpt-full-every
// controls the delta cadence: every K-th checkpoint is a self-contained
// full snapshot, the ones between encode only the sections that changed
// since the previous barrier and chain onto it (resume materializes the
// chain; a broken link falls back to the newest intact one). -recover-opt adds
// robustness-table variant rows where a crash-recovered worker restores its
// state from the last checkpoint instead of re-pulling fresh (the
// lost-momentum study). -render re-renders every figure and table from the
// store's persisted results without recomputing anything, and names the
// missing cell when the sweep never finished it.
//
// Decentralized runs: -topology picks the gossip graph AD-PSGD cells
// communicate on (ring, complete, star, seeded random gossip, or an
// explicit edge list); parameter-server algorithms ignore it.
//
// Telemetry: -trace-out writes a Chrome trace-event timeline of every cell
// the invocation computed — one process group per cell, one lane per worker
// plus a run lane, loadable in Perfetto or chrome://tracing — and
// -metrics-out dumps each cell's metrics registry (staleness and barrier
// histograms, per-worker commit/drop/gossip counts, gauge series sampled at
// eval boundaries, wall-clock checkpoint cost meters) as JSON, or CSV when
// the path ends in .csv. Both are deterministic renderings of the simulated
// clock: identical bytes at any -jobs value and with or without -parallel
// (only the "measured" wall-clock section varies across hosts). Incompatible
// with -render, which computes nothing.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"lcasgd/internal/ps"
	"lcasgd/internal/scenario"
	"lcasgd/internal/snapshot"
	"lcasgd/internal/topology"
	"lcasgd/internal/trainer"
)

// allExperiments is the canonical id order, also the expansion of -exp all.
var allExperiments = []string{
	"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
	"tab1", "tab2", "tab3", "robust",
}

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment ids: fig2..fig8, tab1..tab3, robust, all")
		workers  = flag.Int("workers", 0, "restrict figure panels to one worker count (0 = all of 4,8,16)")
		full     = flag.Bool("full", false, "use the paper-scale profiles (slow) instead of quick ones")
		seeds    = flag.Int("seeds", 1, "number of seeds to average in tab1 and robust (mean ± spread rows)")
		seed     = flag.Uint64("seed", 7, "base random seed")
		csv      = flag.Bool("csv", false, "emit figure series as CSV tables instead of ASCII charts")
		parallel = flag.Bool("parallel", false, "run worker compute on the concurrent backend (bit-identical, multi-core)")
		jobs     = flag.Int("jobs", 0, "experiment cells to run concurrently in sweeps (0 = GOMAXPROCS, 1 = sequential; byte-identical output at any value)")
		scn      = flag.String("scenario", "none",
			fmt.Sprintf("cluster-event timeline for every run: %s", strings.Join(scenario.Names(), ", ")))
		topo = flag.String("topology", "",
			fmt.Sprintf("gossip graph for decentralized (AD-PSGD) cells: %s (empty = ring)", strings.Join(topology.Names(), ", ")))
		verbose       = flag.Bool("v", false, "report sweep progress to stderr (cells done/total, elapsed)")
		cpuprofile    = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memprofile    = flag.String("memprofile", "", "write a heap profile to this file at exit")
		ckptDir       = flag.String("ckpt-dir", "", "experiment store directory: every run persists its config, checkpoints and result there")
		ckptEvery     = flag.Int("ckpt-every", 1, "checkpoint barrier cadence in epochs for persisted runs (with -ckpt-dir)")
		ckptKeep      = flag.Int("ckpt-keep", 1, "checkpoints to retain per persisted run; keeping more lets -resume fall back past a corrupted latest one")
		ckptFullEvery = flag.Int("ckpt-full-every", 8, "every K-th persisted checkpoint is a self-contained full snapshot; the ones between are deltas chained onto it (1 = every checkpoint full)")
		traceOut      = flag.String("trace-out", "", "write a Chrome trace-event timeline (Perfetto-loadable) of every computed cell to this file")
		metricsOut    = flag.String("metrics-out", "", "write every computed cell's metrics registry to this file (.csv for CSV, JSON otherwise)")
		resume        = flag.Bool("resume", false, "with -ckpt-dir: skip completed runs, resume interrupted ones from their last checkpoint")
		render        = flag.Bool("render", false, "with -ckpt-dir: re-render figures and tables from persisted results without recomputing")
		recoverOpt    = flag.Bool("recover-opt", false, "robust: add variant rows where recovered workers restore the last checkpoint instead of pulling fresh state")
	)
	flag.Parse()

	ids := expandExperiments(*exp)

	// Validated before the profiling defers are armed: os.Exit on a bad
	// name must not leave a truncated, unreadable profile file behind.
	sc, err := scenario.Lookup(*scn)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lcexp: %v\n", err)
		os.Exit(2)
	}
	// Like scenario.Lookup, the topology errors carry the valid vocabulary.
	if err := topology.ValidateSpec(*topo); err != nil {
		fmt.Fprintf(os.Stderr, "lcexp: %v\n", err)
		os.Exit(2)
	}
	if *workers < 0 {
		fmt.Fprintln(os.Stderr, "lcexp: -workers must be non-negative (0 = the full 4,8,16 grid)")
		os.Exit(2)
	}
	// An explicit edge-list topology names concrete ranks, so every fleet it
	// is applied to must span them: a smaller fleet would silently drop the
	// out-of-range edges (and can leave decentralized cells gossiping on a
	// disconnected remnant), surfacing only as a confusing mid-sweep result.
	// Reject the pairing here, against every fleet size this invocation will
	// run, instead.
	if span, _ := topology.SpecMinWorkers(*topo); span > 0 {
		smallest := *workers
		if smallest == 0 {
			for _, m := range trainer.WorkerCounts {
				if smallest == 0 || m < smallest {
					smallest = m
				}
			}
		}
		if smallest < span {
			fmt.Fprintf(os.Stderr,
				"lcexp: -topology %q names ranks up to %d, but the sweep runs fleets of %d workers; pass -workers %d or larger\n",
				*topo, span-1, smallest, span)
			os.Exit(2)
		}
	}
	if (*traceOut != "" || *metricsOut != "") && *render {
		// Render cells load persisted results without running the engine, so
		// there is nothing to trace; failing beats writing an empty artifact.
		fmt.Fprintln(os.Stderr, "lcexp: -trace-out/-metrics-out cannot be combined with -render: rendered cells compute nothing, so there is no telemetry to record")
		os.Exit(2)
	}
	if *render {
		// Render cells never compute, so cell-level parallelism buys nothing —
		// and the sequential path is what propagates the typed
		// *trainer.RenderMissingError panic to the handler below intact.
		*jobs = 1
		*parallel = false
	}
	if *jobs == 0 {
		*jobs = runtime.GOMAXPROCS(0)
	}
	if *jobs < 0 {
		fmt.Fprintln(os.Stderr, "lcexp: -jobs must be non-negative")
		os.Exit(2)
	}
	if *jobs > 1 && *parallel {
		// Both layers would claim the process-wide matmul-parallelism cap
		// (cells × matmul goroutines is the core budget), and concurrent-
		// backend runs serialize on a global lock, so combining them would
		// oversubscribe nothing but also overlap nothing.
		fmt.Fprintln(os.Stderr, "lcexp: -jobs > 1 and -parallel are mutually exclusive: "+
			"use -jobs to overlap whole cells, or -parallel to overlap workers within each cell")
		os.Exit(2)
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "lcexp: -resume requires -ckpt-dir (nowhere to resume from)")
		os.Exit(2)
	}
	if *render && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "lcexp: -render requires -ckpt-dir (nowhere to load results from)")
		os.Exit(2)
	}
	if *ckptKeep < 1 {
		fmt.Fprintln(os.Stderr, "lcexp: -ckpt-keep must be at least 1")
		os.Exit(2)
	}
	if *ckptEvery < 0 {
		// Rejected even without -ckpt-dir: a negative cadence is never
		// meaningful, and catching it here beats a ps panic mid-sweep.
		fmt.Fprintln(os.Stderr, "lcexp: -ckpt-every cannot be negative")
		os.Exit(2)
	}
	if *ckptEvery == 0 && *ckptDir != "" {
		fmt.Fprintln(os.Stderr, "lcexp: -ckpt-every must be positive with -ckpt-dir")
		os.Exit(2)
	}
	if *ckptFullEvery < 1 {
		fmt.Fprintln(os.Stderr, "lcexp: -ckpt-full-every must be at least 1")
		os.Exit(2)
	}
	var store *snapshot.Store
	if *ckptDir != "" {
		store, err = snapshot.OpenStore(*ckptDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lcexp: %v\n", err)
			os.Exit(2)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lcexp: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "lcexp: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lcexp: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the profile shows live state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "lcexp: -memprofile: %v\n", err)
			}
		}()
	}

	cifar, imagenet := trainer.QuickCIFAR(), trainer.QuickImageNet()
	if *full {
		cifar, imagenet = trainer.FullCIFAR(), trainer.FullImageNet()
	}
	if *parallel {
		cifar.Backend = ps.BackendConcurrent
		imagenet.Backend = ps.BackendConcurrent
	} else {
		cifar.Jobs = *jobs
		imagenet.Jobs = *jobs
	}
	if sc.Name != "none" {
		cifar.Scenario = &sc
		imagenet.Scenario = &sc
	}
	cifar.Topology = *topo
	imagenet.Topology = *topo
	if *verbose {
		// Progress goes to stderr so stdout artifacts (tables, charts, CSV)
		// stay byte-identical with and without -v. The ETA is the naive
		// linear projection elapsed/done × remaining — cells vary in cost, so
		// it converges as the sweep progresses rather than starting accurate.
		progress := func(done, total int, elapsed time.Duration, key string) {
			line := fmt.Sprintf("lcexp: cells %d/%d, elapsed %s",
				done, total, elapsed.Round(100*time.Millisecond))
			if done > 0 && done < total {
				eta := time.Duration(float64(elapsed) / float64(done) * float64(total-done))
				line += fmt.Sprintf(", eta %s", eta.Round(100*time.Millisecond))
			}
			if len(key) >= 12 {
				line += fmt.Sprintf(", cell %.12s…", key)
			}
			fmt.Fprintln(os.Stderr, line)
		}
		cifar.Progress = progress
		imagenet.Progress = progress
	}
	var tel *trainer.Telemetry
	if *traceOut != "" || *metricsOut != "" {
		tel = trainer.NewTelemetry()
		cifar.Telemetry = tel
		imagenet.Telemetry = tel
	}
	if store != nil {
		for _, p := range []*trainer.Profile{&cifar, &imagenet} {
			p.Store = store
			p.CkptEvery = *ckptEvery
			p.CkptKeep = *ckptKeep
			p.CkptFullEvery = *ckptFullEvery
			p.Resume = *resume
			p.Render = *render
		}
	}
	ms := trainer.WorkerCounts
	if *workers != 0 {
		ms = []int{*workers}
	}
	var seedList []uint64
	for i := 0; i < *seeds; i++ {
		seedList = append(seedList, *seed+uint64(i))
	}

	run := func(id string) {
		switch id {
		case "fig2":
			fmt.Println("== Figure 2: DC-ASGD test error vs epoch, ResNet-18-scale / CIFAR-10-scale ==")
			cs := trainer.Fig2(cifar, *seed)
			emitCurves(cs, *csv, true)
		case "fig3", "fig4":
			byTime := id == "fig4"
			fmt.Printf("== Figure %s: all algorithms on %s, Async-BN ==\n", id[3:], cifar.Name)
			for _, m := range ms {
				cs := trainer.Fig3Panel(cifar, m, *seed)
				emitCurves(cs, *csv, !byTime)
			}
		case "fig5", "fig6":
			byTime := id == "fig6"
			fmt.Printf("== Figure %s: distributed algorithms on %s, Async-BN ==\n", id[3:], imagenet.Name)
			for _, m := range ms {
				cs := trainer.Fig5Panel(imagenet, m, *seed)
				emitCurves(cs, *csv, !byTime)
			}
		case "fig7", "fig8":
			lossChart, stepChart, res := trainer.PredictorTraces(imagenet, *seed)
			if id == "fig7" {
				fmt.Println(lossChart)
				var actuals []float64
				for _, tp := range res.LossTrace {
					actuals = append(actuals, tp.Actual)
				}
				fmt.Printf("loss-predictor tail MAE: %.4f (mean loss level %.3f)\n",
					trainer.TraceMAE(res.LossTrace), meanActual(actuals))
			} else {
				fmt.Println(stepChart)
				fmt.Printf("step-predictor tail MAE: %.2f steps (M=16)\n", trainer.TraceMAE(res.StepTrace))
			}
		case "tab1":
			fmt.Println("== Table 1: final test error and degradation, BN vs Async-BN ==")
			rows, b1, b2 := trainer.Table1(cifar, true, seedList)
			fmt.Println(trainer.RenderTable1(cifar, rows, b1, b2))
			rows, b1, b2 = trainer.Table1(imagenet, false, seedList)
			fmt.Println(trainer.RenderTable1(imagenet, rows, b1, b2))
		case "tab2":
			fmt.Println("== Table 2: predictor overhead per iteration (CIFAR-scale) ==")
			fmt.Println(trainer.RenderOverhead(cifar, trainer.OverheadTable(cifar, *seed)))
		case "tab3":
			fmt.Println("== Table 3: predictor overhead per iteration (ImageNet-scale) ==")
			fmt.Println(trainer.RenderOverhead(imagenet, trainer.OverheadTable(imagenet, *seed)))
		case "robust":
			m := 8
			if *workers != 0 {
				m = *workers
			}
			fmt.Printf("== Robustness: algorithms × cluster scenarios (%s, M=%d) ==\n", cifar.Name, m)
			opts := trainer.RobustnessOpts{Seeds: *seeds, RecoverOpt: *recoverOpt}
			rows := trainer.Robustness(cifar, m, *seed, scenario.Canned(), opts)
			tb := trainer.RenderRobustness(cifar, m, rows)
			if store != nil {
				if err := store.SaveTable("robustness", rows, tb.String()); err != nil {
					fmt.Fprintf(os.Stderr, "lcexp: %v\n", err)
					os.Exit(1)
				}
			}
			if *csv {
				fmt.Println(tb.CSV())
			} else {
				fmt.Println(tb)
			}
		}
	}

	for _, id := range ids {
		runExperiment(run, id)
	}

	if tel != nil {
		// Written once at the end, atomically: the artifacts cover every cell
		// the whole invocation computed (cells loaded from the store under
		// -resume ran no engine and are absent).
		if *traceOut != "" {
			if err := tel.WriteTrace(*traceOut); err != nil {
				fmt.Fprintf(os.Stderr, "lcexp: -trace-out: %v\n", err)
				os.Exit(1)
			}
		}
		if *metricsOut != "" {
			if err := tel.WriteMetrics(*metricsOut); err != nil {
				fmt.Fprintf(os.Stderr, "lcexp: -metrics-out: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "lcexp: telemetry recorded for %d cells\n", tel.Cells())
	}
}

// runExperiment runs one experiment id, turning a render-mode miss into a
// clean diagnostic instead of a stack trace: the error names exactly which
// cell the store lacks. Other panics propagate unchanged.
func runExperiment(run func(string), id string) {
	defer func() {
		if rec := recover(); rec != nil {
			if miss, ok := rec.(*trainer.RenderMissingError); ok {
				fmt.Fprintf(os.Stderr, "lcexp: %v\n", miss)
				os.Exit(1)
			}
			panic(rec)
		}
	}()
	run(id)
}

// expandExperiments parses and validates the -exp list before anything
// runs: an unknown id must fail fast, not after half the experiments have
// already burned CPU. "all" expands to the canonical order.
func expandExperiments(exp string) []string {
	known := map[string]bool{}
	for _, id := range allExperiments {
		known[id] = true
	}
	var ids []string
	var unknown []string
	for _, id := range strings.Split(exp, ",") {
		id = strings.TrimSpace(id)
		switch {
		case id == "all":
			ids = append(ids, allExperiments...)
		case known[id]:
			ids = append(ids, id)
		default:
			unknown = append(unknown, fmt.Sprintf("%q", id))
		}
	}
	if len(unknown) > 0 {
		fmt.Fprintf(os.Stderr, "lcexp: unknown experiment %s (valid: %s, all)\n",
			strings.Join(unknown, ", "), strings.Join(allExperiments, ", "))
		os.Exit(2)
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "lcexp: empty experiment list")
		os.Exit(2)
	}
	return ids
}

func emitCurves(cs trainer.CurveSet, csv, byEpoch bool) {
	if csv {
		fmt.Println(cs.SeriesTable().CSV())
		return
	}
	if byEpoch {
		fmt.Println(cs.ChartEpochs(72, 16))
	} else {
		fmt.Println(cs.ChartTime(72, 16))
	}
	for _, a := range cs.Order {
		r := cs.Results[a]
		fmt.Printf("  %-10s final train %s%%  test %s%%  virtual %.1fs  staleness %.1f\n",
			a, pct(r.FinalTrainErr), pct(r.FinalTestErr), r.VirtualMs/1000, r.MeanStaleness)
	}
	fmt.Println()
}

func pct(v float64) string { return fmt.Sprintf("%.2f", v*100) }

func meanActual(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
