// partitioned_data demonstrates the paper's stated future-work extension:
// LC-ASGD where "different workers train the models with different subset
// of input data". Each simulated worker receives a disjoint shard of the
// training set instead of sharing it, and the run is compared against the
// paper's shared-data setting.
//
//	go run ./examples/partitioned_data [-parallel]
package main

import (
	"flag"
	"fmt"

	"lcasgd/internal/core"
	"lcasgd/internal/ps"
	"lcasgd/internal/trainer"
)

func main() {
	parallel := flag.Bool("parallel", false, "run worker compute on the concurrent backend (bit-identical results)")
	flag.Parse()

	profile := trainer.QuickCIFAR()
	profile.Epochs = 8
	if *parallel {
		profile.Backend = ps.BackendConcurrent
	}
	const workers = 4

	fmt.Printf("LC-ASGD, shared data vs disjoint shards (%d workers)\n\n", workers)

	shared := trainer.RunCell(profile, ps.LCASGD, workers, core.BNAsync, 21)
	parted := trainer.RunCellCfg(profile, ps.LCASGD, workers, core.BNAsync, 21,
		func(c *ps.Config) { c.Partitioned = true })

	fmt.Printf("%-12s  %-12s %-12s\n", "data layout", "train err %", "test err %")
	fmt.Printf("%-12s  %-12.2f %-12.2f\n", "shared", shared.FinalTrainErr*100, shared.FinalTestErr*100)
	fmt.Printf("%-12s  %-12.2f %-12.2f\n", "partitioned", parted.FinalTrainErr*100, parted.FinalTestErr*100)
	fmt.Println()
	fmt.Printf("each shard holds %d of %d training samples\n",
		profile.Data.Train/workers, profile.Data.Train)
	fmt.Println()
	fmt.Println("With IID shards the partitioned run tracks the shared-data run closely:")
	fmt.Println("every server update still sees an unbiased gradient, only drawn from a")
	fmt.Println("worker-local pool — the setting the paper's conclusion proposes to study.")
}
