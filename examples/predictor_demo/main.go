// predictor_demo exercises the two LC-ASGD predictors standalone on
// recorded traces — Figures 7 and 8 in miniature, without running a full
// training job.
//
//	go run ./examples/predictor_demo
package main

import (
	"fmt"
	"math"

	"lcasgd/internal/core"
	"lcasgd/internal/report"
	"lcasgd/internal/rng"
)

func main() {
	fmt.Println("Part 1: online loss predictor on a synthetic training-loss curve")
	lossPredictorDemo()
	fmt.Println()
	fmt.Println("Part 2: online step predictor on a volatile staleness stream")
	stepPredictorDemo()
}

// lossPredictorDemo feeds the predictor a decaying, noisy loss curve (what
// a parameter server observes during convergence) and charts predictions
// against reality.
func lossPredictorDemo() {
	g := rng.New(3)
	pred := core.NewLossPredictor(rng.New(4))
	loss := 3.2
	for i := 0; i < 500; i++ {
		observed := loss + 0.01*g.Normal()
		pred.Observe(observed)
		loss *= 0.998
	}
	trace := pred.Trace()
	tail := trace[len(trace)-80:]
	actual := report.Series{Name: "Loss"}
	predicted := report.Series{Name: "Loss Predictor"}
	for i, tp := range tail {
		actual.X = append(actual.X, float64(i))
		actual.Y = append(actual.Y, tp.Actual)
		predicted.X = append(predicted.X, float64(i))
		predicted.Y = append(predicted.Y, tp.Predicted)
	}
	fmt.Println(report.Chart("loss predictor, last 80 iterations", "iteration", "loss", 72, 12, actual, predicted))

	var mae, level float64
	for _, tp := range tail {
		mae += math.Abs(tp.Actual - tp.Predicted)
		level += tp.Actual
	}
	mae /= float64(len(tail))
	level /= float64(len(tail))
	fmt.Printf("tail MAE %.4f at loss level %.3f (%.2f%% relative)\n", mae, level, mae/level*100)

	// Multi-step forecast, the quantity LC-ASGD actually consumes.
	k := 8
	delay := pred.PredictDelay(loss, k)
	fmt.Printf("ℓ_delay forecast for k=%d future steps: %.3f (≈ k × current loss %.3f)\n", k, delay, loss)
}

// stepPredictorDemo replays a two-population staleness stream (fast and
// slow workers) and reports forecast quality per population.
func stepPredictorDemo() {
	g := rng.New(5)
	const workers = 8
	pred := core.NewStepPredictor(workers, rng.New(6))
	var maeFast, maeSlow, nFast, nSlow float64
	for i := 0; i < 800; i++ {
		m := i % workers
		slow := m%2 == 1
		// Slow workers see roughly double the staleness, plus jitter.
		base := float64(workers - 1)
		if slow {
			base *= 1.8
		}
		actual := int(base + 2*g.Normal())
		if actual < 0 {
			actual = 0
		}
		tcomp := 10.0
		if slow {
			tcomp = 40
		}
		k := pred.ObserveAndPredict(m, actual, 2.0, tcomp)
		if i > 400 {
			err := math.Abs(float64(k - actual))
			if slow {
				maeSlow += err
				nSlow++
			} else {
				maeFast += err
				nFast++
			}
		}
	}
	fmt.Printf("fast-worker forecast MAE: %.2f steps\n", maeFast/nFast)
	fmt.Printf("slow-worker forecast MAE: %.2f steps\n", maeSlow/nSlow)
	fmt.Println("(the multivariate input — previous staleness, t_comm, t_comp — lets one")
	fmt.Println("model serve both populations, as Section 4.4 of the paper argues)")
}
