// heterogeneous_cluster demonstrates the volatile-delay scenario the
// paper's introduction motivates, on the *real-concurrency* fabric: one
// goroutine per worker hammering a shared parameter server (Hogwild-style),
// with injected heterogeneity so staleness is genuinely nondeterministic.
// The LC-ASGD step predictor trains online on the observed staleness stream
// and its forecasts are compared against reality.
//
//	go run ./examples/heterogeneous_cluster
package main

import (
	"fmt"
	"math"
	"sync"
	"time"

	"lcasgd/internal/cluster"
	"lcasgd/internal/core"
	"lcasgd/internal/rng"
)

func main() {
	const (
		workers = 8
		iters   = 60 // per worker
	)
	fmt.Printf("Real-concurrency parameter server: %d goroutine workers, %d iterations each\n\n", workers, iters)

	// A toy quadratic model: minimize ||w - target||² so the distributed
	// machinery is exercised without a heavy network.
	target := []float64{1, -2, 3, -4}
	fabric := cluster.NewRealtime(workers, make([]float64, len(target)))

	// The step predictor lives "on the server": protect it with a mutex as
	// the paper's single-server design implies.
	var mu sync.Mutex
	pred := core.NewStepPredictorSized(workers, 16, rng.New(1))
	iterLog := core.NewIterLog()
	type obs struct{ actual, predicted float64 }
	var observations []obs

	// Heterogeneous compute: even-ranked workers are fast, odd are slow.
	workTime := func(m int) time.Duration {
		base := 200 * time.Microsecond
		if m%2 == 1 {
			base *= 4
		}
		return base
	}

	cluster.RunWorkers(workers, func(m int) {
		for i := 0; i < iters; i++ {
			w := fabric.Pull(m)
			time.Sleep(workTime(m)) // simulated local computation
			grad := make([]float64, len(w))
			for j := range w {
				grad[j] = 2 * (w[j] - target[j])
			}
			staleness := fabric.Push(m, func(live []float64, s int) {
				lr := 0.05 / (1 + 0.1*float64(s)) // damp stale updates
				for j := range live {
					live[j] -= lr * grad[j]
				}
			})
			mu.Lock()
			iterLog.Append(m)
			k := pred.ObserveAndPredict(m, staleness, 1, float64(workTime(m).Microseconds()))
			if i > iters/2 { // after warm-up, score the forecasts
				observations = append(observations, obs{actual: float64(staleness), predicted: float64(k)})
			}
			mu.Unlock()
		}
	})

	final := fabric.Snapshot()
	dist := 0.0
	for j := range final {
		d := final[j] - target[j]
		dist += d * d
	}
	pushes, meanStale := fabric.Stats()
	fmt.Printf("converged distance to optimum: %.4f after %d pushes\n", math.Sqrt(dist), pushes)
	fmt.Printf("mean observed staleness: %.2f (expected ≈ M-1 = %d under load)\n\n", meanStale, workers-1)

	if len(observations) > 0 {
		var mae float64
		for _, o := range observations {
			mae += math.Abs(o.actual - o.predicted)
		}
		mae /= float64(len(observations))
		fmt.Printf("step predictor on the live staleness stream: MAE %.2f steps over %d post-warmup forecasts\n",
			mae, len(observations))
		fmt.Println("(fast/slow worker alternation makes staleness volatile — the multivariate")
		fmt.Println("predictor uses each worker's compute cost to separate the two populations)")
	}
}
