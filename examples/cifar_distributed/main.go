// cifar_distributed reproduces the paper's headline CIFAR-10 scenario in
// miniature: all five algorithms (SGD, SSGD, ASGD, DC-ASGD, LC-ASGD) on the
// synthetic CIFAR-scale task with 4 simulated workers, printing learning
// curves against both epochs (Figure 3a/3d) and virtual wall-clock time
// (Figure 4a/4d).
//
//	go run ./examples/cifar_distributed [-workers N] [-parallel]
package main

import (
	"flag"
	"fmt"

	"lcasgd/internal/ps"
	"lcasgd/internal/trainer"
)

func main() {
	workers := flag.Int("workers", 4, "simulated cluster size")
	parallel := flag.Bool("parallel", false, "run worker compute on the concurrent backend (bit-identical results)")
	flag.Parse()

	profile := trainer.QuickCIFAR()
	if *parallel {
		profile.Backend = ps.BackendConcurrent
	}
	fmt.Printf("Distributed training comparison: %s, M=%d, Async-BN\n\n", profile.Name, *workers)

	cs := trainer.Fig3Panel(profile, *workers, 7)
	fmt.Println(cs.ChartEpochs(72, 16))
	fmt.Println(cs.ChartTime(72, 16))

	fmt.Printf("%-8s  %-12s %-12s %s\n", "algo", "train err %", "test err %", "virtual secs")
	for _, a := range cs.Order {
		r := cs.Results[a]
		fmt.Printf("%-8s  %-12.2f %-12.2f %.1f\n",
			a, r.FinalTrainErr*100, r.FinalTestErr*100, r.VirtualMs/1000)
	}
	fmt.Println()
	fmt.Println("Expected shape (paper Figs. 3-4): ASGD converges fastest in wall-clock")
	fmt.Println("but with the worst error; SSGD is barrier-bound; DC-ASGD and LC-ASGD")
	fmt.Println("trade a little speed for accuracy, with LC-ASGD degrading least.")
}
