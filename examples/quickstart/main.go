// Quickstart: train a small residual network with LC-ASGD on a simulated
// 8-worker cluster and compare it against plain ASGD.
//
//	go run ./examples/quickstart [-parallel]
package main

import (
	"flag"
	"fmt"

	"lcasgd/internal/core"
	"lcasgd/internal/ps"
	"lcasgd/internal/trainer"
)

func main() {
	parallel := flag.Bool("parallel", false, "run worker compute on the concurrent backend (bit-identical results)")
	flag.Parse()

	profile := trainer.QuickCIFAR()
	profile.Epochs = 6 // keep the demo under a minute
	if *parallel {
		profile.Backend = ps.BackendConcurrent
	}

	fmt.Println("LC-ASGD quickstart: CIFAR-10-scale synthetic task, 8 simulated workers")
	fmt.Printf("execution backend: %s\n", backendName(profile.Backend))
	fmt.Println()

	asgd := trainer.RunCell(profile, ps.ASGD, 8, core.BNAsync, 42)
	lc := trainer.RunCell(profile, ps.LCASGD, 8, core.BNAsync, 42)

	fmt.Printf("%-8s  %-12s %-12s %-14s %s\n", "algo", "train err %", "test err %", "virtual secs", "mean staleness")
	for _, r := range []ps.Result{asgd, lc} {
		fmt.Printf("%-8s  %-12.2f %-12.2f %-14.1f %.1f\n",
			r.Algo, r.FinalTrainErr*100, r.FinalTestErr*100, r.VirtualMs/1000, r.MeanStaleness)
	}
	fmt.Println()
	fmt.Println("LC-ASGD pays a small virtual-time overhead (extra server round plus")
	fmt.Println("the online LSTM predictors) in exchange for compensating the stale")
	fmt.Println("gradients that degrade plain ASGD.")
	fmt.Println()
	fmt.Printf("loss-predictor observations: %d, step-predictor observations: %d\n",
		len(lc.LossTrace), len(lc.StepTrace))
	fmt.Printf("measured predictor cost: loss %.2f ms/call, step %.2f ms/call\n",
		lc.AvgLossPredMs, lc.AvgStepPredMs)
}

func backendName(k ps.BackendKind) string {
	if k == "" {
		return string(ps.BackendSequential)
	}
	return string(k)
}
