// Package lcasgd is a from-scratch Go reproduction of "Developing a Loss
// Prediction-based Asynchronous Stochastic Gradient Descent Algorithm for
// Distributed Training of Deep Neural Networks" (Li, He, Ren, Mao —
// ICPP 2020).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); cmd/lcexp regenerates every figure and table of the paper's
// evaluation, and bench_test.go provides one benchmark per artifact.
package lcasgd
