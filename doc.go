// Package lcasgd is a from-scratch Go reproduction of "Developing a Loss
// Prediction-based Asynchronous Stochastic Gradient Descent Algorithm for
// Distributed Training of Deep Neural Networks" (Li, He, Ren, Mao —
// ICPP 2020).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); cmd/lcexp regenerates every figure and table of the paper's
// evaluation, and bench_test.go provides one benchmark per artifact.
//
// # Training engine
//
// The training system in internal/ps is layered:
//
//   - Engine owns everything a run shares across algorithms: the worker
//     replica fleet and its data shards, the parameter server, the BN
//     statistics accumulator, the cost sampler, the learning-curve
//     recorder, and the discrete-event clock.
//   - Strategy is the algorithm: how worker iterations are scheduled on the
//     virtual clock and how their gradients become server updates. The five
//     paper algorithms (SGD, SSGD, ASGD, DC-ASGD, LC-ASGD) and the
//     staleness-aware sixth (SA-ASGD, Zhang et al. 2016) are compact
//     Strategy implementations; ps.RegisterStrategy installs new ones,
//     which then run through ps.Run like the built-ins.
//   - Backend executes worker-local compute. ps.BackendSequential runs it
//     inline on the event loop — the deterministic simulator the paper
//     harness requires. ps.BackendConcurrent fans forward/backward passes
//     and evaluation batches across goroutines while the event loop keeps
//     committing server updates in simulated-clock order, so its results
//     are bit-identical to the sequential backend while wall-clock time
//     drops on multi-core (cmd/lcexp -parallel).
//
// On top of the stationary cluster model, internal/scenario defines
// deterministic timelines of cluster events — congestion phase shifts,
// worker crashes and recoveries, elastic fleet resizes, network
// partitions — which the engine replays on the simulated clock (cmd/lcexp
// -scenario); the robustness experiment (-exp robust) compares every
// distributed algorithm across every canned scenario.
//
// # Run persistence
//
// internal/snapshot plus the engine's checkpoint barriers
// (ps.Config.CheckpointEvery) freeze a live run at quiescent eval
// boundaries and restore it float-bit-identically: a run is the same run
// whether it executes in one process or across any number of
// checkpoint/resume cycles, on either backend. The on-disk experiment
// store (cmd/lcexp -ckpt-dir -resume) makes killed sweeps continue
// without redoing completed runs. See DESIGN.md "Persistence & resume".
//
// ROADMAP.md's Architecture section documents the invariants behind the
// bit-identical guarantee and the recipe for adding more algorithms.
package lcasgd
