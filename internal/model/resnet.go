// Package model builds the network architectures used in the reproduction:
// scaled-down residual convolutional networks standing in for ResNet-18 and
// ResNet-50 (see DESIGN.md for the substitution rationale), plus a small
// MLP used by quick tests.
package model

import (
	"fmt"

	"lcasgd/internal/nn"
	"lcasgd/internal/rng"
	"lcasgd/internal/tensor"
)

// Config describes a ResNetLite instance.
type Config struct {
	Name       string
	InC        int   // input channels
	InH, InW   int   // input spatial size
	Stem       int   // stem channel width
	StageReps  []int // residual blocks per stage; channels double each stage
	NumClasses int
}

// ResNetLite18 returns the configuration standing in for ResNet-18 on
// CIFAR-10-scale inputs: a conv stem and three stages of basic blocks with
// channel doubling, BN after every conv, and a global-average-pool head.
func ResNetLite18(numClasses int) Config {
	return Config{
		Name: "resnetlite18", InC: 3, InH: 8, InW: 8,
		Stem: 8, StageReps: []int{2, 2, 2}, NumClasses: numClasses,
	}
}

// ResNetLite50 returns the deeper/wider configuration standing in for
// ResNet-50 on ImageNet-scale inputs.
func ResNetLite50(numClasses int) Config {
	return Config{
		Name: "resnetlite50", InC: 3, InH: 12, InW: 12,
		Stem: 12, StageReps: []int{3, 4, 3}, NumClasses: numClasses,
	}
}

// InFeatures returns the flattened input width the network expects.
func (c Config) InFeatures() int { return c.InC * c.InH * c.InW }

// Build materializes the network with deterministic initialization from g.
// Two calls with generators in the same state produce identical weights —
// the property the experiment harness relies on to start every algorithm
// from the same random model, as the paper's Section 5 requires.
func (c Config) Build(g *rng.RNG) *nn.Sequential {
	if len(c.StageReps) == 0 {
		panic("model: config needs at least one stage")
	}
	net := nn.NewSequential()

	// Stem: 3x3 conv, BN, ReLU at full resolution.
	geom := tensor.ConvGeom{InC: c.InC, InH: c.InH, InW: c.InW, KH: 3, KW: 3, Stride: 1, Pad: 1}
	stem := nn.NewConv2D(c.Name+".stem", geom, c.Stem, g)
	net.Add(stem)
	h, w, ch := c.InH, c.InW, c.Stem
	net.Add(nn.NewBatchNorm(c.Name+".stem.bn", ch, h*w))
	net.Add(nn.NewReLU(ch * h * w))

	for si, reps := range c.StageReps {
		outCh := c.Stem << si
		for r := 0; r < reps; r++ {
			stride := 1
			if si > 0 && r == 0 {
				stride = 2 // downsample entering each stage after the first
			}
			name := fmt.Sprintf("%s.s%d.b%d", c.Name, si, r)
			block, nh, nw := basicBlock(name, ch, h, w, outCh, stride, g)
			net.Add(block)
			ch, h, w = outCh, nh, nw
		}
	}

	net.Add(nn.NewGlobalAvgPool(ch, h*w))
	net.Add(nn.NewDense(c.Name+".fc", ch, c.NumClasses, g))
	return net
}

// basicBlock is the ResNet v1 basic block: conv3x3-BN-ReLU-conv3x3-BN with
// an identity skip, or a 1x1-conv-BN projection when the shape changes.
func basicBlock(name string, inCh, h, w, outCh, stride int, g *rng.RNG) (*nn.Residual, int, int) {
	g1 := tensor.ConvGeom{InC: inCh, InH: h, InW: w, KH: 3, KW: 3, Stride: stride, Pad: 1}
	oh, ow := g1.OutH(), g1.OutW()
	g2 := tensor.ConvGeom{InC: outCh, InH: oh, InW: ow, KH: 3, KW: 3, Stride: 1, Pad: 1}
	path := nn.NewSequential(
		nn.NewConv2D(name+".c1", g1, outCh, g),
		nn.NewBatchNorm(name+".bn1", outCh, oh*ow),
		nn.NewReLU(outCh*oh*ow),
		nn.NewConv2D(name+".c2", g2, outCh, g),
		nn.NewBatchNorm(name+".bn2", outCh, oh*ow),
	)
	var shortcut *nn.Sequential
	if stride != 1 || inCh != outCh {
		gs := tensor.ConvGeom{InC: inCh, InH: h, InW: w, KH: 1, KW: 1, Stride: stride, Pad: 0}
		shortcut = nn.NewSequential(
			nn.NewConv2D(name+".proj", gs, outCh, g),
			nn.NewBatchNorm(name+".projbn", outCh, oh*ow),
		)
	}
	return nn.NewResidual(path, shortcut), oh, ow
}

// MLP returns a small two-hidden-layer perceptron with BN, used by unit
// tests and the quickstart example where a conv net would be overkill.
func MLP(name string, in, hidden, classes int, g *rng.RNG) *nn.Sequential {
	return nn.NewSequential(
		nn.NewDense(name+".fc1", in, hidden, g),
		nn.NewBatchNorm(name+".bn1", hidden, 1),
		nn.NewReLU(hidden),
		nn.NewDense(name+".fc2", hidden, hidden, g),
		nn.NewBatchNorm(name+".bn2", hidden, 1),
		nn.NewReLU(hidden),
		nn.NewDense(name+".fc3", hidden, classes, g),
	)
}
