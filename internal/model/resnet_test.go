package model

import (
	"testing"

	"lcasgd/internal/nn"
	"lcasgd/internal/rng"
	"lcasgd/internal/tensor"
)

func TestResNetLite18ForwardShape(t *testing.T) {
	cfg := ResNetLite18(10)
	net := cfg.Build(rng.New(1))
	x := tensor.New(4, cfg.InFeatures())
	rng.New(2).FillNormal(x.Data, 1)
	out := net.Forward(x, true)
	if out.Shape[0] != 4 || out.Shape[1] != 10 {
		t.Fatalf("output shape %v", out.Shape)
	}
	if out.HasNaN() {
		t.Fatal("forward produced NaN")
	}
}

func TestResNetLite50ForwardShape(t *testing.T) {
	cfg := ResNetLite50(27)
	net := cfg.Build(rng.New(1))
	x := tensor.New(2, cfg.InFeatures())
	rng.New(2).FillNormal(x.Data, 1)
	out := net.Forward(x, false)
	if out.Shape[0] != 2 || out.Shape[1] != 27 {
		t.Fatalf("output shape %v", out.Shape)
	}
}

func TestBuildDeterministic(t *testing.T) {
	cfg := ResNetLite18(10)
	a := cfg.Build(rng.New(99))
	b := cfg.Build(rng.New(99))
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatalf("param list lengths differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		for j := range pa[i].Value.Data {
			if pa[i].Value.Data[j] != pb[i].Value.Data[j] {
				t.Fatalf("param %s differs at %d", pa[i].Name, j)
			}
		}
	}
}

func TestResNetBackwardRuns(t *testing.T) {
	cfg := ResNetLite18(10)
	net := cfg.Build(rng.New(3))
	x := tensor.New(2, cfg.InFeatures())
	rng.New(4).FillNormal(x.Data, 1)
	var ce nn.SoftmaxCrossEntropy
	out := net.Forward(x, true)
	ce.Forward(out, []int{1, 7})
	net.Backward(ce.Backward(1))
	nonzero := false
	for _, p := range net.Params() {
		if p.Grad.MaxAbs() > 0 {
			nonzero = true
		}
		if p.Grad.HasNaN() {
			t.Fatalf("NaN gradient in %s", p.Name)
		}
	}
	if !nonzero {
		t.Fatal("backward produced all-zero gradients")
	}
}

func TestResNetHasBatchNorms(t *testing.T) {
	cfg := ResNetLite18(10)
	net := cfg.Build(rng.New(5))
	bns := net.BatchNorms()
	// Stem BN + 2 per basic block + projection BNs for stage transitions.
	if len(bns) < 10 {
		t.Fatalf("expected a deep BN stack, found %d", len(bns))
	}
}

func TestResNetTrainsOnToyProblem(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short")
	}
	cfg := Config{Name: "tiny", InC: 1, InH: 6, InW: 6, Stem: 4, StageReps: []int{1}, NumClasses: 2}
	net := cfg.Build(rng.New(6))
	g := rng.New(7)
	// Two linearly separable blob classes in pixel space.
	n := 32
	x := tensor.New(n, cfg.InFeatures())
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = i % 2
		shift := float64(labels[i])*2 - 1
		for j := 0; j < cfg.InFeatures(); j++ {
			x.Data[i*cfg.InFeatures()+j] = shift + 0.3*g.Normal()
		}
	}
	var ce nn.SoftmaxCrossEntropy
	params := net.Params()
	first := ce.Forward(net.Forward(x, true), labels)
	for step := 0; step < 60; step++ {
		net.ZeroGrad()
		out := net.Forward(x, true)
		ce.Forward(out, labels)
		net.Backward(ce.Backward(1))
		for _, p := range params {
			tensor.AXPY(p.Value, -0.05, p.Grad)
		}
	}
	last := ce.Forward(net.Forward(x, true), labels)
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
	acc := nn.Accuracy(net.Forward(x, false), labels)
	if acc < 0.9 {
		t.Fatalf("toy accuracy %v after training", acc)
	}
}

func TestMLPGradCheck(t *testing.T) {
	g := rng.New(8)
	net := MLP("m", 4, 6, 3, g)
	x := tensor.New(5, 4)
	g.FillNormal(x.Data, 1)
	labels := []int{0, 1, 2, 0, 1}
	var ce nn.SoftmaxCrossEntropy
	loss := func() float64 {
		out := net.Forward(x, true)
		v := ce.Forward(out, labels)
		net.Backward(ce.Backward(1))
		return v
	}
	if _, err := nn.GradCheck(net, loss, 1e-5, 2); err != nil {
		t.Fatal(err)
	}
}
