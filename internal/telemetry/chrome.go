package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// This file renders recorded event traces in the Chrome trace-event format
// (the JSON array flavor), loadable in Perfetto / chrome://tracing. Each
// run becomes one "process" whose name is the cell label; each worker is a
// thread lane (tid = rank) and run-scoped events (barriers, checkpoints,
// server updates) land on a dedicated "run" lane above the workers.
//
// Timestamps: the trace format wants microseconds; the engine records
// virtual milliseconds, so ts = At×1000 and the timeline reads in simulated
// time, not wall time. The rendering is deterministic — ordered structs,
// strconv floats, insertion-ordered args — so equivalent runs export
// byte-identical files.

// TraceRun is one run (cell) to export.
type TraceRun struct {
	Name    string // process label shown in the UI
	Workers int    // lane count; the run lane is tid Workers
	Events  []Event
}

// chromeEvent is one trace-format record. Field order is the output order.
type chromeEvent struct {
	Name string     `json:"name"`
	Ph   string     `json:"ph"`
	Ts   jsonFloat  `json:"ts"`
	Dur  *jsonFloat `json:"dur,omitempty"`
	Pid  int        `json:"pid"`
	Tid  int        `json:"tid"`
	S    string     `json:"s,omitempty"`
	Args *args      `json:"args,omitempty"`
}

// jsonFloat marshals via strconv's shortest form, keeping output stable and
// compact ("12.5", not "1.25e+01" or "12.500000").
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	return []byte(formatFloat(float64(f))), nil
}

// args is an insertion-ordered string→value list (a map would be sorted by
// encoding/json, but insertion order reads better and is just as stable).
type args struct {
	keys []string
	vals []any
}

func (a *args) add(k string, v any) *args {
	a.keys = append(a.keys, k)
	a.vals = append(a.vals, v)
	return a
}

func (a *args) MarshalJSON() ([]byte, error) {
	out := []byte{'{'}
	for i, k := range a.keys {
		if i > 0 {
			out = append(out, ',')
		}
		kb, _ := json.Marshal(k)
		vb, err := json.Marshal(a.vals[i])
		if err != nil {
			return nil, err
		}
		out = append(out, kb...)
		out = append(out, ':')
		out = append(out, vb...)
	}
	return append(out, '}'), nil
}

// WriteChromeTrace streams the runs as one trace-event JSON array. Every
// worker lane gets thread metadata whether or not it recorded events, so
// fleets with idle ranks still render with a full set of ordered lanes.
func WriteChromeTrace(w io.Writer, runs []TraceRun) error {
	enc := &traceEnc{w: w}
	enc.raw("[")
	for pid, run := range runs {
		enc.event(chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: (&args{}).add("name", run.Name),
		})
		for tid := 0; tid <= run.Workers; tid++ {
			lane := "worker " + strconv.Itoa(tid)
			if tid == run.Workers {
				lane = "run"
			}
			enc.event(chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: (&args{}).add("name", lane),
			})
		}
		for _, ev := range run.Events {
			enc.event(renderEvent(pid, run.Workers, ev))
		}
	}
	enc.raw("]\n")
	return enc.err
}

// renderEvent maps one engine event to its trace record: spans become "X"
// complete events, instants become thread-scoped "i" events, and the
// kind-specific A/B payload unpacks into named args.
func renderEvent(pid, workers int, ev Event) chromeEvent {
	tid := int(ev.Worker)
	if tid < 0 {
		tid = workers // run-global lane
	}
	ce := chromeEvent{Name: ev.Kind.String(), Ts: jsonFloat(ev.At * 1000), Pid: pid, Tid: tid}
	if ev.Dur > 0 {
		ce.Ph = "X"
		d := jsonFloat(ev.Dur * 1000)
		ce.Dur = &d
	} else {
		ce.Ph = "i"
		ce.S = "t"
	}
	switch ev.Kind {
	case KDispatch:
		ops := [...]string{"gradient", "forward", "backward"}
		op := "unknown"
		if int(ev.A) < len(ops) {
			op = ops[ev.A]
		}
		ce.Args = (&args{}).add("op", op)
	case KCommit:
		ce.Args = (&args{}).add("staleness", ev.A)
	case KGossip:
		ce.Args = (&args{}).add("partner", ev.A).add("lag", ev.B)
	case KPhaseShift:
		ce.Args = (&args{}).
			add("comp_scale", jsonFloat(float64(ev.A)/1e6)).
			add("comm_scale", jsonFloat(float64(ev.B)/1e6))
	case KCheckpoint:
		ce.Args = (&args{}).add("epoch", ev.A)
	}
	return ce
}

// traceEnc streams comma-separated records, capturing the first error.
type traceEnc struct {
	w     io.Writer
	err   error
	wrote bool
}

func (e *traceEnc) raw(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

func (e *traceEnc) event(ce chromeEvent) {
	if e.err != nil {
		return
	}
	b, err := json.Marshal(ce)
	if err != nil {
		e.err = fmt.Errorf("telemetry: marshal trace event: %w", err)
		return
	}
	if e.wrote {
		e.raw(",\n")
	} else {
		e.raw("\n")
	}
	e.wrote = true
	e.raw(string(b))
}
