package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Metrics is the deterministic instrument registry of one run: counters,
// gauges, fixed-bucket histograms, per-worker vectors, and a gauge time
// series sampled at eval boundaries. Every value here derives from
// event-loop state and virtual time only, so two equivalent runs (across
// backends, across a checkpoint/resume split) hold bit-identical
// registries — the property the engine's telemetry tests diff for.
//
// Instruments are registered once, by the engine, in a fixed order; the
// registration order is the serialization order, so the checkpoint codec
// can restore by position and validate by name.
type Metrics struct {
	Counters []*Counter
	Gauges   []*Gauge
	Hists    []*Histogram
	Vecs     []*WorkerVec
	Series   []Sample
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Counter registers a monotonically increasing counter.
func (m *Metrics) Counter(name string) *Counter {
	c := &Counter{Name: name}
	m.Counters = append(m.Counters, c)
	return c
}

// Gauge registers a point-in-time value, captured into Series by Sample.
func (m *Metrics) Gauge(name string) *Gauge {
	g := &Gauge{Name: name}
	m.Gauges = append(m.Gauges, g)
	return g
}

// Histogram registers a fixed-bucket histogram. bounds are the inclusive
// upper bounds of the first len(bounds) buckets; an implicit +Inf bucket
// catches the rest. Bounds are fixed at registration so two runs bucket
// identically.
func (m *Metrics) Histogram(name string, bounds []float64) *Histogram {
	h := &Histogram{Name: name, Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
	m.Hists = append(m.Hists, h)
	return h
}

// WorkerVec registers a per-worker counter vector of n slots.
func (m *Metrics) WorkerVec(name string, n int) *WorkerVec {
	v := &WorkerVec{Name: name, N: make([]uint64, n)}
	m.Vecs = append(m.Vecs, v)
	return v
}

// Sample appends one row to the gauge time series: the epoch and virtual
// time of the boundary plus every registered gauge's current value, in
// registration order.
func (m *Metrics) Sample(epoch int, atMs float64) {
	vals := make([]float64, len(m.Gauges))
	for i, g := range m.Gauges {
		vals[i] = g.V
	}
	m.Series = append(m.Series, Sample{Epoch: epoch, AtMs: atMs, Values: vals})
}

// Counter is a monotonically increasing count.
type Counter struct {
	Name string
	V    uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.V++ }

// Add adds d.
func (c *Counter) Add(d uint64) { c.V += d }

// Gauge is a point-in-time value; Sample snapshots all gauges at once.
type Gauge struct {
	Name string
	V    float64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.V = v }

// Histogram is a fixed-bucket distribution with total count and sum.
type Histogram struct {
	Name   string
	Bounds []float64 // upper bounds; Counts has one extra +Inf bucket
	Counts []uint64
	Total  uint64
	Sum    float64
}

// Observe folds one observation into its bucket.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.Bounds) && v > h.Bounds[i] {
		i++
	}
	h.Counts[i]++
	h.Total++
	h.Sum += v
}

// WorkerVec is a per-worker counter vector.
type WorkerVec struct {
	Name string
	N    []uint64
}

// Inc adds one to worker m's slot.
func (v *WorkerVec) Inc(m int) { v.N[m]++ }

// Sample is one gauge-series row.
type Sample struct {
	Epoch  int
	AtMs   float64
	Values []float64 // one per registered gauge, in registration order
}

// --- dumps ---

// jsonMetrics mirrors Metrics with ordered, stable JSON field names. Only
// struct (not map) composition below: encoding/json emits struct fields in
// declaration order, which is what makes the dump byte-stable.
type jsonMetrics struct {
	Counters []jsonCounter `json:"counters"`
	Gauges   []jsonGauge   `json:"gauges"`
	Hists    []jsonHist    `json:"histograms"`
	Vecs     []jsonVec     `json:"workers"`
	Series   jsonSeries    `json:"series"`
}

type jsonCounter struct {
	Name string `json:"name"`
	V    uint64 `json:"value"`
}

type jsonGauge struct {
	Name string  `json:"name"`
	V    float64 `json:"value"`
}

type jsonHist struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"le"`
	Counts []uint64  `json:"counts"`
	Total  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

type jsonVec struct {
	Name string   `json:"name"`
	N    []uint64 `json:"per_worker"`
}

type jsonSeries struct {
	Columns []string    `json:"columns"` // epoch, at_ms, then gauge names
	Rows    [][]float64 `json:"rows"`
}

// JSONMeter is the measured-group dump row (exported for the trainer's
// aggregate dump).
type JSONMeter struct {
	Name string  `json:"name"`
	N    uint64  `json:"n"`
	Sum  float64 `json:"sum"`
	Max  float64 `json:"max"`
}

func (m *Metrics) jsonDoc() jsonMetrics {
	doc := jsonMetrics{
		Counters: make([]jsonCounter, len(m.Counters)),
		Gauges:   make([]jsonGauge, len(m.Gauges)),
		Hists:    make([]jsonHist, len(m.Hists)),
		Vecs:     make([]jsonVec, len(m.Vecs)),
	}
	for i, c := range m.Counters {
		doc.Counters[i] = jsonCounter{Name: c.Name, V: c.V}
	}
	for i, g := range m.Gauges {
		doc.Gauges[i] = jsonGauge{Name: g.Name, V: g.V}
	}
	for i, h := range m.Hists {
		doc.Hists[i] = jsonHist{Name: h.Name, Bounds: h.Bounds, Counts: h.Counts, Total: h.Total, Sum: h.Sum}
	}
	for i, v := range m.Vecs {
		doc.Vecs[i] = jsonVec{Name: v.Name, N: v.N}
	}
	doc.Series.Columns = append([]string{"epoch", "at_ms"}, gaugeNames(m)...)
	doc.Series.Rows = make([][]float64, len(m.Series))
	for i, s := range m.Series {
		row := make([]float64, 0, 2+len(s.Values))
		row = append(row, float64(s.Epoch), s.AtMs)
		row = append(row, s.Values...)
		doc.Series.Rows[i] = row
	}
	return doc
}

func gaugeNames(m *Metrics) []string {
	names := make([]string, len(m.Gauges))
	for i, g := range m.Gauges {
		names[i] = g.Name
	}
	return names
}

// MetersJSON converts measured-group accumulators to their dump rows.
func MetersJSON(meters []*Meter) []JSONMeter {
	out := make([]JSONMeter, len(meters))
	for i, mt := range meters {
		out[i] = JSONMeter{Name: mt.Name, N: mt.N, Sum: mt.Sum, Max: mt.Max}
	}
	return out
}

// DeterministicJSON renders the registry's deterministic instruments as
// stable JSON — the byte stream the equivalence and resume telemetry tests
// compare. Measured meters are deliberately absent.
func (m *Metrics) DeterministicJSON() []byte {
	b, err := json.Marshal(m.jsonDoc())
	if err != nil {
		panic(fmt.Sprintf("telemetry: marshal metrics: %v", err)) // plain structs; cannot fail
	}
	return b
}

// MarshalJSONDoc returns the ordered JSON document value for embedding in a
// larger dump (the trainer's per-cell metrics file).
func (m *Metrics) MarshalJSONDoc() any { return m.jsonDoc() }

// AppendCSV appends the registry as flat CSV rows — section,name,key,value —
// prefixed with the given cell label column. Deterministic: fixed section
// order, registration order within each.
func (m *Metrics) AppendCSV(sb *strings.Builder, cell string) {
	row := func(section, name, key string, v float64) {
		sb.WriteString(csvQuote(cell))
		sb.WriteByte(',')
		sb.WriteString(section)
		sb.WriteByte(',')
		sb.WriteString(csvQuote(name))
		sb.WriteByte(',')
		sb.WriteString(csvQuote(key))
		sb.WriteByte(',')
		sb.WriteString(formatFloat(v))
		sb.WriteByte('\n')
	}
	for _, c := range m.Counters {
		row("counter", c.Name, "", float64(c.V))
	}
	for _, g := range m.Gauges {
		row("gauge", g.Name, "", g.V)
	}
	for _, h := range m.Hists {
		for i, n := range h.Counts {
			key := "le_inf"
			if i < len(h.Bounds) {
				key = "le_" + formatFloat(h.Bounds[i])
			}
			row("hist", h.Name, key, float64(n))
		}
		row("hist", h.Name, "count", float64(h.Total))
		row("hist", h.Name, "sum", h.Sum)
	}
	for _, v := range m.Vecs {
		for mIdx, n := range v.N {
			row("worker", v.Name, "w"+strconv.Itoa(mIdx), float64(n))
		}
	}
	cols := gaugeNames(m)
	for _, s := range m.Series {
		prefix := "epoch_" + strconv.Itoa(s.Epoch)
		row("series", prefix, "at_ms", s.AtMs)
		for i, val := range s.Values {
			row("series", prefix, cols[i], val)
		}
	}
}

// AppendMetersCSV appends the measured-group rows to the same flat layout.
func AppendMetersCSV(sb *strings.Builder, cell string, meters []*Meter) {
	for _, mt := range meters {
		for _, kv := range []struct {
			key string
			v   float64
		}{{"n", float64(mt.N)}, {"sum", mt.Sum}, {"max", mt.Max}} {
			sb.WriteString(csvQuote(cell))
			sb.WriteString(",measured,")
			sb.WriteString(csvQuote(mt.Name))
			sb.WriteByte(',')
			sb.WriteString(kv.key)
			sb.WriteByte(',')
			sb.WriteString(formatFloat(kv.v))
			sb.WriteByte('\n')
		}
	}
}

// formatFloat renders a float compactly and stably (integers lose the
// trailing ".0", matching strconv's shortest form).
func formatFloat(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return fmt.Sprint(v)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// csvQuote quotes a field only when it needs it.
func csvQuote(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
