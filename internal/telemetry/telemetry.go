// Package telemetry is the deterministic observability layer of the
// training engine: a typed event trace of every engine transition plus a
// registry of counters, gauges, fixed-bucket histograms and per-worker
// vectors, all timestamped on the simulated clock.
//
// Two rules make the layer composable with the engine's reproducibility
// contract (see DESIGN.md, "Telemetry"):
//
//   - Determinism. Every event and every deterministic instrument derives
//     exclusively from event-loop state and virtual-clock time, so the
//     recorded stream is byte-identical across execution backends and
//     across a checkpoint/resume split. Wall-clock measurements (checkpoint
//     encode/write times, emitted bytes under a given full/delta cadence)
//     live in a separate "measured" group (Meter) that is explicitly
//     outside the byte-identity contract and never checkpointed.
//
//   - Passivity. Recording must not perturb the run: a nil recorder keeps
//     the engine's hot paths at zero allocations per operation, and an
//     attached recorder never changes a result bit — it only observes.
package telemetry

// Kind enumerates the engine transitions the trace captures. The numeric
// values are part of the checkpoint serialization format; append, never
// reorder.
type Kind uint8

const (
	// KLaunch marks a worker's iteration being armed (instant).
	KLaunch Kind = iota
	// KDispatch marks worker compute handed to the backend (instant);
	// A is the operation: 0 gradient, 1 forward, 2 backward.
	KDispatch
	// KCommit is a parameter-server commit span: At is the launch time of
	// the committing iteration, Dur the full pull→compute→push latency,
	// A the staleness the gradient landed with.
	KCommit
	// KDrop is a commit dropped at a partitioned worker (instant).
	KDrop
	// KGossip is a decentralized commit span (like KCommit); A is the
	// averaged partner's rank (-1 when the worker stepped alone), B the
	// iteration lag the exchange observed.
	KGossip
	// KUpdate is one server update landing (instant, run lane) — the only
	// per-update transition SSGD's barrier fold exposes.
	KUpdate
	// Scenario transitions, one per applied (non-redundant) timeline event.
	KCrash
	KRecover
	KJoin
	KLeave
	KPartition
	KHeal
	// KPhaseShift carries the congestion scales fixed-point ×1e6 in A
	// (compute) and B (communication); Worker -1 targets the whole fleet.
	KPhaseShift
	// KBarrier is a checkpoint barrier drain span on the run lane: At is
	// when the quiescent drain was armed, Dur how long the in-flight
	// pipelines took to drain.
	KBarrier
	// KCheckpoint marks the quiescent point a snapshot was taken at
	// (instant, run lane); A is the completed epoch. Deliberately no
	// full/delta or byte payload: those depend on the process's emission
	// history, which a resume restarts.
	KCheckpoint

	numKinds
)

// kindNames maps Kind to its stable wire/display name.
var kindNames = [numKinds]string{
	"launch", "dispatch", "commit", "drop", "gossip", "update",
	"crash", "recover", "join", "leave", "partition", "heal",
	"phase-shift", "barrier", "checkpoint",
}

// String returns the kind's stable display name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one engine transition. The struct is a fixed-size value — no
// pointers, no per-kind payload types — so emitting one is an append into
// the recorder's slice and serializing one is six codec words.
type Event struct {
	Kind   Kind
	Worker int32   // lane: worker rank, or -1 for the run-global lane
	At     float64 // virtual ms; span start when Dur > 0
	Dur    float64 // span length in virtual ms; 0 means an instant event
	A, B   int64   // kind-specific arguments (see the Kind docs)
}

// Recorder is one run's telemetry sink: the event trace, the deterministic
// metrics registry, and the measured (wall-clock) meters. A Recorder is
// single-run: the engine binds it exactly once, so per-run state cannot be
// silently merged across runs.
type Recorder struct {
	Events  []Event
	Metrics *Metrics
	meters  []*Meter
	bound   bool
}

// NewRecorder returns an empty recorder ready to attach to a run.
func NewRecorder() *Recorder {
	return &Recorder{Metrics: NewMetrics()}
}

// Bind claims the recorder for one run. It panics on reuse: instruments and
// events from two runs folded into one recorder would be indistinguishable
// from a single run's, which is exactly the silent corruption this guards.
func (r *Recorder) Bind() {
	if r.bound {
		panic("telemetry: Recorder already bound to a run")
	}
	r.bound = true
}

// Bound reports whether a run has claimed (and therefore populated) the
// recorder — false for a cell whose result was loaded from a store instead
// of computed.
func (r *Recorder) Bound() bool { return r.bound }

// Rollback resets the recorder to its pristine unbound state. It exists for
// exactly one situation: a run bound the recorder but failed before
// producing anything meaningful (e.g. a resume attempt against a checkpoint
// whose telemetry presence does not match), and the caller will retry —
// another checkpoint, or a full rerun — with the same recorder. Partial
// instruments and events from the failed attempt are discarded wholesale.
func (r *Recorder) Rollback() {
	r.Events = nil
	r.Metrics = NewMetrics()
	r.meters = nil
	r.bound = false
}

// Emit appends one event to the trace.
func (r *Recorder) Emit(ev Event) { r.Events = append(r.Events, ev) }

// Meter registers (or returns) a named measured-group accumulator. Meters
// hold wall-clock and emission-policy observations — real encode/write
// times, bytes under the process's full/delta cadence — which are genuinely
// useful but not deterministic, so they are dumped under a separate
// "measured" key and excluded from the byte-identity contract and from
// checkpoints.
func (r *Recorder) Meter(name string) *Meter {
	for _, m := range r.meters {
		if m.Name == name {
			return m
		}
	}
	m := &Meter{Name: name}
	r.meters = append(r.meters, m)
	return m
}

// Meters returns the registered measured-group accumulators in
// registration order.
func (r *Recorder) Meters() []*Meter { return r.meters }

// Meter accumulates one non-deterministic measurement series: count, sum
// and max. Units are the meter's own (milliseconds, bytes, …).
type Meter struct {
	Name string
	N    uint64
	Sum  float64
	Max  float64
}

// Observe folds one measurement into the meter.
func (m *Meter) Observe(v float64) {
	m.N++
	m.Sum += v
	if v > m.Max {
		m.Max = v
	}
}
