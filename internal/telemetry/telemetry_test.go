package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("staleness", []float64{0, 1, 4})
	for _, v := range []float64{0, 0.5, 1, 3, 4, 100} {
		h.Observe(v)
	}
	want := []uint64{1, 2, 2, 1} // le 0 | le 1 | le 4 | +Inf
	for i, n := range want {
		if h.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, h.Counts[i], n, h.Counts)
		}
	}
	if h.Total != 6 || h.Sum != 108.5 {
		t.Fatalf("total=%d sum=%v, want 6, 108.5", h.Total, h.Sum)
	}
}

func TestSampleCapturesGaugesInOrder(t *testing.T) {
	m := NewMetrics()
	a := m.Gauge("a")
	b := m.Gauge("b")
	a.Set(1)
	b.Set(2)
	m.Sample(3, 450)
	a.Set(7)
	m.Sample(4, 900)
	if len(m.Series) != 2 {
		t.Fatalf("series rows: %d", len(m.Series))
	}
	if got := m.Series[0].Values; got[0] != 1 || got[1] != 2 {
		t.Fatalf("row 0 values %v", got)
	}
	if got := m.Series[1].Values; got[0] != 7 || got[1] != 2 {
		t.Fatalf("row 1 values %v", got)
	}
}

func TestDeterministicJSONIsStableAndExcludesMeters(t *testing.T) {
	build := func() *Recorder {
		r := NewRecorder()
		r.Metrics.Counter("c").Add(3)
		r.Metrics.Gauge("g").Set(1.5)
		r.Metrics.Histogram("h", []float64{1, 2}).Observe(1.5)
		r.Metrics.WorkerVec("v", 2).Inc(1)
		r.Metrics.Sample(1, 100)
		return r
	}
	r1, r2 := build(), build()
	r2.Meter("wall_ms").Observe(123.4) // measured group must not leak into the deterministic dump
	b1, b2 := r1.Metrics.DeterministicJSON(), r2.Metrics.DeterministicJSON()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("deterministic dumps differ:\n%s\n%s", b1, b2)
	}
	if strings.Contains(string(b1), "wall_ms") {
		t.Fatalf("meter leaked into deterministic dump: %s", b1)
	}
	var doc map[string]any
	if err := json.Unmarshal(b1, &doc); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
}

func TestRecorderBindOnce(t *testing.T) {
	r := NewRecorder()
	if r.Bound() {
		t.Fatal("fresh recorder reports bound")
	}
	r.Bind()
	if !r.Bound() {
		t.Fatal("bound recorder reports unbound")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second Bind did not panic")
		}
	}()
	r.Bind()
}

func TestMeterRegistryReturnsSameInstance(t *testing.T) {
	r := NewRecorder()
	a := r.Meter("x")
	b := r.Meter("x")
	if a != b {
		t.Fatal("Meter returned distinct instances for one name")
	}
	a.Observe(2)
	a.Observe(5)
	if b.N != 2 || b.Sum != 7 || b.Max != 5 {
		t.Fatalf("meter state n=%d sum=%v max=%v", b.N, b.Sum, b.Max)
	}
}

func TestChromeTraceRendersLanesAndKinds(t *testing.T) {
	run := TraceRun{
		Name:    "cell-a",
		Workers: 2,
		Events: []Event{
			{Kind: KLaunch, Worker: 0, At: 1},
			{Kind: KCommit, Worker: 0, At: 1, Dur: 9.5, A: 3},
			{Kind: KCrash, Worker: 1, At: 4},
			{Kind: KPhaseShift, Worker: -1, At: 5, A: 1_500_000, B: 750_000},
			{Kind: KBarrier, Worker: -1, At: 10, Dur: 2},
			{Kind: KCheckpoint, Worker: -1, At: 12, A: 2},
		},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []TraceRun{run}); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a valid JSON array: %v\n%s", err, buf.String())
	}
	// Metadata: process name + 3 lanes (2 workers + run), then the 6 events.
	if len(events) != 4+6 {
		t.Fatalf("trace has %d records, want 10", len(events))
	}
	byName := map[string]map[string]any{}
	for _, ev := range events {
		byName[ev["name"].(string)] = ev
	}
	commit := byName["commit"]
	if commit["ph"] != "X" || commit["dur"].(float64) != 9500 || commit["ts"].(float64) != 1000 {
		t.Fatalf("commit span rendered wrong: %v", commit)
	}
	if args := commit["args"].(map[string]any); args["staleness"].(float64) != 3 {
		t.Fatalf("commit args: %v", args)
	}
	if crash := byName["crash"]; crash["ph"] != "i" || crash["tid"].(float64) != 1 {
		t.Fatalf("crash instant rendered wrong: %v", crash)
	}
	// Run-scoped events land on the lane after the last worker.
	for _, name := range []string{"phase-shift", "barrier", "checkpoint"} {
		if ev := byName[name]; ev["tid"].(float64) != 2 {
			t.Fatalf("%s not on run lane: %v", name, ev)
		}
	}
	if ps := byName["phase-shift"]["args"].(map[string]any); ps["comp_scale"].(float64) != 1.5 {
		t.Fatalf("phase-shift scales not unpacked: %v", ps)
	}

	// Byte determinism of the exporter itself.
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, []TraceRun{run}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two exports of the same trace differ")
	}
}

func TestCSVDumpStable(t *testing.T) {
	m := NewMetrics()
	m.Counter("commits").Add(2)
	m.Gauge("inflight").Set(3)
	m.Histogram("drain_ms", []float64{10}).Observe(4)
	m.WorkerVec("drops", 2).Inc(0)
	m.Sample(1, 250)
	var sb strings.Builder
	m.AppendCSV(&sb, "cell,with comma")
	AppendMetersCSV(&sb, "cell,with comma", []*Meter{{Name: "enc_ms", N: 1, Sum: 2.5, Max: 2.5}})
	out := sb.String()
	for _, want := range []string{
		`"cell,with comma",counter,commits,,2`,
		"hist,drain_ms,le_10,1",
		"hist,drain_ms,le_inf,0",
		"worker,drops,w0,1",
		"series,epoch_1,at_ms,250",
		"series,epoch_1,inflight,3",
		"measured,enc_ms,sum,2.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}
