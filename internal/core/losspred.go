package core

import (
	"time"

	"lcasgd/internal/lstm"
	"lcasgd/internal/rng"
)

// TracePoint pairs an observed value with the predictor's one-step-ahead
// forecast made before the observation arrived — the data behind Figures 7
// and 8.
type TracePoint struct {
	Iteration int
	Actual    float64
	Predicted float64
}

// LossPredictor is Algorithm 3: an online-trained LSTM (two LSTM layers and
// a linear head) living on the parameter server that models the global loss
// time series and forecasts it k steps ahead. The sum of the k predicted
// future losses is the compensation value ℓ_delay sent to the worker.
type LossPredictor struct {
	net      *lstm.Network
	lastLoss float64
	seeded   bool

	// Reused buffers: the 1-wide LSTM input and the PredictAhead feedback
	// closure (bound once so the per-iteration calls allocate nothing).
	in       []float64
	fb       []float64
	feedback func(float64) []float64

	trace     []TracePoint
	nextPred  float64
	iteration int

	// Overhead accounting (Tables 2–3): cumulative wall time spent in
	// online training and prediction, and the number of invocations.
	TrainTime   time.Duration
	PredictTime time.Duration
	Calls       int
}

// NewLossPredictor builds the predictor with the paper's hidden size of 64
// per LSTM layer.
func NewLossPredictor(g *rng.RNG) *LossPredictor {
	return NewLossPredictorSized(64, g)
}

// NewLossPredictorSized allows the hidden width to be varied (used by the
// overhead-vs-accuracy ablation bench).
func NewLossPredictorSized(hidden int, g *rng.RNG) *LossPredictor {
	n := lstm.NewNetwork(1, []int{hidden, hidden}, g)
	n.LR = 0.2
	n.Window = 12
	p := &LossPredictor{net: n, in: make([]float64, 1), fb: make([]float64, 1)}
	p.feedback = func(o float64) []float64 {
		p.fb[0] = o
		return p.fb
	}
	return p
}

// Observe implements Algorithm 3 line 1: the previous loss ℓ_t is the input
// and the newly arrived loss ℓ_m is the label for one online training step.
// It also records the (actual, previously-predicted) pair for Figure 7.
func (p *LossPredictor) Observe(lossM float64) {
	start := time.Now()
	defer func() {
		p.TrainTime += time.Since(start)
		p.Calls++
	}()
	if p.seeded {
		p.trace = append(p.trace, TracePoint{Iteration: p.iteration, Actual: lossM, Predicted: p.nextPred})
		p.in[0] = p.lastLoss
		p.net.TrainStep(p.in, lossM) // TrainStep copies the input into its window
	} else {
		p.seeded = true
		p.nextPred = lossM
	}
	p.iteration++
	p.lastLoss = lossM
	// Pre-compute the one-step forecast so the next Observe can log it.
	p.in[0] = lossM
	p.nextPred = p.net.Predict(p.in)
}

// PredictDelay implements Algorithm 3 lines 2–3 and Formula 9: roll the
// LSTM k steps into the future (feeding each prediction back as the next
// input) and return the sum of the predicted losses.
func (p *LossPredictor) PredictDelay(lossM float64, k int) float64 {
	if k <= 0 {
		return 0
	}
	start := time.Now()
	defer func() { p.PredictTime += time.Since(start) }()
	p.in[0] = lossM
	preds := p.net.PredictAhead(p.in, k, p.feedback)
	sum := 0.0
	for _, v := range preds {
		// A loss forecast below zero is an artifact of the linear head;
		// clamp so the compensation value stays physical.
		if v < 0 {
			v = 0
		}
		sum += v
	}
	return sum
}

// Trace returns the recorded (actual, predicted) series for Figure 7.
func (p *LossPredictor) Trace() []TracePoint {
	return append([]TracePoint(nil), p.trace...)
}

// AvgTrainMs returns the mean per-call online-training time in
// milliseconds, the quantity Tables 2–3 report.
func (p *LossPredictor) AvgTrainMs() float64 {
	if p.Calls == 0 {
		return 0
	}
	return float64(p.TrainTime.Microseconds()) / float64(p.Calls) / 1000
}
