package core

import (
	"math"
	"testing"
	"testing/quick"

	"lcasgd/internal/nn"
	"lcasgd/internal/rng"
	"lcasgd/internal/tensor"
)

func TestIterLogGaps(t *testing.T) {
	l := NewIterLog()
	if g := l.Append(0); g != -1 {
		t.Fatalf("first delivery gap %d, want -1", g)
	}
	l.Append(1)
	l.Append(2)
	if g := l.Append(0); g != 2 {
		t.Fatalf("gap %d, want 2 (workers 1,2 in between)", g)
	}
	if g := l.Append(0); g != 0 {
		t.Fatalf("back-to-back gap %d, want 0", g)
	}
	if l.Len() != 5 {
		t.Fatalf("len %d", l.Len())
	}
}

func TestIterLogLastGap(t *testing.T) {
	l := NewIterLog()
	if l.LastGap(3) != -1 {
		t.Fatal("unseen worker must report -1")
	}
	l.Append(3)
	if l.LastGap(3) != -1 {
		t.Fatal("single delivery must report -1")
	}
	l.Append(1)
	l.Append(3)
	if l.LastGap(3) != 1 {
		t.Fatalf("LastGap %d, want 1", l.LastGap(3))
	}
}

func TestIterLogSeqCopy(t *testing.T) {
	l := NewIterLog()
	l.Append(1)
	s := l.Seq()
	s[0] = 99
	if l.Seq()[0] != 1 {
		t.Fatal("Seq must return a copy")
	}
}

// TestIterLogGapPropertyQuick: staleness equals entries between consecutive
// appearances, whatever the arrival pattern.
func TestIterLogGapPropertyQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		l := NewIterLog()
		last := map[int]int{}
		for i := 0; i < 200; i++ {
			m := g.Intn(8)
			gap := l.Append(m)
			want := -1
			if prev, ok := last[m]; ok {
				want = i - prev - 1
			}
			if gap != want {
				return false
			}
			last[m] = i
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLossPredictorTracksDecayingLoss(t *testing.T) {
	p := NewLossPredictorSized(24, rng.New(1))
	loss := 2.0
	for i := 0; i < 400; i++ {
		p.Observe(loss)
		loss *= 0.995
	}
	trace := p.Trace()
	if len(trace) == 0 {
		t.Fatal("no trace recorded")
	}
	// Over the last quarter of the trace the predictions should track the
	// actual values closely.
	tail := trace[3*len(trace)/4:]
	var sumAbs, sumVal float64
	for _, tp := range tail {
		sumAbs += math.Abs(tp.Actual - tp.Predicted)
		sumVal += tp.Actual
	}
	relErr := sumAbs / sumVal
	if relErr > 0.05 {
		t.Fatalf("loss predictor tail relative error %.3f", relErr)
	}
}

func TestLossPredictorPredictDelaySumsK(t *testing.T) {
	p := NewLossPredictorSized(16, rng.New(2))
	for i := 0; i < 100; i++ {
		p.Observe(1.0) // constant series
	}
	d1 := p.PredictDelay(1.0, 1)
	d4 := p.PredictDelay(1.0, 4)
	if d1 <= 0 {
		t.Fatalf("delay prediction %v for constant positive series", d1)
	}
	// Summing 4 future steps of a ~constant series ≈ 4× one step.
	if d4 < 2*d1 || d4 > 6*d1 {
		t.Fatalf("k=4 delay %v not ~4x k=1 delay %v", d4, d1)
	}
	if p.PredictDelay(1.0, 0) != 0 {
		t.Fatal("k=0 must produce zero compensation")
	}
}

func TestLossPredictorOverheadAccounting(t *testing.T) {
	p := NewLossPredictorSized(8, rng.New(3))
	for i := 0; i < 10; i++ {
		p.Observe(1.0)
	}
	if p.Calls != 10 {
		t.Fatalf("calls %d", p.Calls)
	}
	if p.AvgTrainMs() < 0 {
		t.Fatal("negative average train time")
	}
}

func TestStepPredictorColdStart(t *testing.T) {
	p := NewStepPredictorSized(8, 16, rng.New(4))
	k := p.ObserveAndPredict(0, -1, 1, 10)
	if k != 7 {
		t.Fatalf("cold-start prediction %d, want M-1=7", k)
	}
}

func TestStepPredictorLearnsConstantStaleness(t *testing.T) {
	p := NewStepPredictorSized(4, 24, rng.New(5))
	var k int
	for i := 0; i < 300; i++ {
		k = p.ObserveAndPredict(0, 3, 1.0, 10.0)
	}
	if k != 3 {
		t.Fatalf("predicted staleness %d after constant-3 stream", k)
	}
}

func TestStepPredictorClamps(t *testing.T) {
	p := NewStepPredictorSized(4, 8, rng.New(6))
	for i := 0; i < 50; i++ {
		k := p.ObserveAndPredict(1, 3, 1, 10)
		if k < 0 || k > 12 {
			t.Fatalf("prediction %d outside [0, 3M]", k)
		}
	}
}

func TestBNAccumulatorReplaceMode(t *testing.T) {
	bns := []*nn.BatchNorm{nn.NewBatchNorm("a", 2, 1)}
	acc := NewBNAccumulator(BNReplace, 0.2, bns)
	acc.Update([]LayerStats{{Mean: []float64{5, 6}, Var: []float64{2, 3}}})
	mean, vari := acc.Snapshot()
	if mean[0][0] != 5 || vari[0][1] != 3 {
		t.Fatalf("replace mode: %v %v", mean, vari)
	}
	acc.Update([]LayerStats{{Mean: []float64{-1, -1}, Var: []float64{1, 1}}})
	mean, _ = acc.Snapshot()
	if mean[0][0] != -1 {
		t.Fatal("replace mode must overwrite")
	}
}

func TestBNAccumulatorAsyncEMA(t *testing.T) {
	bns := []*nn.BatchNorm{nn.NewBatchNorm("a", 1, 1)}
	acc := NewBNAccumulator(BNAsync, 0.5, bns)
	acc.Update([]LayerStats{{Mean: []float64{4}, Var: []float64{3}}})
	mean, vari := acc.Snapshot()
	if mean[0][0] != 2 { // 0.5*0 + 0.5*4
		t.Fatalf("EMA mean %v", mean[0][0])
	}
	if vari[0][0] != 2 { // 0.5*1 + 0.5*3
		t.Fatalf("EMA var %v", vari[0][0])
	}
}

func TestBNAccumulatorAsyncIsSmoother(t *testing.T) {
	// Feed alternating extreme stats; Async-BN's EMA must end closer to the
	// long-run average than replace-by-latest.
	build := func(mode BNMode) float64 {
		bns := []*nn.BatchNorm{nn.NewBatchNorm("a", 1, 1)}
		acc := NewBNAccumulator(mode, 0.2, bns)
		for i := 0; i < 100; i++ {
			v := 10.0
			if i%2 == 0 {
				v = -10
			}
			acc.Update([]LayerStats{{Mean: []float64{v}, Var: []float64{1}}})
		}
		mean, _ := acc.Snapshot()
		return math.Abs(mean[0][0]) // distance from the true average 0
	}
	if build(BNAsync) >= build(BNReplace) {
		t.Fatal("Async-BN should track the long-run average better than replace")
	}
}

func TestBNAccumulatorApply(t *testing.T) {
	bn := nn.NewBatchNorm("a", 2, 1)
	acc := NewBNAccumulator(BNReplace, 0.2, []*nn.BatchNorm{bn})
	acc.Update([]LayerStats{{Mean: []float64{7, 8}, Var: []float64{4, 5}}})
	acc.Apply([]*nn.BatchNorm{bn})
	m, v := bn.Running()
	if m[0] != 7 || v[1] != 5 {
		t.Fatalf("apply: %v %v", m, v)
	}
}

func TestBNAccumulatorShapePanics(t *testing.T) {
	acc := NewBNAccumulator(BNAsync, 0.2, []*nn.BatchNorm{nn.NewBatchNorm("a", 2, 1)})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	acc.Update([]LayerStats{{Mean: []float64{1}, Var: []float64{1}}})
}

func TestBNModeString(t *testing.T) {
	if BNReplace.String() != "BN" || BNAsync.String() != "Async-BN" {
		t.Fatal("mode names must match the paper's Table 1 columns")
	}
}

func TestCompensationScaleNeutralCases(t *testing.T) {
	if CompensationScale(1, 0.5, 0, 1) != 1 {
		t.Fatal("k=0 must be neutral")
	}
	if CompensationScale(1, 0.5, 3, 0) != 1 {
		t.Fatal("lambda=0 must be neutral")
	}
	if CompensationScale(0, 0.5, 3, 1) != 1 {
		t.Fatal("non-positive loss must be neutral")
	}
}

func TestCompensationScaleDampsWhenFutureLower(t *testing.T) {
	// Mean predicted future loss 0.8 < current 1.0 -> damping.
	s := CompensationScale(1.0, 0.8*4, 4, 1)
	if s >= 1 {
		t.Fatalf("scale %v, want < 1", s)
	}
	// Identical future -> exactly neutral.
	s = CompensationScale(1.0, 1.0*4, 4, 1)
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("scale %v, want 1", s)
	}
	// Rising predicted loss -> clamped at neutral (damp-only policy): an
	// upward forecast must never amplify a stale gradient.
	s = CompensationScale(1.0, 1.5*4, 4, 1)
	if s != MaxScale {
		t.Fatalf("scale %v, want clamp at MaxScale=%v", s, MaxScale)
	}
}

func TestCompensationScaleMonotoneInFuture(t *testing.T) {
	prev := math.Inf(-1)
	for _, f := range []float64{0.2, 0.5, 0.8, 1.0, 1.2} {
		s := CompensationScale(1.0, f*3, 3, 1)
		if s < prev {
			t.Fatal("scale must be monotone in predicted future loss")
		}
		prev = s
	}
}

func TestCompensationScaleClamped(t *testing.T) {
	if s := CompensationScale(1.0, 0, 5, 10); s != MinScale {
		t.Fatalf("scale %v, want clamp at %v", s, MinScale)
	}
	if s := CompensationScale(0.01, 100, 1, 10); s != MaxScale {
		t.Fatalf("scale %v, want clamp at %v", s, MaxScale)
	}
}

func TestCompensationScaleSumGrowsWithK(t *testing.T) {
	// The un-normalized variant inflates with k even for a flat series —
	// the pathology the normalized version avoids (ablation).
	flat := CompensationScaleSum(1.0, 1.0*8, 1)
	if flat != MaxScale {
		t.Fatalf("sum variant at k=8 flat series: %v, expected clamp at max", flat)
	}
	norm := CompensationScale(1.0, 1.0*8, 8, 1)
	if math.Abs(norm-1) > 1e-12 {
		t.Fatalf("normalized variant should be neutral on flat series, got %v", norm)
	}
}

func TestCompensationScalePropertyQuick(t *testing.T) {
	f := func(lRaw, dRaw uint16, kRaw uint8) bool {
		lossM := 0.01 + float64(lRaw)/1000
		delay := float64(dRaw) / 1000
		k := int(kRaw%16) + 1
		s := CompensationScale(lossM, delay, k, 1)
		return s >= MinScale && s <= MaxScale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCollectStatsIntoMatchesCollectStats(t *testing.T) {
	bn1 := nn.NewBatchNorm("a", 3, 1)
	bn2 := nn.NewBatchNorm("b", 2, 1)
	x1 := mkBatch(4, 3, 7)
	x2 := mkBatch(4, 2, 8)
	bn1.Forward(x1, true)
	bn2.Forward(x2, true)
	bns := []*nn.BatchNorm{bn1, bn2}
	want := CollectStats(bns)
	var dst []LayerStats
	dst = CollectStatsInto(dst, bns)
	for li := range want {
		for c := range want[li].Mean {
			if dst[li].Mean[c] != want[li].Mean[c] || dst[li].Var[c] != want[li].Var[c] {
				t.Fatalf("layer %d channel %d stats differ", li, c)
			}
		}
	}
	// Refresh in place after another forward: no reallocation, new values.
	m0 := dst[0].Mean
	bn1.Forward(mkBatch(4, 3, 9), true)
	dst = CollectStatsInto(dst, bns)
	if &dst[0].Mean[0] != &m0[0] {
		t.Fatal("CollectStatsInto reallocated a matching destination")
	}
	fresh := CollectStats(bns)
	if dst[0].Mean[0] != fresh[0].Mean[0] {
		t.Fatal("CollectStatsInto did not refresh values")
	}
}

func mkBatch(n, c int, seed uint64) *tensor.Tensor {
	x := tensor.New(n, c)
	rng.New(seed).FillNormal(x.Data, 1)
	return x
}

// TestPredictorSteadyStateAllocs pins the per-iteration predictor calls:
// PredictDelay and the step predictor's forecast path allocate nothing in
// steady state (the observation paths only pay the amortized trace append).
func TestPredictorSteadyStateAllocs(t *testing.T) {
	lp := NewLossPredictorSized(8, rng.New(40))
	for i := 0; i < 20; i++ {
		lp.Observe(1.0 / float64(i+1))
	}
	if a := testing.AllocsPerRun(20, func() { lp.PredictDelay(0.05, 5) }); a != 0 {
		t.Fatalf("steady-state PredictDelay allocates %v times, want 0", a)
	}
}
