package core

import (
	"fmt"

	"lcasgd/internal/nn"
)

// BNMode selects how the parameter server folds worker batch-normalization
// statistics into the global model.
type BNMode int

const (
	// BNReplace is the paper's "regular BN" distributed baseline: the
	// server's global statistics are overwritten by whichever worker
	// reported most recently.
	BNReplace BNMode = iota
	// BNAsync is the paper's Async-BN: the server accumulates every
	// worker's statistics with an exponential moving average
	// (Formulas 6–7), so the statistics workers retrieve are consistent
	// across the cluster.
	BNAsync
)

// String names the mode as the paper's Table 1 columns do.
func (m BNMode) String() string {
	switch m {
	case BNReplace:
		return "BN"
	case BNAsync:
		return "Async-BN"
	default:
		return fmt.Sprintf("BNMode(%d)", int(m))
	}
}

// LayerStats is one BN layer's per-channel mean and variance as reported by
// a worker (the state_m[mean], state_m[var] entries of Algorithm 1).
type LayerStats struct {
	Mean, Var []float64
}

// CollectStats reads the most recent batch statistics from every BN layer
// of a worker replica.
func CollectStats(bns []*nn.BatchNorm) []LayerStats {
	return CollectStatsInto(nil, bns)
}

// CollectStatsInto refreshes dst in place with the most recent batch
// statistics, allocating the per-layer slices only when dst is nil or
// mis-shaped — the allocation-free variant of CollectStats the worker
// replicas call once per iteration.
func CollectStatsInto(dst []LayerStats, bns []*nn.BatchNorm) []LayerStats {
	if len(dst) != len(bns) {
		dst = make([]LayerStats, len(bns))
	}
	for i, bn := range bns {
		if len(dst[i].Mean) != bn.C {
			dst[i] = LayerStats{Mean: make([]float64, bn.C), Var: make([]float64, bn.C)}
		}
		bn.ReadBatchStats(dst[i].Mean, dst[i].Var)
	}
	return dst
}

// BNAccumulator is the server-side owner of the global normalization
// statistics for every BN layer in the model.
type BNAccumulator struct {
	Mode  BNMode
	Decay float64 // the EMA factor d of Formulas 6–7
	mean  [][]float64
	vari  [][]float64
}

// NewBNAccumulator initializes global statistics (mean 0, variance 1, the
// same initialization BN layers use) shaped like the given model's BN
// stack.
func NewBNAccumulator(mode BNMode, decay float64, bns []*nn.BatchNorm) *BNAccumulator {
	a := &BNAccumulator{Mode: mode, Decay: decay}
	for _, bn := range bns {
		a.mean = append(a.mean, make([]float64, bn.C))
		v := make([]float64, bn.C)
		for i := range v {
			v[i] = 1
		}
		a.vari = append(a.vari, v)
	}
	return a
}

// Update folds one worker's reported statistics into the global state
// according to the mode: Async-BN applies E ← (1−d)E + d·mean_m per
// Formula 6 (and likewise for variance per Formula 7); regular BN replaces.
func (a *BNAccumulator) Update(stats []LayerStats) {
	if len(stats) != len(a.mean) {
		panic(fmt.Sprintf("core: BN stats for %d layers, accumulator has %d", len(stats), len(a.mean)))
	}
	for li, s := range stats {
		if len(s.Mean) != len(a.mean[li]) {
			panic(fmt.Sprintf("core: BN layer %d has %d channels, got %d", li, len(a.mean[li]), len(s.Mean)))
		}
		switch a.Mode {
		case BNAsync:
			d := a.Decay
			for c := range s.Mean {
				a.mean[li][c] = (1-d)*a.mean[li][c] + d*s.Mean[c]
				a.vari[li][c] = (1-d)*a.vari[li][c] + d*s.Var[c]
			}
		default: // BNReplace
			copy(a.mean[li], s.Mean)
			copy(a.vari[li], s.Var)
		}
	}
}

// Apply writes the global statistics into a model replica's BN layers —
// part of the weight pull a worker performs at the start of each iteration,
// and of loading the global model for evaluation.
func (a *BNAccumulator) Apply(bns []*nn.BatchNorm) {
	if len(bns) != len(a.mean) {
		panic(fmt.Sprintf("core: applying %d BN layers, accumulator has %d", len(bns), len(a.mean)))
	}
	for li, bn := range bns {
		bn.SetRunning(a.mean[li], a.vari[li])
	}
}

// Snapshot returns deep copies of the global statistics (used by tests and
// by the evaluation path to avoid aliasing).
func (a *BNAccumulator) Snapshot() (mean, vari [][]float64) {
	for li := range a.mean {
		mean = append(mean, append([]float64(nil), a.mean[li]...))
		vari = append(vari, append([]float64(nil), a.vari[li]...))
	}
	return mean, vari
}
