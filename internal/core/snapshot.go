package core

import (
	"fmt"
	"sort"

	"lcasgd/internal/snapshot"
)

// This file threads the snapshot codec through the server-side state the
// paper's algorithms accumulate across iterations: the iter delivery log,
// both online-trained LSTM predictors, and the global BN statistics. Each
// type serializes exactly the state that influences future computation (or
// appears in the final Result, like the predictor traces); wall-clock
// overhead counters (TrainTime etc.) are excluded — they measure the host
// machine, not the run.

// SnapshotTo serializes the delivery log.
func (l *IterLog) SnapshotTo(w *snapshot.Writer) {
	w.Ints(l.seq)
}

// RestoreFrom loads a delivery log written by SnapshotTo, rebuilding the
// per-worker last-seen index.
func (l *IterLog) RestoreFrom(r *snapshot.Reader) error {
	seq := r.Ints()
	if r.Err() != nil {
		return r.Err()
	}
	l.seq = seq
	l.lastSeen = make(map[int]int, 16)
	for i, m := range seq {
		l.lastSeen[m] = i
	}
	return nil
}

// writeTrace / readTrace serialize a predictor trace series.
func writeTrace(w *snapshot.Writer, tr []TracePoint) {
	w.Int(len(tr))
	for _, tp := range tr {
		w.Int(tp.Iteration)
		w.F64(tp.Actual)
		w.F64(tp.Predicted)
	}
}

func readTrace(r *snapshot.Reader) []TracePoint {
	n := r.Int()
	if r.Err() != nil || n < 0 {
		return nil
	}
	tr := make([]TracePoint, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		tr = append(tr, TracePoint{Iteration: r.Int(), Actual: r.F64(), Predicted: r.F64()})
	}
	return tr
}

// SnapshotTo serializes the loss predictor: LSTM weights and window, the
// last observed loss, the pre-computed one-step forecast, and the trace
// recorded so far (the trace is part of the final Result, so a resumed run
// must reproduce it in full).
func (p *LossPredictor) SnapshotTo(w *snapshot.Writer) {
	p.net.SnapshotTo(w)
	w.F64(p.lastLoss)
	w.Bool(p.seeded)
	w.F64(p.nextPred)
	w.Int(p.iteration)
	writeTrace(w, p.trace)
}

// RestoreFrom loads a loss predictor written by SnapshotTo into a
// freshly-built predictor of the same hidden size.
func (p *LossPredictor) RestoreFrom(r *snapshot.Reader) error {
	if err := p.net.RestoreFrom(r); err != nil {
		return err
	}
	p.lastLoss = r.F64()
	p.seeded = r.Bool()
	p.nextPred = r.F64()
	p.iteration = r.Int()
	p.trace = readTrace(r)
	return r.Err()
}

// SnapshotTo serializes the step predictor: LSTM weights and window, the
// per-worker feature memory (in sorted worker order — map iteration order
// must not leak into the stream), the running normalization scales, and the
// trace.
func (p *StepPredictor) SnapshotTo(w *snapshot.Writer) {
	p.net.SnapshotTo(w)
	w.Int(p.workers)
	workers := make([]int, 0, len(p.lastFeat))
	for m := range p.lastFeat {
		workers = append(workers, m)
	}
	sort.Ints(workers)
	w.Int(len(workers))
	for _, m := range workers {
		w.Int(m)
		w.F64s(p.lastFeat[m])
	}
	w.F64(p.commScale)
	w.F64(p.compScale)
	w.Int(p.calls)
	writeTrace(w, p.trace)
}

// RestoreFrom loads a step predictor written by SnapshotTo.
func (p *StepPredictor) RestoreFrom(r *snapshot.Reader) error {
	if err := p.net.RestoreFrom(r); err != nil {
		return err
	}
	if workers := r.Int(); r.Err() == nil && workers != p.workers {
		r.Fail(fmt.Errorf("core: step predictor snapshot for %d workers, have %d", workers, p.workers))
		return r.Err()
	}
	n := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	p.lastFeat = make(map[int][]float64, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		m := r.Int()
		feat := r.F64s()
		if r.Err() == nil {
			p.lastFeat[m] = feat
		}
	}
	p.commScale = r.F64()
	p.compScale = r.F64()
	p.calls = r.Int()
	p.trace = readTrace(r)
	return r.Err()
}

// SnapshotTo serializes the global BN statistics.
func (a *BNAccumulator) SnapshotTo(w *snapshot.Writer) {
	w.Int(len(a.mean))
	for li := range a.mean {
		w.F64s(a.mean[li])
		w.F64s(a.vari[li])
	}
}

// RestoreFrom loads statistics written by SnapshotTo into an accumulator of
// the identical layer shape.
func (a *BNAccumulator) RestoreFrom(r *snapshot.Reader) error {
	if layers := r.Int(); r.Err() == nil && layers != len(a.mean) {
		r.Fail(fmt.Errorf("core: BN snapshot has %d layers, accumulator has %d", layers, len(a.mean)))
		return r.Err()
	}
	for li := range a.mean {
		r.F64sInto(a.mean[li])
		r.F64sInto(a.vari[li])
	}
	return r.Err()
}

// Clone deep-copies the accumulator — the engine keeps a clone of the
// last checkpoint's statistics so a recovered worker can optionally restart
// from them (Config.RecoverOpt) instead of the live server state.
func (a *BNAccumulator) Clone() *BNAccumulator {
	c := &BNAccumulator{Mode: a.Mode, Decay: a.Decay}
	c.mean, c.vari = a.Snapshot()
	return c
}
