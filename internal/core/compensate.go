package core

// CompensationScale turns the server's loss compensation into the gradient
// scale a worker applies when seeding backpropagation — the reproduction's
// reading of Formula 5, g_m = ∇(ℓ_m + λ·ℓ_delay).
//
// As written in the paper the added term is a constant with zero gradient;
// every practical loss-value-compensation implementation instead rescales
// the backward seed by the ratio of the compensated loss to the observed
// loss. We additionally normalize ℓ_delay (a sum over k predicted future
// losses, Formula 9) by k, so the scale compares the observed loss against
// the *mean* predicted future loss:
//
//	scale = (ℓ_m + λ·ℓ_delay/k) / ((1+λ)·ℓ_m)
//
// During convergence the predicted future losses sit below ℓ_m, so workers
// with larger predicted staleness receive scale < 1 — their stale gradients
// are damped in proportion to how far the model is predicted to have moved
// on, which is exactly the graceful high-delay behaviour the paper's
// evaluation demonstrates. The scale is clamped to [MinScale, MaxScale] to
// keep early-training predictor noise from destabilizing updates; DESIGN.md
// records this interpretation and the ablation bench quantifies the
// normalization choice.
func CompensationScale(lossM, lossDelay float64, k int, lambda float64) float64 {
	if k <= 0 || lambda == 0 || lossM <= 0 {
		return 1
	}
	meanFuture := lossDelay / float64(k)
	scale := (lossM + lambda*meanFuture) / ((1 + lambda) * lossM)
	return clampScale(scale)
}

// CompensationScaleSum is the un-normalized variant (using the raw sum
// ℓ_delay rather than the per-step mean), kept for the ablation bench that
// DESIGN.md calls out.
func CompensationScaleSum(lossM, lossDelay float64, lambda float64) float64 {
	if lambda == 0 || lossM <= 0 {
		return 1
	}
	scale := (lossM + lambda*lossDelay) / ((1 + lambda) * lossM)
	return clampScale(scale)
}

// MinScale and MaxScale bound the compensation scale. MaxScale is 1: the
// compensation only ever damps stale gradients. An upward loss forecast
// (loss predicted to rise, e.g. during an instability spike) must not
// amplify the already-destabilizing stale gradient — amplification at
// exactly the wrong moments is what makes naive loss-ratio scaling diverge
// at high staleness.
const (
	MinScale = 0.1
	MaxScale = 1.0
)

func clampScale(s float64) float64 {
	if s < MinScale {
		return MinScale
	}
	if s > MaxScale {
		return MaxScale
	}
	return s
}
