// Package core implements the paper's contribution: the loss predictor
// (Algorithm 3), the multivariate step predictor (Algorithm 4), the
// loss-compensation arithmetic (Formula 5, under the gradient-scaling
// interpretation documented in DESIGN.md), the Async-BN statistics
// accumulator (Formulas 6–7), and the iter worker-sequence log the server
// maintains to derive observed staleness.
package core

// IterLog is the parameter server's record of the order in which workers
// delivered results — the `iter` list of Algorithm 2. It supports the one
// query the step predictor needs: how many other workers updated the server
// between a worker's two most recent deliveries (the observed staleness
// k_m).
type IterLog struct {
	seq      []int
	lastSeen map[int]int // worker -> index in seq of most recent entry
}

// NewIterLog returns an empty log.
func NewIterLog() *IterLog {
	return &IterLog{lastSeen: make(map[int]int)}
}

// Append records that worker m delivered a result, returning the observed
// staleness: the number of entries by other workers since m's previous
// delivery, or -1 if this is m's first delivery (no staleness sample yet).
func (l *IterLog) Append(m int) int {
	idx := len(l.seq)
	gap := -1
	if prev, ok := l.lastSeen[m]; ok {
		gap = idx - prev - 1
	}
	l.seq = append(l.seq, m)
	l.lastSeen[m] = idx
	return gap
}

// Len returns the total number of recorded deliveries.
func (l *IterLog) Len() int { return len(l.seq) }

// Seq returns a copy of the full delivery order (used by the Figure 8
// harness to plot the finishing order).
func (l *IterLog) Seq() []int { return append([]int(nil), l.seq...) }

// LastGap returns the most recently observed staleness for worker m without
// mutating the log, or -1 if m has fewer than two deliveries.
func (l *IterLog) LastGap(m int) int {
	idx, ok := l.lastSeen[m]
	if !ok {
		return -1
	}
	// Scan backwards for m's previous appearance before idx.
	for i := idx - 1; i >= 0; i-- {
		if l.seq[i] == m {
			return idx - i - 1
		}
	}
	return -1
}
