package core

import (
	"math"
	"time"

	"lcasgd/internal/lstm"
	"lcasgd/internal/rng"
)

// StepPredictor is Algorithm 4: a multivariate online LSTM on the parameter
// server that forecasts the staleness k_m a worker will experience during
// its next iteration. Inputs per the paper are three-dimensional — the
// worker's previous staleness, its communication cost t_comm, and its
// computation cost t_comp — and the label is the staleness subsequently
// observed in the iter log.
type StepPredictor struct {
	net     *lstm.Network
	workers int

	// Per-worker last feature vector, used as the training input when the
	// realized staleness label arrives (Algorithm 4 line 2). Each worker's
	// slice is allocated once and overwritten in place thereafter.
	lastFeat map[int][]float64
	// feat is the reused scratch the current iteration's features are
	// assembled in before being copied into lastFeat.
	feat []float64
	// Running scale estimates for normalizing the time features.
	commScale, compScale float64

	trace []TracePoint
	calls int

	TrainTime   time.Duration
	PredictTime time.Duration
	Calls       int
}

// NewStepPredictor builds the predictor with the paper's hidden size of 128
// per LSTM layer for a cluster of the given worker count.
func NewStepPredictor(workers int, g *rng.RNG) *StepPredictor {
	return NewStepPredictorSized(workers, 128, g)
}

// NewStepPredictorSized allows the hidden width to be varied.
func NewStepPredictorSized(workers, hidden int, g *rng.RNG) *StepPredictor {
	n := lstm.NewNetwork(3, []int{hidden, hidden}, g)
	n.LR = 0.02
	n.Window = 12
	return &StepPredictor{
		net:       n,
		workers:   workers,
		lastFeat:  make(map[int][]float64),
		feat:      make([]float64, 3),
		commScale: 1, compScale: 1,
	}
}

// features normalizes (step, tcomm, tcomp) into the LSTM's input space:
// staleness is scaled by the worker count, times by running magnitude
// estimates so the network sees O(1) values regardless of cost-model units.
// The result lands in the reused p.feat scratch.
func (p *StepPredictor) features(step float64, tcomm, tcomp float64) []float64 {
	// Update running scales with a slow EMA.
	const a = 0.05
	if tcomm > 0 {
		p.commScale = (1-a)*p.commScale + a*tcomm
	}
	if tcomp > 0 {
		p.compScale = (1-a)*p.compScale + a*tcomp
	}
	p.feat[0] = step / float64(p.workers)
	p.feat[1] = tcomm / math.Max(p.commScale, 1e-9)
	p.feat[2] = tcomp / math.Max(p.compScale, 1e-9)
	return p.feat
}

// ObserveAndPredict implements Algorithm 4: the realized staleness for
// worker m (derived from the iter log) trains the model against the
// features recorded at m's previous iteration, then the model forecasts
// m's next staleness from the current features. observedStep < 0 (no label
// yet, first iteration) skips training and falls back to a cold-start
// estimate of M−1, the expected staleness under homogeneous workers.
func (p *StepPredictor) ObserveAndPredict(m int, observedStep int, tcomm, tcomp float64) int {
	start := time.Now()
	defer func() {
		p.TrainTime += time.Since(start)
		p.Calls++
	}()
	feat := p.features(float64(observedStep), tcomm, tcomp)
	if prev, ok := p.lastFeat[m]; ok && observedStep >= 0 {
		// TrainStep copies prev into its window, so the per-worker buffer
		// can be overwritten right after.
		p.net.TrainStep(prev, float64(observedStep)/float64(p.workers))
	}
	buf, ok := p.lastFeat[m]
	if !ok {
		buf = make([]float64, len(feat))
		p.lastFeat[m] = buf
	}
	copy(buf, feat)
	if observedStep < 0 {
		return p.workers - 1
	}

	pstart := time.Now()
	raw := p.net.Predict(feat) * float64(p.workers)
	p.PredictTime += time.Since(pstart)

	k := int(math.Round(raw))
	if k < 0 {
		k = 0
	}
	if max := 3 * p.workers; k > max {
		k = max
	}
	p.trace = append(p.trace, TracePoint{Iteration: p.calls, Actual: float64(observedStep), Predicted: raw})
	p.calls++
	return k
}

// Trace returns the (observed staleness, predicted staleness) series used
// by the Figure 8 harness.
func (p *StepPredictor) Trace() []TracePoint {
	return append([]TracePoint(nil), p.trace...)
}

// AvgTrainMs returns the mean per-call time in milliseconds (Tables 2–3).
func (p *StepPredictor) AvgTrainMs() float64 {
	if p.Calls == 0 {
		return 0
	}
	return float64(p.TrainTime.Microseconds()) / float64(p.Calls) / 1000
}
