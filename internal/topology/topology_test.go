package topology

import (
	"math"
	"reflect"
	"testing"

	"lcasgd/internal/rng"
)

// generated enumerates every constructor across a spread of sizes — the
// graph population the property tests quantify over.
func generated(t *testing.T) map[string]*Graph {
	t.Helper()
	graphs := map[string]*Graph{}
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16} {
		graphs[key("ring", n)] = Ring(n)
		graphs[key("complete", n)] = Complete(n)
		graphs[key("star", n)] = Star(n)
		for seed := uint64(1); seed <= 3; seed++ {
			graphs[key("gossip", n)+string(rune('a'+seed))] = Gossip(n, rng.New(seed))
		}
	}
	g, err := Parse("edges:0-1,1-2,2-3,3-0,0-2", 6, rng.New(1))
	if err != nil {
		t.Fatalf("parse edges: %v", err)
	}
	graphs["edges/6"] = g
	return graphs
}

func key(name string, n int) string {
	return name + "/" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}

// Every generated topology's mixing matrix must be symmetric and doubly
// stochastic with nonnegative entries — the contract that makes gossip
// averaging a consensus operator.
func TestMixingDoublyStochasticSymmetric(t *testing.T) {
	const eps = 1e-12
	for name, g := range generated(t) {
		w := g.Mixing()
		n := g.Workers()
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				if w[i][j] < -eps {
					t.Fatalf("%s: W[%d][%d] = %v < 0", name, i, j, w[i][j])
				}
				if math.Abs(w[i][j]-w[j][i]) > eps {
					t.Fatalf("%s: W not symmetric at (%d,%d): %v vs %v", name, i, j, w[i][j], w[j][i])
				}
				if i != j && w[i][j] > 0 && !g.HasEdge(i, j) {
					t.Fatalf("%s: W[%d][%d] = %v without an edge", name, i, j, w[i][j])
				}
				rowSum += w[i][j]
			}
			if math.Abs(rowSum-1) > eps {
				t.Fatalf("%s: row %d sums to %v", name, i, rowSum)
			}
		}
	}
}

// The named constructors must be connected for every size (gossip by its
// Hamiltonian-cycle construction), so a partition-free run always mixes to
// a single consensus.
func TestGeneratedGraphsConnected(t *testing.T) {
	for name, g := range generated(t) {
		if name == "edges/6" {
			continue // ranks 4,5 are deliberately isolated
		}
		if !g.Connected(nil) {
			t.Fatalf("%s: not connected: components %v", name, g.Components(nil))
		}
	}
}

// Cutting workers must split the graph into exactly the components the
// remaining edges imply: a ring with two opposite cuts yields two arcs, a
// star without its hub isolates every leaf.
func TestComponentsUnderPartition(t *testing.T) {
	ring := Ring(6)
	down := make([]bool, 6)
	down[0], down[3] = true, true
	got := ring.Components(down)
	want := []int{-1, 0, 0, -1, 1, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ring(6) cut {0,3}: components %v, want %v", got, want)
	}
	if ring.Connected(down) {
		t.Fatalf("ring(6) cut {0,3} should not be connected")
	}

	star := Star(5)
	down = make([]bool, 5)
	down[0] = true
	got = star.Components(down)
	want = []int{-1, 0, 1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("star(5) cut hub: components %v, want %v", got, want)
	}

	complete := Complete(5)
	down = make([]bool, 5)
	down[2] = true
	if !complete.Connected(down) {
		t.Fatalf("complete(5) should survive any single cut")
	}
}

// Gossip wiring and Selector draws must be pure functions of the seed: the
// same seed reproduces both exactly, a different seed changes the draw
// sequence.
func TestGossipDeterministicPerSeed(t *testing.T) {
	build := func(seed uint64) *Graph { return Gossip(8, rng.New(seed)) }
	a, b := build(42), build(42)
	for m := 0; m < 8; m++ {
		if !reflect.DeepEqual(a.Neighbors(m), b.Neighbors(m)) {
			t.Fatalf("same seed, different wiring at rank %d: %v vs %v", m, a.Neighbors(m), b.Neighbors(m))
		}
	}

	draws := func(g *Graph, seed uint64) []int {
		sel := NewSelector(g, rng.New(seed))
		out := make([]int, 64)
		for i := range out {
			out[i] = sel.Pick(i%g.Workers(), func(int) bool { return true })
		}
		return out
	}
	if got, want := draws(a, 7), draws(b, 7); !reflect.DeepEqual(got, want) {
		t.Fatalf("same seed, different partner draws:\n%v\n%v", got, want)
	}
	if got, other := draws(a, 7), draws(a, 8); reflect.DeepEqual(got, other) {
		t.Fatalf("different seeds produced identical 64-draw sequences")
	}
}

// Pick consumes exactly one draw per call regardless of how many neighbors
// qualify — the stream-position invariant bit-identical resume depends on.
func TestSelectorConsumesOneDrawPerPick(t *testing.T) {
	g := Ring(6)
	selA := NewSelector(g, rng.New(9))
	selB := NewSelector(g, rng.New(9))
	// A picks with all neighbors blocked (partner −1), B picks normally; the
	// streams must stay in lockstep.
	if p := selA.Pick(0, func(int) bool { return false }); p != -1 {
		t.Fatalf("blocked pick returned %d, want -1", p)
	}
	selB.Pick(0, func(int) bool { return true })
	if selA.State() != selB.State() {
		t.Fatalf("stream positions diverged after one pick each")
	}
}

// Selector state must round-trip: restoring a saved position replays the
// identical partner sequence.
func TestSelectorStateRoundTrip(t *testing.T) {
	g := Complete(5)
	sel := NewSelector(g, rng.New(3))
	all := func(int) bool { return true }
	for i := 0; i < 10; i++ {
		sel.Pick(i%5, all)
	}
	st := sel.State()
	var want []int
	for i := 0; i < 10; i++ {
		want = append(want, sel.Pick(i%5, all))
	}
	sel.SetState(st)
	for i := 0; i < 10; i++ {
		if got := sel.Pick(i%5, all); got != want[i] {
			t.Fatalf("replayed pick %d = %d, want %d", i, got, want[i])
		}
	}
}

// Parse must accept the whole Names vocabulary and reject junk with the
// vocabulary in the message; edge specs must clip out-of-range ranks like
// scenarios do.
func TestParseAndValidate(t *testing.T) {
	for _, spec := range []string{"", "ring", "complete", "star", "gossip", "edges:0-1,1-2"} {
		if err := ValidateSpec(spec); err != nil {
			t.Fatalf("ValidateSpec(%q): %v", spec, err)
		}
		if _, err := Parse(spec, 4, rng.New(1)); err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
	}
	for _, spec := range []string{"mesh", "edges:", "edges:0-0", "edges:1", "edges:a-b", "edges:-1-2"} {
		if err := ValidateSpec(spec); err == nil {
			t.Fatalf("ValidateSpec(%q) accepted", spec)
		}
		if _, err := Parse(spec, 4, rng.New(1)); err == nil {
			t.Fatalf("Parse(%q) accepted", spec)
		}
	}
	// Out-of-range edges clip rather than error: one spec serves any M.
	g, err := Parse("edges:0-1,2-9", 3, rng.New(1))
	if err != nil {
		t.Fatalf("clipped parse: %v", err)
	}
	if g.Degree(2) != 0 || !g.HasEdge(0, 1) {
		t.Fatalf("clipping wrong: deg(2)=%d hasEdge(0,1)=%v", g.Degree(2), g.HasEdge(0, 1))
	}
}
