// Package topology models the communication graphs decentralized training
// runs on. A Graph is an undirected graph over the worker ranks; the engine
// uses it three ways:
//
//   - Neighbor lists drive gossip partner selection (Selector), with the
//     randomness drawn from a labeled stream of the run's seed RNG so the
//     draw sequence is part of the reproducibility contract.
//   - The Metropolis–Hastings mixing matrix (Mixing) is the W of
//     decentralized SGD analyses (Lian et al. 2017): symmetric and doubly
//     stochastic, so repeated averaging converges to the uniform consensus.
//   - Connectivity queries (Components, Connected) give scenario partitions
//     their decentralized meaning: cutting workers splits the graph into
//     components instead of silencing individual ranks.
//
// Graphs are built either by the named constructors (Ring, Complete, Star,
// Gossip) or from a user spec string (Parse): "ring", "complete", "star",
// "gossip", or "edges:0-1,1-2,…" for an explicit edge list. Construction is
// deterministic: the only randomness (Gossip's wiring) comes from the RNG
// the caller passes in.
package topology

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"lcasgd/internal/rng"
)

// Graph is an immutable undirected communication graph over n workers,
// identified by ranks 0..n-1. Self-loops and parallel edges are never
// stored.
type Graph struct {
	name string
	adj  [][]int // sorted neighbor lists
}

// New builds a graph over n workers from an explicit edge list. Edges
// touching ranks outside 0..n-1 are skipped — mirroring the scenario
// convention that one spec serves any worker count — and duplicates and
// self-loops are dropped.
func New(name string, n int, edges [][2]int) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("topology: graph over %d workers", n))
	}
	adj := make([][]int, n)
	for _, e := range edges {
		i, j := e[0], e[1]
		if i < 0 || j < 0 || i >= n || j >= n || i == j {
			continue
		}
		if !contains(adj[i], j) {
			adj[i] = append(adj[i], j)
			adj[j] = append(adj[j], i)
		}
	}
	for _, ns := range adj {
		sort.Ints(ns)
	}
	return &Graph{name: name, adj: adj}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Ring connects rank m to (m±1) mod n — the sparsest connected regular
// topology, and the default for decentralized runs.
func Ring(n int) *Graph {
	edges := make([][2]int, 0, n)
	for m := 0; m < n; m++ {
		edges = append(edges, [2]int{m, (m + 1) % n})
	}
	return New("ring", n, edges)
}

// Complete connects every pair of ranks — gossip averaging with a uniform
// random partner, the densest topology.
func Complete(n int) *Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return New("complete", n, edges)
}

// Star connects every rank to rank 0 — the parameter-server shape expressed
// as a gossip graph, useful as the bridge case between the PS algorithms and
// truly decentralized ones.
func Star(n int) *Graph {
	var edges [][2]int
	for m := 1; m < n; m++ {
		edges = append(edges, [2]int{0, m})
	}
	return New("star", n, edges)
}

// Gossip builds a seeded random graph: a random Hamiltonian cycle (so the
// graph is connected by construction) plus ⌊n/2⌋ random chords. All
// randomness comes from g, so the wiring is a pure function of the stream's
// state — the same run seed always yields the same graph.
func Gossip(n int, g *rng.RNG) *Graph {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(g.Uint64() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	var edges [][2]int
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{perm[i], perm[(i+1)%n]})
	}
	for k := 0; k < n/2; k++ {
		i := int(g.Uint64() % uint64(n))
		j := int(g.Uint64() % uint64(n))
		edges = append(edges, [2]int{i, j}) // self/dup edges dropped by New
	}
	return New("gossip", n, edges)
}

// Parse builds the graph named by spec over n workers. Valid specs are the
// Names() vocabulary: "ring", "complete", "star", "gossip", or
// "edges:i-j,k-l,…". The RNG is consumed only by random topologies
// ("gossip"), but callers should pass a dedicated labeled stream
// unconditionally so the parent stream's position does not depend on the
// spec.
func Parse(spec string, n int, g *rng.RNG) (*Graph, error) {
	switch spec {
	case "", "ring":
		return Ring(n), nil
	case "complete":
		return Complete(n), nil
	case "star":
		return Star(n), nil
	case "gossip":
		return Gossip(n, g), nil
	}
	if rest, ok := strings.CutPrefix(spec, "edges:"); ok {
		edges, err := parseEdgeList(rest)
		if err != nil {
			return nil, err
		}
		return New(spec, n, edges), nil
	}
	return nil, fmt.Errorf("topology: unknown spec %q (valid: %s)", spec, strings.Join(Names(), ", "))
}

// ValidateSpec checks a spec string without building a graph — the upfront
// flag validation cmd/lcexp does before any dataset work.
func ValidateSpec(spec string) error {
	switch spec {
	case "", "ring", "complete", "star", "gossip":
		return nil
	}
	if rest, ok := strings.CutPrefix(spec, "edges:"); ok {
		_, err := parseEdgeList(rest)
		return err
	}
	return fmt.Errorf("topology: unknown spec %q (valid: %s)", spec, strings.Join(Names(), ", "))
}

// SpecMinWorkers returns the smallest fleet a spec can span: the highest
// rank an explicit edge list names plus one, or 0 for the named topologies,
// which scale to any fleet size. Fleets below the minimum would silently
// lose the out-of-range edges (New drops them) and can leave the graph
// disconnected, so flag-level callers reject the pairing up front instead.
func SpecMinWorkers(spec string) (int, error) {
	rest, ok := strings.CutPrefix(spec, "edges:")
	if !ok {
		return 0, ValidateSpec(spec)
	}
	edges, err := parseEdgeList(rest)
	if err != nil {
		return 0, err
	}
	min := 0
	for _, e := range edges {
		for _, r := range e {
			if r+1 > min {
				min = r + 1
			}
		}
	}
	return min, nil
}

// Names lists the valid topology spec forms, for flag vocabulary messages.
func Names() []string {
	return []string{"ring", "complete", "star", "gossip", "edges:i-j,k-l,..."}
}

// parseEdgeList parses "0-1,1-2,…" into rank pairs.
func parseEdgeList(s string) ([][2]int, error) {
	if s == "" {
		return nil, fmt.Errorf("topology: empty edge list")
	}
	var edges [][2]int
	for _, part := range strings.Split(s, ",") {
		lo, hi, ok := strings.Cut(strings.TrimSpace(part), "-")
		if !ok {
			return nil, fmt.Errorf("topology: edge %q is not of the form i-j", part)
		}
		i, err := strconv.Atoi(lo)
		if err != nil {
			return nil, fmt.Errorf("topology: edge %q: %v", part, err)
		}
		j, err := strconv.Atoi(hi)
		if err != nil {
			return nil, fmt.Errorf("topology: edge %q: %v", part, err)
		}
		if i < 0 || j < 0 {
			return nil, fmt.Errorf("topology: edge %q has a negative rank", part)
		}
		if i == j {
			return nil, fmt.Errorf("topology: edge %q is a self-loop", part)
		}
		edges = append(edges, [2]int{i, j})
	}
	return edges, nil
}

// Name returns the spec the graph was built from.
func (g *Graph) Name() string { return g.name }

// Workers returns the number of ranks the graph spans.
func (g *Graph) Workers() int { return len(g.adj) }

// Neighbors returns rank m's sorted neighbor list. Callers must not mutate
// it.
func (g *Graph) Neighbors(m int) []int { return g.adj[m] }

// Degree returns rank m's neighbor count.
func (g *Graph) Degree(m int) int { return len(g.adj[m]) }

// HasEdge reports whether ranks i and j are directly connected.
func (g *Graph) HasEdge(i, j int) bool { return contains(g.adj[i], j) }

// Mixing returns the Metropolis–Hastings mixing matrix:
//
//	W[i][j] = 1/(1+max(deg i, deg j))  for each edge {i,j}
//	W[i][i] = 1 − Σ_{j≠i} W[i][j]
//
// which is symmetric and doubly stochastic for every undirected graph — the
// property that makes repeated gossip averaging contract toward consensus.
func (g *Graph) Mixing() [][]float64 {
	n := len(g.adj)
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for i, ns := range g.adj {
		rowSum := 0.0
		for _, j := range ns {
			d := len(g.adj[i])
			if dj := len(g.adj[j]); dj > d {
				d = dj
			}
			w[i][j] = 1 / float64(1+d)
			rowSum += w[i][j]
		}
		w[i][i] = 1 - rowSum
	}
	return w
}

// Components labels each rank with a connected-component id, treating ranks
// with down[m] set as removed from the graph (their label is −1 and no path
// crosses them). Ids are assigned in ascending order of each component's
// lowest rank, so the labeling is canonical. A nil down means all ranks are
// up.
func (g *Graph) Components(down []bool) []int {
	n := len(g.adj)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	var queue []int
	for s := 0; s < n; s++ {
		if comp[s] >= 0 || (down != nil && down[s]) {
			continue
		}
		comp[s] = next
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if comp[v] >= 0 || (down != nil && down[v]) {
					continue
				}
				comp[v] = next
				queue = append(queue, v)
			}
		}
		next++
	}
	return comp
}

// Connected reports whether the up ranks form a single component (a graph
// with zero up ranks counts as connected).
func (g *Graph) Connected(down []bool) bool {
	comp := g.Components(down)
	for _, c := range comp {
		if c > 0 {
			return false
		}
	}
	return true
}

// Selector draws gossip partners from a graph using a dedicated RNG stream.
// Every Pick consumes exactly one draw whether or not a partner exists, so
// the stream's position depends only on how many commits have happened — a
// pure function of the run's event order, which keeps backends and resumed
// runs bit-identical.
type Selector struct {
	g   *Graph
	rng *rng.RNG
}

// NewSelector wraps graph g with the given stream (typically a labeled child
// of the run's seed RNG).
func NewSelector(g *Graph, r *rng.RNG) *Selector {
	return &Selector{g: g, rng: r}
}

// Pick returns rank m's gossip partner for this commit: a uniform draw over
// the neighbors j with ok(j) true, or −1 when none qualify (the worker then
// steps locally without averaging). Exactly one RNG draw is consumed either
// way.
func (s *Selector) Pick(m int, ok func(j int) bool) int {
	draw := s.rng.Uint64()
	reachable := 0
	for _, j := range s.g.Neighbors(m) {
		if ok(j) {
			reachable++
		}
	}
	if reachable == 0 {
		return -1
	}
	k := int(draw % uint64(reachable))
	for _, j := range s.g.Neighbors(m) {
		if !ok(j) {
			continue
		}
		if k == 0 {
			return j
		}
		k--
	}
	panic("topology: unreachable")
}

// PickUniform returns rank m's gossip partner when every neighbor is known
// to qualify — the no-churn fast path. It consumes exactly one draw and
// indexes the neighbor list directly, returning the same partner Pick would
// with an always-true filter (the filtered walk reduces to the k-th
// neighbor when all pass), but in O(1) instead of O(degree) — which on a
// complete graph is the difference between O(1) and O(M) per commit.
func (s *Selector) PickUniform(m int) int {
	draw := s.rng.Uint64()
	ns := s.g.Neighbors(m)
	if len(ns) == 0 {
		return -1
	}
	return ns[int(draw%uint64(len(ns)))]
}

// State exposes the selector stream's position for checkpointing.
func (s *Selector) State() [4]uint64 { return s.rng.State() }

// SetState restores a position captured by State.
func (s *Selector) SetState(st [4]uint64) { s.rng.SetState(st) }
