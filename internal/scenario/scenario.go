// Package scenario defines deterministic timelines of cluster events — cost
// phase shifts (congestion windows scaling compute/communication means),
// per-worker crashes and recoveries, and elastic fleet resizes (workers
// joining or leaving mid-run). The ps engine compiles a Scenario onto its
// simulated clock, so every event fires at an exact virtual time and the run
// stays bit-identical across execution backends and repetitions.
//
// The stationary cluster.CostModel answers "how slow is this fleet"; a
// Scenario answers "what happens to this fleet while it trains". Chen et al.
// (Revisiting Distributed Synchronous SGD) show that straggler and failure
// dynamics dominate the sync-vs-async tradeoff, which is exactly what these
// timelines let the harness stress.
package scenario

import (
	"fmt"
	"sort"

	"lcasgd/internal/rng"
)

// Kind classifies a cluster event.
type Kind string

const (
	// PhaseShift installs cost multipliers on the sampler: CompScale and
	// CommScale multiply the sampled computation and communication times of
	// the target worker (or the whole fleet when Worker is -1) until the
	// next shift. Scales of 1 restore the nominal cost model.
	PhaseShift Kind = "phase-shift"
	// Crash retires a worker abruptly: its in-flight iteration is lost and
	// it schedules no further work until a Recover event re-admits it.
	Crash Kind = "crash"
	// Recover re-admits a crashed worker; it re-pulls the current server
	// state and resumes iterating.
	Recover Kind = "recover"
	// Join admits a worker that was not part of the initial fleet (elastic
	// scale-up). Identical engine semantics to Recover; the distinct kind
	// keeps timelines readable.
	Join Kind = "join"
	// Leave retires a worker gracefully (elastic scale-down). Identical
	// engine semantics to Crash.
	Leave Kind = "leave"
	// Partition cuts a worker off from the parameter server: the worker
	// keeps computing, but its commits (gradient pushes and BN statistics)
	// are dropped until a Heal event restores connectivity. Dropped commits
	// consume no sample budget — like a crash's lost in-flight work, the
	// computation is simply wasted. A partitioned worker with no Heal left
	// on the timeline parks instead of spinning forever (see the engine's
	// fleet layer).
	Partition Kind = "partition"
	// Heal reconnects a partitioned worker; its next commit lands normally.
	Heal Kind = "heal"
)

// Event is one timeline entry, timestamped in virtual milliseconds.
type Event struct {
	// At is the virtual time of the first occurrence.
	At float64
	// Period, when positive, repeats the event every Period milliseconds
	// after At; zero means one-shot. Periodic pairs of PhaseShift events
	// model recurring congestion windows, periodic Crash/Recover pairs a
	// chronically flaky worker.
	Period float64
	Kind   Kind
	// Worker targets one worker by rank. PhaseShift also accepts -1 for the
	// whole fleet. Events targeting ranks beyond the actual fleet size are
	// skipped at compile time, so one scenario serves any worker count.
	Worker int
	// CompScale and CommScale are the PhaseShift multipliers; both must be
	// positive. Ignored by the other kinds.
	CompScale, CommScale float64
}

// Scenario is a named, validated timeline of cluster events.
type Scenario struct {
	Name string
	// InitialWorkers caps how many of the configured workers start active;
	// ranks beyond it begin outside the fleet and enter via Join events.
	// Zero means the whole configured fleet starts active.
	InitialWorkers int
	Events         []Event
}

// Validate checks the timeline is well-formed. A scenario must not rely on
// permanently emptying the fleet: the engine truncates such runs rather than
// hanging, which Validate cannot detect statically for periodic timelines.
func (s *Scenario) Validate() error {
	if s.InitialWorkers < 0 {
		return fmt.Errorf("scenario %q: negative InitialWorkers %d", s.Name, s.InitialWorkers)
	}
	for i, ev := range s.Events {
		if ev.At < 0 {
			return fmt.Errorf("scenario %q event %d: negative time %v", s.Name, i, ev.At)
		}
		if ev.Period < 0 {
			return fmt.Errorf("scenario %q event %d: negative period %v", s.Name, i, ev.Period)
		}
		switch ev.Kind {
		case PhaseShift:
			if ev.Worker < -1 {
				return fmt.Errorf("scenario %q event %d: bad worker %d", s.Name, i, ev.Worker)
			}
			if ev.CompScale <= 0 || ev.CommScale <= 0 {
				return fmt.Errorf("scenario %q event %d: non-positive phase scales %v/%v",
					s.Name, i, ev.CompScale, ev.CommScale)
			}
		case Crash, Recover, Join, Leave, Partition, Heal:
			if ev.Worker < 0 {
				return fmt.Errorf("scenario %q event %d: %s needs a worker rank, got %d",
					s.Name, i, ev.Kind, ev.Worker)
			}
		default:
			return fmt.Errorf("scenario %q event %d: unknown kind %q", s.Name, i, ev.Kind)
		}
	}
	return nil
}

// --- canned scenarios (cmd/lcexp -scenario) ---

// None is the empty timeline: the stationary cluster of the paper.
func None() Scenario { return Scenario{Name: "none"} }

// Congestion alternates fleet-wide contention windows: from t=1.2s, every
// 2.4s period spends half its time with computation 2.5× and communication
// 3× slower — the "high and volatile" delays of the paper's introduction,
// made non-stationary.
func Congestion() Scenario {
	return Scenario{
		Name: "congestion",
		Events: []Event{
			{At: 1200, Period: 2400, Kind: PhaseShift, Worker: -1, CompScale: 2.5, CommScale: 3},
			{At: 2400, Period: 2400, Kind: PhaseShift, Worker: -1, CompScale: 1, CommScale: 1},
		},
	}
}

// Flaky gives the fleet two chronically unreliable workers: worker 1 crashes
// every 3s and is down for 700ms; worker 2 crashes on a phase-shifted 3s
// cycle and is down for 500ms.
func Flaky() Scenario {
	return Scenario{
		Name: "flaky",
		Events: []Event{
			{At: 900, Period: 3000, Kind: Crash, Worker: 1},
			{At: 1600, Period: 3000, Kind: Recover, Worker: 1},
			{At: 2300, Period: 3000, Kind: Crash, Worker: 2},
			{At: 2800, Period: 3000, Kind: Recover, Worker: 2},
		},
	}
}

// Elastic starts with a two-worker fleet, scales up by one worker every
// 600ms until the configured size is reached, retires worker 0 at t=4s (a
// graceful scale-down once the late joiners carry the load) and re-admits
// it at t=6s. The re-join matters beyond realism: on a one-replica fleet
// (sequential SGD pins the fleet to one worker and every other event here
// is skipped), an unpaired Leave of worker 0 would permanently empty the
// fleet and silently truncate the run.
func Elastic() Scenario {
	s := Scenario{Name: "elastic", InitialWorkers: 2}
	for rank := 2; rank < 16; rank++ {
		s.Events = append(s.Events, Event{
			At: 600 * float64(rank-1), Kind: Join, Worker: rank,
		})
	}
	s.Events = append(s.Events,
		Event{At: 4000, Kind: Leave, Worker: 0},
		Event{At: 6000, Kind: Join, Worker: 0},
	)
	return s
}

// Partitioned subjects two workers to recurring network partitions: worker
// 1 loses server connectivity every 3s for 800ms, worker 3 on a phase-
// shifted cycle for 600ms. The workers keep computing through each cut —
// the commits they push are dropped, which is what distinguishes a
// partition from the Flaky scenario's crashes (no state or in-flight work
// is lost, only server reachability).
func Partitioned() Scenario {
	return Scenario{
		Name: "partition",
		Events: []Event{
			{At: 1000, Period: 3000, Kind: Partition, Worker: 1},
			{At: 1800, Period: 3000, Kind: Heal, Worker: 1},
			{At: 2200, Period: 3000, Kind: Partition, Worker: 3},
			{At: 2800, Period: 3000, Kind: Heal, Worker: 3},
		},
	}
}

// Mixed overlays Congestion and Flaky: recurring fleet-wide contention plus
// unreliable workers, the harshest canned setting.
func Mixed() Scenario {
	s := Scenario{Name: "mixed"}
	s.Events = append(s.Events, Congestion().Events...)
	s.Events = append(s.Events, Flaky().Events...)
	return s
}

// Randomized generates a seeded random timeline over a fleet of the given
// size: an arbitrary legal mix of crash/recover, leave/join, partition/heal
// pairs and phase shifts, with event times spread across the virtual
// horizon (milliseconds). It is the fuzzer behind the engine's
// randomized-churn property tests — every invariant the canned scenarios
// are checked under (backend bit-equivalence, checkpoint/resume equality,
// no hangs) must hold on any timeline this returns.
//
// The construction keeps every timeline live by design: membership and
// connectivity events come in ordered pairs (each Crash is followed by its
// Recover, each Partition by its Heal), and worker 0 is never crashed or
// removed, so the fleet can never permanently empty — a run under any
// Randomized timeline terminates rather than truncating at a stall.
// Everything is a pure function of (seed, workers, horizon, events).
func Randomized(seed uint64, workers int, horizon float64, events int) Scenario {
	if workers < 1 || horizon <= 0 || events < 0 {
		panic(fmt.Sprintf("scenario: Randomized(%d, %d, %v, %d)", seed, workers, horizon, events))
	}
	g := rng.New(seed)
	s := Scenario{Name: fmt.Sprintf("randomized-%d", seed)}

	// Sometimes start with a partial fleet and let the remaining ranks join
	// mid-run, exercising elastic scale-up at random times.
	initial := workers
	if workers > 2 && g.Float64() < 0.35 {
		initial = 1 + g.Intn(workers-1)
		s.InitialWorkers = initial
		for rank := initial; rank < workers; rank++ {
			s.Events = append(s.Events, Event{
				At: (0.05 + 0.45*g.Float64()) * horizon, Kind: Join, Worker: rank,
			})
		}
	}

	// Per-worker cursors serialize each worker's down/cut windows so the
	// generated pairs nest sensibly (the engine ignores redundant events,
	// so overlap would be legal — just ineffective churn).
	downUntil := make([]float64, workers)
	cutUntil := make([]float64, workers)
	for i := 0; i < events; i++ {
		at := (0.05 + 0.80*g.Float64()) * horizon
		switch k := g.Intn(10); {
		case k < 2: // fleet-wide congestion window: shift, then restore
			s.Events = append(s.Events,
				Event{At: at, Kind: PhaseShift, Worker: -1,
					CompScale: 0.5 + 3*g.Float64(), CommScale: 0.5 + 3*g.Float64()},
				Event{At: at + (0.02+0.1*g.Float64())*horizon, Kind: PhaseShift, Worker: -1,
					CompScale: 1, CommScale: 1},
			)
		case k < 3: // single-worker slowdown
			s.Events = append(s.Events, Event{
				At: at, Kind: PhaseShift, Worker: g.Intn(workers),
				CompScale: 0.5 + 3*g.Float64(), CommScale: 0.5 + 3*g.Float64(),
			})
		case k < 6: // crash/recover or leave/join pair; worker 0 is immune
			if workers == 1 {
				continue
			}
			m := 1 + g.Intn(workers-1)
			if at < downUntil[m] {
				at = downUntil[m] + 0.01*horizon
			}
			dur := (0.03 + 0.12*g.Float64()) * horizon
			downUntil[m] = at + dur + 0.01*horizon
			down, up := Crash, Recover
			if g.Intn(2) == 1 {
				down, up = Leave, Join
			}
			s.Events = append(s.Events,
				Event{At: at, Kind: down, Worker: m},
				Event{At: at + dur, Kind: up, Worker: m},
			)
		default: // partition/heal pair; any worker may be cut
			m := g.Intn(workers)
			if at < cutUntil[m] {
				at = cutUntil[m] + 0.01*horizon
			}
			dur := (0.03 + 0.12*g.Float64()) * horizon
			cutUntil[m] = at + dur + 0.01*horizon
			s.Events = append(s.Events,
				Event{At: at, Kind: Partition, Worker: m},
				Event{At: at + dur, Kind: Heal, Worker: m},
			)
		}
	}
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("scenario: Randomized generated an invalid timeline: %v", err))
	}
	return s
}

// canned maps -scenario names to constructors. Constructors (not values)
// keep Lookup results independently mutable.
var canned = map[string]func() Scenario{
	"none":       None,
	"congestion": Congestion,
	"flaky":      Flaky,
	"elastic":    Elastic,
	"partition":  Partitioned,
	"mixed":      Mixed,
}

// Lookup returns the canned scenario with the given name.
func Lookup(name string) (Scenario, error) {
	mk, ok := canned[name]
	if !ok {
		return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (valid: %v)", name, Names())
	}
	return mk(), nil
}

// Names lists the canned scenario names in sorted order.
func Names() []string {
	out := make([]string, 0, len(canned))
	for name := range canned {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Canned returns every canned scenario, ordered by name.
func Canned() []Scenario {
	var out []Scenario
	for _, name := range Names() {
		out = append(out, canned[name]())
	}
	return out
}
