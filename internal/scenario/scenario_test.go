package scenario

import (
	"sort"
	"strings"
	"testing"
)

func TestCannedScenariosValidate(t *testing.T) {
	for _, s := range Canned() {
		if err := s.Validate(); err != nil {
			t.Fatalf("canned scenario %q invalid: %v", s.Name, err)
		}
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	cases := []struct {
		name string
		scn  Scenario
		want string
	}{
		{"negative time", Scenario{Events: []Event{{At: -1, Kind: Crash, Worker: 0}}}, "negative time"},
		{"negative period", Scenario{Events: []Event{{Period: -2, Kind: Crash, Worker: 0}}}, "negative period"},
		{"unknown kind", Scenario{Events: []Event{{Kind: "explode", Worker: 0}}}, "unknown kind"},
		{"crash without worker", Scenario{Events: []Event{{Kind: Crash, Worker: -1}}}, "needs a worker"},
		{"partition without worker", Scenario{Events: []Event{{Kind: Partition, Worker: -1}}}, "needs a worker"},
		{"heal without worker", Scenario{Events: []Event{{Kind: Heal, Worker: -1}}}, "needs a worker"},
		{"zero phase scale", Scenario{Events: []Event{{Kind: PhaseShift, Worker: -1}}}, "phase scales"},
		{"bad phase worker", Scenario{Events: []Event{{Kind: PhaseShift, Worker: -2, CompScale: 1, CommScale: 1}}}, "bad worker"},
		{"negative initial", Scenario{InitialWorkers: -1}, "InitialWorkers"},
	}
	for _, c := range cases {
		err := c.scn.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestLookupAndNames(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("names not sorted: %v", names)
	}
	for _, name := range names {
		s, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if s.Name != name {
			t.Fatalf("Lookup(%q) returned scenario named %q", name, s.Name)
		}
	}
	if _, err := Lookup("bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown lookup error %v", err)
	}
	if len(Canned()) != len(names) {
		t.Fatalf("Canned returned %d scenarios for %d names", len(Canned()), len(names))
	}
}

func TestLookupResultsAreIndependent(t *testing.T) {
	a, _ := Lookup("flaky")
	b, _ := Lookup("flaky")
	a.Events[0].Worker = 99
	if b.Events[0].Worker == 99 {
		t.Fatal("Lookup results share event storage")
	}
}

func TestElasticStartsSmallAndGrows(t *testing.T) {
	s := Elastic()
	if s.InitialWorkers != 2 {
		t.Fatalf("elastic initial fleet %d", s.InitialWorkers)
	}
	out := map[int]bool{} // ranks currently outside the fleet
	for r := s.InitialWorkers; r < 16; r++ {
		out[r] = true
	}
	joins := 0
	for _, ev := range s.Events {
		switch ev.Kind {
		case Join:
			joins++
			if !out[ev.Worker] {
				t.Fatalf("join at t=%v targets rank %d already in the fleet", ev.At, ev.Worker)
			}
			delete(out, ev.Worker)
		case Leave:
			if out[ev.Worker] {
				t.Fatalf("leave at t=%v targets rank %d already outside the fleet", ev.At, ev.Worker)
			}
			out[ev.Worker] = true
		}
	}
	if joins == 0 {
		t.Fatal("elastic scenario has no joins")
	}
}

func TestCannedScenariosNeverStrandASingleWorkerFleet(t *testing.T) {
	// Every canned scenario must leave even a one-replica fleet (sequential
	// SGD) alive at the end of its timeline: events for ranks ≥ 1 are
	// skipped there, so worker 0's crash/leave events must all be paired
	// with a later recover/join. An unpaired retirement would silently
	// truncate the SGD baseline of every figure run under -scenario.
	for _, s := range Canned() {
		alive := true
		for _, ev := range s.Events {
			if ev.Worker != 0 {
				continue
			}
			switch ev.Kind {
			case Crash, Leave:
				alive = false
			case Recover, Join:
				alive = true
			}
		}
		if !alive {
			t.Fatalf("scenario %q permanently retires worker 0", s.Name)
		}
	}
}

func TestFlakyPairsCrashWithRecovery(t *testing.T) {
	s := Flaky()
	down := map[int]bool{}
	for _, ev := range s.Events {
		switch ev.Kind {
		case Crash:
			down[ev.Worker] = true
		case Recover:
			if !down[ev.Worker] {
				t.Fatalf("recovery of worker %d without prior crash", ev.Worker)
			}
			delete(down, ev.Worker)
		}
	}
	if len(down) != 0 {
		t.Fatalf("workers crash without recovery: %v", down)
	}
}

func TestPartitionedPairsCutsWithHeals(t *testing.T) {
	// Every Partition in the canned partition timeline must have a Heal for
	// the same worker on the same period: a heal-less periodic partition
	// would park the worker permanently after its final heal.
	s := Partitioned()
	heals := map[int][]Event{}
	for _, ev := range s.Events {
		if ev.Kind == Heal {
			heals[ev.Worker] = append(heals[ev.Worker], ev)
		}
	}
	for _, ev := range s.Events {
		if ev.Kind != Partition {
			continue
		}
		paired := false
		for _, h := range heals[ev.Worker] {
			if h.Period == ev.Period && h.At > ev.At {
				paired = true
			}
		}
		if !paired {
			t.Fatalf("partition of worker %d at t=%v has no matching heal", ev.Worker, ev.At)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRandomizedDeterministic pins the generator contract: the timeline is a
// pure function of its arguments, so property tests that rebuild a scenario
// from a logged seed replay the exact same churn.
func TestRandomizedDeterministic(t *testing.T) {
	a := Randomized(42, 16, 500, 20)
	b := Randomized(42, 16, 500, 20)
	if a.InitialWorkers != b.InitialWorkers || len(a.Events) != len(b.Events) {
		t.Fatalf("same seed, different shapes: %+v vs %+v", a, b)
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("same seed, event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	c := Randomized(43, 16, 500, 20)
	same := a.InitialWorkers == c.InitialWorkers && len(a.Events) == len(c.Events)
	if same {
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical timelines")
	}
}

// TestRandomizedLiveness sweeps seeds and checks the structural guarantees
// the generator promises: a valid timeline, worker 0 never retired (so the
// budget can always drain), every retirement paired with a later revival,
// and every event inside the horizon.
func TestRandomizedLiveness(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		s := Randomized(seed, 8, 300, 15)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: invalid: %v", seed, err)
		}
		upAfter := map[int]float64{} // worker -> latest revival time
		for _, ev := range s.Events {
			if ev.Kind == Recover || ev.Kind == Join {
				if ev.At > upAfter[ev.Worker] {
					upAfter[ev.Worker] = ev.At
				}
			}
		}
		for _, ev := range s.Events {
			if ev.At < 0 || ev.At > 2*300 {
				t.Fatalf("seed %d: event far outside horizon: %+v", seed, ev)
			}
			if ev.Kind == Crash || ev.Kind == Leave {
				if ev.Worker == 0 {
					t.Fatalf("seed %d: worker 0 retired: %+v", seed, ev)
				}
				if upAfter[ev.Worker] <= ev.At {
					t.Fatalf("seed %d: retirement without later revival: %+v", seed, ev)
				}
			}
		}
	}
}
