package scenario

import (
	"sort"
	"strings"
	"testing"
)

func TestCannedScenariosValidate(t *testing.T) {
	for _, s := range Canned() {
		if err := s.Validate(); err != nil {
			t.Fatalf("canned scenario %q invalid: %v", s.Name, err)
		}
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	cases := []struct {
		name string
		scn  Scenario
		want string
	}{
		{"negative time", Scenario{Events: []Event{{At: -1, Kind: Crash, Worker: 0}}}, "negative time"},
		{"negative period", Scenario{Events: []Event{{Period: -2, Kind: Crash, Worker: 0}}}, "negative period"},
		{"unknown kind", Scenario{Events: []Event{{Kind: "explode", Worker: 0}}}, "unknown kind"},
		{"crash without worker", Scenario{Events: []Event{{Kind: Crash, Worker: -1}}}, "needs a worker"},
		{"partition without worker", Scenario{Events: []Event{{Kind: Partition, Worker: -1}}}, "needs a worker"},
		{"heal without worker", Scenario{Events: []Event{{Kind: Heal, Worker: -1}}}, "needs a worker"},
		{"zero phase scale", Scenario{Events: []Event{{Kind: PhaseShift, Worker: -1}}}, "phase scales"},
		{"bad phase worker", Scenario{Events: []Event{{Kind: PhaseShift, Worker: -2, CompScale: 1, CommScale: 1}}}, "bad worker"},
		{"negative initial", Scenario{InitialWorkers: -1}, "InitialWorkers"},
	}
	for _, c := range cases {
		err := c.scn.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestLookupAndNames(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("names not sorted: %v", names)
	}
	for _, name := range names {
		s, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if s.Name != name {
			t.Fatalf("Lookup(%q) returned scenario named %q", name, s.Name)
		}
	}
	if _, err := Lookup("bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown lookup error %v", err)
	}
	if len(Canned()) != len(names) {
		t.Fatalf("Canned returned %d scenarios for %d names", len(Canned()), len(names))
	}
}

func TestLookupResultsAreIndependent(t *testing.T) {
	a, _ := Lookup("flaky")
	b, _ := Lookup("flaky")
	a.Events[0].Worker = 99
	if b.Events[0].Worker == 99 {
		t.Fatal("Lookup results share event storage")
	}
}

func TestElasticStartsSmallAndGrows(t *testing.T) {
	s := Elastic()
	if s.InitialWorkers != 2 {
		t.Fatalf("elastic initial fleet %d", s.InitialWorkers)
	}
	out := map[int]bool{} // ranks currently outside the fleet
	for r := s.InitialWorkers; r < 16; r++ {
		out[r] = true
	}
	joins := 0
	for _, ev := range s.Events {
		switch ev.Kind {
		case Join:
			joins++
			if !out[ev.Worker] {
				t.Fatalf("join at t=%v targets rank %d already in the fleet", ev.At, ev.Worker)
			}
			delete(out, ev.Worker)
		case Leave:
			if out[ev.Worker] {
				t.Fatalf("leave at t=%v targets rank %d already outside the fleet", ev.At, ev.Worker)
			}
			out[ev.Worker] = true
		}
	}
	if joins == 0 {
		t.Fatal("elastic scenario has no joins")
	}
}

func TestCannedScenariosNeverStrandASingleWorkerFleet(t *testing.T) {
	// Every canned scenario must leave even a one-replica fleet (sequential
	// SGD) alive at the end of its timeline: events for ranks ≥ 1 are
	// skipped there, so worker 0's crash/leave events must all be paired
	// with a later recover/join. An unpaired retirement would silently
	// truncate the SGD baseline of every figure run under -scenario.
	for _, s := range Canned() {
		alive := true
		for _, ev := range s.Events {
			if ev.Worker != 0 {
				continue
			}
			switch ev.Kind {
			case Crash, Leave:
				alive = false
			case Recover, Join:
				alive = true
			}
		}
		if !alive {
			t.Fatalf("scenario %q permanently retires worker 0", s.Name)
		}
	}
}

func TestFlakyPairsCrashWithRecovery(t *testing.T) {
	s := Flaky()
	down := map[int]bool{}
	for _, ev := range s.Events {
		switch ev.Kind {
		case Crash:
			down[ev.Worker] = true
		case Recover:
			if !down[ev.Worker] {
				t.Fatalf("recovery of worker %d without prior crash", ev.Worker)
			}
			delete(down, ev.Worker)
		}
	}
	if len(down) != 0 {
		t.Fatalf("workers crash without recovery: %v", down)
	}
}

func TestPartitionedPairsCutsWithHeals(t *testing.T) {
	// Every Partition in the canned partition timeline must have a Heal for
	// the same worker on the same period: a heal-less periodic partition
	// would park the worker permanently after its final heal.
	s := Partitioned()
	heals := map[int][]Event{}
	for _, ev := range s.Events {
		if ev.Kind == Heal {
			heals[ev.Worker] = append(heals[ev.Worker], ev)
		}
	}
	for _, ev := range s.Events {
		if ev.Kind != Partition {
			continue
		}
		paired := false
		for _, h := range heals[ev.Worker] {
			if h.Period == ev.Period && h.At > ev.At {
				paired = true
			}
		}
		if !paired {
			t.Fatalf("partition of worker %d at t=%v has no matching heal", ev.Worker, ev.At)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
