package cluster

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"bytes"

	"lcasgd/internal/rng"
	"lcasgd/internal/snapshot"
)

func TestCostModelValidate(t *testing.T) {
	if err := CIFARCostModel().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ImageNetCostModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := CostModel{MeanComp: -1}
	if bad.Validate() == nil {
		t.Fatal("negative mean accepted")
	}
	bad2 := CIFARCostModel()
	bad2.StragglerProb = 2
	if bad2.Validate() == nil {
		t.Fatal("probability > 1 accepted")
	}
}

func TestSamplerMeanCloseToConfigured(t *testing.T) {
	m := CostModel{MeanComp: 30, MeanComm: 3, Sigma: 0.2}
	s := m.NewSampler(1, rng.New(1))
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Comp(0)
	}
	mean := sum / n
	if math.Abs(mean-30)/30 > 0.03 {
		t.Fatalf("comp mean %v, want ~30", mean)
	}
	sum = 0
	for i := 0; i < n; i++ {
		sum += s.Comm(0)
	}
	mean = sum / n
	if math.Abs(mean-3)/3 > 0.03 {
		t.Fatalf("comm mean %v, want ~3", mean)
	}
}

func TestSamplerPositiveQuick(t *testing.T) {
	f := func(seed uint64) bool {
		s := CIFARCostModel().NewSampler(4, rng.New(seed))
		for i := 0; i < 100; i++ {
			if s.Comp(i%4) <= 0 || s.Comm(i%4) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerHeterogeneity(t *testing.T) {
	m := CostModel{MeanComp: 30, MeanComm: 3, Sigma: 0.01, Heterogeneity: 1.0}
	s := m.NewSampler(16, rng.New(7))
	lo, hi := math.Inf(1), math.Inf(-1)
	for w := 0; w < 16; w++ {
		v := s.Multiplier(w)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo < 0.3 {
		t.Fatalf("heterogeneity spread too small: [%v, %v]", lo, hi)
	}
	if lo < 0.5 || hi > 1.5 {
		t.Fatalf("multipliers outside configured band: [%v, %v]", lo, hi)
	}
}

func TestSamplerStragglers(t *testing.T) {
	m := CostModel{MeanComp: 10, MeanComm: 1, Sigma: 0.01, StragglerProb: 0.5, StragglerFactor: 10}
	s := m.NewSampler(1, rng.New(9))
	slow := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if s.Comp(0) > 50 {
			slow++
		}
	}
	frac := float64(slow) / n
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("straggler fraction %v, want ~0.5", frac)
	}
}

func TestSamplerPhaseScalesDrawsExactly(t *testing.T) {
	// Phases multiply the drawn value without consuming randomness, so a
	// phased sampler tracks an unphased twin draw for draw.
	mk := func() *Sampler {
		m := CostModel{MeanComp: 30, MeanComm: 3, Sigma: 0.2}
		return m.NewSampler(2, rng.New(5))
	}
	a, b := mk(), mk()
	a.SetPhase(2.5, 3)
	for i := 0; i < 50; i++ {
		if got, want := a.Comp(i%2), 2.5*b.Comp(i%2); math.Abs(got-want) > 1e-12 {
			t.Fatalf("phased comp draw %d: %v, want %v", i, got, want)
		}
		if got, want := a.Comm(i%2), 3*b.Comm(i%2); math.Abs(got-want) > 1e-12 {
			t.Fatalf("phased comm draw %d: %v, want %v", i, got, want)
		}
	}
	// Clearing the phase realigns the samplers bit-exactly: the streams
	// never diverged.
	a.SetPhase(1, 1)
	for i := 0; i < 50; i++ {
		if a.Comp(i%2) != b.Comp(i%2) || a.Comm(i%2) != b.Comm(i%2) {
			t.Fatalf("streams diverged after phase cleared (draw %d)", i)
		}
	}
}

func TestSamplerWorkerPhaseTargetsOneWorker(t *testing.T) {
	m := CostModel{MeanComp: 30, MeanComm: 3, Sigma: 0.2}
	mk := func() *Sampler { return m.NewSampler(2, rng.New(5)) }
	a, b := mk(), mk()
	a.SetWorkerPhase(1, 4, 1)
	for i := 0; i < 40; i++ {
		if a.Comp(0) != b.Comp(0) {
			t.Fatal("worker phase leaked onto worker 0")
		}
		if got, want := a.Comp(1), 4*b.Comp(1); math.Abs(got-want) > 1e-12 {
			t.Fatalf("worker 1 comp %v, want %v", got, want)
		}
	}
	comp, comm := a.Phase(1)
	if comp != 4 || comm != 1 {
		t.Fatalf("effective phase (%v, %v)", comp, comm)
	}
	a.SetPhase(3, 2)
	if comp, comm = a.Phase(1); comp != 12 || comm != 2 {
		t.Fatalf("phases must compose: (%v, %v)", comp, comm)
	}
}

func TestSamplerStragglerStatsUnchangedByPhase(t *testing.T) {
	// Straggler injection draws its coin after the lognormal, before phase
	// scaling, so a congestion phase shifts the whole distribution without
	// altering the straggler fraction.
	m := CostModel{MeanComp: 10, MeanComm: 1, Sigma: 0.01, StragglerProb: 0.5, StragglerFactor: 10}
	s := m.NewSampler(1, rng.New(9))
	s.SetPhase(5, 1)
	slow := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if s.Comp(0) > 5*50 { // straggler threshold, phase-scaled
			slow++
		}
	}
	frac := float64(slow) / n
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("straggler fraction %v under phase, want ~0.5", frac)
	}
}

func TestSamplerPhasePanicsOnBadScales(t *testing.T) {
	s := CIFARCostModel().NewSampler(1, rng.New(1))
	for _, f := range []func(){
		func() { s.SetPhase(0, 1) },
		func() { s.SetPhase(1, -2) },
		func() { s.SetWorkerPhase(0, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for non-positive phase scale")
				}
			}()
			f()
		}()
	}
}

func TestSamplerZeroCommShortCircuits(t *testing.T) {
	m := CostModel{MeanComp: 10, MeanComm: 0, Sigma: 0.2}
	s := m.NewSampler(1, rng.New(1))
	if s.Comm(0) != 0 {
		t.Fatal("zero-comm model must sample 0")
	}
}

func TestSamplerDeterministic(t *testing.T) {
	a := CIFARCostModel().NewSampler(4, rng.New(42))
	b := CIFARCostModel().NewSampler(4, rng.New(42))
	for i := 0; i < 100; i++ {
		if a.Comp(i%4) != b.Comp(i%4) {
			t.Fatal("samplers with equal seeds diverged")
		}
	}
}

func TestSamplerPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CIFARCostModel().NewSampler(0, rng.New(1))
}

func TestRealtimePullPushStaleness(t *testing.T) {
	r := NewRealtime(2, []float64{0})
	r.Pull(0)
	r.Pull(1)
	// Worker 1 pushes first; worker 0's later push sees staleness 1.
	r.Push(1, func(w []float64, s int) {
		if s != 0 {
			t.Fatalf("worker 1 staleness %d", s)
		}
		w[0] += 1
	})
	got := r.Push(0, func(w []float64, s int) { w[0] += 10 })
	if got != 1 {
		t.Fatalf("worker 0 staleness %d, want 1", got)
	}
	if w := r.Snapshot(); w[0] != 11 {
		t.Fatalf("weights %v", w)
	}
}

func TestRealtimeStats(t *testing.T) {
	r := NewRealtime(1, []float64{0})
	r.Pull(0)
	r.Push(0, func(w []float64, s int) {})
	pushes, mean := r.Stats()
	if pushes != 1 || mean != 0 {
		t.Fatalf("stats %d %v", pushes, mean)
	}
}

func TestRealtimeConcurrentWorkersRace(t *testing.T) {
	// Hammer the fabric from many goroutines; run with -race in CI. The
	// final weight must equal the total number of increments (updates are
	// serialized and none lost).
	r := NewRealtime(8, []float64{0})
	const perWorker = 200
	RunWorkers(8, func(m int) {
		for i := 0; i < perWorker; i++ {
			_ = r.Pull(m)
			r.Push(m, func(w []float64, s int) { w[0]++ })
		}
	})
	if w := r.Snapshot(); w[0] != 8*perWorker {
		t.Fatalf("lost updates: %v, want %d", w[0], 8*perWorker)
	}
	pushes, _ := r.Stats()
	if pushes != 8*perWorker {
		t.Fatalf("pushes %d", pushes)
	}
}

func TestRunWorkersWaits(t *testing.T) {
	var mu sync.Mutex
	done := 0
	RunWorkers(5, func(m int) {
		mu.Lock()
		done++
		mu.Unlock()
	})
	if done != 5 {
		t.Fatalf("RunWorkers returned before all workers finished: %d", done)
	}
}

// TestSamplerSnapshotRoundTrip pins cost-stream resume: a restored sampler
// draws the same future costs — including scenario phase multipliers — as
// the one that wrote the snapshot.
func TestSamplerSnapshotRoundTrip(t *testing.T) {
	model := CIFARCostModel()
	a := model.NewSampler(4, rng.New(3))
	a.SetPhase(2, 3)
	a.SetWorkerPhase(1, 0.5, 4)
	for i := 0; i < 25; i++ {
		a.Comp(i % 4)
		a.Comm(i % 4)
	}

	var buf bytes.Buffer
	w := snapshot.NewWriter(&buf)
	a.SnapshotTo(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b := model.NewSampler(4, rng.New(3)) // same construction, stale position/phases
	r, err := snapshot.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreFrom(r); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		m := i % 4
		if ca, cb := a.Comp(m), b.Comp(m); ca != cb {
			t.Fatalf("comp draw %d differs: %x vs %x", i, ca, cb)
		}
		if ca, cb := a.Comm(m), b.Comm(m); ca != cb {
			t.Fatalf("comm draw %d differs: %x vs %x", i, ca, cb)
		}
	}
}
