// Package cluster models the distributed execution environment: per-worker
// computation and communication cost distributions (the source of gradient
// staleness), and a real-concurrency parameter-server fabric used by the
// examples.
//
// The paper's evaluation ran on a GPU cluster where each worker's delay is
// "usually high and volatile"; here those delays are lognormal random
// variables with per-worker heterogeneity and optional straggler injection,
// sampled deterministically from a seeded stream so experiments reproduce
// bit-identically. Scenario timelines (internal/scenario) modulate the
// sampler mid-run through phase multipliers that scale the drawn values
// without touching the random stream.
package cluster

import (
	"fmt"
	"math"

	"lcasgd/internal/rng"
	"lcasgd/internal/snapshot"
)

// CostModel describes the timing distributions of a simulated cluster, in
// virtual milliseconds.
type CostModel struct {
	// MeanComp is the mean computation time of one full worker iteration
	// (forward + backward on one mini-batch).
	MeanComp float64
	// MeanComm is the mean one-way communication time between a worker and
	// the parameter server.
	MeanComm float64
	// Sigma is the lognormal shape parameter applied to both distributions;
	// larger values give heavier tails (more volatile delays).
	Sigma float64
	// Heterogeneity spreads per-worker mean speeds: worker multipliers are
	// drawn uniformly from [1-Heterogeneity/2, 1+Heterogeneity/2].
	Heterogeneity float64
	// StragglerProb is the per-iteration probability that a worker's
	// computation is slowed by StragglerFactor, modeling transient
	// contention.
	StragglerProb   float64
	StragglerFactor float64
}

// CIFARCostModel mirrors the paper's Table 2 setting: total iteration time
// around 32 ms.
func CIFARCostModel() CostModel {
	return CostModel{
		MeanComp: 28, MeanComm: 2.5, Sigma: 0.2,
		Heterogeneity: 0.3, StragglerProb: 0.02, StragglerFactor: 3,
	}
}

// ImageNetCostModel mirrors Table 3: total iteration time around 183 ms.
func ImageNetCostModel() CostModel {
	return CostModel{
		MeanComp: 176, MeanComm: 3.5, Sigma: 0.2,
		Heterogeneity: 0.3, StragglerProb: 0.02, StragglerFactor: 3,
	}
}

// Validate checks the model is usable.
func (c CostModel) Validate() error {
	if c.MeanComp <= 0 || c.MeanComm < 0 {
		return fmt.Errorf("cluster: non-positive means in %+v", c)
	}
	if c.Sigma < 0 || c.Heterogeneity < 0 || c.Heterogeneity >= 2 {
		return fmt.Errorf("cluster: bad spread parameters in %+v", c)
	}
	if c.StragglerProb < 0 || c.StragglerProb > 1 {
		return fmt.Errorf("cluster: straggler probability %v", c.StragglerProb)
	}
	return nil
}

// Sampler draws per-worker iteration costs. Each worker has a fixed speed
// multiplier (hardware heterogeneity) plus per-iteration lognormal jitter
// and occasional straggler slowdowns. On top of the stationary model, phase
// multipliers (SetPhase, SetWorkerPhase) scale the sampled times while a
// scenario's congestion window is open; phases multiply the drawn value and
// never consult the RNG, so toggling them mid-run leaves the random stream —
// and therefore every other sampled cost — untouched.
type Sampler struct {
	model CostModel
	mult  []float64
	g     *rng.RNG
	// logMu values chosen so the lognormal mean equals the configured mean:
	// E[lognormal(mu, s)] = exp(mu + s²/2).
	muComp, muComm float64
	// Phase state: fleet-wide multipliers plus per-worker overrides, all 1
	// in the stationary model.
	phaseComp, phaseComm   float64
	wPhaseComp, wPhaseComm []float64
}

// NewSampler builds a sampler for the given worker count.
func (c CostModel) NewSampler(workers int, g *rng.RNG) *Sampler {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	if workers <= 0 {
		panic("cluster: need at least one worker")
	}
	s := &Sampler{
		model: c, g: g,
		phaseComp: 1, phaseComm: 1,
		wPhaseComp: make([]float64, workers),
		wPhaseComm: make([]float64, workers),
	}
	half := c.Heterogeneity / 2
	for m := 0; m < workers; m++ {
		s.mult = append(s.mult, 1-half+c.Heterogeneity*g.Float64())
		s.wPhaseComp[m], s.wPhaseComm[m] = 1, 1
	}
	adj := c.Sigma * c.Sigma / 2
	s.muComp = logOf(c.MeanComp) - adj
	s.muComm = logOf(c.MeanComm) - adj
	return s
}

// SetPhase installs fleet-wide phase multipliers on computation and
// communication times. Both must be positive; 1 restores the nominal model.
func (s *Sampler) SetPhase(comp, comm float64) {
	if comp <= 0 || comm <= 0 {
		panic(fmt.Sprintf("cluster: non-positive phase scales %v/%v", comp, comm))
	}
	s.phaseComp, s.phaseComm = comp, comm
}

// SetWorkerPhase installs phase multipliers for a single worker, composing
// with any fleet-wide phase.
func (s *Sampler) SetWorkerPhase(m int, comp, comm float64) {
	if comp <= 0 || comm <= 0 {
		panic(fmt.Sprintf("cluster: non-positive phase scales %v/%v", comp, comm))
	}
	s.wPhaseComp[m], s.wPhaseComm[m] = comp, comm
}

// Phase returns the effective phase multipliers for worker m.
func (s *Sampler) Phase(m int) (comp, comm float64) {
	return s.phaseComp * s.wPhaseComp[m], s.phaseComm * s.wPhaseComm[m]
}

// Comp samples the computation time for worker m's next iteration.
func (s *Sampler) Comp(m int) float64 {
	t := s.mult[m] * s.g.LogNormal(s.muComp, s.model.Sigma)
	if s.model.StragglerProb > 0 && s.g.Float64() < s.model.StragglerProb {
		t *= s.model.StragglerFactor
	}
	return s.phaseComp * s.wPhaseComp[m] * t
}

// Comm samples a one-way communication time for worker m.
func (s *Sampler) Comm(m int) float64 {
	if s.model.MeanComm == 0 {
		return 0
	}
	return s.phaseComm * s.wPhaseComm[m] * s.mult[m] * s.g.LogNormal(s.muComm, s.model.Sigma)
}

// SnapshotTo serializes the sampler's mutable state: the draw stream's
// position and the phase multipliers a scenario has installed. The fixed
// per-worker speed multipliers and the lognormal parameters are derived
// from the cost model at construction and are not stored — a restored
// sampler is always built from the identical configuration first.
func (s *Sampler) SnapshotTo(w *snapshot.Writer) {
	st := s.g.State()
	w.U64s(st[:])
	w.F64(s.phaseComp)
	w.F64(s.phaseComm)
	w.F64s(s.wPhaseComp)
	w.F64s(s.wPhaseComm)
}

// RestoreFrom loads state written by SnapshotTo into a sampler constructed
// for the same worker count.
func (s *Sampler) RestoreFrom(r *snapshot.Reader) error {
	st := r.U64s()
	if r.Err() == nil && len(st) != 4 {
		r.Fail(fmt.Errorf("cluster: sampler snapshot has %d rng words, want 4", len(st)))
	}
	if r.Err() != nil {
		return r.Err()
	}
	s.g.SetState([4]uint64{st[0], st[1], st[2], st[3]})
	s.phaseComp = r.F64()
	s.phaseComm = r.F64()
	r.F64sInto(s.wPhaseComp)
	r.F64sInto(s.wPhaseComm)
	return r.Err()
}

// Multiplier exposes worker m's fixed speed multiplier (used by tests and
// the heterogeneous-cluster example to report the injected skew).
func (s *Sampler) Multiplier(m int) float64 { return s.mult[m] }

// Workers returns the configured worker count.
func (s *Sampler) Workers() int { return len(s.mult) }

// logOf is math.Log guarded for the MeanComm == 0 case (Comm
// short-circuits zero before the distribution is consulted).
func logOf(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Log(v)
}
