package cluster

import (
	"sync"
)

// Realtime is a genuinely concurrent parameter-server fabric: one goroutine
// per worker plus a mutex-protected server state. Unlike the discrete-event
// simulator (which the experiment harness uses for reproducibility), this
// fabric exhibits real scheduling nondeterminism — it backs the examples
// that demonstrate the algorithms running under true asynchrony, in the
// spirit of Hogwild-style parameter servers.
//
// The generic flow mirrors Algorithms 1–2: each worker repeatedly pulls the
// current version, computes locally, and pushes an update; the server
// serializes pushes and hands each worker a consistent snapshot on pull.
type Realtime struct {
	mu      sync.Mutex
	weights []float64
	version int
	// pulledVersion[m] is the weight version worker m last pulled, from
	// which observed staleness is derived on push.
	pulledVersion []int
	pushes        int
	stalenessSum  int
}

// NewRealtime builds a fabric over an initial weight vector (copied).
func NewRealtime(workers int, init []float64) *Realtime {
	return &Realtime{
		weights:       append([]float64(nil), init...),
		pulledVersion: make([]int, workers),
	}
}

// Pull returns a snapshot of the current weights and records the version
// worker m received.
func (r *Realtime) Pull(m int) []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pulledVersion[m] = r.version
	return append([]float64(nil), r.weights...)
}

// Push applies a worker's update under the server lock. apply receives the
// live weight slice and the staleness (number of versions applied since the
// worker's pull) and mutates the weights in place. It returns the staleness
// for the caller's bookkeeping.
func (r *Realtime) Push(m int, apply func(weights []float64, staleness int)) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	staleness := r.version - r.pulledVersion[m]
	apply(r.weights, staleness)
	r.version++
	r.pushes++
	r.stalenessSum += staleness
	return staleness
}

// Snapshot returns a copy of the current weights without recording a pull.
func (r *Realtime) Snapshot() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]float64(nil), r.weights...)
}

// Stats returns the number of pushes applied and the mean observed
// staleness across them.
func (r *Realtime) Stats() (pushes int, meanStaleness float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pushes == 0 {
		return 0, 0
	}
	return r.pushes, float64(r.stalenessSum) / float64(r.pushes)
}

// RunWorkers launches fn for workers 0..workers-1 concurrently and waits
// for all to return. Each fn(m) typically loops pull/compute/push for a
// fixed number of iterations.
func RunWorkers(workers int, fn func(m int)) {
	var wg sync.WaitGroup
	for m := 0; m < workers; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			fn(m)
		}(m)
	}
	wg.Wait()
}
