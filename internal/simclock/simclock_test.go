package simclock

import (
	"testing"
	"testing/quick"

	"lcasgd/internal/rng"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	c := New()
	var order []int
	c.ScheduleAt(3, func() { order = append(order, 3) })
	c.ScheduleAt(1, func() { order = append(order, 1) })
	c.ScheduleAt(2, func() { order = append(order, 2) })
	c.Run(nil)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
	if c.Now() != 3 {
		t.Fatalf("clock at %v", c.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.ScheduleAt(5, func() { order = append(order, i) })
	}
	c.Run(nil)
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestScheduleAfterRelative(t *testing.T) {
	c := New()
	var at float64
	c.ScheduleAt(10, func() {
		c.ScheduleAfter(5, func() { at = c.Now() })
	})
	c.Run(nil)
	if at != 15 {
		t.Fatalf("nested ScheduleAfter fired at %v", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	c := New()
	c.ScheduleAt(10, func() {})
	c.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.ScheduleAt(5, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().ScheduleAfter(-1, func() {})
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	c := New()
	fired := 0
	c.ScheduleAt(1, func() { fired++ })
	c.ScheduleAt(2, func() { fired++ })
	c.ScheduleAt(9, func() { fired++ })
	c.RunUntil(5)
	if fired != 2 {
		t.Fatalf("fired %d events, want 2", fired)
	}
	if c.Now() != 5 {
		t.Fatalf("clock %v, want 5", c.Now())
	}
	if c.Pending() != 1 {
		t.Fatalf("pending %d", c.Pending())
	}
}

func TestRunWithStopPredicate(t *testing.T) {
	c := New()
	count := 0
	for i := 1; i <= 100; i++ {
		c.ScheduleAt(float64(i), func() { count++ })
	}
	c.Run(func() bool { return count >= 10 })
	if count != 10 {
		t.Fatalf("stop predicate ignored: %d", count)
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	c := New()
	if c.Step() {
		t.Fatal("Step on empty queue must return false")
	}
}

func TestProcessedCounter(t *testing.T) {
	c := New()
	for i := 0; i < 7; i++ {
		c.ScheduleAfter(float64(i), func() {})
	}
	c.Run(nil)
	if c.Processed() != 7 {
		t.Fatalf("processed %d", c.Processed())
	}
}

// TestClockMonotonicQuick: however events are scheduled, observed event
// times are non-decreasing.
func TestClockMonotonicQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		c := New()
		var times []float64
		var schedule func(depth int)
		schedule = func(depth int) {
			n := g.Intn(4) + 1
			for i := 0; i < n; i++ {
				d := g.Float64() * 10
				c.ScheduleAfter(d, func() {
					times = append(times, c.Now())
					if depth < 3 && g.Float64() < 0.5 {
						schedule(depth + 1)
					}
				})
			}
		}
		schedule(0)
		c.Run(nil)
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestHeapOrderTiesStress hammers the hand-rolled value heap with a
// tie-heavy batch: pops must come out in (At, insertion order) exactly.
func TestHeapOrderTiesStress(t *testing.T) {
	g := rng.New(99)
	c := New()
	type rec struct {
		at float64
		id int
	}
	var got []rec
	for i := 0; i < 1000; i++ {
		i := i
		at := float64(g.Intn(50))
		c.ScheduleAt(at, func() { got = append(got, rec{c.Now(), i}) })
	}
	c.Run(nil)
	if len(got) != 1000 {
		t.Fatalf("ran %d events, want 1000", len(got))
	}
	for k := 1; k < len(got); k++ {
		if got[k].at < got[k-1].at ||
			(got[k].at == got[k-1].at && got[k].id < got[k-1].id) {
			t.Fatalf("event %d (at=%v id=%d) after (at=%v id=%d)",
				k, got[k].at, got[k].id, got[k-1].at, got[k-1].id)
		}
	}
}

// TestSteadyStateSchedulingAllocs guards the value heap's zero-alloc
// contract: once the queue has grown to its high-water capacity, a
// schedule/step cycle must not allocate — pushes reuse the slice's spare
// capacity and pops only shrink it.
func TestSteadyStateSchedulingAllocs(t *testing.T) {
	c := New()
	run := func() {}
	for i := 0; i < 64; i++ {
		c.ScheduleAfter(float64(i), run)
	}
	for i := 0; i < 32; i++ {
		c.Step()
	}
	allocs := testing.AllocsPerRun(200, func() {
		c.ScheduleAfter(1000, run)
		c.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/step allocates %v per cycle, want 0", allocs)
	}
}
