// Package simclock is a minimal discrete-event simulator: a virtual clock
// and a priority queue of timestamped events with deterministic tie-breaking
// by insertion sequence. The cluster fabric schedules worker compute and
// communication completions on it, so gradient staleness and the wall-clock
// axes of the paper's Figures 4 and 6 emerge from event interleaving in
// virtual time rather than from real hardware.
package simclock

import "container/heap"

// Event is a callback scheduled at a virtual time.
type Event struct {
	At  float64
	Run func()
	seq uint64
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Clock owns the virtual time and the pending event queue.
type Clock struct {
	now       float64
	queue     eventHeap
	nextSeq   uint64
	processed uint64
}

// New returns a clock at time 0 with no events.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() float64 { return c.now }

// RestoreNow sets the clock to a checkpointed virtual time. It is the
// resume path's first move — events re-armed afterwards carry absolute
// times at or after t — and is only meaningful on a clock that has not
// scheduled anything yet; restoring under pending events would reorder
// causality, so it panics.
func (c *Clock) RestoreNow(t float64) {
	if len(c.queue) > 0 {
		panic("simclock: RestoreNow with pending events")
	}
	if t < c.now {
		panic("simclock: RestoreNow into the past")
	}
	c.now = t
}

// Processed returns the number of events run so far.
func (c *Clock) Processed() uint64 { return c.processed }

// Pending returns the number of queued events.
func (c *Clock) Pending() int { return len(c.queue) }

// ScheduleAt enqueues run at absolute virtual time at. Scheduling in the
// past panics: it would silently reorder causality.
func (c *Clock) ScheduleAt(at float64, run func()) {
	if at < c.now {
		panic("simclock: scheduling event in the past")
	}
	e := &Event{At: at, Run: run, seq: c.nextSeq}
	c.nextSeq++
	heap.Push(&c.queue, e)
}

// ScheduleAfter enqueues run delay time units from now.
func (c *Clock) ScheduleAfter(delay float64, run func()) {
	if delay < 0 {
		panic("simclock: negative delay")
	}
	c.ScheduleAt(c.now+delay, run)
}

// Step runs the earliest event, advancing the clock to its timestamp. It
// returns false when the queue is empty.
func (c *Clock) Step() bool {
	if len(c.queue) == 0 {
		return false
	}
	e := heap.Pop(&c.queue).(*Event)
	c.now = e.At
	c.processed++
	e.Run()
	return true
}

// RunUntil processes events until the queue empties or the next event lies
// beyond t; the clock then advances to exactly t (if it got that far).
func (c *Clock) RunUntil(t float64) {
	for len(c.queue) > 0 && c.queue[0].At <= t {
		c.Step()
	}
	if c.now < t {
		c.now = t
	}
}

// Run processes events until the queue is empty or stop returns true
// (checked after each event).
func (c *Clock) Run(stop func() bool) {
	for c.Step() {
		if stop != nil && stop() {
			return
		}
	}
}
