// Package simclock is a minimal discrete-event simulator: a virtual clock
// and a priority queue of timestamped events with deterministic tie-breaking
// by insertion sequence. The cluster fabric schedules worker compute and
// communication completions on it, so gradient staleness and the wall-clock
// axes of the paper's Figures 4 and 6 emerge from event interleaving in
// virtual time rather than from real hardware.
package simclock

// Event is a callback scheduled at a virtual time.
type Event struct {
	At  float64
	Run func()
	seq uint64
}

// Clock owns the virtual time and the pending event queue. The queue is a
// hand-rolled binary min-heap of Event values (not pointers): ScheduleAt
// appends into the slice's spare capacity, so steady-state scheduling —
// where the queue length oscillates around a high-water mark — allocates
// nothing. (At, seq) is a strict total order, so the heap's internal
// arrangement can never influence pop order, only the cost of maintaining
// it: O(log n) per operation.
type Clock struct {
	now       float64
	queue     []Event
	nextSeq   uint64
	processed uint64
}

// New returns a clock at time 0 with no events.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() float64 { return c.now }

// RestoreNow sets the clock to a checkpointed virtual time. It is the
// resume path's first move — events re-armed afterwards carry absolute
// times at or after t — and is only meaningful on a clock that has not
// scheduled anything yet; restoring under pending events would reorder
// causality, so it panics.
func (c *Clock) RestoreNow(t float64) {
	if len(c.queue) > 0 {
		panic("simclock: RestoreNow with pending events")
	}
	if t < c.now {
		panic("simclock: RestoreNow into the past")
	}
	c.now = t
}

// Processed returns the number of events run so far.
func (c *Clock) Processed() uint64 { return c.processed }

// Pending returns the number of queued events.
func (c *Clock) Pending() int { return len(c.queue) }

// less orders events by time, breaking ties FIFO by insertion sequence.
func (c *Clock) less(i, j int) bool {
	if c.queue[i].At != c.queue[j].At {
		return c.queue[i].At < c.queue[j].At
	}
	return c.queue[i].seq < c.queue[j].seq
}

// siftUp restores the heap property after appending at index i.
func (c *Clock) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !c.less(i, parent) {
			return
		}
		c.queue[i], c.queue[parent] = c.queue[parent], c.queue[i]
		i = parent
	}
}

// siftDown restores the heap property after replacing the root.
func (c *Clock) siftDown(i int) {
	n := len(c.queue)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && c.less(r, l) {
			min = r
		}
		if !c.less(min, i) {
			return
		}
		c.queue[i], c.queue[min] = c.queue[min], c.queue[i]
		i = min
	}
}

// ScheduleAt enqueues run at absolute virtual time at. Scheduling in the
// past panics: it would silently reorder causality.
func (c *Clock) ScheduleAt(at float64, run func()) {
	if at < c.now {
		panic("simclock: scheduling event in the past")
	}
	c.queue = append(c.queue, Event{At: at, Run: run, seq: c.nextSeq})
	c.nextSeq++
	c.siftUp(len(c.queue) - 1)
}

// ScheduleAfter enqueues run delay time units from now.
func (c *Clock) ScheduleAfter(delay float64, run func()) {
	if delay < 0 {
		panic("simclock: negative delay")
	}
	c.ScheduleAt(c.now+delay, run)
}

// Step runs the earliest event, advancing the clock to its timestamp. It
// returns false when the queue is empty.
func (c *Clock) Step() bool {
	if len(c.queue) == 0 {
		return false
	}
	e := c.queue[0]
	n := len(c.queue) - 1
	c.queue[0] = c.queue[n]
	c.queue[n] = Event{} // release the closure; the slot stays as capacity
	c.queue = c.queue[:n]
	if n > 1 {
		c.siftDown(0)
	}
	c.now = e.At
	c.processed++
	e.Run()
	return true
}

// RunUntil processes events until the queue empties or the next event lies
// beyond t; the clock then advances to exactly t (if it got that far).
func (c *Clock) RunUntil(t float64) {
	for len(c.queue) > 0 && c.queue[0].At <= t {
		c.Step()
	}
	if c.now < t {
		c.now = t
	}
}

// Run processes events until the queue is empty or stop returns true
// (checked after each event).
func (c *Clock) Run(stop func() bool) {
	for c.Step() {
		if stop != nil && stop() {
			return
		}
	}
}
