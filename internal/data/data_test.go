package data

import (
	"math"
	"testing"

	"bytes"

	"lcasgd/internal/rng"
	"lcasgd/internal/snapshot"
	"lcasgd/internal/tensor"
)

func TestGenerateShapes(t *testing.T) {
	tr, te := Generate(CIFARConfig())
	if tr.Len() != 2000 || te.Len() != 400 {
		t.Fatalf("sizes %d/%d", tr.Len(), te.Len())
	}
	if tr.Features() != 3*8*8 || tr.Classes != 10 {
		t.Fatalf("features %d classes %d", tr.Features(), tr.Classes)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(CIFARConfig())
	b, _ := Generate(CIFARConfig())
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("dataset generation is not deterministic")
		}
	}
}

func TestGenerateCached(t *testing.T) {
	cfg := CIFARConfig()
	cfg.Train, cfg.Test = 100, 20 // keep the cached entry small
	cfg.Seed = 0xCAC8E            // private seed so other tests don't share the entry
	tr1, te1 := GenerateCached(cfg)
	tr2, te2 := GenerateCached(cfg)
	if tr1 != tr2 || te1 != te2 {
		t.Fatal("GenerateCached did not return the memoized datasets")
	}
	fresh, _ := Generate(cfg)
	for i := range fresh.X.Data {
		if tr1.X.Data[i] != fresh.X.Data[i] {
			t.Fatal("cached dataset differs from a fresh Generate")
		}
	}
	other := cfg
	other.Seed++
	tr3, _ := GenerateCached(other)
	if tr3 == tr1 {
		t.Fatal("different configs shared a cache entry")
	}
}

func TestGenerateCachedConcurrent(t *testing.T) {
	cfg := CIFARConfig()
	cfg.Train, cfg.Test = 100, 20
	cfg.Seed = 0xCAC8E + 100
	const n = 8
	got := make([]*Dataset, n)
	done := make(chan int)
	for i := 0; i < n; i++ {
		go func(i int) {
			got[i], _ = GenerateCached(cfg)
			done <- i
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent GenerateCached returned distinct datasets")
		}
	}
}

func TestTrainTestDiffer(t *testing.T) {
	tr, te := Generate(CIFARConfig())
	same := true
	for i := 0; i < te.Features(); i++ {
		if tr.X.Data[i] != te.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("train and test splits share samples")
	}
}

func TestClassesBalanced(t *testing.T) {
	tr, _ := Generate(CIFARConfig())
	counts := make([]int, tr.Classes)
	for _, y := range tr.Y {
		counts[y]++
	}
	for c, n := range counts {
		if n != tr.Len()/tr.Classes {
			t.Fatalf("class %d has %d samples, want %d", c, n, tr.Len()/tr.Classes)
		}
	}
}

func TestTaskIsLearnableByNearestPrototype(t *testing.T) {
	// A nearest-class-mean classifier fit on train should beat chance on
	// test by a wide margin — i.e. the task carries signal.
	tr, te := Generate(CIFARConfig())
	f := tr.Features()
	means := make([][]float64, tr.Classes)
	counts := make([]int, tr.Classes)
	for c := range means {
		means[c] = make([]float64, f)
	}
	for i, y := range tr.Y {
		row := tr.X.Data[i*f : (i+1)*f]
		for j, v := range row {
			means[y][j] += v
		}
		counts[y]++
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for i, y := range te.Y {
		row := te.X.Data[i*f : (i+1)*f]
		best, bestC := math.Inf(1), -1
		for c := range means {
			d := 0.0
			for j, v := range row {
				diff := v - means[c][j]
				d += diff * diff
			}
			if d < best {
				best, bestC = d, c
			}
		}
		if bestC == y {
			correct++
		}
	}
	acc := float64(correct) / float64(te.Len())
	if acc < 0.5 {
		t.Fatalf("nearest-mean test accuracy %.3f; task carries too little signal", acc)
	}
	if acc > 0.999 {
		t.Fatalf("nearest-mean test accuracy %.3f; task is trivially separable (no error floor)", acc)
	}
}

func TestImageNetConfigBigger(t *testing.T) {
	tr, _ := Generate(ImageNetConfig())
	if tr.Classes != 27 || tr.Features() != 3*12*12 {
		t.Fatalf("imagenet-like config wrong: %d classes %d features", tr.Classes, tr.Features())
	}
}

func TestBatchGather(t *testing.T) {
	tr, _ := Generate(CIFARConfig())
	x, y := tr.Batch([]int{5, 0})
	f := tr.Features()
	for j := 0; j < f; j++ {
		if x.Data[j] != tr.X.Data[5*f+j] {
			t.Fatal("batch row 0 mismatch")
		}
		if x.Data[f+j] != tr.X.Data[j] {
			t.Fatal("batch row 1 mismatch")
		}
	}
	if y[0] != tr.Y[5] || y[1] != tr.Y[0] {
		t.Fatal("batch labels mismatch")
	}
}

func TestBatchPanicsOutOfRange(t *testing.T) {
	tr, _ := Generate(CIFARConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Batch([]int{tr.Len()})
}

func TestBatchIterCoversEpoch(t *testing.T) {
	tr, _ := Generate(CIFARConfig())
	it := NewBatchIter(tr, 100, rng.New(1))
	if it.BatchesPerEpoch() != 20 {
		t.Fatalf("batches per epoch %d", it.BatchesPerEpoch())
	}
	seenLabels := 0
	for i := 0; i < it.BatchesPerEpoch(); i++ {
		_, y := it.Next()
		seenLabels += len(y)
	}
	if seenLabels != 2000 {
		t.Fatalf("epoch covered %d samples", seenLabels)
	}
	if it.Epoch != 0 {
		t.Fatalf("epoch counter %d before wrap", it.Epoch)
	}
	it.Next()
	if it.Epoch != 1 {
		t.Fatalf("epoch counter %d after wrap", it.Epoch)
	}
}

func TestBatchIterReshuffles(t *testing.T) {
	tr, _ := Generate(CIFARConfig())
	it := NewBatchIter(tr, tr.Len(), rng.New(2))
	_, y1 := it.Next()
	_, y2 := it.Next()
	diff := false
	for i := range y1 {
		if y1[i] != y2[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("second epoch order identical to first (no reshuffle)")
	}
}

func TestBatchIterBadSizePanics(t *testing.T) {
	tr, _ := Generate(CIFARConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBatchIter(tr, 0, rng.New(1))
}

func TestGenerateDegeneratePanics(t *testing.T) {
	cfg := CIFARConfig()
	cfg.Classes = 1
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(cfg)
}

func TestBatchIntoMatchesBatch(t *testing.T) {
	tr, _ := Generate(Config{
		Classes: 3, C: 1, H: 4, W: 4, Train: 30, Test: 6,
		NoiseSigma: 1, SignalScale: 0.5, Smoothing: 1, Seed: 5,
	})
	idx := []int{3, 0, 17, 17, 9}
	wantX, wantY := tr.Batch(idx)
	x := tensor.New(len(idx), tr.Features())
	y := make([]int, len(idx))
	tr.BatchInto(x, y, idx)
	for i := range wantX.Data {
		if x.Data[i] != wantX.Data[i] {
			t.Fatalf("BatchInto x[%d] differs", i)
		}
	}
	for i := range wantY {
		if y[i] != wantY[i] {
			t.Fatalf("BatchInto y[%d] differs", i)
		}
	}
}

func TestBatchIntoShapePanics(t *testing.T) {
	tr, _ := Generate(Config{
		Classes: 3, C: 1, H: 4, W: 4, Train: 30, Test: 6,
		NoiseSigma: 1, SignalScale: 0.5, Smoothing: 1, Seed: 5,
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mis-shaped destination")
		}
	}()
	tr.BatchInto(tensor.New(2, tr.Features()), make([]int, 3), []int{0, 1, 2})
}

func TestNextIntoZeroAllocSteadyState(t *testing.T) {
	tr, _ := Generate(Config{
		Classes: 3, C: 1, H: 4, W: 4, Train: 30, Test: 6,
		NoiseSigma: 1, SignalScale: 0.5, Smoothing: 1, Seed: 5,
	})
	it := NewBatchIter(tr, 10, rng.New(1))
	x := tensor.New(10, tr.Features())
	y := make([]int, 10)
	it.NextInto(x, y)
	// Spans epoch wraps: the in-place reshuffle must not allocate either.
	if a := testing.AllocsPerRun(20, func() { it.NextInto(x, y) }); a != 0 {
		t.Fatalf("steady-state NextInto allocates %v times, want 0", a)
	}
}

// TestBatchIterSnapshotRoundTrip pins position-exact resume of a worker's
// private batch order: a restored iterator yields the same remaining
// batches — across a reshuffle boundary — as the one that wrote the
// snapshot.
func TestBatchIterSnapshotRoundTrip(t *testing.T) {
	cfg := CIFARConfig()
	cfg.Train, cfg.Test = 100, 20
	ds, _ := Generate(cfg)
	a := NewBatchIter(ds, 30, rng.New(11))
	x := tensor.New(30, ds.Features())
	y := make([]int, 30)
	for i := 0; i < 5; i++ { // crosses an epoch wrap (100/30)
		a.NextInto(x, y)
	}

	var buf bytes.Buffer
	w := snapshot.NewWriter(&buf)
	a.SnapshotTo(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b := NewBatchIter(ds, 30, rng.New(99)) // different seed: all state restored
	r, err := snapshot.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreFrom(r); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if b.Epoch != a.Epoch {
		t.Fatalf("epoch %d vs %d", b.Epoch, a.Epoch)
	}

	x2 := tensor.New(30, ds.Features())
	y2 := make([]int, 30)
	for i := 0; i < 10; i++ { // several more wraps: the shuffle RNG must match too
		a.NextInto(x, y)
		b.NextInto(x2, y2)
		for j := range y {
			if y[j] != y2[j] {
				t.Fatalf("batch %d label %d differs: %d vs %d", i, j, y[j], y2[j])
			}
		}
		for j, v := range x.Data {
			if x2.Data[j] != v {
				t.Fatalf("batch %d pixel %d differs", i, j)
			}
		}
	}
}

// TestBatchIterRestoreRejectsMismatch ensures a snapshot from a different
// dataset size cannot be loaded.
func TestBatchIterRestoreRejectsMismatch(t *testing.T) {
	cfg := CIFARConfig()
	cfg.Train, cfg.Test = 100, 20
	ds, _ := Generate(cfg)
	a := NewBatchIter(ds, 10, rng.New(1))
	var buf bytes.Buffer
	w := snapshot.NewWriter(&buf)
	a.SnapshotTo(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	cfg.Train = 60
	ds2, _ := Generate(cfg)
	b := NewBatchIter(ds2, 10, rng.New(1))
	r, err := snapshot.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreFrom(r); err == nil {
		t.Fatal("mismatched dataset size accepted")
	}
}
