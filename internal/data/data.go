// Package data provides the deterministic synthetic datasets that stand in
// for CIFAR-10 and ImageNet (see DESIGN.md), plus batching utilities.
//
// Each dataset is a Gaussian-prototype image classification task: every
// class has a smooth random prototype image, and samples are the prototype
// plus per-sample brightness jitter and pixel noise. The noise scale is
// chosen so the task has an irreducible error floor, giving the train/test
// error curves the qualitative shape of the paper's figures.
package data

import (
	"fmt"
	"math"
	"sync"

	"lcasgd/internal/rng"
	"lcasgd/internal/snapshot"
	"lcasgd/internal/tensor"
)

// Dataset is an in-memory labeled set of flattened channel-major images.
type Dataset struct {
	X       *tensor.Tensor // [N, C*H*W]
	Y       []int
	Classes int
	C, H, W int
}

// Features returns the flattened image width.
func (d *Dataset) Features() int { return d.C * d.H * d.W }

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// Batch gathers the samples at idx into fresh tensors.
func (d *Dataset) Batch(idx []int) (*tensor.Tensor, []int) {
	x := tensor.New(len(idx), d.Features())
	y := make([]int, len(idx))
	d.BatchInto(x, y, idx)
	return x, y
}

// BatchInto gathers the samples at idx into the caller-provided x (shape
// [len(idx), Features()]) and y (len(idx)) — the allocation-free batching
// the worker replicas and evaluation shards reuse their buffers through.
func (d *Dataset) BatchInto(x *tensor.Tensor, y []int, idx []int) {
	f := d.Features()
	if x.Rank() != 2 || x.Shape[0] != len(idx) || x.Shape[1] != f || len(y) != len(idx) {
		panic(fmt.Sprintf("data: BatchInto x%v y[%d] for %d indices of width %d", x.Shape, len(y), len(idx), f))
	}
	for i, j := range idx {
		if j < 0 || j >= d.Len() {
			panic(fmt.Sprintf("data: batch index %d out of range [0,%d)", j, d.Len()))
		}
		copy(x.Data[i*f:(i+1)*f], d.X.Data[j*f:(j+1)*f])
		y[i] = d.Y[j]
	}
}

// Config parameterizes a synthetic dataset.
type Config struct {
	Classes     int
	C, H, W     int
	Train       int
	Test        int
	NoiseSigma  float64 // per-pixel noise; larger -> harder task
	SignalScale float64 // per-pixel RMS of the class prototypes
	Smoothing   int     // box-blur passes applied to prototypes
	Seed        uint64
}

// CIFARConfig mirrors CIFAR-10's role: 10 classes, 3-channel 8×8 images.
// Sample counts are scaled from the paper's 50k/10k to keep CPU experiments
// tractable while preserving the train/test ratio.
func CIFARConfig() Config {
	return Config{
		Classes: 10, C: 3, H: 8, W: 8,
		Train: 2000, Test: 400,
		NoiseSigma: 1.0, SignalScale: 0.32, Smoothing: 2, Seed: 0xC1FA,
	}
}

// ImageNetConfig mirrors ImageNet's role at the paper's "27 high-level
// categories" granularity with larger images and more samples.
func ImageNetConfig() Config {
	return Config{
		Classes: 27, C: 3, H: 12, W: 12,
		Train: 2700, Test: 540,
		NoiseSigma: 1.0, SignalScale: 0.16, Smoothing: 2, Seed: 0x13A6E7,
	}
}

// Generate builds the train and test splits. Both splits draw from the same
// class prototypes but use independent noise streams, so a generalization
// gap exists and overfitting is measurable.
func Generate(cfg Config) (train, test *Dataset) {
	if cfg.Classes < 2 || cfg.Train < cfg.Classes || cfg.Test < cfg.Classes {
		panic(fmt.Sprintf("data: degenerate config %+v", cfg))
	}
	g := rng.New(cfg.Seed)
	f := cfg.C * cfg.H * cfg.W
	protos := make([][]float64, cfg.Classes)
	for c := range protos {
		p := make([]float64, f)
		g.FillNormal(p, 1)
		for s := 0; s < cfg.Smoothing; s++ {
			boxBlur(p, cfg.C, cfg.H, cfg.W)
		}
		normalize(p, cfg.SignalScale)
		protos[c] = p
	}
	train = sample(cfg, protos, cfg.Train, g.SplitLabeled(1))
	test = sample(cfg, protos, cfg.Test, g.SplitLabeled(2))
	return train, test
}

// genEntry is one memoized Generate call; the Once gates generation so a
// config is built exactly once even when many sweep cells request it
// concurrently.
type genEntry struct {
	once        sync.Once
	train, test *Dataset
}

var (
	genMu    sync.Mutex
	genCache = map[Config]*genEntry{}
)

// GenerateCached is Generate memoized on the full Config (a comparable
// struct, so the key covers every generation parameter including Seed).
// Sweeps run dozens of cells against the same dataset; caching amortizes
// generation to once per config. Callers share the returned datasets and
// must treat them as immutable — which all training paths do (BatchInto
// copies; Partition copies).
func GenerateCached(cfg Config) (train, test *Dataset) {
	genMu.Lock()
	e := genCache[cfg]
	if e == nil {
		e = &genEntry{}
		genCache[cfg] = e
	}
	genMu.Unlock()
	e.once.Do(func() { e.train, e.test = Generate(cfg) })
	return e.train, e.test
}

func sample(cfg Config, protos [][]float64, n int, g *rng.RNG) *Dataset {
	f := cfg.C * cfg.H * cfg.W
	d := &Dataset{
		X: tensor.New(n, f), Y: make([]int, n),
		Classes: cfg.Classes, C: cfg.C, H: cfg.H, W: cfg.W,
	}
	for i := 0; i < n; i++ {
		c := i % cfg.Classes // balanced classes
		d.Y[i] = c
		dst := d.X.Data[i*f : (i+1)*f]
		brightness := 1 + 0.2*g.Normal()
		for j, pv := range protos[c] {
			dst[j] = brightness*pv + cfg.NoiseSigma*g.Normal()
		}
	}
	return d
}

// boxBlur applies one 3×3 box-blur pass per channel in place, giving the
// prototypes the low-frequency spatial structure natural images have.
func boxBlur(p []float64, c, h, w int) {
	tmp := make([]float64, h*w)
	for ch := 0; ch < c; ch++ {
		plane := p[ch*h*w : (ch+1)*h*w]
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				sum, cnt := 0.0, 0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						ny, nx := y+dy, x+dx
						if ny >= 0 && ny < h && nx >= 0 && nx < w {
							sum += plane[ny*w+nx]
							cnt++
						}
					}
				}
				tmp[y*w+x] = sum / float64(cnt)
			}
		}
		copy(plane, tmp)
	}
}

// normalize rescales a prototype to zero mean and the requested per-pixel
// RMS so every class carries the same signal energy. The RMS (relative to
// the unit noise sigma) sets the Bayes error floor of the task.
func normalize(p []float64, rms float64) {
	mean := 0.0
	for _, v := range p {
		mean += v
	}
	mean /= float64(len(p))
	norm := 0.0
	for i := range p {
		p[i] -= mean
		norm += p[i] * p[i]
	}
	if norm == 0 {
		return
	}
	factor := rms / math.Sqrt(norm/float64(len(p)))
	for i := range p {
		p[i] *= factor
	}
}

// BatchIter yields deterministic shuffled mini-batches, reshuffling at each
// epoch boundary. Every worker in the simulated cluster holds its own
// iterator over the shared dataset, matching the paper's setting where "all
// of the workers not only share the model but also use the same data".
type BatchIter struct {
	ds    *Dataset
	size  int
	g     *rng.RNG
	order []int
	pos   int
	Epoch int // completed epochs
}

// NewBatchIter builds an iterator with the given batch size.
func NewBatchIter(ds *Dataset, size int, g *rng.RNG) *BatchIter {
	if size <= 0 || size > ds.Len() {
		panic(fmt.Sprintf("data: batch size %d for dataset of %d", size, ds.Len()))
	}
	it := &BatchIter{ds: ds, size: size, g: g, order: g.Perm(ds.Len())}
	return it
}

// Next returns the next mini-batch, reshuffling when the epoch wraps.
func (it *BatchIter) Next() (*tensor.Tensor, []int) {
	x := tensor.New(it.size, it.ds.Features())
	y := make([]int, it.size)
	it.NextInto(x, y)
	return x, y
}

// NextInto fills the caller-provided buffers with the next mini-batch,
// reshuffling when the epoch wraps. x must have shape [size, Features()]
// and y length size; steady-state iteration allocates nothing.
func (it *BatchIter) NextInto(x *tensor.Tensor, y []int) {
	if it.pos+it.size > len(it.order) {
		it.g.Shuffle(it.order)
		it.pos = 0
		it.Epoch++
	}
	idx := it.order[it.pos : it.pos+it.size]
	it.pos += it.size
	it.ds.BatchInto(x, y, idx)
}

// BatchesPerEpoch returns how many batches one pass over the data yields.
func (it *BatchIter) BatchesPerEpoch() int { return it.ds.Len() / it.size }

// SnapshotTo serializes the iterator's exact position: the shuffle RNG
// state, the current permutation, the cursor, and the epoch counter. A
// restored iterator yields the same remaining batches — and the same future
// reshuffles — as the original, which is what position-exact resume of a
// worker's private batch order requires.
func (it *BatchIter) SnapshotTo(w *snapshot.Writer) {
	st := it.g.State()
	w.U64s(st[:])
	w.Ints(it.order)
	w.Int(it.pos)
	w.Int(it.Epoch)
}

// RestoreFrom loads a position written by SnapshotTo into an iterator built
// over the same dataset and batch size.
func (it *BatchIter) RestoreFrom(r *snapshot.Reader) error {
	st := r.U64s()
	order := r.Ints()
	pos := r.Int()
	epoch := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if len(st) != 4 {
		r.Fail(fmt.Errorf("data: iterator snapshot has %d rng words, want 4", len(st)))
		return r.Err()
	}
	if len(order) != len(it.order) || pos < 0 || pos > len(order) {
		r.Fail(fmt.Errorf("data: iterator snapshot order %d/pos %d for dataset of %d", len(order), pos, len(it.order)))
		return r.Err()
	}
	it.g.SetState([4]uint64{st[0], st[1], st[2], st[3]})
	copy(it.order, order)
	it.pos = pos
	it.Epoch = epoch
	return nil
}

// Partition splits a dataset into m disjoint contiguous shards. Because
// Generate lays samples out class-cyclically, contiguous blocks stay
// class-balanced whenever a shard holds at least one full class cycle
// (round-robin striding would instead give each shard a single class when
// the class count divides m). This backs the paper's stated future-work
// extension — "different workers train the models with different subset of
// input data" — implemented as the Partitioned mode of the distributed
// algorithms.
func Partition(ds *Dataset, m int) []*Dataset {
	if m <= 0 || m > ds.Len() {
		panic(fmt.Sprintf("data: cannot partition %d samples into %d shards", ds.Len(), m))
	}
	f := ds.Features()
	shards := make([]*Dataset, m)
	base, rem := ds.Len()/m, ds.Len()%m
	start := 0
	for s := 0; s < m; s++ {
		n := base
		if s < rem {
			n++
		}
		shard := &Dataset{
			X: tensor.New(n, f), Y: make([]int, n),
			Classes: ds.Classes, C: ds.C, H: ds.H, W: ds.W,
		}
		copy(shard.X.Data, ds.X.Data[start*f:(start+n)*f])
		copy(shard.Y, ds.Y[start:start+n])
		shards[s] = shard
		start += n
	}
	return shards
}
