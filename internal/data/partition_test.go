package data

import (
	"testing"
	"testing/quick"
)

func TestPartitionDisjointAndComplete(t *testing.T) {
	tr, _ := Generate(CIFARConfig())
	shards := Partition(tr, 4)
	if len(shards) != 4 {
		t.Fatalf("shard count %d", len(shards))
	}
	total := 0
	for _, s := range shards {
		total += s.Len()
	}
	if total != tr.Len() {
		t.Fatalf("shards cover %d of %d samples", total, tr.Len())
	}
	// Contiguous blocks: shard s row r maps to a strictly increasing
	// original index with no overlap between shards.
	f := tr.Features()
	orig := 0
	for s, shard := range shards {
		for r := 0; r < shard.Len(); r++ {
			if shard.Y[r] != tr.Y[orig] {
				t.Fatalf("shard %d row %d label mismatch", s, r)
			}
			if shard.X.Data[r*f] != tr.X.Data[orig*f] {
				t.Fatalf("shard %d row %d data mismatch", s, r)
			}
			orig++
		}
	}
}

func TestPartitionClassBalancePreserved(t *testing.T) {
	// Generate lays labels out cyclically; contiguous shards longer than
	// one class cycle stay balanced.
	tr, _ := Generate(CIFARConfig())
	shards := Partition(tr, 4)
	for si, s := range shards {
		counts := make([]int, s.Classes)
		for _, y := range s.Y {
			counts[y]++
		}
		min, max := s.Len(), 0
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			t.Fatalf("shard %d class imbalance: %v", si, counts)
		}
	}
}

func TestPartitionSingleShardIsCopy(t *testing.T) {
	tr, _ := Generate(CIFARConfig())
	shards := Partition(tr, 1)
	if shards[0].Len() != tr.Len() {
		t.Fatal("m=1 partition must be the full set")
	}
	// Deep copy: mutating the shard must not touch the original.
	shards[0].X.Data[0] = 12345
	if tr.X.Data[0] == 12345 {
		t.Fatal("partition must copy data")
	}
}

func TestPartitionPanicsOnBadCount(t *testing.T) {
	tr, _ := Generate(CIFARConfig())
	for _, m := range []int{0, -1, tr.Len() + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for m=%d", m)
				}
			}()
			Partition(tr, m)
		}()
	}
}

func TestPartitionPropertyQuick(t *testing.T) {
	tr, _ := Generate(Config{
		Classes: 3, C: 1, H: 4, W: 4, Train: 60, Test: 12,
		NoiseSigma: 1, SignalScale: 0.3, Smoothing: 1, Seed: 5,
	})
	f := func(mRaw uint8) bool {
		m := int(mRaw%8) + 1
		shards := Partition(tr, m)
		total := 0
		for _, s := range shards {
			total += s.Len()
		}
		return total == tr.Len() && len(shards) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
