package ps

import (
	"fmt"

	"lcasgd/internal/cluster"
	"lcasgd/internal/core"
	"lcasgd/internal/rng"
	"lcasgd/internal/simclock"
	"lcasgd/internal/telemetry"
)

// Engine owns everything a training run shares across algorithms: the
// worker replica fleet and its data shards, the parameter server, the BN
// statistics accumulator, the cost sampler, the curve recorder, the
// discrete-event clock, and the execution backend. A Strategy drives it
// through the exported primitives below; the engine guarantees that all
// shared state mutates only on the event loop, in virtual-clock order, so
// every backend produces bit-identical results.
type Engine struct {
	cfg      Config
	env      Env
	strategy Strategy
	backend  Backend

	clock   *simclock.Clock
	sampler *cluster.Sampler
	reps    []*replica
	srv     *server
	rec     *recorder
	fleet   *fleet

	seedRng   *rng.RNG
	modelSeed uint64

	loss         []float64 // last forward loss per worker, set by dispatched compute
	waits        []func()  // wait for each worker's most recent dispatch (orphan drain, see Pull)
	snapUpdates  []int     // server update counter at each worker's last Pull
	stalenessSum int
	stalenessN   int
	maxStale     int

	// Scenario bookkeeping (fleet.go): the armed (scheduled, unfired)
	// timeline events as data, the arm-order counter, the tombstone count
	// pending compaction, and how many events have been applied.
	armed      []armedScn
	armSeq     uint64
	armedDead  int
	scnApplied int

	// Stall-guard counters (fleet.go), maintained at the O(1) arm/disarm
	// and fleet transitions so fleetStalled and the launch park check never
	// scan the fleet or the armed list: per-worker armed-Heal counts, the
	// number of armed revive-capable events (Recover/Join/Heal), and the
	// number of active workers blocked behind heal-less partitions.
	healArmedN   []int
	reviveArmedN int
	blockedN     int

	// inflight counts scheduled-but-unfired worker events (After and
	// AfterWorker). Zero means every worker pipeline has drained — the
	// quiescence condition a checkpoint barrier waits for.
	inflight int

	// Checkpoint-barrier state (checkpoint.go): the next barrier epoch,
	// whether the engine is currently draining toward a barrier, and the
	// launches deferred during the drain (re-armed right after the
	// snapshot is taken — or, on resume, right after it is restored).
	nextCkpt    int
	quiescing   bool
	deferred    []int
	deferredSet []bool

	// Dirty generations for incremental checkpoints (ckptfast.go): wgen[m]
	// bumps whenever worker m's serialized section can change before the
	// next barrier (Pull/PullLocal, gossip, fleet transitions), srvWGen on
	// every server weight mutation, bnGen on every BN fold. The checkpoint
	// encoder re-encodes a section only when its generation moved since the
	// cached blob; a missed bump is a correctness bug (stale checkpoint
	// bytes), a spurious one merely re-encodes — so transition sites bump
	// eagerly. ck is the delta/parallel/off-loop encoder state itself.
	wgen    []uint64
	srvWGen uint64
	bnGen   uint64
	ck      *ckptEnc

	// Last-checkpoint server state for Config.RecoverOpt: a recovered
	// worker flagged in recoverPend restarts from this snapshot instead of
	// pulling the live server (see Pull).
	ckptW       []float64
	ckptBN      *core.BNAccumulator
	ckptUpdates int
	recoverPend []bool

	// Decentralized-mode state (decentral.go): per-worker persistent
	// models on a communication graph. Nil for parameter-server runs.
	dec *decState

	// Telemetry state (telemetry.go): nil unless Env.Telemetry attached a
	// recorder. Every emission site is nil-guarded, keeping the disabled
	// hot paths at zero allocations.
	tel *telState
}

// newEngine builds the shared preamble the five run* monoliths used to
// duplicate: seed streams, fleet, server, recorder, sampler, clock, backend.
// The seed-stream derivation order is fixed here (model, cost, per-worker
// data, then strategy labels in Setup) and must not change: it is what makes
// runs reproducible and backends interchangeable.
func newEngine(env Env, st Strategy) *Engine {
	cfg := env.Cfg
	seedRng := rng.New(cfg.Seed)
	modelSeed := seedRng.Uint64()
	costRng := seedRng.SplitLabeled(200)

	M := cfg.Workers
	if fs, ok := st.(FleetSizer); ok {
		M = fs.FleetSize(cfg.Workers)
	}
	shards := workerData(env, M)
	reps := make([]*replica, M)
	for m := 0; m < M; m++ {
		reps[m] = newReplica(env.Build, modelSeed, shards[m], cfg.BatchSize, seedRng.SplitLabeled(uint64(300+m)))
	}
	bnMode := cfg.BNMode
	if bf, ok := st.(BNModeFixer); ok {
		bnMode = bf.FixBNMode(bnMode)
	}
	bnAcc := core.NewBNAccumulator(bnMode, cfg.BNDecay, reps[0].bns)
	w := make([]float64, reps[0].nParams)
	flatten(reps[0], w)
	bpe := env.Train.Len() / cfg.BatchSize

	backend := newBackend(cfg.Backend, M)
	e := &Engine{
		cfg:         cfg,
		env:         env,
		strategy:    st,
		backend:     backend,
		clock:       simclock.New(),
		sampler:     cfg.Cost.NewSampler(M, costRng),
		reps:        reps,
		srv:         newServer(w, bnAcc, cfg, bpe),
		fleet:       newFleet(M, cfg.Scenario),
		seedRng:     seedRng,
		modelSeed:   modelSeed,
		loss:        make([]float64, M),
		waits:       make([]func(), M),
		snapUpdates: make([]int, M),
		healArmedN:  make([]int, M),
		nextCkpt:    cfg.CheckpointEvery,
		deferredSet: make([]bool, M),
		recoverPend: make([]bool, M),
		wgen:        make([]uint64, M),
		ck:          newCkptEnc(),
	}
	e.rec = newRecorder(env, modelSeed, backend)
	if env.Telemetry != nil {
		e.tel = newTelState(env.Telemetry, M)
	}
	return e
}

// run executes the strategy to budget exhaustion and assembles the result.
// A scenario that permanently empties the fleet truncates the run instead:
// the clock drains and the result carries however far training got.
func (e *Engine) run() Result {
	defer e.backend.Close()
	e.strategy.Setup(e)
	e.installScenario()
	for m := range e.reps {
		e.launch(m)
	}
	return e.loop()
}

// loop drives the event queue to completion, taking a checkpoint whenever a
// barrier drain reaches quiescence, then assembles the result.
func (e *Engine) loop() Result {
	for e.clock.Step() {
		if e.srv.done() {
			break
		}
		if e.quiescing && e.inflight == 0 {
			e.takeCheckpoint()
		}
	}
	// The run may still have a checkpoint write in flight (the writer
	// goroutine overlaps the simulation); it must commit — or its error
	// surface — before the run reports success.
	e.drainCkpt()
	e.anchorConsensus()
	points := e.rec.finish(e.srv, e.clock.Now())
	if e.tel != nil {
		// One final gauge row at the run's end state. Both the straight-
		// through and the resumed run take it at the same quiescent end, so
		// the series stays byte-identical across a resume.
		e.telSample()
	}
	res := Result{
		Algo:           e.strategy.Algo(),
		BNMode:         e.cfg.BNMode,
		Points:         points,
		VirtualMs:      e.clock.Now(),
		Updates:        e.srv.updates,
		MaxStaleness:   e.maxStale,
		ScenarioEvents: e.scnApplied,
	}
	if e.stalenessN > 0 {
		res.MeanStaleness = float64(e.stalenessSum) / float64(e.stalenessN)
	}
	e.strategy.Finish(e, &res)
	return finalize(res, e.cfg)
}

// launch arms worker m's next iteration while it is part of the fleet and
// sample budget remains. During a checkpoint drain the launch is deferred
// (re-armed after the barrier); a partitioned worker with no heal in sight
// parks instead of computing for a server it can never reach.
func (e *Engine) launch(m int) {
	if !e.fleet.active[m] || e.srv.done() {
		return
	}
	if e.quiescing {
		if !e.deferredSet[m] {
			e.deferredSet[m] = true
			e.deferred = append(e.deferred, m)
		}
		return
	}
	if e.dec == nil && e.fleet.cut[m] && !e.healArmed(m) {
		// A partitioned PS worker with no heal in sight computes for a
		// server it can never reach, so it parks. A decentralized worker
		// keeps training its own model regardless — its commits land
		// locally — so it never parks.
		if !e.fleet.parked[m] {
			e.fleet.parked[m] = true
			e.wgen[m]++
		}
		return
	}
	if e.fleet.parked[m] {
		e.fleet.parked[m] = false
		e.wgen[m]++
	}
	if e.tel != nil {
		e.tel.launchAt[m] = e.clock.Now()
		e.tel.rec.Emit(telemetry.Event{Kind: telemetry.KLaunch, Worker: int32(m), At: e.clock.Now()})
	}
	e.strategy.Launch(e, m)
}

// --- engine services for strategies ---
//
// Everything below must be called from the event loop (Setup, Launch, or a
// scheduled event), never from dispatched compute.

// Config returns the run configuration with defaults applied.
func (e *Engine) Config() Config { return e.cfg }

// Workers is the size of the replica fleet.
func (e *Engine) Workers() int { return len(e.reps) }

// NParams is the flat parameter count of the model.
func (e *Engine) NParams() int { return e.reps[0].nParams }

// Done reports whether the sample budget is exhausted.
func (e *Engine) Done() bool { return e.srv.done() }

// Now returns the current virtual time in milliseconds.
func (e *Engine) Now() float64 { return e.clock.Now() }

// Weights exposes the server's live weight vector. Strategies may read it
// (DC-ASGD's backup copy) but must mutate it only through Commit/Apply.
func (e *Engine) Weights() []float64 { return e.srv.w }

// Batches returns the number of mini-batches consumed so far.
func (e *Engine) Batches() int { return e.srv.batches }

// BatchesPerEpoch returns the global-epoch length in batches.
func (e *Engine) BatchesPerEpoch() int { return e.srv.bpe }

// Updates returns the number of server updates applied so far.
func (e *Engine) Updates() int { return e.srv.updates }

// SetLRScale installs a constant learning-rate multiplier (SSGD's linear
// scaling). Call it from Setup.
func (e *Engine) SetLRScale(s float64) { e.srv.lrScale = s }

// Rng derives a labeled child stream from the run's seed stream. Draw it in
// Setup — the derivation advances the parent stream, so call order is part
// of the reproducibility contract.
func (e *Engine) Rng(label uint64) *rng.RNG { return e.seedRng.SplitLabeled(label) }

// CommSample draws a one-way communication time for worker m.
func (e *Engine) CommSample(m int) float64 { return e.sampler.Comm(m) }

// CompSample draws a computation time for worker m's next iteration.
func (e *Engine) CompSample(m int) float64 { return e.sampler.Comp(m) }

// After schedules f on the virtual clock, delay milliseconds from now. Like
// AfterWorker it counts toward the engine's in-flight tally (see fleet.go).
func (e *Engine) After(delay float64, f func()) {
	e.inflight++
	e.clock.ScheduleAfter(delay, func() {
		e.inflight--
		f()
	})
}

// Pull installs the server's current weights and global BN statistics into
// worker m's replica (Algorithm 1 lines 1–2) and snapshots the update
// counter for staleness accounting. It first drains the worker's most
// recent dispatch: a crash cancels the completion event that would have
// waited on it, so a recovered worker may still have an orphaned task
// touching the replica on its lane — Pull must not overwrite replica state
// under it. In crash-free operation the strategy has already waited, so the
// drain returns immediately.
//
// Under Config.RecoverOpt, a worker re-admitted by a Recover event restores
// the last checkpoint's server snapshot instead (weights, BN statistics and
// update counter as of the barrier), so the staleness its recovered
// gradient commits with — and the error it induces — measures what losing
// the worker's optimizer-side state actually costs. Before the first
// barrier there is no snapshot and the pull falls back to fresh state.
func (e *Engine) Pull(m int) {
	if w := e.waits[m]; w != nil {
		w()
	}
	e.wgen[m]++ // snapshot counter moves now; the iterator advances before the next barrier
	if e.recoverPend[m] {
		e.recoverPend[m] = false
		if e.ckptW != nil {
			e.reps[m].pull(e.ckptW, e.ckptBN)
			e.snapUpdates[m] = e.ckptUpdates
			return
		}
	}
	e.reps[m].pull(e.srv.w, e.srv.bnAcc)
	e.snapUpdates[m] = e.srv.updates
}

// CopyPulledWeights flattens the parameters worker m's replica currently
// holds into dst. Immediately after Pull this is the exact vector the
// worker's gradient will be computed at — which is what DC-ASGD's delay
// compensation must back up, and which under RecoverOpt is not necessarily
// the live server state Weights returns.
func (e *Engine) CopyPulledWeights(m int, dst []float64) { flatten(e.reps[m], dst) }

// DispatchGradient runs worker m's full local step (forward + backward, no
// compensation) on the backend. After wait returns, Gradient(m) and Loss(m)
// hold the results.
func (e *Engine) DispatchGradient(m int) (wait func()) {
	if e.tel != nil {
		e.tel.rec.Emit(telemetry.Event{Kind: telemetry.KDispatch, Worker: int32(m), At: e.clock.Now(), A: 0})
	}
	rep := e.reps[m]
	wait = e.backend.Dispatch(m, func() { e.loss[m], _ = rep.gradient() })
	e.waits[m] = wait
	return wait
}

// DispatchForward runs worker m's forward pass on the backend. After wait
// returns, Loss(m) holds the batch loss and the replica's BN layers hold
// their batch statistics.
func (e *Engine) DispatchForward(m int) (wait func()) {
	if e.tel != nil {
		e.tel.rec.Emit(telemetry.Event{Kind: telemetry.KDispatch, Worker: int32(m), At: e.clock.Now(), A: 1})
	}
	rep := e.reps[m]
	wait = e.backend.Dispatch(m, func() { e.loss[m] = rep.forward() })
	e.waits[m] = wait
	return wait
}

// DispatchBackward runs worker m's backward pass seeded with scale
// (Formula 5's compensation enters here). After wait returns, Gradient(m)
// holds the flat gradient.
func (e *Engine) DispatchBackward(m int, scale float64) (wait func()) {
	if e.tel != nil {
		e.tel.rec.Emit(telemetry.Event{Kind: telemetry.KDispatch, Worker: int32(m), At: e.clock.Now(), A: 2})
	}
	rep := e.reps[m]
	wait = e.backend.Dispatch(m, func() { rep.backward(scale) })
	e.waits[m] = wait
	return wait
}

// Loss returns worker m's most recent forward loss. Valid only after the
// corresponding dispatch's wait has returned.
func (e *Engine) Loss(m int) float64 { return e.loss[m] }

// Gradient returns worker m's flat gradient buffer. Valid only after the
// corresponding dispatch's wait has returned; the buffer is reused by the
// worker's next backward pass, which cannot start before the next Launch.
func (e *Engine) Gradient(m int) []float64 { return e.reps[m].grad }

// FoldStats folds worker m's batch-normalization statistics into the global
// accumulator per the configured BN mode (Formulas 6–7). A partitioned
// worker's statistics are dropped with the rest of its commit — except in
// decentralized mode, where the commit itself lands locally: the batch
// still shapes a model that will eventually re-mix, so its statistics fold.
func (e *Engine) FoldStats(m int) {
	if e.dec == nil && e.fleet.cut[m] {
		return
	}
	e.bnGen++
	e.srv.bnAcc.Update(e.reps[m].stats())
}

// Commit lands grad on the server at the current virtual time: staleness
// accounting against the worker's last Pull, the server update (Formula 8's
// shared shape), curve recording, and the worker's next Launch while budget
// remains. A partitioned worker's commit is dropped wholesale — no update,
// no staleness sample, no budget consumed — and the worker simply iterates
// again, exactly the wasted work a real partition causes.
func (e *Engine) Commit(m int, grad []float64, batches int) {
	if e.fleet.cut[m] {
		if e.tel != nil {
			e.tel.drops.Inc(m)
			e.tel.rec.Emit(telemetry.Event{Kind: telemetry.KDrop, Worker: int32(m), At: e.clock.Now()})
		}
		e.launch(m)
		return
	}
	st := e.Staleness(m)
	e.stalenessSum += st
	if st > e.maxStale {
		e.maxStale = st
	}
	e.stalenessN++
	if e.tel != nil {
		e.tel.staleness.Observe(float64(st))
		e.tel.commits.Inc(m)
		at := e.tel.launchAt[m]
		e.tel.rec.Emit(telemetry.Event{
			Kind: telemetry.KCommit, Worker: int32(m),
			At: at, Dur: e.clock.Now() - at, A: int64(st),
		})
	}
	e.Apply(grad, batches)
	e.launch(m)
}

// Apply performs the raw server update without per-worker bookkeeping — the
// SSGD barrier path, where M gradients fold into one update. Most
// strategies use Commit instead. Crossing a checkpoint-barrier epoch here
// arms the quiescent drain (see checkpoint.go).
func (e *Engine) Apply(grad []float64, batches int) {
	e.srvWGen++
	e.srv.apply(grad, batches)
	if e.tel != nil {
		e.tel.rec.Emit(telemetry.Event{Kind: telemetry.KUpdate, Worker: -1, At: e.clock.Now()})
	}
	e.recordCurve()
	if e.nextCkpt > 0 && e.srv.epoch() >= e.nextCkpt && !e.srv.done() {
		e.armQuiesce()
	}
}

// Relaunch arms worker m's next iteration if budget remains; strategies
// whose commits are not per-worker (SSGD's barrier) use it to restart the
// fleet.
func (e *Engine) Relaunch(m int) { e.launch(m) }

// assertQuiescent panics when worker events are still in flight; it guards
// checkpoint serialization, which is only sound at a quiescent boundary.
func assertQuiescent(e *Engine, where string) {
	if e.inflight != 0 {
		panic(fmt.Sprintf("ps: %s with %d worker events in flight", where, e.inflight))
	}
}
