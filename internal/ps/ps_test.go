package ps

import (
	"math"
	"testing"

	"lcasgd/internal/cluster"
	"lcasgd/internal/core"
	"lcasgd/internal/data"
	"lcasgd/internal/model"
	"lcasgd/internal/nn"
	"lcasgd/internal/rng"
)

// tinyEnvSeeded builds a fast MLP-on-blobs environment for algorithm tests.
func tinyEnvSeeded(algo Algo, workers, epochs int) Env {
	d := data.Config{
		Classes: 4, C: 1, H: 6, W: 6,
		Train: 160, Test: 80,
		NoiseSigma: 0.8, SignalScale: 0.5, Smoothing: 1, Seed: 99,
	}
	train, test := data.Generate(d)
	cfg := Config{
		Algo:      algo,
		Workers:   workers,
		BatchSize: 20,
		Epochs:    epochs,
		LR:        0.1,
		Lambda:    1,
		DCLambda:  0.3,
		BNMode:    core.BNAsync,
		Seed:      7,
		Cost:      cluster.CIFARCostModel(),
		// Small predictors keep LC tests fast.
		LossPredHidden: 8, StepPredHidden: 8,
	}
	return Env{
		Train: train,
		Test:  test,
		Build: func(g *rng.RNG) *nn.Sequential { return model.MLP("t", 36, 16, 4, g) },
		Cfg:   cfg,
	}
}

func TestSequentialSGDLearns(t *testing.T) {
	res := Run(tinyEnvSeeded(SGD, 1, 6))
	if res.Algo != SGD || len(res.Points) == 0 {
		t.Fatalf("bad result: %+v", res.Algo)
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.TrainErr >= first.TrainErr {
		t.Fatalf("train error did not decrease: %v -> %v", first.TrainErr, last.TrainErr)
	}
	if res.FinalTestErr > 0.5 {
		t.Fatalf("final test error %v on an easy task", res.FinalTestErr)
	}
	if res.Updates != 6*8 {
		t.Fatalf("updates %d, want 48", res.Updates)
	}
	if res.VirtualMs <= 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestAllAlgorithmsRun(t *testing.T) {
	for _, algo := range []Algo{SGD, SSGD, ASGD, DCASGD, LCASGD} {
		workers := 4
		if algo == SGD {
			workers = 1
		}
		res := Run(tinyEnvSeeded(algo, workers, 3))
		if len(res.Points) < 2 {
			t.Fatalf("%s produced %d points", algo, len(res.Points))
		}
		for _, p := range res.Points {
			if math.IsNaN(p.TestErr) || p.TestErr < 0 || p.TestErr > 1 {
				t.Fatalf("%s produced invalid error %v", algo, p.TestErr)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, algo := range []Algo{SSGD, ASGD, DCASGD, LCASGD} {
		a := Run(tinyEnvSeeded(algo, 4, 2))
		b := Run(tinyEnvSeeded(algo, 4, 2))
		if len(a.Points) != len(b.Points) {
			t.Fatalf("%s: point counts differ", algo)
		}
		for i := range a.Points {
			if a.Points[i] != b.Points[i] {
				t.Fatalf("%s: run not deterministic at point %d: %+v vs %+v",
					algo, i, a.Points[i], b.Points[i])
			}
		}
		if a.VirtualMs != b.VirtualMs {
			t.Fatalf("%s: virtual durations differ", algo)
		}
	}
}

func TestSSGDRoundAccounting(t *testing.T) {
	res := Run(tinyEnvSeeded(SSGD, 4, 4))
	// 4 epochs × 8 batches = 32 batches; each round consumes 4 → 8 updates.
	if res.Updates != 8 {
		t.Fatalf("SSGD updates %d, want 8", res.Updates)
	}
}

func TestAsyncStalenessNearMMinus1(t *testing.T) {
	res := Run(tinyEnvSeeded(ASGD, 8, 4))
	if res.MeanStaleness < 5 || res.MeanStaleness > 10 {
		t.Fatalf("mean staleness %v for M=8, want ≈7", res.MeanStaleness)
	}
}

func TestASGDFasterThanSSGDVirtually(t *testing.T) {
	ssgd := Run(tinyEnvSeeded(SSGD, 8, 3))
	asgd := Run(tinyEnvSeeded(ASGD, 8, 3))
	// Same sample budget; the barrier makes SSGD strictly slower in
	// virtual time (max over workers vs pipelined workers).
	if asgd.VirtualMs >= ssgd.VirtualMs {
		t.Fatalf("ASGD %vms not faster than SSGD %vms", asgd.VirtualMs, ssgd.VirtualMs)
	}
}

func TestDistributedFasterThanSequential(t *testing.T) {
	sgd := Run(tinyEnvSeeded(SGD, 1, 3))
	asgd := Run(tinyEnvSeeded(ASGD, 8, 3))
	if asgd.VirtualMs >= sgd.VirtualMs/2 {
		t.Fatalf("ASGD with 8 workers (%vms) not ≥2x faster than SGD (%vms)",
			asgd.VirtualMs, sgd.VirtualMs)
	}
}

func TestLCASGDProducesTracesAndOverhead(t *testing.T) {
	res := Run(tinyEnvSeeded(LCASGD, 4, 3))
	if len(res.LossTrace) == 0 {
		t.Fatal("no loss-predictor trace")
	}
	if len(res.StepTrace) == 0 {
		t.Fatal("no step-predictor trace")
	}
	if res.AvgLossPredMs <= 0 || res.AvgStepPredMs <= 0 {
		t.Fatalf("predictor overhead not measured: %v %v", res.AvgLossPredMs, res.AvgStepPredMs)
	}
	if res.MeanStaleness <= 0 {
		t.Fatal("staleness not measured")
	}
}

func TestLCASGDVirtualOverheadInjected(t *testing.T) {
	lc := Run(tinyEnvSeeded(LCASGD, 4, 3))
	asgd := Run(tinyEnvSeeded(ASGD, 4, 3))
	// LC adds an extra communication round plus predictor time per
	// iteration, so it must be virtually slower than plain ASGD.
	if lc.VirtualMs <= asgd.VirtualMs {
		t.Fatalf("LC-ASGD %vms not slower than ASGD %vms", lc.VirtualMs, asgd.VirtualMs)
	}
}

func TestBNModeChangesResult(t *testing.T) {
	e1 := tinyEnvSeeded(ASGD, 4, 3)
	e1.Cfg.BNMode = core.BNReplace
	e2 := tinyEnvSeeded(ASGD, 4, 3)
	e2.Cfg.BNMode = core.BNAsync
	a, b := Run(e1), Run(e2)
	if a.BNMode == b.BNMode {
		t.Fatal("modes not propagated")
	}
	diff := false
	for i := range a.Points {
		if a.Points[i].TestErr != b.Points[i].TestErr {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("BN mode had no effect on evaluation")
	}
}

func TestLambdaZeroStillRuns(t *testing.T) {
	e := tinyEnvSeeded(LCASGD, 4, 2)
	e.Cfg.Lambda = 0
	res := Run(e)
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
}

func TestAblationFlagsRun(t *testing.T) {
	for _, mut := range []func(*Config){
		func(c *Config) { c.SumCompensation = true },
		func(c *Config) { c.NaiveStepPredictor = true },
		func(c *Config) { c.EMALossPredictor = true },
	} {
		e := tinyEnvSeeded(LCASGD, 4, 2)
		mut(&e.Cfg)
		res := Run(e)
		if len(res.Points) == 0 {
			t.Fatal("ablation run produced no points")
		}
	}
}

func TestCompensateDCFormula(t *testing.T) {
	g := []float64{1, -2}
	wNow := []float64{1, 1}
	wBak := []float64{0, 2}
	compensateDC(g, wNow, wBak, 0.5)
	// g0 = 1 + 0.5*1*1*(1-0) = 1.5; g1 = -2 + 0.5*4*(1-2) = -4
	if g[0] != 1.5 || g[1] != -4 {
		t.Fatalf("DC compensation: %v", g)
	}
}

func TestServerLRSchedule(t *testing.T) {
	e := tinyEnvSeeded(SGD, 1, 8)
	srvW := make([]float64, 1)
	bn := core.NewBNAccumulator(core.BNAsync, 0.2, nil)
	srv := newServer(srvW, bn, e.Cfg, 8)
	if srv.lr() != e.Cfg.LR {
		t.Fatalf("initial lr %v", srv.lr())
	}
	srv.batches = 4 * 8 // epoch 4 of 8 → first boundary
	if math.Abs(srv.lr()-e.Cfg.LR/10) > 1e-12 {
		t.Fatalf("lr after first drop: %v", srv.lr())
	}
	srv.batches = 6 * 8 // epoch 6 → second boundary
	if math.Abs(srv.lr()-e.Cfg.LR/100) > 1e-12 {
		t.Fatalf("lr after second drop: %v", srv.lr())
	}
}

func TestServerWeightDecay(t *testing.T) {
	cfg := Config{LR: 1, WeightDecay: 0.5, Epochs: 10}.withDefaults()
	srv := newServer([]float64{2}, core.NewBNAccumulator(core.BNAsync, 0.2, nil), cfg, 10)
	srv.apply([]float64{0}, 1)
	// w = 2 - 1*(0 + 0.5*2) = 1
	if srv.w[0] != 1 {
		t.Fatalf("weight decay: %v", srv.w[0])
	}
}

func TestFinalizeTailAverage(t *testing.T) {
	res := Result{Points: []Point{
		{TestErr: 1, TrainErr: 1},
		{TestErr: 0.2, TrainErr: 0.1},
		{TestErr: 0.3, TrainErr: 0.2},
		{TestErr: 0.4, TrainErr: 0.3},
	}}
	out := finalize(res, Config{})
	if math.Abs(out.FinalTestErr-0.3) > 1e-12 {
		t.Fatalf("tail mean test err %v, want 0.3", out.FinalTestErr)
	}
	if math.Abs(out.FinalTrainErr-0.2) > 1e-12 {
		t.Fatalf("tail mean train err %v, want 0.2", out.FinalTrainErr)
	}
}

func TestRunPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(Env{})
}

func TestRunPanicsOnUnknownAlgo(t *testing.T) {
	e := tinyEnvSeeded(SGD, 1, 1)
	e.Cfg.Algo = "bogus"
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(e)
}

func TestEMAPredictor(t *testing.T) {
	p := newEMAPredictor(0.5)
	for i := 0; i < 50; i++ {
		p.Observe(1.0)
	}
	d := p.PredictDelay(4)
	if math.Abs(d-4) > 0.2 {
		t.Fatalf("EMA flat-series delay %v, want ~4", d)
	}
	if p.PredictDelay(0) != 0 {
		t.Fatal("k=0 must be 0")
	}
	// Decaying series → trend < 0 → k-step sum below k*level.
	q := newEMAPredictor(0.5)
	v := 1.0
	for i := 0; i < 50; i++ {
		q.Observe(v)
		v *= 0.9
	}
	if q.PredictDelay(4) >= 4*q.level {
		t.Fatal("EMA must extrapolate the downward trend")
	}
}

func TestEvaluatorMatchesAccuracy(t *testing.T) {
	e := tinyEnvSeeded(SGD, 1, 1)
	ev := newEvaluator(e.Build, 5, 32, seqBackend{})
	rep := newReplica(e.Build, 5, e.Train, 20, rng.New(1))
	w := make([]float64, rep.nParams)
	flatten(rep, w)
	bn := core.NewBNAccumulator(core.BNAsync, 0.2, rep.bns)
	errRate := ev.errOn(e.Test, w, bn)
	if errRate < 0 || errRate > 1 {
		t.Fatalf("error rate %v", errRate)
	}
}

func TestPartitionedModeRuns(t *testing.T) {
	e := tinyEnvSeeded(LCASGD, 4, 8)
	e.Cfg.Partitioned = true
	res := Run(e)
	if len(res.Points) == 0 {
		t.Fatal("partitioned run produced no points")
	}
	if res.FinalTrainErr >= res.Points[0].TrainErr-0.1 {
		t.Fatalf("partitioned training did not learn: %v -> %v",
			res.Points[0].TrainErr, res.FinalTrainErr)
	}
}

func TestPartitionedDiffersFromShared(t *testing.T) {
	shared := Run(tinyEnvSeeded(ASGD, 4, 2))
	e := tinyEnvSeeded(ASGD, 4, 2)
	e.Cfg.Partitioned = true
	part := Run(e)
	same := true
	for i := range shared.Points {
		if shared.Points[i].TestErr != part.Points[i].TestErr {
			same = false
			break
		}
	}
	if same {
		t.Fatal("partitioned mode had no effect")
	}
}

func TestPartitionedShardTooSmallPanics(t *testing.T) {
	e := tinyEnvSeeded(ASGD, 16, 1) // 160 samples / 16 = 10 < batch 20
	e.Cfg.Partitioned = true
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shard smaller than batch")
		}
	}()
	Run(e)
}
