package ps

import (
	"testing"

	"lcasgd/internal/core"
	"lcasgd/internal/rng"
)

// TestWorkerIterationZeroAllocSteadyState pins the full worker-local
// iteration — pull (weights + BN install + workspace reset), forward,
// compensated backward, BN stats refresh and fold — to zero heap
// allocations once the buffers are warm, for both a dense MLP and the
// full conv/BN/residual stack. This is the tentpole regression guard:
// the previous implementation allocated fresh tensors in every layer of
// every pass.
func TestWorkerIterationZeroAllocSteadyState(t *testing.T) {
	for _, tc := range []struct {
		name string
		env  Env
	}{
		{"mlp", tinyEnvSeeded(ASGD, 1, 2)},
		{"resnet", convEnvSeeded(ASGD, 1, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep, w, bnAcc := benchReplica(tc.env)
			iter := func() {
				rep.pull(w, bnAcc)
				rep.forward()
				rep.backward(1.25) // compensated path, like LC-ASGD
				bnAcc.Update(rep.stats())
			}
			// Warm across an epoch wrap so the reshuffle path is exercised.
			for i := 0; i < 12; i++ {
				iter()
			}
			if a := testing.AllocsPerRun(20, iter); a != 0 {
				t.Fatalf("steady-state worker iteration allocates %v times, want 0", a)
			}
		})
	}
}

// TestReplicaPullResetsWorkspace pins the reset-on-recovery rule: every
// pull — including the re-pull a recovered worker performs after a crash
// cancelled its iteration mid-flight — must rewind the replica's workspace
// so the next iteration replays the same buffers instead of aliasing onto
// stale ones.
func TestReplicaPullResetsWorkspace(t *testing.T) {
	rep, w, bnAcc := benchReplica(tinyEnvSeeded(ASGD, 1, 2))
	rep.pull(w, bnAcc)
	gen := rep.ws.Generation()
	rep.forward() // mid-iteration: one live batch buffer
	if rep.ws.Live() != 1 {
		t.Fatalf("live workspace buffers mid-iteration: %d, want 1", rep.ws.Live())
	}
	rep.pull(w, bnAcc) // crash-recovery re-pull without finishing the iteration
	if rep.ws.Generation() != gen+1 {
		t.Fatalf("pull did not advance the workspace generation: %d -> %d", gen, rep.ws.Generation())
	}
	if rep.ws.Live() != 0 {
		t.Fatalf("live workspace buffers after re-pull: %d, want 0", rep.ws.Live())
	}
	// The recovered iteration must replay cleanly and not grow the arena.
	loss, grad := rep.gradient()
	if loss <= 0 || len(grad) != rep.nParams {
		t.Fatalf("recovered iteration produced loss %v, %d grads", loss, len(grad))
	}
	if rep.ws.Live() != 1 {
		t.Fatalf("workspace grew after recovery: %d live buffers", rep.ws.Live())
	}
}

// TestEvalZeroAllocSteadyState pins a warmed evaluation pass (per-shard
// workspace, label and prediction buffers) to zero allocations per batch
// loop. The tiny env's sizes are deliberately awkward for EvalBatch=150:
// Train=160 is a full batch plus a 10-sample remainder and Test=80 is a
// lone partial batch, so alternating the two datasets through the same
// shard nets exercises the remainder-padding path that keeps the layers'
// reuse buffers at one stable shape (an unpadded remainder would
// reallocate the whole layer zoo twice per pass).
func TestEvalZeroAllocSteadyState(t *testing.T) {
	env := tinyEnvSeeded(ASGD, 1, 2)
	cfg := env.Cfg.withDefaults()
	seedRng := rng.New(cfg.Seed)
	modelSeed := seedRng.Uint64()
	rep := newReplica(env.Build, modelSeed, env.Train, cfg.BatchSize, seedRng.SplitLabeled(300))
	bnAcc := core.NewBNAccumulator(cfg.BNMode, 0.2, rep.bns)
	w := make([]float64, rep.nParams)
	flatten(rep, w)
	ev := newEvaluator(env.Build, modelSeed, cfg.EvalBatch, seqBackend{})
	ev.errOn(env.Train, w, bnAcc) // warm pool + buffers
	ev.errOn(env.Test, w, bnAcc)
	iter := func() {
		ev.errOn(env.Train, w, bnAcc)
		ev.errOn(env.Test, w, bnAcc)
	}
	if a := testing.AllocsPerRun(5, iter); a > 4 {
		// errOn pays two tiny per-PASS allocations (the counts slice and the
		// ParallelFor closure); the per-BATCH path must be allocation-free,
		// which this bound catches: one extra alloc per batch would show up
		// as dozens per iteration.
		t.Fatalf("steady-state evaluation allocates %v times per train+test pass, want <= 4", a)
	}
}

// TestCommitZeroAllocSteadyState pins the server-side commit paths to zero
// heap allocations once warm: the PS path (staleness accounting, server
// update, curve-record check, relaunch gate) and the decentralized gossip
// path (uniform partner draw, pairwise average with consensus-sum deltas,
// local step, lazy-refresh gate). The budget is zeroed so Commit's relaunch
// parks instead of arming the next iteration — the per-iteration dispatch
// closures are deliberately outside this guard; they amortize against a full
// forward/backward pass, while the paths pinned here run once per event at
// any fleet size.
func TestCommitZeroAllocSteadyState(t *testing.T) {
	newWarmEngine := func(algo Algo, workers int) *Engine {
		env := tinyEnvSeeded(algo, workers, 2)
		env.Cfg = env.Cfg.withDefaults()
		e := newEngine(env, strategyFor(env.Cfg))
		t.Cleanup(func() { e.backend.Close() })
		e.strategy.Setup(e)
		e.srv.target = 0
		return e
	}
	t.Run("ps", func(t *testing.T) {
		e := newWarmEngine(ASGD, 2)
		grad := make([]float64, e.NParams())
		for i := range grad {
			grad[i] = 1e-3
		}
		commit := func() { e.Commit(0, grad, 0) }
		commit() // warm: first commit records the epoch-0 curve point
		if a := testing.AllocsPerRun(20, commit); a != 0 {
			t.Fatalf("steady-state PS commit allocates %v times, want 0", a)
		}
	})
	t.Run("gossip", func(t *testing.T) {
		e := newWarmEngine(ADPSGD, 4)
		grad := make([]float64, e.NParams())
		for i := range grad {
			grad[i] = 1e-3
		}
		commit := func() { e.GossipCommit(1, grad, 0) }
		commit()
		if a := testing.AllocsPerRun(20, commit); a != 0 {
			t.Fatalf("steady-state gossip commit allocates %v times, want 0", a)
		}
	})
}
