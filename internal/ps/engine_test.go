package ps

import (
	"sort"
	"sync"
	"testing"

	"lcasgd/internal/scenario"
)

// allAlgos is the full algorithm matrix: the paper's five plus the post-
// paper additions, including the decentralized AD-PSGD — every equivalence,
// scenario, resume and fingerprint test quantifies over it.
var allAlgos = []Algo{SGD, SSGD, ASGD, SAASGD, DCASGD, LCASGD, ADPSGD}

// equivalenceScenarios are the non-trivial timelines every algorithm must
// stay backend-bit-identical under: overlapping crashes with recoveries on
// top of a periodic congestion phase, and an elastic fleet that starts
// small, grows, loses its first worker, and gets it back. Times are tuned
// to the tiny test environment (iterations ~30 virtual ms, runs a few
// hundred ms).
func equivalenceScenarios() []*scenario.Scenario {
	return []*scenario.Scenario{
		{
			Name: "crash-recovery",
			Events: []scenario.Event{
				{At: 40, Kind: scenario.Crash, Worker: 1},
				{At: 45, Kind: scenario.Crash, Worker: 0},
				{At: 60, Period: 90, Kind: scenario.PhaseShift, Worker: -1, CompScale: 1.8, CommScale: 2.2},
				{At: 70, Kind: scenario.Crash, Worker: 2},
				{At: 95, Kind: scenario.Recover, Worker: 0},
				{At: 105, Period: 90, Kind: scenario.PhaseShift, Worker: -1, CompScale: 1, CommScale: 1},
				{At: 110, Kind: scenario.Recover, Worker: 1},
				{At: 150, Kind: scenario.Recover, Worker: 2},
			},
		},
		{
			Name:           "elastic",
			InitialWorkers: 2,
			Events: []scenario.Event{
				{At: 30, Kind: scenario.Join, Worker: 2},
				{At: 55, Kind: scenario.PhaseShift, Worker: 0, CompScale: 2.5, CommScale: 1.5},
				{At: 60, Kind: scenario.Join, Worker: 3},
				{At: 120, Kind: scenario.Leave, Worker: 0},
				{At: 200, Kind: scenario.Join, Worker: 0},
			},
		},
		{
			// Network partitions overlapping a crash: worker 1 computes
			// behind a cut while worker 2 is down, then both rejoin; worker
			// 0 rides a periodic partition/heal cycle for the rest of the
			// run (on a one-replica SGD fleet only the worker-0 events
			// survive compilation, so the budget still completes).
			Name: "partition-heal",
			Events: []scenario.Event{
				{At: 50, Kind: scenario.Partition, Worker: 1},
				{At: 80, Kind: scenario.Crash, Worker: 2},
				{At: 130, Kind: scenario.Heal, Worker: 1},
				{At: 160, Kind: scenario.Recover, Worker: 2},
				{At: 200, Period: 150, Kind: scenario.Partition, Worker: 0},
				{At: 260, Period: 150, Kind: scenario.Heal, Worker: 0},
			},
		},
	}
}

// assertBackendEquivalent runs env on both backends and requires the
// Results to match bit for bit.
func assertBackendEquivalent(t *testing.T, label string, mk func() Env) {
	t.Helper()
	seq := mk()
	seq.Cfg.Backend = BackendSequential
	conc := mk()
	conc.Cfg.Backend = BackendConcurrent
	a, b := Run(seq), Run(conc)
	assertResultsEqual(t, label, a, b)
}

// assertResultsEqual requires two Results to match bit for bit on every
// deterministic field (wall-clock predictor timings excluded — they measure
// the host, not the run).
func assertResultsEqual(t *testing.T, label string, a, b Result) {
	t.Helper()
	if len(a.Points) != len(b.Points) {
		t.Fatalf("%s: point counts differ: %d vs %d", label, len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("%s: point %d differs: %+v vs %+v", label, i, a.Points[i], b.Points[i])
		}
	}
	if a.VirtualMs != b.VirtualMs {
		t.Fatalf("%s: virtual clocks differ: %v vs %v", label, a.VirtualMs, b.VirtualMs)
	}
	if a.Updates != b.Updates {
		t.Fatalf("%s: update counts differ: %d vs %d", label, a.Updates, b.Updates)
	}
	if a.MeanStaleness != b.MeanStaleness || a.MaxStaleness != b.MaxStaleness {
		t.Fatalf("%s: staleness differs: (%v,%d) vs (%v,%d)",
			label, a.MeanStaleness, a.MaxStaleness, b.MeanStaleness, b.MaxStaleness)
	}
	if a.ScenarioEvents != b.ScenarioEvents {
		t.Fatalf("%s: applied scenario events differ: %d vs %d", label, a.ScenarioEvents, b.ScenarioEvents)
	}
	if a.FinalTrainErr != b.FinalTrainErr || a.FinalTestErr != b.FinalTestErr {
		t.Fatalf("%s: final errors differ: (%v,%v) vs (%v,%v)",
			label, a.FinalTrainErr, a.FinalTestErr, b.FinalTrainErr, b.FinalTestErr)
	}
	if len(a.LossTrace) != len(b.LossTrace) || len(a.StepTrace) != len(b.StepTrace) {
		t.Fatalf("%s: predictor trace lengths differ", label)
	}
	for i := range a.LossTrace {
		if a.LossTrace[i] != b.LossTrace[i] {
			t.Fatalf("%s: loss trace point %d differs", label, i)
		}
	}
	for i := range a.StepTrace {
		if a.StepTrace[i] != b.StepTrace[i] {
			t.Fatalf("%s: step trace point %d differs", label, i)
		}
	}
}

// TestBackendEquivalence is the engine's central guarantee: for every
// algorithm and fleet size, the concurrent backend produces a bit-identical
// Result (curve points, virtual clock, update counts, staleness, predictor
// traces) to the sequential simulator, because all shared state still
// mutates on the event loop in simulated-clock order.
func TestBackendEquivalence(t *testing.T) {
	for _, algo := range allAlgos {
		for _, m := range []int{1, 4, 8} {
			if algo == SGD && m != 1 {
				continue // SGD pins its fleet to one replica
			}
			algo, m := algo, m
			assertBackendEquivalent(t, string(algo)+"/stationary", func() Env {
				return tinyEnvSeeded(algo, m, 2)
			})
		}
	}
}

// TestBackendEquivalenceUnderScenarios extends the guarantee to fleet
// churn: crashes with recoveries and elastic resizes pause, retire and
// admit worker lanes mid-run, and both backends must still agree bit for
// bit — lane lifecycle is pure event-loop state.
func TestBackendEquivalenceUnderScenarios(t *testing.T) {
	for _, scn := range equivalenceScenarios() {
		for _, algo := range allAlgos {
			algo, scn := algo, scn
			m := 4
			if algo == SGD {
				m = 1
			}
			assertBackendEquivalent(t, string(algo)+"/"+scn.Name, func() Env {
				env := tinyEnvSeeded(algo, m, 2)
				env.Cfg.Scenario = scn
				return env
			})
		}
	}
}

// toyStrategy demonstrates the extension point: a sixth algorithm is just a
// Strategy. It is "local SGD with immediate commit" — every worker applies
// its own gradient after one compute delay, no communication modeled.
type toyStrategy struct{}

func (toyStrategy) Algo() Algo    { return "TOY" }
func (toyStrategy) Setup(*Engine) {}
func (toyStrategy) Launch(e *Engine, m int) {
	e.Pull(m)
	wait := e.DispatchGradient(m)
	e.After(e.CompSample(m), func() {
		if e.Done() {
			return
		}
		wait()
		e.FoldStats(m)
		e.Commit(m, e.Gradient(m), 1)
	})
}
func (toyStrategy) Finish(*Engine, *Result) {}

// unregisterStrategy removes a registered algorithm so registration tests
// stay re-runnable (RegisterStrategy rejects duplicates).
func unregisterStrategy(algo Algo) {
	strategyMu.Lock()
	delete(strategies, algo)
	strategyMu.Unlock()
}

// TestRegisterToyStrategy proves a new algorithm needs only the Strategy
// interface: register, run through the generic engine, and train — on both
// backends, with identical results, since equivalence is an engine property
// strategies inherit for free.
func TestRegisterToyStrategy(t *testing.T) {
	RegisterStrategy("TOY", func(Config) Strategy { return toyStrategy{} })
	t.Cleanup(func() { unregisterStrategy("TOY") })
	env := tinyEnvSeeded("TOY", 4, 4)
	res := Run(env)
	if res.Algo != "TOY" {
		t.Fatalf("result algo %q", res.Algo)
	}
	if len(res.Points) < 2 {
		t.Fatalf("toy strategy produced %d points", len(res.Points))
	}
	if res.FinalTrainErr >= res.Points[0].TrainErr {
		t.Fatalf("toy strategy did not learn: %v -> %v", res.Points[0].TrainErr, res.FinalTrainErr)
	}
	conc := tinyEnvSeeded("TOY", 4, 4)
	conc.Cfg.Backend = BackendConcurrent
	res2 := Run(conc)
	if len(res.Points) != len(res2.Points) {
		t.Fatal("toy strategy not backend-equivalent")
	}
	for i := range res.Points {
		if res.Points[i] != res2.Points[i] {
			t.Fatalf("toy strategy point %d differs across backends", i)
		}
	}
}

func TestRegisterStrategyRejectsDuplicate(t *testing.T) {
	RegisterStrategy("dup-probe", func(Config) Strategy { return toyStrategy{} })
	t.Cleanup(func() { unregisterStrategy("dup-probe") })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	RegisterStrategy("dup-probe", func(Config) Strategy { return toyStrategy{} })
}

func TestRegisterStrategyRejectsEmptyName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty algorithm name")
		}
	}()
	RegisterStrategy("", func(Config) Strategy { return toyStrategy{} })
}

func TestRegisterStrategyRejectsNilFactory(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil factory")
		}
	}()
	RegisterStrategy("nil-factory-probe", nil)
}

func TestRunPanicsOnUnknownBackend(t *testing.T) {
	e := tinyEnvSeeded(SGD, 1, 1)
	e.Cfg.Backend = "bogus"
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(e)
}

func TestSGDIgnoresWorkerCount(t *testing.T) {
	// Sequential SGD pins its fleet to one replica, so Workers is inert.
	a := Run(tinyEnvSeeded(SGD, 1, 2))
	b := Run(tinyEnvSeeded(SGD, 8, 2))
	if len(a.Points) != len(b.Points) {
		t.Fatal("SGD result depends on Workers")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("SGD point %d depends on Workers", i)
		}
	}
}

// --- backend unit tests ---

func TestConcurrentBackendLaneOrdering(t *testing.T) {
	be := newConcBackend(2)
	defer be.Close()
	var mu sync.Mutex
	var order []int
	var waits []func()
	for i := 0; i < 20; i++ {
		i := i
		waits = append(waits, be.Dispatch(0, func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}))
	}
	for _, w := range waits {
		w()
	}
	if !sort.IntsAreSorted(order) {
		t.Fatalf("lane tasks ran out of dispatch order: %v", order)
	}
}

func TestConcurrentBackendParallelForCoversAllIndices(t *testing.T) {
	be := newConcBackend(1)
	defer be.Close()
	const n = 37
	hits := make([]int, n)
	be.ParallelFor(n, func(i int) { hits[i]++ })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestSequentialBackendBasics(t *testing.T) {
	var be Backend = seqBackend{}
	ran := false
	wait := be.Dispatch(0, func() { ran = true })
	wait()
	if !ran {
		t.Fatal("sequential dispatch did not run inline")
	}
	sum := 0
	be.ParallelFor(5, func(i int) { sum += i })
	if sum != 10 {
		t.Fatalf("ParallelFor sum %d", sum)
	}
	if be.Parallelism() != 1 || be.Kind() != BackendSequential {
		t.Fatal("sequential backend misdescribes itself")
	}
}

func TestBackendDefaultsToSequential(t *testing.T) {
	if cfg := (Config{Epochs: 1}).withDefaults(); cfg.Backend != BackendSequential {
		t.Fatalf("default backend %q", cfg.Backend)
	}
	if newBackend("", 4).Kind() != BackendSequential {
		t.Fatal("empty kind must map to sequential")
	}
}
