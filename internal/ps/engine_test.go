package ps

import (
	"sort"
	"sync"
	"testing"
)

// TestBackendEquivalence is the engine's central guarantee: for every
// algorithm and fleet size, the concurrent backend produces a bit-identical
// Result (curve points, virtual clock, update counts, staleness, predictor
// traces) to the sequential simulator, because all shared state still
// mutates on the event loop in simulated-clock order.
func TestBackendEquivalence(t *testing.T) {
	for _, algo := range []Algo{SGD, SSGD, ASGD, DCASGD, LCASGD} {
		for _, m := range []int{1, 4, 8} {
			if algo == SGD && m != 1 {
				continue // SGD pins its fleet to one replica
			}
			seq := tinyEnvSeeded(algo, m, 2)
			seq.Cfg.Backend = BackendSequential
			conc := tinyEnvSeeded(algo, m, 2)
			conc.Cfg.Backend = BackendConcurrent
			a, b := Run(seq), Run(conc)

			if len(a.Points) != len(b.Points) {
				t.Fatalf("%s M=%d: point counts differ: %d vs %d", algo, m, len(a.Points), len(b.Points))
			}
			for i := range a.Points {
				if a.Points[i] != b.Points[i] {
					t.Fatalf("%s M=%d: point %d differs: %+v vs %+v", algo, m, i, a.Points[i], b.Points[i])
				}
			}
			if a.VirtualMs != b.VirtualMs {
				t.Fatalf("%s M=%d: virtual clocks differ: %v vs %v", algo, m, a.VirtualMs, b.VirtualMs)
			}
			if a.Updates != b.Updates {
				t.Fatalf("%s M=%d: update counts differ: %d vs %d", algo, m, a.Updates, b.Updates)
			}
			if a.MeanStaleness != b.MeanStaleness {
				t.Fatalf("%s M=%d: staleness differs: %v vs %v", algo, m, a.MeanStaleness, b.MeanStaleness)
			}
			if a.FinalTrainErr != b.FinalTrainErr || a.FinalTestErr != b.FinalTestErr {
				t.Fatalf("%s M=%d: final errors differ: (%v,%v) vs (%v,%v)",
					algo, m, a.FinalTrainErr, a.FinalTestErr, b.FinalTrainErr, b.FinalTestErr)
			}
			if len(a.LossTrace) != len(b.LossTrace) || len(a.StepTrace) != len(b.StepTrace) {
				t.Fatalf("%s M=%d: predictor trace lengths differ", algo, m)
			}
			for i := range a.LossTrace {
				if a.LossTrace[i] != b.LossTrace[i] {
					t.Fatalf("%s M=%d: loss trace point %d differs", algo, m, i)
				}
			}
		}
	}
}

// toyStrategy demonstrates the extension point: a sixth algorithm is just a
// Strategy. It is "local SGD with immediate commit" — every worker applies
// its own gradient after one compute delay, no communication modeled.
type toyStrategy struct{}

func (toyStrategy) Algo() Algo    { return "TOY" }
func (toyStrategy) Setup(*Engine) {}
func (toyStrategy) Launch(e *Engine, m int) {
	e.Pull(m)
	wait := e.DispatchGradient(m)
	e.After(e.CompSample(m), func() {
		if e.Done() {
			return
		}
		wait()
		e.FoldStats(m)
		e.Commit(m, e.Gradient(m), 1)
	})
}
func (toyStrategy) Finish(*Engine, *Result) {}

// TestRegisterToyStrategy proves a new algorithm needs only the Strategy
// interface: register, run through the generic engine, and train — on both
// backends, with identical results, since equivalence is an engine property
// strategies inherit for free.
func TestRegisterToyStrategy(t *testing.T) {
	RegisterStrategy("TOY", func(Config) Strategy { return toyStrategy{} })
	env := tinyEnvSeeded("TOY", 4, 4)
	res := Run(env)
	if res.Algo != "TOY" {
		t.Fatalf("result algo %q", res.Algo)
	}
	if len(res.Points) < 2 {
		t.Fatalf("toy strategy produced %d points", len(res.Points))
	}
	if res.FinalTrainErr >= res.Points[0].TrainErr {
		t.Fatalf("toy strategy did not learn: %v -> %v", res.Points[0].TrainErr, res.FinalTrainErr)
	}
	conc := tinyEnvSeeded("TOY", 4, 4)
	conc.Cfg.Backend = BackendConcurrent
	res2 := Run(conc)
	if len(res.Points) != len(res2.Points) {
		t.Fatal("toy strategy not backend-equivalent")
	}
	for i := range res.Points {
		if res.Points[i] != res2.Points[i] {
			t.Fatalf("toy strategy point %d differs across backends", i)
		}
	}
}

func TestRunPanicsOnUnknownBackend(t *testing.T) {
	e := tinyEnvSeeded(SGD, 1, 1)
	e.Cfg.Backend = "bogus"
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(e)
}

func TestSGDIgnoresWorkerCount(t *testing.T) {
	// Sequential SGD pins its fleet to one replica, so Workers is inert.
	a := Run(tinyEnvSeeded(SGD, 1, 2))
	b := Run(tinyEnvSeeded(SGD, 8, 2))
	if len(a.Points) != len(b.Points) {
		t.Fatal("SGD result depends on Workers")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("SGD point %d depends on Workers", i)
		}
	}
}

// --- backend unit tests ---

func TestConcurrentBackendLaneOrdering(t *testing.T) {
	be := newConcBackend(2)
	defer be.Close()
	var mu sync.Mutex
	var order []int
	var waits []func()
	for i := 0; i < 20; i++ {
		i := i
		waits = append(waits, be.Dispatch(0, func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}))
	}
	for _, w := range waits {
		w()
	}
	if !sort.IntsAreSorted(order) {
		t.Fatalf("lane tasks ran out of dispatch order: %v", order)
	}
}

func TestConcurrentBackendParallelForCoversAllIndices(t *testing.T) {
	be := newConcBackend(1)
	defer be.Close()
	const n = 37
	hits := make([]int, n)
	be.ParallelFor(n, func(i int) { hits[i]++ })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestSequentialBackendBasics(t *testing.T) {
	var be Backend = seqBackend{}
	ran := false
	wait := be.Dispatch(0, func() { ran = true })
	wait()
	if !ran {
		t.Fatal("sequential dispatch did not run inline")
	}
	sum := 0
	be.ParallelFor(5, func(i int) { sum += i })
	if sum != 10 {
		t.Fatalf("ParallelFor sum %d", sum)
	}
	if be.Parallelism() != 1 || be.Kind() != BackendSequential {
		t.Fatal("sequential backend misdescribes itself")
	}
}

func TestBackendDefaultsToSequential(t *testing.T) {
	if cfg := (Config{Epochs: 1}).withDefaults(); cfg.Backend != BackendSequential {
		t.Fatalf("default backend %q", cfg.Backend)
	}
	if newBackend("", 4).Kind() != BackendSequential {
		t.Fatal("empty kind must map to sequential")
	}
}
