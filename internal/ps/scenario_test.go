package ps

import (
	"testing"

	"lcasgd/internal/scenario"
)

// withScenario returns the tiny environment with a scenario attached.
func withScenario(algo Algo, workers, epochs int, scn *scenario.Scenario) Env {
	env := tinyEnvSeeded(algo, workers, epochs)
	env.Cfg.Scenario = scn
	return env
}

func TestSAASGDLearnsAndTracksStaleness(t *testing.T) {
	res := Run(tinyEnvSeeded(SAASGD, 4, 6))
	if res.Algo != SAASGD {
		t.Fatalf("result algo %q", res.Algo)
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.TrainErr >= first.TrainErr {
		t.Fatalf("SA-ASGD did not learn: %v -> %v", first.TrainErr, last.TrainErr)
	}
	if res.MeanStaleness <= 0 || res.MaxStaleness <= 0 {
		t.Fatalf("staleness not tracked: mean %v max %d", res.MeanStaleness, res.MaxStaleness)
	}
	if float64(res.MaxStaleness) < res.MeanStaleness {
		t.Fatalf("max staleness %d below mean %v", res.MaxStaleness, res.MeanStaleness)
	}
}

func TestSAASGDDiffersFromASGD(t *testing.T) {
	// The staleness modulation must change the trajectory relative to plain
	// ASGD (same seeds, same schedule, same cluster).
	sa := Run(tinyEnvSeeded(SAASGD, 4, 3))
	asgd := Run(tinyEnvSeeded(ASGD, 4, 3))
	same := true
	for i := range sa.Points {
		if sa.Points[i].TestErr != asgd.Points[i].TestErr {
			same = false
			break
		}
	}
	if same {
		t.Fatal("SA-ASGD trajectory identical to ASGD; staleness modulation inert")
	}
}

func TestMaxStalenessAtLeastCeilOfMean(t *testing.T) {
	res := Run(tinyEnvSeeded(ASGD, 8, 3))
	if res.MaxStaleness < int(res.MeanStaleness) {
		t.Fatalf("max staleness %d vs mean %v", res.MaxStaleness, res.MeanStaleness)
	}
}

func TestScenarioPhaseShiftSlowsRun(t *testing.T) {
	slow := &scenario.Scenario{
		Name: "congested",
		Events: []scenario.Event{
			{At: 1, Kind: scenario.PhaseShift, Worker: -1, CompScale: 3, CommScale: 3},
		},
	}
	base := Run(tinyEnvSeeded(ASGD, 4, 2))
	congested := Run(withScenario(ASGD, 4, 2, slow))
	if congested.ScenarioEvents != 1 {
		t.Fatalf("applied events %d, want 1", congested.ScenarioEvents)
	}
	if congested.Updates != base.Updates {
		t.Fatalf("phase shift changed the sample budget: %d vs %d", congested.Updates, base.Updates)
	}
	if congested.VirtualMs <= base.VirtualMs {
		t.Fatalf("3x congestion did not slow the run: %v vs %v", congested.VirtualMs, base.VirtualMs)
	}
}

func TestScenarioCrashRecoveryCompletesBudget(t *testing.T) {
	scn := &scenario.Scenario{
		Name: "blip",
		Events: []scenario.Event{
			{At: 40, Kind: scenario.Crash, Worker: 1},
			{At: 120, Kind: scenario.Recover, Worker: 1},
		},
	}
	base := Run(tinyEnvSeeded(ASGD, 4, 3))
	res := Run(withScenario(ASGD, 4, 3, scn))
	// Crash + recovery loses in-flight work but not sample budget: the
	// surviving workers (and the recovered one) still consume every batch.
	if res.Updates != base.Updates {
		t.Fatalf("updates %d, want the full budget %d", res.Updates, base.Updates)
	}
	if res.ScenarioEvents != 2 {
		t.Fatalf("applied events %d, want 2", res.ScenarioEvents)
	}
}

func TestScenarioPermanentCrashTruncatesRun(t *testing.T) {
	// Killing the whole fleet with no recovery must truncate the run
	// deterministically — fewer updates, non-empty curve, no hang.
	events := make([]scenario.Event, 0, 4)
	for m := 0; m < 4; m++ {
		events = append(events, scenario.Event{At: 50, Kind: scenario.Crash, Worker: m})
	}
	scn := &scenario.Scenario{Name: "blackout", Events: events}
	base := Run(tinyEnvSeeded(ASGD, 4, 3))
	res := Run(withScenario(ASGD, 4, 3, scn))
	if res.Updates >= base.Updates {
		t.Fatalf("blackout did not truncate: %d vs %d updates", res.Updates, base.Updates)
	}
	if len(res.Points) == 0 {
		t.Fatal("truncated run recorded no curve points")
	}
}

func TestScenarioPeriodicEventsStopWhenFleetDies(t *testing.T) {
	// A periodic event must not keep the clock alive forever once the fleet
	// is permanently dead and nothing can revive it; this test hangs if the
	// stall guard is broken.
	scn := &scenario.Scenario{
		Name: "dead-with-heartbeat",
		Events: []scenario.Event{
			{At: 30, Kind: scenario.Crash, Worker: 0},
			{At: 10, Period: 15, Kind: scenario.PhaseShift, Worker: -1, CompScale: 2, CommScale: 2},
		},
	}
	res := Run(withScenario(SGD, 1, 2, scn))
	if len(res.Points) == 0 {
		t.Fatal("no curve points from truncated run")
	}
}

func TestScenarioElasticFleetGrows(t *testing.T) {
	scn := &scenario.Scenario{
		Name:           "scale-up",
		InitialWorkers: 1,
		Events: []scenario.Event{
			{At: 40, Kind: scenario.Join, Worker: 1},
			{At: 80, Kind: scenario.Join, Worker: 2},
			{At: 120, Kind: scenario.Join, Worker: 3},
		},
	}
	base := Run(tinyEnvSeeded(ASGD, 4, 3))
	res := Run(withScenario(ASGD, 4, 3, scn))
	if res.Updates != base.Updates {
		t.Fatalf("elastic run missed budget: %d vs %d", res.Updates, base.Updates)
	}
	if res.ScenarioEvents != 3 {
		t.Fatalf("applied events %d, want 3 joins", res.ScenarioEvents)
	}
	// Ramping from one worker, the early phase is nearly staleness-free, so
	// the run must be virtually slower than the full fleet from the start.
	if res.VirtualMs <= base.VirtualMs {
		t.Fatalf("scale-up run %vms not slower than full fleet %vms", res.VirtualMs, base.VirtualMs)
	}
}

func TestScenarioSkipsOutOfRangeWorkers(t *testing.T) {
	// One scenario serves any fleet size: events for ranks beyond the fleet
	// are skipped at compile time. SGD pins the fleet to a single replica,
	// so only the phase shift and worker-0 events apply.
	scn := &scenario.Scenario{
		Name: "oversized",
		Events: []scenario.Event{
			{At: 20, Kind: scenario.Crash, Worker: 7},
			{At: 30, Kind: scenario.Recover, Worker: 7},
			{At: 40, Kind: scenario.PhaseShift, Worker: -1, CompScale: 1.5, CommScale: 1},
		},
	}
	res := Run(withScenario(SGD, 1, 2, scn))
	if res.ScenarioEvents != 1 {
		t.Fatalf("applied events %d, want only the fleet-wide phase shift", res.ScenarioEvents)
	}
	if res.Updates == 0 {
		t.Fatal("run did not train")
	}
}

func TestScenarioRedundantEventsIgnored(t *testing.T) {
	scn := &scenario.Scenario{
		Name: "redundant",
		Events: []scenario.Event{
			{At: 20, Kind: scenario.Recover, Worker: 0}, // already active
			{At: 30, Kind: scenario.Crash, Worker: 1},
			{At: 40, Kind: scenario.Crash, Worker: 1}, // already down
			{At: 60, Kind: scenario.Recover, Worker: 1},
		},
	}
	res := Run(withScenario(ASGD, 4, 2, scn))
	if res.ScenarioEvents != 2 {
		t.Fatalf("applied events %d, want 2 (crash + recover)", res.ScenarioEvents)
	}
}

func TestScenarioDeterminism(t *testing.T) {
	scn := &scenario.Scenario{
		Name: "churn",
		Events: []scenario.Event{
			{At: 30, Kind: scenario.Crash, Worker: 1},
			{At: 50, Period: 60, Kind: scenario.PhaseShift, Worker: -1, CompScale: 2, CommScale: 2},
			{At: 80, Period: 60, Kind: scenario.PhaseShift, Worker: -1, CompScale: 1, CommScale: 1},
			{At: 90, Kind: scenario.Recover, Worker: 1},
		},
	}
	for _, algo := range []Algo{SSGD, SAASGD, LCASGD} {
		a := Run(withScenario(algo, 4, 2, scn))
		b := Run(withScenario(algo, 4, 2, scn))
		if len(a.Points) != len(b.Points) || a.VirtualMs != b.VirtualMs || a.Updates != b.Updates {
			t.Fatalf("%s: scenario run not deterministic", algo)
		}
		for i := range a.Points {
			if a.Points[i] != b.Points[i] {
				t.Fatalf("%s: point %d differs across identical scenario runs", algo, i)
			}
		}
	}
}

func TestSSGDBarrierSurvivesArrivalCrashRecoverChurn(t *testing.T) {
	// High-frequency crash/recover cycles deliberately misaligned with the
	// ~40ms barrier rounds, so crashes land in every phase of a round —
	// including after a worker's arrival with recovery before the round
	// closes, the window where closeRound's restart list names the worker
	// twice. The membership guard in Launch must swallow the duplicate; the
	// arrive invariant panics (failing this test) if a duplicate iteration
	// ever gets dispatched.
	scn := &scenario.Scenario{
		Name: "arrival-churn",
		Events: []scenario.Event{
			{At: 20, Period: 37, Kind: scenario.Crash, Worker: 1},
			{At: 27, Period: 37, Kind: scenario.Recover, Worker: 1},
			{At: 33, Period: 53, Kind: scenario.Crash, Worker: 3},
			{At: 41, Period: 53, Kind: scenario.Recover, Worker: 3},
		},
	}
	res := Run(withScenario(SSGD, 4, 3, scn))
	if res.Updates == 0 || len(res.Points) == 0 {
		t.Fatal("churned SSGD run produced nothing")
	}
	if got := res.Points[len(res.Points)-1].Epoch; got < 3 {
		t.Fatalf("churned SSGD run stopped at epoch %d, want the full budget", got)
	}
}

func TestSSGDArrivedWorkerCrashRecoverWithinRound(t *testing.T) {
	// White-box: force the narrowest churn window — a worker crashes after
	// its barrier arrival and recovers before the round closes. closeRound's
	// restart list then names it twice (as an arrival and as a parked
	// admit); Launch must refuse the duplicate or the worker dispatches two
	// iterations for one membership, and the stray arrival trips the
	// barrier invariant (panic) in a later round.
	env := tinyEnvSeeded(SSGD, 4, 2)
	env.Cfg = env.Cfg.withDefaults()
	st := strategyFor(env.Cfg).(*ssgdStrategy)
	e := newEngine(env, st)
	defer e.backend.Close()
	st.Setup(e)
	for m := range e.reps {
		e.launch(m)
	}
	for len(st.arrived) == 0 {
		if !e.clock.Step() {
			t.Fatal("run drained before any barrier arrival")
		}
	}
	m := st.arrived[0]
	e.retire(m)
	e.admit(m)
	if len(st.pending) != 1 || st.pending[0] != m {
		t.Fatalf("recovered mid-round worker not parked: pending %v", st.pending)
	}
	e.clock.Run(func() bool { return e.srv.done() })
	if e.srv.batches < e.srv.target {
		t.Fatalf("run consumed %d of %d batches", e.srv.batches, e.srv.target)
	}
}

func TestRunPanicsOnInvalidScenario(t *testing.T) {
	env := withScenario(ASGD, 4, 1, &scenario.Scenario{
		Name:   "bad",
		Events: []scenario.Event{{At: -5, Kind: scenario.Crash, Worker: 0}},
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid scenario")
		}
	}()
	Run(env)
}

func TestSSGDBarrierSurvivesMidRoundCrash(t *testing.T) {
	// Crash a worker early (almost surely mid-round) and never recover it:
	// the barrier must shrink to the survivors and still consume the whole
	// sample budget.
	scn := &scenario.Scenario{
		Name:   "ssgd-crash",
		Events: []scenario.Event{{At: 35, Kind: scenario.Crash, Worker: 2}},
	}
	base := Run(tinyEnvSeeded(SSGD, 4, 3))
	res := Run(withScenario(SSGD, 4, 3, scn))
	if res.ScenarioEvents != 1 {
		t.Fatalf("crash not applied: %d events", res.ScenarioEvents)
	}
	// 3 epochs × 8 batches = 24 batches. Full rounds consume 4, the
	// post-crash rounds 3, so strictly more rounds (updates) than the
	// stationary run are needed to drain the same budget.
	if res.Updates <= base.Updates {
		t.Fatalf("3-worker rounds should need more updates: %d vs %d", res.Updates, base.Updates)
	}
	if got := res.Points[len(res.Points)-1].Epoch; got < base.Points[len(base.Points)-1].Epoch {
		t.Fatalf("crashed SSGD run did not reach final epoch: %d", got)
	}
}

func TestScenarioPartitionDropsCommitsButNotBudget(t *testing.T) {
	scn := &scenario.Scenario{
		Name: "cut",
		Events: []scenario.Event{
			{At: 40, Kind: scenario.Partition, Worker: 1},
			{At: 160, Kind: scenario.Heal, Worker: 1},
		},
	}
	base := Run(tinyEnvSeeded(ASGD, 4, 3))
	res := Run(withScenario(ASGD, 4, 3, scn))
	if res.ScenarioEvents != 2 {
		t.Fatalf("applied events %d, want 2", res.ScenarioEvents)
	}
	// Dropped commits consume no sample budget: the run still processes
	// every batch, it just takes longer in virtual time because worker 1's
	// compute during the cut was wasted.
	if res.Updates != base.Updates {
		t.Fatalf("partition changed the sample budget: %d vs %d", res.Updates, base.Updates)
	}
	if res.VirtualMs <= base.VirtualMs {
		t.Fatalf("wasted partition compute did not lengthen the run: %v vs %v", res.VirtualMs, base.VirtualMs)
	}
}

func TestScenarioPermanentPartitionParksWorker(t *testing.T) {
	// A partition with no heal ever coming parks the worker at its next
	// launch instead of spinning forever; the rest of the fleet finishes
	// the full budget.
	scn := &scenario.Scenario{
		Name:   "severed",
		Events: []scenario.Event{{At: 40, Kind: scenario.Partition, Worker: 1}},
	}
	base := Run(tinyEnvSeeded(ASGD, 4, 3))
	res := Run(withScenario(ASGD, 4, 3, scn))
	if res.Updates != base.Updates {
		t.Fatalf("updates %d, want full budget %d", res.Updates, base.Updates)
	}
}

func TestScenarioFullPartitionTruncatesRun(t *testing.T) {
	// Severing every worker with no heal must truncate deterministically —
	// parked workers schedule nothing, the clock drains, no hang.
	events := make([]scenario.Event, 0, 4)
	for m := 0; m < 4; m++ {
		events = append(events, scenario.Event{At: 50, Kind: scenario.Partition, Worker: m})
	}
	scn := &scenario.Scenario{Name: "island", Events: events}
	base := Run(tinyEnvSeeded(ASGD, 4, 3))
	res := Run(withScenario(ASGD, 4, 3, scn))
	if res.Updates >= base.Updates {
		t.Fatalf("full partition did not truncate: %d vs %d updates", res.Updates, base.Updates)
	}
	if len(res.Points) == 0 {
		t.Fatal("truncated run recorded no curve points")
	}
}

func TestScenarioPartitionedSSGDRoundStillCloses(t *testing.T) {
	// A partitioned SSGD participant arrives but contributes nothing; the
	// round must close over the remaining gradients and training completes.
	scn := &scenario.Scenario{
		Name: "cut-barrier",
		Events: []scenario.Event{
			{At: 40, Kind: scenario.Partition, Worker: 2},
			{At: 200, Kind: scenario.Heal, Worker: 2},
		},
	}
	res := Run(withScenario(SSGD, 4, 3, scn))
	if res.ScenarioEvents != 2 {
		t.Fatalf("applied events %d, want 2", res.ScenarioEvents)
	}
	if len(res.Points) < 2 {
		t.Fatalf("SSGD under partition produced %d points", len(res.Points))
	}
	last := res.Points[len(res.Points)-1]
	if last.TrainErr >= res.Points[0].TrainErr {
		t.Fatalf("SSGD under partition did not learn: %v -> %v", res.Points[0].TrainErr, last.TrainErr)
	}
}
