package ps

import (
	"lcasgd/internal/core"
	"lcasgd/internal/data"
	"lcasgd/internal/nn"
	"lcasgd/internal/rng"
)

// replica is one worker's private copy of the model plus its view of the
// shared dataset. All replicas are built from the same model seed so every
// algorithm starts from the identical random initialization, as the paper's
// experimental protocol requires.
type replica struct {
	net     *nn.Sequential
	bns     []*nn.BatchNorm
	params  []*nn.Param
	nParams int
	iter    *data.BatchIter
	ce      nn.SoftmaxCrossEntropy
	grad    []float64 // reusable flat gradient buffer
}

// newReplica builds a worker replica. modelSeed fixes the initialization;
// dataRng drives this worker's private batch order.
func newReplica(build func(*rng.RNG) *nn.Sequential, modelSeed uint64, ds *data.Dataset, batch int, dataRng *rng.RNG) *replica {
	net := build(rng.New(modelSeed))
	params := net.Params()
	return &replica{
		net:     net,
		bns:     net.BatchNorms(),
		params:  params,
		nParams: nn.ParamCount(params),
		iter:    data.NewBatchIter(ds, batch, dataRng),
		grad:    make([]float64, nn.ParamCount(params)),
	}
}

// pull installs the server's weights and global BN statistics, the worker
// side of Algorithm 1 lines 1–2.
func (r *replica) pull(w []float64, bnAcc *core.BNAccumulator) {
	nn.UnflattenValues(r.params, w)
	bnAcc.Apply(r.bns)
}

// forward takes the next mini-batch and runs the forward pass in training
// mode, returning the batch loss (Algorithm 1 line 4). BN layers capture
// their batch statistics as a side effect (lines 6–7).
func (r *replica) forward() float64 {
	x, y := r.iter.Next()
	out := r.net.Forward(x, true)
	return r.ce.Forward(out, y)
}

// backward runs backpropagation seeded with the given scale (Formula 5's
// compensation enters here, see core.CompensationScale) and returns the
// flattened gradient. The returned slice is reused across calls.
func (r *replica) backward(scale float64) []float64 {
	r.net.ZeroGrad()
	r.net.Backward(r.ce.Backward(scale))
	nn.FlattenGrads(r.grad, r.params)
	return r.grad
}

// gradient is forward+backward with no compensation, the whole local step
// of the non-LC algorithms. It returns the loss and the flat gradient.
func (r *replica) gradient() (float64, []float64) {
	loss := r.forward()
	return loss, r.backward(1)
}

// stats returns the batch-normalization statistics of the last forward.
func (r *replica) stats() []core.LayerStats {
	return core.CollectStats(r.bns)
}
