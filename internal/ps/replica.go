package ps

import (
	"lcasgd/internal/core"
	"lcasgd/internal/data"
	"lcasgd/internal/nn"
	"lcasgd/internal/rng"
	"lcasgd/internal/tensor"
)

// replica is one worker's private copy of the model plus its view of the
// shared dataset. All replicas are built from the same model seed so every
// algorithm starts from the identical random initialization, as the paper's
// experimental protocol requires.
//
// Memory model (see DESIGN.md): the replica owns a tensor.Workspace for its
// per-iteration batch buffers, the network's layers own their activation/
// gradient buffers, and the label/stats/gradient slices below are reused —
// so a steady-state iteration (pull + forward + backward + stats) performs
// zero heap allocations. The workspace resets at every pull, which is also
// the crash-recovery rule: a recovered worker's re-pull rewinds the arena,
// so a scenario that cancelled an iteration mid-flight cannot leave the
// next iteration aliased onto stale buffers.
type replica struct {
	net     *nn.Sequential
	bns     []*nn.BatchNorm
	params  []*nn.Param
	nParams int
	iter    *data.BatchIter
	ce      nn.SoftmaxCrossEntropy
	grad    []float64 // reusable flat gradient buffer

	ws       *tensor.Workspace
	batch    int
	features int
	y        []int             // reusable label buffer
	statsBuf []core.LayerStats // reusable BN statistics view
}

// newReplica builds a worker replica. modelSeed fixes the initialization;
// dataRng drives this worker's private batch order.
func newReplica(build func(*rng.RNG) *nn.Sequential, modelSeed uint64, ds *data.Dataset, batch int, dataRng *rng.RNG) *replica {
	net := build(rng.New(modelSeed))
	params := net.Params()
	bns := net.BatchNorms()
	return &replica{
		net:      net,
		bns:      bns,
		params:   params,
		nParams:  nn.ParamCount(params),
		iter:     data.NewBatchIter(ds, batch, dataRng),
		grad:     make([]float64, nn.ParamCount(params)),
		ws:       tensor.NewWorkspace(),
		batch:    batch,
		features: ds.Features(),
		y:        make([]int, batch),
		statsBuf: core.CollectStatsInto(nil, bns),
	}
}

// pull installs the server's weights and global BN statistics, the worker
// side of Algorithm 1 lines 1–2. It also resets the replica's workspace:
// every iteration starts from a rewound arena, so the same buffers replay
// in the same order — and a crash-recovery re-pull (the engine drains the
// orphaned lane task first) cannot alias the recovered iteration onto the
// cancelled one's buffers.
func (r *replica) pull(w []float64, bnAcc *core.BNAccumulator) {
	r.ws.Reset()
	nn.UnflattenValues(r.params, w)
	bnAcc.Apply(r.bns)
}

// forward takes the next mini-batch and runs the forward pass in training
// mode, returning the batch loss (Algorithm 1 line 4). BN layers capture
// their batch statistics as a side effect (lines 6–7).
func (r *replica) forward() float64 {
	x := r.ws.Get(r.batch, r.features)
	r.iter.NextInto(x, r.y)
	out := r.net.Forward(x, true)
	return r.ce.Forward(out, r.y)
}

// backward runs backpropagation seeded with the given scale (Formula 5's
// compensation enters here, see core.CompensationScale) and returns the
// flattened gradient. The returned slice is reused across calls.
func (r *replica) backward(scale float64) []float64 {
	r.net.ZeroGrad()
	r.net.Backward(r.ce.Backward(scale))
	nn.FlattenGrads(r.grad, r.params)
	return r.grad
}

// gradient is forward+backward with no compensation, the whole local step
// of the non-LC algorithms. It returns the loss and the flat gradient.
func (r *replica) gradient() (float64, []float64) {
	loss := r.forward()
	return loss, r.backward(1)
}

// stats returns the batch-normalization statistics of the last forward,
// refreshed in place into the replica's reused view.
func (r *replica) stats() []core.LayerStats {
	r.statsBuf = core.CollectStatsInto(r.statsBuf, r.bns)
	return r.statsBuf
}
