package ps

import (
	"bytes"
	"strings"
	"testing"

	"lcasgd/internal/scenario"
	"lcasgd/internal/telemetry"
)

// telemetryBytes renders a recorder the way the determinism contract is
// stated: the Chrome trace bytes and the deterministic metrics JSON.
func telemetryBytes(t *testing.T, rec *telemetry.Recorder, workers int) ([]byte, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, []telemetry.TraceRun{{Name: "run", Workers: workers, Events: rec.Events}}); err != nil {
		t.Fatalf("render trace: %v", err)
	}
	return buf.Bytes(), rec.Metrics.DeterministicJSON()
}

// telemetryAlgos is the cross-family subset the telemetry suites sweep: a
// per-worker commit path (ASGD), the barrier Apply path (SSGD), server-side
// strategy state (LC-ASGD), and decentralized gossip (AD-PSGD).
var telemetryAlgos = []Algo{ASGD, SSGD, LCASGD, ADPSGD}

// TestTelemetryBackendByteIdentity extends the backend-equivalence contract
// to the observability layer: the recorded trace and the deterministic
// metrics registry must be byte-identical whether the run executed on the
// sequential or the concurrent backend — under churn and with (sinkless)
// checkpoint barriers in the timeline.
func TestTelemetryBackendByteIdentity(t *testing.T) {
	scns := append([]*scenario.Scenario{nil}, equivalenceScenarios()...)
	for _, algo := range telemetryAlgos {
		for _, scn := range scns {
			name := "none"
			if scn != nil {
				name = scn.Name
			}
			label := string(algo) + "/" + name
			run := func(kind BackendKind) (*telemetry.Recorder, Result) {
				env := tinyEnvSeeded(algo, 4, 2)
				env.Cfg.Backend = kind
				env.Cfg.Scenario = scn
				env.Cfg.CheckpointEvery = 1
				env.Telemetry = telemetry.NewRecorder()
				return env.Telemetry, Run(env)
			}
			recSeq, resSeq := run(BackendSequential)
			recCon, resCon := run(BackendConcurrent)
			assertResultsEqual(t, label, resSeq, resCon)
			trSeq, mSeq := telemetryBytes(t, recSeq, 4)
			trCon, mCon := telemetryBytes(t, recCon, 4)
			if !bytes.Equal(trSeq, trCon) {
				t.Fatalf("%s: trace bytes differ across backends (%d vs %d bytes)", label, len(trSeq), len(trCon))
			}
			if !bytes.Equal(mSeq, mCon) {
				t.Fatalf("%s: metrics bytes differ across backends:\n%s\n%s", label, mSeq, mCon)
			}
			if len(recSeq.Events) == 0 {
				t.Fatalf("%s: run recorded no events", label)
			}
		}
	}
}

// TestTelemetryResumeByteIdentity extends the resume contract: telemetry
// state is checkpointed with the run (sections secTelMetrics/secTelTrace),
// so a run killed at a barrier and resumed with a fresh recorder must end
// with trace and metrics bytes identical to the uninterrupted run's — the
// restored prefix plus identically replayed remainder.
func TestTelemetryResumeByteIdentity(t *testing.T) {
	for _, algo := range telemetryAlgos {
		for _, scn := range append([]*scenario.Scenario{nil}, equivalenceScenarios()[0]) {
			name := "none"
			if scn != nil {
				name = scn.Name
			}
			label := string(algo) + "/" + name
			env := ckptEnv(algo, 4, 3, BackendSequential, scn)
			env.Telemetry = telemetry.NewRecorder()
			full, cks := runCapturing(env)
			if len(cks) == 0 {
				t.Fatalf("%s: no checkpoints emitted", label)
			}
			wantTrace, wantMetrics := telemetryBytes(t, env.Telemetry, 4)
			for _, ci := range []int{0, len(cks) - 1} {
				renv := ckptEnv(algo, 4, 3, BackendConcurrent, scn)
				renv.Telemetry = telemetry.NewRecorder()
				res, err := Resume(renv, cks[ci].Data)
				if err != nil {
					t.Fatalf("%s: resume from barrier %d: %v", label, ci, err)
				}
				assertResultsEqual(t, label, full, res)
				gotTrace, gotMetrics := telemetryBytes(t, renv.Telemetry, 4)
				if !bytes.Equal(wantTrace, gotTrace) {
					t.Fatalf("%s: trace bytes differ after resume from barrier %d (%d vs %d bytes)",
						label, ci, len(wantTrace), len(gotTrace))
				}
				if !bytes.Equal(wantMetrics, gotMetrics) {
					t.Fatalf("%s: metrics bytes differ after resume from barrier %d:\n%s\n%s",
						label, ci, wantMetrics, gotMetrics)
				}
			}
		}
	}
}

// TestTelemetryRefusesPresenceMismatch pins the failure mode a silent
// restore would hide: resuming a telemetry-free checkpoint with a recorder
// attached (or vice versa) must error, so callers fall back to a full rerun
// instead of producing telemetry missing its pre-barrier prefix.
func TestTelemetryRefusesPresenceMismatch(t *testing.T) {
	env := ckptEnv(ASGD, 2, 2, BackendSequential, nil)
	_, cks := runCapturing(env) // no recorder attached
	renv := ckptEnv(ASGD, 2, 2, BackendSequential, nil)
	renv.Telemetry = telemetry.NewRecorder()
	if _, err := Resume(renv, cks[0].Data); err == nil || !strings.Contains(err.Error(), "telemetry presence") {
		t.Fatalf("resume with recorder onto telemetry-free checkpoint: err = %v, want presence error", err)
	}
	// The failed attempt must roll the recorder back to pristine, so the
	// caller's fallback — a full re-run with the same recorder — binds it
	// cleanly and records the whole run (the trainer's resume path does
	// exactly this).
	if renv.Telemetry.Bound() {
		t.Fatal("failed resume left the recorder bound")
	}
	Run(renv)
	if !renv.Telemetry.Bound() || len(renv.Telemetry.Events) == 0 {
		t.Fatal("fallback rerun did not record into the rolled-back recorder")
	}

	env2 := ckptEnv(ASGD, 2, 2, BackendSequential, nil)
	env2.Telemetry = telemetry.NewRecorder()
	_, cks2 := runCapturing(env2)
	renv2 := ckptEnv(ASGD, 2, 2, BackendSequential, nil)
	if _, err := Resume(renv2, cks2[0].Data); err == nil || !strings.Contains(err.Error(), "telemetry presence") {
		t.Fatalf("resume without recorder onto telemetry checkpoint: err = %v, want presence error", err)
	}
}

// TestTelemetryIsPassive pins the observability layer's first law: a run
// with a recorder attached returns the bit-identical Result of the same run
// without one, churn and checkpoint barriers included.
func TestTelemetryIsPassive(t *testing.T) {
	for _, algo := range telemetryAlgos {
		env := tinyEnvSeeded(algo, 4, 2)
		env.Cfg.Scenario = equivalenceScenarios()[0]
		env.Cfg.CheckpointEvery = 1
		bare := Run(env)
		env2 := tinyEnvSeeded(algo, 4, 2)
		env2.Cfg.Scenario = equivalenceScenarios()[0]
		env2.Cfg.CheckpointEvery = 1
		env2.Telemetry = telemetry.NewRecorder()
		assertResultsEqual(t, string(algo), bare, Run(env2))
	}
}

// TestTelemetryScenarioEventsInTrace pins the churn-visibility acceptance
// criterion: every applied scenario event appears as a typed trace event on
// its worker lane, partition-window commit drops are traced and counted,
// and the scenario counter agrees with the Result's.
func TestTelemetryScenarioEventsInTrace(t *testing.T) {
	scn := &scenario.Scenario{
		Name: "churn",
		Events: []scenario.Event{
			{At: 30, Kind: scenario.PhaseShift, Worker: -1, CompScale: 1.5, CommScale: 1.5},
			{At: 40, Kind: scenario.Crash, Worker: 1},
			{At: 50, Kind: scenario.Partition, Worker: 2},
			{At: 120, Kind: scenario.Recover, Worker: 1},
			{At: 200, Kind: scenario.Heal, Worker: 2},
		},
	}
	env := tinyEnvSeeded(ASGD, 4, 2)
	env.Cfg.Scenario = scn
	env.Telemetry = telemetry.NewRecorder()
	res := Run(env)

	counts := map[telemetry.Kind]int{}
	for _, ev := range env.Telemetry.Events {
		counts[ev.Kind]++
	}
	for _, k := range []telemetry.Kind{
		telemetry.KPhaseShift, telemetry.KCrash, telemetry.KPartition,
		telemetry.KRecover, telemetry.KHeal,
	} {
		if counts[k] != 1 {
			t.Fatalf("trace has %d %v events, want 1", counts[k], k)
		}
	}
	if counts[telemetry.KCommit] == 0 || counts[telemetry.KLaunch] == 0 || counts[telemetry.KDispatch] == 0 {
		t.Fatalf("trace missing lifecycle events: %v", counts)
	}
	if counts[telemetry.KDrop] == 0 {
		t.Fatal("partition window dropped no commits in the trace")
	}
	m := env.Telemetry.Metrics
	var scnCounter *telemetry.Counter
	var drops *telemetry.WorkerVec
	for _, c := range m.Counters {
		if c.Name == "scenario_events_applied" {
			scnCounter = c
		}
	}
	for _, v := range m.Vecs {
		if v.Name == "partition_drops_per_worker" {
			drops = v
		}
	}
	if scnCounter == nil || int(scnCounter.V) != res.ScenarioEvents {
		t.Fatalf("scenario counter %v, result says %d", scnCounter, res.ScenarioEvents)
	}
	if drops == nil || drops.N[2] == 0 {
		t.Fatalf("partitioned worker 2 recorded no drops: %v", drops)
	}
	for _, ev := range env.Telemetry.Events {
		if ev.Kind == telemetry.KCommit && ev.Dur <= 0 {
			t.Fatalf("commit span without duration: %+v", ev)
		}
	}
}

// TestTelemetryBarrierEventsCheckpointed pins that barrier spans and drain
// durations are observed before the snapshot serializes: a run with
// checkpoint barriers must trace one KBarrier span and one KCheckpoint
// instant per barrier, with the barrier counter to match.
func TestTelemetryBarrierEventsCheckpointed(t *testing.T) {
	env := ckptEnv(ASGD, 4, 3, BackendSequential, nil)
	env.Telemetry = telemetry.NewRecorder()
	_, cks := runCapturing(env)
	barriers, ckpts := 0, 0
	for _, ev := range env.Telemetry.Events {
		switch ev.Kind {
		case telemetry.KBarrier:
			barriers++
		case telemetry.KCheckpoint:
			ckpts++
		}
	}
	if barriers != len(cks) || ckpts != len(cks) {
		t.Fatalf("traced %d barriers, %d checkpoints; sink saw %d", barriers, ckpts, len(cks))
	}
	var hist *telemetry.Histogram
	for _, h := range env.Telemetry.Metrics.Hists {
		if h.Name == "barrier_drain_ms" {
			hist = h
		}
	}
	if hist == nil || int(hist.Total) != len(cks) {
		t.Fatalf("drain histogram %+v, want %d observations", hist, len(cks))
	}
	// Measured meters exist and saw the emissions, but stay out of the
	// deterministic dump (they are wall-clock).
	sawBytes := false
	for _, mt := range env.Telemetry.Meters() {
		if (mt.Name == "ckpt_full_bytes" || mt.Name == "ckpt_delta_bytes") && mt.N > 0 {
			sawBytes = true
		}
	}
	if !sawBytes {
		t.Fatal("no checkpoint byte meters recorded")
	}
}

// TestEvalBatchDefaultTrap pins the tiny-dataset warning predicate: it
// fires only when EvalBatch is left to default against a split smaller
// than the default batch.
func TestEvalBatchDefaultTrap(t *testing.T) {
	env := tinyEnvSeeded(ASGD, 1, 1) // test split: 80 < 150
	msg, ok := evalBatchDefaultTrap(env)
	if !ok {
		t.Fatal("tiny env did not trip the trap")
	}
	if !strings.Contains(msg, "test split has only 80 samples") || !strings.Contains(msg, "2x") {
		t.Fatalf("trap message wrong: %q", msg)
	}
	env.Cfg.EvalBatch = 80
	if msg, ok := evalBatchDefaultTrap(env); ok {
		t.Fatalf("explicit EvalBatch still warned: %q", msg)
	}
}

// BenchmarkTelemetryOverhead measures the steady-state commit path with the
// telemetry layer disabled (nil recorder — must stay 0 allocs/op, the
// CI bench-smoke guard) and enabled (the trace append + instrument cost).
func BenchmarkTelemetryOverhead(b *testing.B) {
	for _, enabled := range []bool{false, true} {
		name := "disabled"
		if enabled {
			name = "enabled"
		}
		b.Run(name, func(b *testing.B) {
			env := tinyEnvSeeded(ASGD, 2, 2)
			env.Cfg = env.Cfg.withDefaults()
			if enabled {
				env.Telemetry = telemetry.NewRecorder()
			}
			e := newEngine(env, strategyFor(env.Cfg))
			defer e.backend.Close()
			e.strategy.Setup(e)
			e.srv.target = 0 // park relaunches so the commit path dominates
			grad := make([]float64, e.NParams())
			for i := range grad {
				grad[i] = 1e-3
			}
			e.Commit(0, grad, 0) // warm: first commit records the epoch-0 point
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Commit(0, grad, 0)
			}
		})
	}
}
