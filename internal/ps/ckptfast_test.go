package ps

import (
	"bytes"
	"errors"
	"testing"

	"lcasgd/internal/scenario"
	"lcasgd/internal/snapshot"
)

// runCapturingRaw executes env and collects the checkpoints exactly as
// emitted — deltas stay deltas — for tests that compare container bytes.
func runCapturingRaw(env Env) []Checkpoint {
	var cks []Checkpoint
	env.CheckpointSink = func(ck Checkpoint) error {
		cks = append(cks, ck)
		return nil
	}
	Run(env)
	return cks
}

// TestDeltaEncodeMatchesFresh is the dirty-tracking completeness oracle:
// for every algorithm and churning scenario, every section the cache marks
// clean at a barrier is re-encoded from the live engine state and must be
// byte-identical to the cached blob. A mutation site missing a
// dirty-generation bump fails here — including after a resume, where the
// cache is seeded from the restored container instead of a local encode.
func TestDeltaEncodeMatchesFresh(t *testing.T) {
	defer func() { ckptAudit = nil }()
	audits := 0
	scns := append([]*scenario.Scenario{nil}, equivalenceScenarios()...)
	// The shared equivalence scenarios recover every worker between the tiny
	// run's two barriers, leaving every section dirty; a worker that dies and
	// stays dead is what makes its section go clean at the second barrier and
	// the cache-hit path actually execute.
	scns = append(scns, &scenario.Scenario{
		Name:   "dead-worker",
		Events: []scenario.Event{{At: 40, Kind: scenario.Crash, Worker: 3}},
	})
	for _, algo := range allAlgos {
		for _, scn := range scns {
			m := 4
			if algo == SGD {
				m = 1
			}
			name := "none"
			if scn != nil {
				name = scn.Name
			}
			label := string(algo) + "/" + name
			ckptAudit = func(id snapshot.SectionID, cached, fresh []byte) {
				audits++
				if !bytes.Equal(cached, fresh) {
					t.Errorf("%s: section (%d,%d) marked clean but its state moved: cached %d bytes, fresh %d",
						label, id.Kind, id.Index, len(cached), len(fresh))
				}
			}
			full, cks := runCapturing(ckptEnv(algo, m, 3, BackendSequential, scn))
			if len(cks) == 0 {
				t.Fatalf("%s: no checkpoints emitted", label)
			}
			res, err := Resume(ckptEnv(algo, m, 3, BackendSequential, scn), cks[0].Data)
			if err != nil {
				t.Fatalf("%s: resume under audit: %v", label, err)
			}
			assertResultsEqual(t, label+"/audited-resume", full, res)
		}
	}
	if audits == 0 {
		t.Fatal("audit hook never fired; no section was ever clean and the oracle is dead")
	}
}

// TestParallelEncodeByteIdentity pins that the emitted container bytes are
// independent of the encode pool size: each section's encoding reads only
// frozen state, and the container orders sections canonically, so a
// pool-of-8 encode must equal the single-threaded one bit for bit.
func TestParallelEncodeByteIdentity(t *testing.T) {
	defer func() { ckptPoolSize = 0 }()
	for _, algo := range []Algo{LCASGD, ADPSGD} {
		capture := func(pool int) []Checkpoint {
			ckptPoolSize = pool
			return runCapturingRaw(ckptEnv(algo, 4, 3, BackendSequential, nil))
		}
		one := capture(1)
		many := capture(8)
		if len(one) == 0 || len(one) != len(many) {
			t.Fatalf("%s: %d vs %d checkpoints across pool sizes", algo, len(one), len(many))
		}
		for i := range one {
			if !bytes.Equal(one[i].Data, many[i].Data) {
				t.Fatalf("%s: checkpoint %d differs between pool 1 and pool 8", algo, i)
			}
		}
	}
}

// TestDeltaChainMaterializesToFullRunBytes is the delta format's byte-level
// contract: a run emitting deltas, materialized link by link, produces at
// every barrier exactly the container a CheckpointFullEvery=1 run of the
// same config emits. (The cadence is excluded from ConfigKey, so the two
// runs share one trajectory.)
func TestDeltaChainMaterializesToFullRunBytes(t *testing.T) {
	for _, algo := range []Algo{LCASGD, ADPSGD} {
		capture := func(fullEvery int) []Checkpoint {
			env := ckptEnv(algo, 4, 4, BackendSequential, nil)
			env.Cfg.CheckpointFullEvery = fullEvery
			return runCapturingRaw(env)
		}
		fulls := capture(1)
		chain := capture(8)
		if len(fulls) != len(chain) || len(fulls) < 3 {
			t.Fatalf("%s: %d vs %d checkpoints; need ≥3 to cover a multi-delta chain", algo, len(fulls), len(chain))
		}
		var links [][]byte
		sawDelta := false
		for i, ck := range chain {
			if !fulls[i].Full {
				t.Fatalf("%s: CheckpointFullEvery=1 emitted a delta at %d", algo, i)
			}
			if ck.Full {
				links = links[:0]
			} else {
				sawDelta = true
			}
			links = append(links, ck.Data)
			got := ck.Data
			if !ck.Full {
				var err error
				got, err = snapshot.Materialize(links...)
				if err != nil {
					t.Fatalf("%s: materialize chain at %d: %v", algo, i, err)
				}
			}
			if !bytes.Equal(got, fulls[i].Data) {
				t.Fatalf("%s: checkpoint %d: materialized chain differs from the direct full encode", algo, i)
			}
		}
		if !sawDelta {
			t.Fatalf("%s: chain run emitted no deltas", algo)
		}
	}
}

// TestResumeRejectsBareDelta: a delta container is not restorable on its
// own; Resume must refuse it with a chain error instead of restoring a
// partial state.
func TestResumeRejectsBareDelta(t *testing.T) {
	cks := runCapturingRaw(ckptEnv(ASGD, 4, 3, BackendSequential, nil))
	var delta *Checkpoint
	for i := range cks {
		if !cks[i].Full {
			delta = &cks[i]
			break
		}
	}
	if delta == nil {
		t.Fatal("run emitted no delta checkpoints")
	}
	if _, err := Resume(ckptEnv(ASGD, 4, 3, BackendSequential, nil), delta.Data); !errors.Is(err, snapshot.ErrNotFull) {
		t.Fatalf("resuming a bare delta: %v", err)
	}
}

// TestFullCadenceExcludedFromConfigKey: full-vs-delta cadence is encoding
// policy, not trajectory — a run may checkpoint with one cadence and resume
// with another, so it must not fork the run's identity.
func TestFullCadenceExcludedFromConfigKey(t *testing.T) {
	base := tinyEnvSeeded(ASGD, 4, 3).Cfg
	c := base
	c.CheckpointFullEvery = 3
	if ConfigKey(c) != ConfigKey(base) {
		t.Fatal("CheckpointFullEvery changed the config key; persistence policy must not fork runs")
	}
}
