package ps

import (
	"fmt"
	"os"
	"sync"

	"lcasgd/internal/scenario"
	"lcasgd/internal/snapshot"
	"lcasgd/internal/telemetry"
)

// This file threads the telemetry layer (internal/telemetry) through the
// engine. Two invariants govern every hook:
//
//   - Zero overhead when disabled. The engine holds one nullable pointer
//     (Engine.tel); every emission site is an `if e.tel != nil` branch and
//     the enabled-only buffers (launchAt) are not even allocated otherwise,
//     so the commit/gossip hot paths stay at 0 allocs/op — pinned by
//     TestCommitZeroAllocSteadyState and BenchmarkTelemetryOverhead.
//
//   - Determinism. Every event and deterministic instrument derives from
//     event-loop state and virtual time only, and the whole telemetry state
//     (registry + trace) is serialized into checkpoints (sections
//     secTelMetrics/secTelTrace), so a resumed run's final telemetry bytes
//     equal the uninterrupted run's. Wall-clock checkpoint costs go to the
//     recorder's measured meters, which are excluded from both the
//     byte-identity contract and the checkpoint.

// telState is the engine's telemetry extension: the recorder plus the
// engine-registered instruments and span bookkeeping. Nil when no recorder
// is attached.
type telState struct {
	rec *telemetry.Recorder

	// launchAt[m] is the virtual time of worker m's last launch — the start
	// of the commit/gossip span emitted when the iteration lands.
	launchAt []float64
	// drainStart is when the current barrier drain armed (quiescing 0→1).
	drainStart float64

	// Deterministic instruments.
	staleness *telemetry.Histogram
	drainMs   *telemetry.Histogram
	commits   *telemetry.WorkerVec
	drops     *telemetry.WorkerVec
	gossips   *telemetry.WorkerVec
	scnEvents *telemetry.Counter
	barriers  *telemetry.Counter
	inflightG *telemetry.Gauge
	activeG   *telemetry.Gauge
	cutG      *telemetry.Gauge
	pendingG  *telemetry.Gauge

	// Measured (wall-clock / emission-policy) meters: not deterministic,
	// not checkpointed, dumped under a separate "measured" key.
	encodeMs  *telemetry.Meter
	writeMs   *telemetry.Meter
	fullBytes *telemetry.Meter
	delBytes  *telemetry.Meter
}

// newTelState binds the recorder to this run and registers the engine's
// instruments in their fixed order — the order is the checkpoint
// serialization order, so it is part of the on-disk format.
func newTelState(rec *telemetry.Recorder, workers int) *telState {
	rec.Bind()
	m := rec.Metrics
	return &telState{
		rec:       rec,
		launchAt:  make([]float64, workers),
		staleness: m.Histogram("staleness", []float64{0, 1, 2, 4, 8, 16, 32, 64, 128}),
		drainMs:   m.Histogram("barrier_drain_ms", []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 1000}),
		commits:   m.WorkerVec("commits_per_worker", workers),
		drops:     m.WorkerVec("partition_drops_per_worker", workers),
		gossips:   m.WorkerVec("gossips_per_worker", workers),
		scnEvents: m.Counter("scenario_events_applied"),
		barriers:  m.Counter("checkpoint_barriers"),
		inflightG: m.Gauge("inflight_events"),
		activeG:   m.Gauge("active_workers"),
		cutG:      m.Gauge("cut_workers"),
		pendingG:  m.Gauge("clock_pending"),
		encodeMs:  rec.Meter("ckpt_section_encode_wall_ms"),
		writeMs:   rec.Meter("ckpt_container_write_wall_ms"),
		fullBytes: rec.Meter("ckpt_full_bytes"),
		delBytes:  rec.Meter("ckpt_delta_bytes"),
	}
}

// recordCurve wraps the recorder's epoch-boundary check and, when a new
// curve point actually landed, snapshots the queue/fleet gauges into the
// metrics series at the same boundary — so the series rows line up with the
// learning curve one-to-one.
func (e *Engine) recordCurve() {
	if e.tel == nil {
		e.rec.maybeRecord(e.srv, e.clock.Now(), false)
		return
	}
	before := len(e.rec.points)
	e.rec.maybeRecord(e.srv, e.clock.Now(), false)
	if len(e.rec.points) != before {
		e.telSample()
	}
}

// telSample captures the engine's depth gauges and appends a series row.
func (e *Engine) telSample() {
	t := e.tel
	t.inflightG.Set(float64(e.inflight))
	t.activeG.Set(float64(e.fleet.activeN))
	t.cutG.Set(float64(e.fleet.cutN))
	t.pendingG.Set(float64(e.clock.Pending()))
	t.rec.Metrics.Sample(e.srv.epoch(), e.clock.Now())
}

// armQuiesce arms the checkpoint-barrier drain after a server update
// crossed the barrier epoch, stamping the drain's start exactly once per
// barrier (commits keep landing while the drain is in progress).
func (e *Engine) armQuiesce() {
	if e.tel != nil && !e.quiescing {
		e.tel.drainStart = e.clock.Now()
	}
	e.quiescing = true
}

// telScenarioEvent traces one applied (non-redundant) timeline event.
func (e *Engine) telScenarioEvent(ev scenario.Event) {
	var k telemetry.Kind
	var a, b int64
	switch ev.Kind {
	case scenario.PhaseShift:
		k = telemetry.KPhaseShift
		a = int64(ev.CompScale * 1e6)
		b = int64(ev.CommScale * 1e6)
	case scenario.Crash:
		k = telemetry.KCrash
	case scenario.Recover:
		k = telemetry.KRecover
	case scenario.Join:
		k = telemetry.KJoin
	case scenario.Leave:
		k = telemetry.KLeave
	case scenario.Partition:
		k = telemetry.KPartition
	case scenario.Heal:
		k = telemetry.KHeal
	default:
		return
	}
	e.tel.scnEvents.Inc()
	e.tel.rec.Emit(telemetry.Event{Kind: k, Worker: int32(ev.Worker), At: e.clock.Now(), A: a, B: b})
}

// telBarrier records the barrier-drain span and the checkpoint instant at
// the quiescent point — before the snapshot serializes, so both events (and
// the histogram/counter they feed) are inside the checkpoint and a resumed
// run replays them rather than re-observing them.
func (e *Engine) telBarrier() {
	t := e.tel
	now := e.clock.Now()
	dur := now - t.drainStart
	t.drainMs.Observe(dur)
	t.barriers.Inc()
	t.rec.Emit(telemetry.Event{Kind: telemetry.KBarrier, Worker: -1, At: t.drainStart, Dur: dur})
	t.rec.Emit(telemetry.Event{Kind: telemetry.KCheckpoint, Worker: -1, At: now, A: int64(e.srv.epoch())})
}

// drainCkpt drains the in-flight checkpoint write and folds its measured
// stats (container bytes, wall write time) into the meters — on the event
// loop, so the off-loop writer goroutine never touches the recorder.
func (e *Engine) drainCkpt() {
	d, ok := e.ck.drain()
	if ok && e.tel != nil {
		e.tel.writeMs.Observe(d.writeMs)
		if d.full {
			e.tel.fullBytes.Observe(float64(d.bytes))
		} else {
			e.tel.delBytes.Observe(float64(d.bytes))
		}
	}
}

// --- checkpoint serialization of the telemetry state ---

// telChunks returns the trace chunk count for n events.
func telChunks(n int) int { return (n + telChunkLen - 1) / telChunkLen }

// encodeTelMetrics serializes the deterministic instrument registry.
// Instrument names are included and validated on restore: a mismatch means
// the checkpoint was written by an engine with a different registration
// order, which must fail loudly rather than restore values into the wrong
// instruments.
func (e *Engine) encodeTelMetrics(w *snapshot.Writer) {
	m := e.tel.rec.Metrics
	w.Int(len(m.Counters))
	for _, c := range m.Counters {
		w.String(c.Name)
		w.U64(c.V)
	}
	w.Int(len(m.Gauges))
	for _, g := range m.Gauges {
		w.String(g.Name)
		w.F64(g.V)
	}
	w.Int(len(m.Hists))
	for _, h := range m.Hists {
		w.String(h.Name)
		w.U64s(h.Counts)
		w.U64(h.Total)
		w.F64(h.Sum)
	}
	w.Int(len(m.Vecs))
	for _, v := range m.Vecs {
		w.String(v.Name)
		w.U64s(v.N)
	}
	w.Int(len(m.Series))
	for _, s := range m.Series {
		w.Int(s.Epoch)
		w.F64(s.AtMs)
		w.F64s(s.Values)
	}
}

// restoreTelMetrics loads the registry back into the engine-registered
// instruments, by position, validating names and shapes.
func (e *Engine) restoreTelMetrics(r *snapshot.Reader) error {
	m := e.tel.rec.Metrics
	if n := r.Int(); r.Err() == nil && n != len(m.Counters) {
		return fmt.Errorf("telemetry snapshot has %d counters, engine registers %d", n, len(m.Counters))
	}
	for _, c := range m.Counters {
		if name := r.String(); r.Err() == nil && name != c.Name {
			return fmt.Errorf("telemetry counter %q, engine expects %q", name, c.Name)
		}
		c.V = r.U64()
	}
	if n := r.Int(); r.Err() == nil && n != len(m.Gauges) {
		return fmt.Errorf("telemetry snapshot has %d gauges, engine registers %d", n, len(m.Gauges))
	}
	for _, g := range m.Gauges {
		if name := r.String(); r.Err() == nil && name != g.Name {
			return fmt.Errorf("telemetry gauge %q, engine expects %q", name, g.Name)
		}
		g.V = r.F64()
	}
	if n := r.Int(); r.Err() == nil && n != len(m.Hists) {
		return fmt.Errorf("telemetry snapshot has %d histograms, engine registers %d", n, len(m.Hists))
	}
	for _, h := range m.Hists {
		if name := r.String(); r.Err() == nil && name != h.Name {
			return fmt.Errorf("telemetry histogram %q, engine expects %q", name, h.Name)
		}
		counts := r.U64s()
		if r.Err() == nil && len(counts) != len(h.Counts) {
			return fmt.Errorf("telemetry histogram %q has %d buckets, engine expects %d", h.Name, len(counts), len(h.Counts))
		}
		copy(h.Counts, counts)
		h.Total = r.U64()
		h.Sum = r.F64()
	}
	if n := r.Int(); r.Err() == nil && n != len(m.Vecs) {
		return fmt.Errorf("telemetry snapshot has %d worker vectors, engine registers %d", n, len(m.Vecs))
	}
	for _, v := range m.Vecs {
		if name := r.String(); r.Err() == nil && name != v.Name {
			return fmt.Errorf("telemetry worker vector %q, engine expects %q", name, v.Name)
		}
		vals := r.U64s()
		if r.Err() == nil && len(vals) != len(v.N) {
			return fmt.Errorf("telemetry worker vector %q spans %d workers, engine has %d", v.Name, len(vals), len(v.N))
		}
		copy(v.N, vals)
	}
	nSeries := r.Int()
	if r.Err() == nil && (nSeries < 0 || nSeries > e.srv.batches+1) {
		return fmt.Errorf("telemetry snapshot has implausible %d series rows", nSeries)
	}
	m.Series = m.Series[:0]
	for i := 0; i < nSeries && r.Err() == nil; i++ {
		m.Series = append(m.Series, telemetry.Sample{Epoch: r.Int(), AtMs: r.F64(), Values: r.F64s()})
	}
	return nil
}

// encodeTelTrace serializes one trace chunk. Chunks are frozen once full
// (events are append-only), so a long run re-encodes only the last chunk at
// each barrier — the recorder-chunk trick applied to the trace.
func (e *Engine) encodeTelTrace(w *snapshot.Writer, idx int) {
	evs := e.tel.rec.Events
	lo := idx * telChunkLen
	hi := lo + telChunkLen
	if hi > len(evs) {
		hi = len(evs)
	}
	chunk := evs[lo:hi]
	w.Int(len(chunk))
	for _, ev := range chunk {
		w.U64(uint64(ev.Kind))
		w.I64(int64(ev.Worker))
		w.F64(ev.At)
		w.F64(ev.Dur)
		w.I64(ev.A)
		w.I64(ev.B)
	}
}

// restoreTelTrace loads one trace chunk, appending to the recorder.
func (e *Engine) restoreTelTrace(r *snapshot.Reader, want int) error {
	if n := r.Int(); r.Err() == nil && n != want {
		return fmt.Errorf("telemetry trace chunk has %d events, meta promises %d", n, want)
	}
	rec := e.tel.rec
	for j := 0; j < want && r.Err() == nil; j++ {
		rec.Emit(telemetry.Event{
			Kind:   telemetry.Kind(r.U64()),
			Worker: int32(r.I64()),
			At:     r.F64(),
			Dur:    r.F64(),
			A:      r.I64(),
			B:      r.I64(),
		})
	}
	return nil
}

// --- EvalBatch default warning ---

// evalBatchWarnOnce rate-limits the warning to once per process: sweeps and
// test binaries run hundreds of tiny cells and one line is enough.
var evalBatchWarnOnce sync.Once

// evalBatchDefaultTrap reports whether env is about to fall into the
// EvalBatch-padding trap: Config.EvalBatch left at zero (so withDefaults
// will pick 150) with a dataset split smaller than that. Evaluation pads
// the remainder batch up to EvalBatch to keep layer shapes stable (see
// eval.go), so a tiny split pays for 150 samples of inference per batch
// however few it holds — up to 40× the expected eval cost on profile-sized
// runs. The returned message names the offending split.
func evalBatchDefaultTrap(env Env) (string, bool) {
	if env.Cfg.EvalBatch != 0 || env.Train == nil || env.Test == nil {
		return "", false
	}
	n, split := env.Train.Len(), "train"
	if env.Test.Len() < n {
		n, split = env.Test.Len(), "test"
	}
	if n >= defaultEvalBatch {
		return "", false
	}
	return fmt.Sprintf(
		"ps: EvalBatch defaults to %d but the %s split has only %d samples; "+
			"evaluation pads every remainder batch up to EvalBatch, so tiny runs "+
			"pay up to %dx the expected eval cost — set Config.EvalBatch explicitly",
		defaultEvalBatch, split, n, (defaultEvalBatch+n-1)/n), true
}

// warnEvalBatchDefault emits the trap warning, once per process, to stderr.
func warnEvalBatchDefault(env Env) {
	if msg, ok := evalBatchDefaultTrap(env); ok {
		evalBatchWarnOnce.Do(func() { fmt.Fprintln(os.Stderr, msg) })
	}
}
