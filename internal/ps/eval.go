package ps

import (
	"lcasgd/internal/core"
	"lcasgd/internal/data"
	"lcasgd/internal/nn"
	"lcasgd/internal/rng"
	"lcasgd/internal/tensor"
)

// evaluator measures the global model's error rate on a dataset. It owns a
// dedicated replica so evaluation never disturbs worker state, and runs in
// inference mode so BN uses the server's global running statistics — which
// is what makes the BN-vs-Async-BN difference measurable (Table 1).
type evaluator struct {
	net       *nn.Sequential
	bns       []*nn.BatchNorm
	params    []*nn.Param
	batchSize int
}

func newEvaluator(build func(*rng.RNG) *nn.Sequential, modelSeed uint64, batchSize int) *evaluator {
	net := build(rng.New(modelSeed))
	return &evaluator{net: net, bns: net.BatchNorms(), params: net.Params(), batchSize: batchSize}
}

// errOn returns the classification error rate of (w, bn stats) on ds.
func (e *evaluator) errOn(ds *data.Dataset, w []float64, bnAcc *core.BNAccumulator) float64 {
	nn.UnflattenValues(e.params, w)
	bnAcc.Apply(e.bns)
	correct := 0
	idx := make([]int, 0, e.batchSize)
	for start := 0; start < ds.Len(); start += e.batchSize {
		end := start + e.batchSize
		if end > ds.Len() {
			end = ds.Len()
		}
		idx = idx[:0]
		for j := start; j < end; j++ {
			idx = append(idx, j)
		}
		x, y := ds.Batch(idx)
		out := e.net.Forward(x, false)
		pred := tensor.ArgmaxRows(out)
		for i, p := range pred {
			if p == y[i] {
				correct++
			}
		}
	}
	return 1 - float64(correct)/float64(ds.Len())
}

// recorder collects curve points at epoch boundaries.
type recorder struct {
	env       Env
	eval      *evaluator
	evalEvery int
	lastEpoch int
	points    []Point
}

func newRecorder(env Env, modelSeed uint64) *recorder {
	return &recorder{
		env:       env,
		eval:      newEvaluator(env.Build, modelSeed, env.Cfg.EvalBatch),
		evalEvery: env.Cfg.EvalEvery,
		lastEpoch: -1,
	}
}

// maybeRecord evaluates and appends a point when a new (multiple-of-
// EvalEvery) epoch boundary has been crossed, or when force is set (final
// point).
func (r *recorder) maybeRecord(srv *server, now float64, force bool) {
	ep := srv.epoch()
	if !force {
		if ep == r.lastEpoch || ep%r.evalEvery != 0 {
			return
		}
	}
	if ep == r.lastEpoch && !force {
		return
	}
	trainErr := r.eval.errOn(r.env.Train, srv.w, srv.bnAcc)
	testErr := r.eval.errOn(r.env.Test, srv.w, srv.bnAcc)
	r.lastEpoch = ep
	r.points = append(r.points, Point{Epoch: ep, Time: now, TrainErr: trainErr, TestErr: testErr})
}

// finish returns the collected points, guaranteeing a final sample.
func (r *recorder) finish(srv *server, now float64) []Point {
	if len(r.points) == 0 || r.points[len(r.points)-1].Epoch != srv.epoch() {
		r.maybeRecord(srv, now, true)
	}
	return r.points
}
