package ps

import (
	"runtime"

	"lcasgd/internal/core"
	"lcasgd/internal/data"
	"lcasgd/internal/nn"
	"lcasgd/internal/rng"
	"lcasgd/internal/tensor"
)

// evaluator measures the global model's error rate on a dataset. It owns a
// pool of dedicated replicas so evaluation never disturbs worker state, and
// runs in inference mode so BN uses the server's global running statistics
// — which is what makes the BN-vs-Async-BN difference measurable (Table 1).
//
// Evaluation batches are sharded across the execution backend's
// ParallelFor; each shard counts correct predictions on its own net, and
// the integer counts sum identically whatever the parallelism, so both
// backends report bit-identical error rates. Each shard net carries its own
// tensor.Workspace plus label/prediction buffers, so a steady-state
// evaluation batch allocates nothing.
type evaluator struct {
	build     func(*rng.RNG) *nn.Sequential
	modelSeed uint64
	batchSize int
	backend   Backend
	nets      []*evalNet
}

// evalNet is one inference replica of the pool with its per-shard buffers.
type evalNet struct {
	net    *nn.Sequential
	bns    []*nn.BatchNorm
	params []*nn.Param
	ws     *tensor.Workspace
	idx    []int
	y      []int
	pred   []int
}

func newEvaluator(build func(*rng.RNG) *nn.Sequential, modelSeed uint64, batchSize int, be Backend) *evaluator {
	return &evaluator{build: build, modelSeed: modelSeed, batchSize: batchSize, backend: be}
}

// pool grows the inference-replica pool to n nets and returns them.
func (e *evaluator) pool(n int) []*evalNet {
	for len(e.nets) < n {
		net := e.build(rng.New(e.modelSeed))
		e.nets = append(e.nets, &evalNet{
			net: net, bns: net.BatchNorms(), params: net.Params(),
			ws:   tensor.NewWorkspace(),
			idx:  make([]int, e.batchSize),
			y:    make([]int, e.batchSize),
			pred: make([]int, e.batchSize),
		})
	}
	return e.nets[:n]
}

// errOn returns the classification error rate of (w, bn stats) on ds.
func (e *evaluator) errOn(ds *data.Dataset, w []float64, bnAcc *core.BNAccumulator) float64 {
	nBatches := (ds.Len() + e.batchSize - 1) / e.batchSize
	shards := e.backend.Parallelism()
	// The concurrent backend reports one lane per worker, but shards beyond
	// the core count add no throughput while each one costs a pooled net
	// (nParams of weights, built once) and an O(nParams) refresh per
	// evaluation — at M in the thousands that made every curve point
	// O(M·nParams). Capping at GOMAXPROCS bounds both. Shard counts are
	// result-neutral: each shard contributes an integer correct-count and
	// integer sums are order-independent, so both backends report
	// bit-identical error rates at any cap.
	if max := runtime.GOMAXPROCS(0); shards > max {
		shards = max
	}
	if shards > nBatches {
		shards = nBatches
	}
	if shards < 1 {
		shards = 1
	}
	nets := e.pool(shards)
	counts := make([]int, shards)
	// Each shard refreshes its own net inside the parallel body: the weight
	// copy and BN application only read shared state (SetRunning copies), so
	// the O(shards × nParams) refresh overlaps instead of serializing on the
	// event loop.
	e.backend.ParallelFor(shards, func(i int) {
		nn.UnflattenValues(nets[i].params, w)
		bnAcc.Apply(nets[i].bns)
		counts[i] = nets[i].countCorrect(ds, e.batchSize, i, shards)
	})
	correct := 0
	for _, c := range counts {
		correct += c
	}
	return 1 - float64(correct)/float64(ds.Len())
}

// countCorrect evaluates batches start, start+stride, start+2·stride, … and
// returns the number of correctly classified samples.
//
// A remainder batch (ds.Len() not a multiple of batchSize) is padded back
// to full size with repeats of its last sample: the layers' reuse buffers
// keep a single stable shape — a smaller batch would reallocate the whole
// layer zoo here and again on the next full-size batch, every evaluation
// pass, on whichever shard owns the tail. Only the first size rows are
// counted, and inference-mode forward is row-independent for every layer
// (BN uses running statistics), so the counted rows are bit-identical to
// an unpadded pass.
func (n *evalNet) countCorrect(ds *data.Dataset, batchSize, start, stride int) int {
	nBatches := (ds.Len() + batchSize - 1) / batchSize
	f := ds.Features()
	correct := 0
	for b := start; b < nBatches; b += stride {
		lo := b * batchSize
		hi := lo + batchSize
		if hi > ds.Len() {
			hi = ds.Len()
		}
		size := hi - lo
		idx := n.idx[:batchSize]
		for j := range idx {
			k := lo + j
			if k >= hi {
				k = hi - 1
			}
			idx[j] = k
		}
		n.ws.Reset()
		x := n.ws.Get(batchSize, f)
		y := n.y[:batchSize]
		ds.BatchInto(x, y, idx)
		out := n.net.Forward(x, false)
		pred := n.pred[:batchSize]
		tensor.ArgmaxRowsInto(pred, out)
		for i := 0; i < size; i++ {
			if pred[i] == y[i] {
				correct++
			}
		}
	}
	return correct
}

// recorder collects curve points at epoch boundaries.
type recorder struct {
	env       Env
	eval      *evaluator
	evalEvery int
	lastEpoch int
	points    []Point
}

func newRecorder(env Env, modelSeed uint64, be Backend) *recorder {
	return &recorder{
		env:       env,
		eval:      newEvaluator(env.Build, modelSeed, env.Cfg.EvalBatch, be),
		evalEvery: env.Cfg.EvalEvery,
		lastEpoch: -1,
	}
}

// due reports whether maybeRecord would record a point now — the engine's
// decentralized layer uses it to refresh the consensus cache only when an
// evaluation is actually about to read it.
func (r *recorder) due(srv *server) bool {
	ep := srv.epoch()
	return ep != r.lastEpoch && ep%r.evalEvery == 0
}

// maybeRecord evaluates and appends a point when a new (multiple-of-
// EvalEvery) epoch boundary has been crossed, or when force is set (final
// point).
func (r *recorder) maybeRecord(srv *server, now float64, force bool) {
	ep := srv.epoch()
	if !force {
		if ep == r.lastEpoch || ep%r.evalEvery != 0 {
			return
		}
	}
	if ep == r.lastEpoch && !force {
		return
	}
	trainErr := r.eval.errOn(r.env.Train, srv.w, srv.bnAcc)
	testErr := r.eval.errOn(r.env.Test, srv.w, srv.bnAcc)
	r.lastEpoch = ep
	r.points = append(r.points, Point{Epoch: ep, Time: now, TrainErr: trainErr, TestErr: testErr})
}

// finish returns the collected points, guaranteeing a final sample.
func (r *recorder) finish(srv *server, now float64) []Point {
	if len(r.points) == 0 || r.points[len(r.points)-1].Epoch != srv.epoch() {
		r.maybeRecord(srv, now, true)
	}
	return r.points
}
