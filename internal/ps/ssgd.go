package ps

import (
	"lcasgd/internal/core"
	"lcasgd/internal/rng"
)

// runSSGD is synchronous distributed SGD (Formula 1): every round all M
// workers compute gradients on the same weight snapshot, the server
// averages them and applies one update. The synchronization barrier means
// each round lasts as long as the slowest worker — the convergence-speed
// penalty visible in Figures 4 and 6 — and each round consumes M batches,
// so larger M means fewer updates per epoch (the effective-batch-size
// growth the paper blames for SSGD's accuracy loss).
func runSSGD(env Env) Result {
	cfg := env.Cfg
	M := cfg.Workers
	seedRng := rng.New(cfg.Seed)
	modelSeed := seedRng.Uint64()
	costRng := seedRng.SplitLabeled(200)

	shards := workerData(env, M)
	reps := make([]*replica, M)
	for m := 0; m < M; m++ {
		reps[m] = newReplica(env.Build, modelSeed, shards[m], cfg.BatchSize, seedRng.SplitLabeled(uint64(300+m)))
	}
	bnAcc := core.NewBNAccumulator(cfg.BNMode, cfg.BNDecay, reps[0].bns)
	w := make([]float64, reps[0].nParams)
	flatten(reps[0], w)
	bpe := env.Train.Len() / cfg.BatchSize
	srv := newServer(w, bnAcc, cfg, bpe)
	// Linear learning-rate scaling (Goyal et al. 2017): one SSGD round
	// consumes M batches but applies a single averaged update, so under the
	// reproduction's scaled-down epoch budget SSGD would receive M× fewer
	// update steps than the paper's full-scale budget affords it. Scaling γ
	// by M makes each round equivalent to summing the M worker gradients,
	// preserving SSGD's paper-reported mild (not catastrophic) degradation.
	srv.lrScale = float64(M)
	rec := newRecorder(env, modelSeed)
	sampler := cfg.Cost.NewSampler(M, costRng)

	now := 0.0
	avg := make([]float64, len(w))
	for !srv.done() {
		for i := range avg {
			avg[i] = 0
		}
		roundTime := 0.0
		for m := 0; m < M; m++ {
			reps[m].pull(srv.w, srv.bnAcc)
			_, grad := reps[m].gradient()
			for i, g := range grad {
				avg[i] += g
			}
			// Round trip plus compute; the barrier takes the max.
			if t := sampler.Comm(m) + sampler.Comp(m) + sampler.Comm(m); t > roundTime {
				roundTime = t
			}
			// BN statistics arrive in rank order; under BNReplace the last
			// worker wins, under BNAsync all are accumulated.
			srv.bnAcc.Update(reps[m].stats())
		}
		inv := 1 / float64(M)
		for i := range avg {
			avg[i] *= inv
		}
		now += roundTime
		srv.apply(avg, M)
		rec.maybeRecord(srv, now, false)
	}
	points := rec.finish(srv, now)
	return finalize(Result{Algo: SSGD, BNMode: cfg.BNMode, Points: points, VirtualMs: now, Updates: srv.updates}, cfg)
}
