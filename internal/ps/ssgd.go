package ps

import (
	"sort"

	"lcasgd/internal/snapshot"
)

// ssgdStrategy is synchronous distributed SGD (Formula 1): every round the
// fleet computes gradients on the same weight snapshot, the server averages
// them and applies one update. The synchronization barrier means each round
// lasts as long as the slowest worker — the convergence-speed penalty
// visible in Figures 4 and 6 — and each round consumes one batch per
// participant, so larger fleets mean fewer updates per epoch (the
// effective-batch-size growth the paper blames for SSGD's accuracy loss).
//
// On the engine, a round is one Launch per active worker at the same
// virtual instant (so every replica snapshots identical weights) and as
// many arrival events; the barrier exit is the last arrival, which on the
// event queue is the max over participants of the round-trip-plus-compute
// time. The barrier is fleet-churn-aware: a worker retired mid-round
// (scenario crash or leave) is dropped from the outstanding set — its
// arrival event is already cancelled — and the round closes over whoever
// actually arrived; a worker admitted mid-round parks in pending and joins
// at the next round boundary, since it could not have pulled the round's
// snapshot.
type ssgdStrategy struct {
	inRound bool
	roundAt float64      // virtual time the current round's snapshots were pulled
	members map[int]bool // launched into the round, arrival still outstanding
	arrived []int
	pending []int // admitted mid-round, start at the next boundary
	restart []int // closeRound's relaunch scratch (arrivals + parked admits)
	waits   []func()
	avg     []float64
}

func (*ssgdStrategy) Algo() Algo { return SSGD }

func (s *ssgdStrategy) Setup(e *Engine) {
	// Linear learning-rate scaling (Goyal et al. 2017): one SSGD round
	// consumes M batches but applies a single averaged update, so under the
	// reproduction's scaled-down epoch budget SSGD would receive M× fewer
	// update steps than the paper's full-scale budget affords it. Scaling γ
	// by M makes each round equivalent to summing the M worker gradients,
	// preserving SSGD's paper-reported mild (not catastrophic) degradation.
	// The scale is fixed at the configured fleet size; elastic scenarios
	// that shrink the fleet keep it, exactly as a statically-tuned LR would
	// behave on a real cluster that loses nodes.
	e.SetLRScale(float64(e.Workers()))
	s.members = make(map[int]bool, e.Workers())
	s.waits = make([]func(), e.Workers())
	s.avg = make([]float64, e.NParams())
}

func (s *ssgdStrategy) Launch(e *Engine, m int) {
	if s.inRound && e.Now() != s.roundAt {
		// A round is already collecting arrivals; this worker (a mid-round
		// admit) waits for the next boundary.
		s.pending = append(s.pending, m)
		return
	}
	if !s.inRound {
		s.inRound = true
		s.roundAt = e.Now()
	}
	if s.members[m] {
		// Already launched into the round forming at this instant. Reachable
		// when a worker crashes after arriving and recovers before the round
		// closes: closeRound's restart list then names it twice (once as an
		// arrival, once as a parked admit), and the second launch must not
		// dispatch a duplicate iteration.
		return
	}
	s.members[m] = true
	e.Pull(m)
	s.waits[m] = e.DispatchGradient(m)
	// Round trip plus compute; the barrier takes the max over participants.
	dur := e.CommSample(m) + e.CompSample(m) + e.CommSample(m)
	e.AfterWorker(m, dur, func() { s.arrive(e, m) })
}

// arrive counts a worker into the barrier; the last outstanding arrival
// closes the round.
func (s *ssgdStrategy) arrive(e *Engine, m int) {
	if !s.members[m] {
		// Every arrival event pairs with exactly one membership insertion
		// (Launch refuses duplicates, retirement cancels the event with the
		// membership). A stray arrival means that invariant broke; corrupting
		// the barrier silently would poison every later round.
		panic("ps: SSGD arrival from a worker not in the round")
	}
	delete(s.members, m)
	s.arrived = append(s.arrived, m)
	if len(s.members) == 0 {
		s.closeRound(e)
	}
}

// closeRound averages the arrived gradients, folds BN statistics in rank
// order (so under BNReplace the last rank wins, as in the monolithic
// runner), applies the single update charged with one batch per arrival,
// and restarts the fleet — the arrivals plus any workers admitted
// mid-round. A round whose every participant was retired before arriving
// applies nothing; pending admits still restart, forming the next round.
func (s *ssgdStrategy) closeRound(e *Engine) {
	s.inRound = false
	arr := s.arrived
	sort.Ints(arr)
	if len(arr) > 0 {
		for i := range s.avg {
			s.avg[i] = 0
		}
		// Partitioned arrivals computed but cannot reach the server: their
		// gradients and statistics are dropped from the fold and their
		// batches consume no budget, exactly like a per-worker Commit drop.
		// Their waits still drain — the compute happened.
		contrib := 0
		for _, m := range arr {
			s.waits[m]()
			if e.Partitioned(m) {
				continue
			}
			for i, g := range e.Gradient(m) {
				s.avg[i] += g
			}
			e.FoldStats(m)
			contrib++
		}
		if contrib > 0 {
			inv := 1 / float64(contrib)
			for i := range s.avg {
				s.avg[i] *= inv
			}
			e.Apply(s.avg, contrib)
		}
	}
	// Relaunch the arrivals plus parked admits from a reused scratch; the
	// arrived/pending slices are recycled for the next round (the arrival
	// events that refill them fire strictly after this call returns).
	s.restart = s.restart[:0]
	s.restart = append(s.restart, arr...)
	s.restart = append(s.restart, s.pending...)
	s.arrived = s.arrived[:0]
	s.pending = s.pending[:0]
	sort.Ints(s.restart)
	for _, m := range s.restart {
		e.Relaunch(m)
	}
}

// WorkerRetired shrinks the barrier when a participant crashes or leaves
// mid-round: its arrival event is already cancelled, so the round must stop
// waiting for it — and close immediately if it was the last one
// outstanding. A retired mid-round admit just leaves the pending list.
func (s *ssgdStrategy) WorkerRetired(e *Engine, m int) {
	// Swap-remove: pending order is irrelevant (closeRound sorts the
	// restart list before relaunching), so no need to splice.
	for i, p := range s.pending {
		if p == m {
			s.pending[i] = s.pending[len(s.pending)-1]
			s.pending = s.pending[:len(s.pending)-1]
			break
		}
	}
	if !s.members[m] {
		return
	}
	delete(s.members, m)
	if s.inRound && len(s.members) == 0 {
		s.closeRound(e)
	}
}

func (*ssgdStrategy) Finish(*Engine, *Result) {}

// SnapshotState writes nothing: every piece of the barrier bookkeeping is
// provably empty at a quiescent checkpoint boundary — the round in progress
// when the barrier epoch was crossed is the round whose Apply armed the
// drain, and closeRound cleared members/arrived/pending before the drain
// could complete. The assertion turns a violated invariant into a loud
// failure instead of a silently truncated round.
func (s *ssgdStrategy) SnapshotState(*Engine, *snapshot.Writer) {
	if s.inRound || len(s.members) != 0 || len(s.arrived) != 0 || len(s.pending) != 0 {
		panic("ps: SSGD checkpoint outside a quiescent round boundary")
	}
}

// RestoreState restores the matching nothing.
func (*ssgdStrategy) RestoreState(*Engine, *snapshot.Reader) error { return nil }
