package ps

// ssgdStrategy is synchronous distributed SGD (Formula 1): every round all
// M workers compute gradients on the same weight snapshot, the server
// averages them and applies one update. The synchronization barrier means
// each round lasts as long as the slowest worker — the convergence-speed
// penalty visible in Figures 4 and 6 — and each round consumes M batches,
// so larger M means fewer updates per epoch (the effective-batch-size
// growth the paper blames for SSGD's accuracy loss).
//
// On the engine, a round is M Launch calls at the same virtual instant (so
// every replica snapshots identical weights) and M arrival events; the
// barrier exit is simply the last arrival, which on the event queue is the
// max over workers of the round-trip-plus-compute time.
type ssgdStrategy struct {
	arrived int
	waits   []func()
	avg     []float64
}

func (*ssgdStrategy) Algo() Algo { return SSGD }

func (s *ssgdStrategy) Setup(e *Engine) {
	// Linear learning-rate scaling (Goyal et al. 2017): one SSGD round
	// consumes M batches but applies a single averaged update, so under the
	// reproduction's scaled-down epoch budget SSGD would receive M× fewer
	// update steps than the paper's full-scale budget affords it. Scaling γ
	// by M makes each round equivalent to summing the M worker gradients,
	// preserving SSGD's paper-reported mild (not catastrophic) degradation.
	e.SetLRScale(float64(e.Workers()))
	s.waits = make([]func(), e.Workers())
	s.avg = make([]float64, e.NParams())
}

func (s *ssgdStrategy) Launch(e *Engine, m int) {
	e.Pull(m)
	s.waits[m] = e.DispatchGradient(m)
	// Round trip plus compute; the barrier takes the max.
	dur := e.CommSample(m) + e.CompSample(m) + e.CommSample(m)
	e.After(dur, func() { s.arrive(e) })
}

// arrive counts a worker into the barrier; the M-th arrival averages the
// round's gradients, folds BN statistics in rank order (so under BNReplace
// the last rank wins, as in the monolithic runner), applies the single
// update and restarts the fleet.
func (s *ssgdStrategy) arrive(e *Engine) {
	s.arrived++
	M := e.Workers()
	if s.arrived < M {
		return
	}
	s.arrived = 0
	for i := range s.avg {
		s.avg[i] = 0
	}
	for m := 0; m < M; m++ {
		s.waits[m]()
		for i, g := range e.Gradient(m) {
			s.avg[i] += g
		}
		e.FoldStats(m)
	}
	inv := 1 / float64(M)
	for i := range s.avg {
		s.avg[i] *= inv
	}
	e.Apply(s.avg, M)
	for m := 0; m < M; m++ {
		e.Relaunch(m)
	}
}

func (*ssgdStrategy) Finish(*Engine, *Result) {}
