package ps

import (
	"fmt"

	"lcasgd/internal/telemetry"
	"lcasgd/internal/topology"
)

// This file is the engine's decentralized-training layer: per-worker
// persistent model state on a communication graph, for strategies that
// replace the parameter server with neighbor averaging (AD-PSGD, Lian et
// al. 2017). A decentralized strategy calls EnableDecentralized from Setup,
// then uses PullLocal/GossipCommit instead of Pull/Commit. Everything here
// runs on the event loop, so gossip averages land in virtual-clock order
// and both backends stay bit-identical.
//
// State ownership changes from the PS algorithms: each worker owns a
// persistent weight vector (decState.w[m]) that survives across its
// iterations — the replica is merely the compute view it is refreshed from
// at each launch — while the server's weight vector srv.w is demoted to a
// lazily refreshed consensus cache (the mean of the active workers' models)
// used only for evaluation, checkpoint-recovery snapshots and result
// reporting.
//
// Staleness gets a decentralized definition: there is no server update
// counter to lag behind, so each gossip exchange samples the iteration lag
// max(0, iter[partner] − iter[m]) — how many commits ahead the averaged
// neighbor is. The sample feeds the same mean/max accounting the PS
// algorithms use, making the robustness grid's staleness columns comparable
// across both families.
//
// Partition semantics change too: a cut worker cannot gossip (no partner
// passes the reachability filter, in either direction), but it keeps
// training its own model and consuming budget — on a graph a partition
// splits the fleet into components that drift apart until a Heal lets them
// re-mix, rather than silencing individual workers as the PS algorithms do.

// Seed-stream labels for the topology layer, drawn in Setup in this order
// (after any strategy labels a PS algorithm would draw — the labels only
// need to be stable per algorithm).
const (
	topoGraphLabel    = 410 // graph wiring (consumed only by random topologies)
	topoNeighborLabel = 411 // gossip partner selection stream
)

// topologyGraph builds the run's communication graph from Config.Topology
// (empty means ring), consuming the graph-wiring stream. The stream is
// drawn whether or not the topology is random, so the seed stream's
// position does not depend on the spec.
func (e *Engine) topologyGraph() (*topology.Graph, error) {
	return topology.Parse(e.cfg.Topology, len(e.reps), e.Rng(topoGraphLabel))
}

// decState is the engine's decentralized-mode extension: the communication
// graph, the partner-selection stream, and the per-worker model state.
type decState struct {
	graph *topology.Graph
	sel   *topology.Selector
	w     [][]float64 // per-worker persistent weights, indexed by rank
	iter  []int       // per-worker commit counters (the decentralized clock)

	// csum is the running sum of the active workers' local models,
	// maintained incrementally: every mutation of an active worker's w —
	// gossip average, local gradient step, RecoverOpt restore, retirement,
	// re-admission — folds its exact stored-value delta into csum at the
	// point of mutation, on the event loop, in virtual-clock order. That
	// makes refreshConsensus O(nParams) instead of O(M·nParams) while
	// staying deterministic (identical across backends and around a
	// checkpoint/resume). At every quiescent anchor — enable, checkpoint
	// barrier, restore, end of run — csum is refolded from scratch in
	// ascending rank order (anchorConsensus), so accumulated deltas never
	// drift across a barrier and the serialized consensus is the exact
	// linear fold it always was.
	csum []float64
}

// EnableDecentralized switches the engine into decentralized mode on the
// given communication graph. Call it from Strategy.Setup, after deriving the
// graph (typically via topology.Parse with the topoGraphLabel stream); the
// partner-selection stream (topoNeighborLabel) is derived here, so the
// seed-stream order is fixed: graph wiring first, neighbor stream second.
// Every worker starts from the common model initialization, exactly like a
// first Pull from a fresh server.
func (e *Engine) EnableDecentralized(g *topology.Graph) {
	if g.Workers() != len(e.reps) {
		panic(fmt.Sprintf("ps: topology spans %d workers, fleet has %d", g.Workers(), len(e.reps)))
	}
	if e.dec != nil {
		panic("ps: EnableDecentralized called twice")
	}
	d := &decState{
		graph: g,
		sel:   topology.NewSelector(g, e.Rng(topoNeighborLabel)),
		w:     make([][]float64, len(e.reps)),
		iter:  make([]int, len(e.reps)),
		csum:  make([]float64, len(e.srv.w)),
	}
	for m := range d.w {
		d.w[m] = append([]float64(nil), e.srv.w...)
	}
	e.dec = d
	e.refoldConsensusSum()
}

// Topology returns the communication graph of a decentralized run, or nil
// for a parameter-server run.
func (e *Engine) Topology() *topology.Graph {
	if e.dec == nil {
		return nil
	}
	return e.dec.graph
}

// PullLocal installs worker m's own persistent weights — not the server's —
// into its replica, along with the global BN statistics. Like Pull it first
// drains the worker's most recent dispatch, so a crash-recovered worker's
// orphaned lane task cannot race the refresh.
//
// Under Config.RecoverOpt, a worker re-admitted by a Recover event restores
// the last checkpoint's consensus snapshot into its local model instead:
// the decentralized analogue of restarting from the checkpoint. Without
// RecoverOpt a recovered worker simply resumes from its old local weights —
// they are exactly as stale as the crash left them, which the iteration-lag
// staleness metric then shows.
func (e *Engine) PullLocal(m int) {
	if w := e.waits[m]; w != nil {
		w()
	}
	e.wgen[m]++ // iterator advances before the next barrier; RecoverOpt may rewrite w[m]
	d := e.dec
	if e.recoverPend[m] {
		e.recoverPend[m] = false
		if e.ckptW != nil {
			// The restore overwrites an active worker's model, so its
			// exact delta folds into the running consensus sum.
			wm, csum := d.w[m], d.csum
			for i, v := range e.ckptW {
				csum[i] += v - wm[i]
				wm[i] = v
			}
			e.reps[m].pull(d.w[m], e.ckptBN)
			return
		}
	}
	e.reps[m].pull(d.w[m], e.srv.bnAcc)
}

// GossipCommit lands worker m's iteration at the current virtual time: one
// partner draw from the neighbor stream, a pairwise average with the chosen
// partner's model (the gossip step), the local gradient step on m's own
// weights at the schedule's learning rate, budget accounting, curve
// recording against the refreshed consensus, and the worker's next launch.
// Exactly one draw is consumed whether or not a partner is reachable, so
// the stream position is a pure function of commit order.
func (e *Engine) GossipCommit(m int, grad []float64, batches int) {
	d := e.dec
	e.wgen[m]++ // local model and commit counter mutate below
	var partner int
	if e.fleet.activeN == len(e.reps) && e.fleet.cutN == 0 {
		// No-churn fast path: with every worker active and uncut the
		// reachability filter passes every neighbor, so the draw indexes
		// the neighbor list directly — the same partner the filtered walk
		// returns, without its O(degree) scans (O(M) on dense graphs) or
		// the filter closure's allocation.
		partner = d.sel.PickUniform(m)
	} else {
		partner = d.sel.Pick(m, func(j int) bool {
			return e.fleet.active[j] && !e.fleet.cut[j] && !e.fleet.cut[m]
		})
	}
	lag := 0
	if partner >= 0 {
		e.wgen[partner]++ // the averaging rewrites the partner's model too
		// Decentralized staleness: how many commits ahead the averaged
		// neighbor is. No sample when the worker steps alone — there is no
		// exchange to measure.
		lag = d.iter[partner] - d.iter[m]
		if lag < 0 {
			lag = 0
		}
		e.stalenessSum += lag
		if lag > e.maxStale {
			e.maxStale = lag
		}
		e.stalenessN++
		if e.tel != nil {
			e.tel.staleness.Observe(float64(lag))
		}
		// Both models are active, so the averaging's exact stored-value
		// deltas (zero in exact arithmetic, last-ulp in floats) fold into
		// the running consensus sum alongside the overwrite.
		wm, wp, csum := d.w[m], d.w[partner], d.csum
		for i := range wm {
			avg := 0.5 * (wm[i] + wp[i])
			csum[i] += (avg - wm[i]) + (avg - wp[i])
			wm[i], wp[i] = avg, avg
		}
	}
	// Local step x_m ← x_m − γ·(g + wd·x_m), mirroring server.apply: the
	// learning rate is read before the consumed batches advance the epoch.
	// The new value is computed with the exact arithmetic the in-place
	// update used, and its delta maintains csum.
	lr := e.srv.lr()
	wm, csum := d.w[m], d.csum
	if wd := e.srv.wd; wd != 0 {
		for i, g := range grad {
			nv := wm[i] - lr*(g+wd*wm[i])
			csum[i] += nv - wm[i]
			wm[i] = nv
		}
	} else {
		for i, g := range grad {
			nv := wm[i] - lr*g
			csum[i] += nv - wm[i]
			wm[i] = nv
		}
	}
	d.iter[m]++
	e.srv.updates++
	e.srv.batches += batches
	if e.tel != nil {
		e.tel.gossips.Inc(m)
		at := e.tel.launchAt[m]
		e.tel.rec.Emit(telemetry.Event{
			Kind: telemetry.KGossip, Worker: int32(m),
			At: at, Dur: e.clock.Now() - at, A: int64(partner), B: int64(lag),
		})
	}
	if e.rec.due(e.srv) {
		e.refreshConsensus()
	}
	e.recordCurve()
	if e.nextCkpt > 0 && e.srv.epoch() >= e.nextCkpt && !e.srv.done() {
		e.armQuiesce()
	}
	e.launch(m)
}

// refreshConsensus refreshes the consensus cache srv.w as the mean of the
// active workers' local models, dividing the incrementally maintained
// running sum (decState.csum) by the active count — O(nParams), where the
// from-scratch fold it replaced was O(M·nParams) per curve point, eval and
// checkpoint. It runs lazily — before a curve point is recorded, at
// checkpoint barriers, and once at the end of the run — never per commit.
// With zero active workers (a scenario that empties the fleet) the
// previous consensus is kept. No-op for parameter-server runs.
//
// Determinism: csum mutates only on the event loop in virtual-clock order,
// so the refreshed value is identical across backends and around a
// checkpoint/resume. At quiescent anchors csum is refolded exactly
// (anchorConsensus), so serialized consensus snapshots and final results
// are the same linear ascending-rank fold the from-scratch version
// computed.
func (e *Engine) refreshConsensus() {
	if e.dec == nil {
		return
	}
	n := e.fleet.activeN
	if n == 0 {
		return
	}
	e.srvWGen++
	w := e.srv.w
	inv := 1 / float64(n)
	for i, s := range e.dec.csum {
		w[i] = s * inv
	}
}

// refoldConsensusSum recomputes csum from scratch: the active workers'
// models folded in ascending rank order, the deterministic fold the lazy
// consensus always used. O(M·nParams) — called only at quiescent anchors
// (EnableDecentralized, checkpoint barriers, restore, end of run), never
// on the per-event path, it discards any rounding drift the incremental
// deltas accumulated since the last anchor.
func (e *Engine) refoldConsensusSum() {
	if e.dec == nil {
		return
	}
	csum := e.dec.csum
	for i := range csum {
		csum[i] = 0
	}
	for m := range e.dec.w {
		if !e.fleet.active[m] {
			continue
		}
		for i, v := range e.dec.w[m] {
			csum[i] += v
		}
	}
}

// anchorConsensus re-anchors the running sum with an exact refold and
// refreshes the consensus cache from it. Checkpoint barriers and the end
// of the run use it so the consensus they expose is the exact fold of the
// workers' models — bit-identical on the straight-through and resumed
// sides of a barrier, which both anchor at the same quiescent point.
func (e *Engine) anchorConsensus() {
	e.refoldConsensusSum()
	e.refreshConsensus()
}
