package ps

import (
	"fmt"

	"lcasgd/internal/topology"
)

// This file is the engine's decentralized-training layer: per-worker
// persistent model state on a communication graph, for strategies that
// replace the parameter server with neighbor averaging (AD-PSGD, Lian et
// al. 2017). A decentralized strategy calls EnableDecentralized from Setup,
// then uses PullLocal/GossipCommit instead of Pull/Commit. Everything here
// runs on the event loop, so gossip averages land in virtual-clock order
// and both backends stay bit-identical.
//
// State ownership changes from the PS algorithms: each worker owns a
// persistent weight vector (decState.w[m]) that survives across its
// iterations — the replica is merely the compute view it is refreshed from
// at each launch — while the server's weight vector srv.w is demoted to a
// lazily refreshed consensus cache (the mean of the active workers' models)
// used only for evaluation, checkpoint-recovery snapshots and result
// reporting.
//
// Staleness gets a decentralized definition: there is no server update
// counter to lag behind, so each gossip exchange samples the iteration lag
// max(0, iter[partner] − iter[m]) — how many commits ahead the averaged
// neighbor is. The sample feeds the same mean/max accounting the PS
// algorithms use, making the robustness grid's staleness columns comparable
// across both families.
//
// Partition semantics change too: a cut worker cannot gossip (no partner
// passes the reachability filter, in either direction), but it keeps
// training its own model and consuming budget — on a graph a partition
// splits the fleet into components that drift apart until a Heal lets them
// re-mix, rather than silencing individual workers as the PS algorithms do.

// Seed-stream labels for the topology layer, drawn in Setup in this order
// (after any strategy labels a PS algorithm would draw — the labels only
// need to be stable per algorithm).
const (
	topoGraphLabel    = 410 // graph wiring (consumed only by random topologies)
	topoNeighborLabel = 411 // gossip partner selection stream
)

// topologyGraph builds the run's communication graph from Config.Topology
// (empty means ring), consuming the graph-wiring stream. The stream is
// drawn whether or not the topology is random, so the seed stream's
// position does not depend on the spec.
func (e *Engine) topologyGraph() (*topology.Graph, error) {
	return topology.Parse(e.cfg.Topology, len(e.reps), e.Rng(topoGraphLabel))
}

// decState is the engine's decentralized-mode extension: the communication
// graph, the partner-selection stream, and the per-worker model state.
type decState struct {
	graph *topology.Graph
	sel   *topology.Selector
	w     [][]float64 // per-worker persistent weights, indexed by rank
	iter  []int       // per-worker commit counters (the decentralized clock)
}

// EnableDecentralized switches the engine into decentralized mode on the
// given communication graph. Call it from Strategy.Setup, after deriving the
// graph (typically via topology.Parse with the topoGraphLabel stream); the
// partner-selection stream (topoNeighborLabel) is derived here, so the
// seed-stream order is fixed: graph wiring first, neighbor stream second.
// Every worker starts from the common model initialization, exactly like a
// first Pull from a fresh server.
func (e *Engine) EnableDecentralized(g *topology.Graph) {
	if g.Workers() != len(e.reps) {
		panic(fmt.Sprintf("ps: topology spans %d workers, fleet has %d", g.Workers(), len(e.reps)))
	}
	if e.dec != nil {
		panic("ps: EnableDecentralized called twice")
	}
	d := &decState{
		graph: g,
		sel:   topology.NewSelector(g, e.Rng(topoNeighborLabel)),
		w:     make([][]float64, len(e.reps)),
		iter:  make([]int, len(e.reps)),
	}
	for m := range d.w {
		d.w[m] = append([]float64(nil), e.srv.w...)
	}
	e.dec = d
}

// Topology returns the communication graph of a decentralized run, or nil
// for a parameter-server run.
func (e *Engine) Topology() *topology.Graph {
	if e.dec == nil {
		return nil
	}
	return e.dec.graph
}

// PullLocal installs worker m's own persistent weights — not the server's —
// into its replica, along with the global BN statistics. Like Pull it first
// drains the worker's most recent dispatch, so a crash-recovered worker's
// orphaned lane task cannot race the refresh.
//
// Under Config.RecoverOpt, a worker re-admitted by a Recover event restores
// the last checkpoint's consensus snapshot into its local model instead:
// the decentralized analogue of restarting from the checkpoint. Without
// RecoverOpt a recovered worker simply resumes from its old local weights —
// they are exactly as stale as the crash left them, which the iteration-lag
// staleness metric then shows.
func (e *Engine) PullLocal(m int) {
	if w := e.waits[m]; w != nil {
		w()
	}
	d := e.dec
	if e.recoverPend[m] {
		e.recoverPend[m] = false
		if e.ckptW != nil {
			copy(d.w[m], e.ckptW)
			e.reps[m].pull(d.w[m], e.ckptBN)
			return
		}
	}
	e.reps[m].pull(d.w[m], e.srv.bnAcc)
}

// GossipCommit lands worker m's iteration at the current virtual time: one
// partner draw from the neighbor stream, a pairwise average with the chosen
// partner's model (the gossip step), the local gradient step on m's own
// weights at the schedule's learning rate, budget accounting, curve
// recording against the refreshed consensus, and the worker's next launch.
// Exactly one draw is consumed whether or not a partner is reachable, so
// the stream position is a pure function of commit order.
func (e *Engine) GossipCommit(m int, grad []float64, batches int) {
	d := e.dec
	partner := d.sel.Pick(m, func(j int) bool {
		return e.fleet.active[j] && !e.fleet.cut[j] && !e.fleet.cut[m]
	})
	if partner >= 0 {
		// Decentralized staleness: how many commits ahead the averaged
		// neighbor is. No sample when the worker steps alone — there is no
		// exchange to measure.
		lag := d.iter[partner] - d.iter[m]
		if lag < 0 {
			lag = 0
		}
		e.stalenessSum += lag
		if lag > e.maxStale {
			e.maxStale = lag
		}
		e.stalenessN++
		wm, wp := d.w[m], d.w[partner]
		for i := range wm {
			avg := 0.5 * (wm[i] + wp[i])
			wm[i], wp[i] = avg, avg
		}
	}
	// Local step x_m ← x_m − γ·(g + wd·x_m), mirroring server.apply: the
	// learning rate is read before the consumed batches advance the epoch.
	lr := e.srv.lr()
	wm := d.w[m]
	if wd := e.srv.wd; wd != 0 {
		for i, g := range grad {
			wm[i] -= lr * (g + wd*wm[i])
		}
	} else {
		for i, g := range grad {
			wm[i] -= lr * g
		}
	}
	d.iter[m]++
	e.srv.updates++
	e.srv.batches += batches
	if e.rec.due(e.srv) {
		e.refreshConsensus()
	}
	e.rec.maybeRecord(e.srv, e.clock.Now(), false)
	if e.nextCkpt > 0 && e.srv.epoch() >= e.nextCkpt && !e.srv.done() {
		e.quiescing = true
	}
	e.launch(m)
}

// refreshConsensus recomputes the consensus cache srv.w as the mean of the
// active workers' local models, folding in ascending rank order so the
// float result is deterministic. It runs lazily — before a curve point is
// recorded, at checkpoint barriers, and once at the end of the run — never
// per commit, so decentralized runs do not pay an O(M·nParams) tax per
// iteration. With zero active workers (a scenario that empties the fleet)
// the previous consensus is kept. No-op for parameter-server runs.
func (e *Engine) refreshConsensus() {
	if e.dec == nil {
		return
	}
	n := 0
	for m := range e.dec.w {
		if e.fleet.active[m] {
			n++
		}
	}
	if n == 0 {
		return
	}
	w := e.srv.w
	for i := range w {
		w[i] = 0
	}
	for m := range e.dec.w {
		if !e.fleet.active[m] {
			continue
		}
		for i, v := range e.dec.w[m] {
			w[i] += v
		}
	}
	inv := 1 / float64(n)
	for i := range w {
		w[i] *= inv
	}
}
