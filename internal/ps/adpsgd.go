package ps

import "fmt"

// ADPSGD is asynchronous decentralized parallel SGD (Lian et al. 2017) —
// the first algorithm in the repo with no parameter server. Each worker
// owns a persistent model; an iteration computes a gradient at it,
// gossip-averages with one random neighbor on the configured communication
// graph (Config.Topology), and applies the gradient locally. Registered
// through RegisterStrategy like every post-paper algorithm.
const ADPSGD Algo = "AD-PSGD"

// adpsgdStrategy is stateless: the engine's decentralized layer
// (decentral.go) owns all cross-iteration state, including what a
// checkpoint must carry, so the strategy needs no StrategySnapshotter.
type adpsgdStrategy struct{}

func (adpsgdStrategy) Algo() Algo { return ADPSGD }

// Setup builds the communication graph from Config.Topology ("" means ring)
// and flips the engine into decentralized mode. The graph-wiring stream is
// drawn first and the partner stream second (inside EnableDecentralized) —
// the fixed label order that makes runs reproducible.
func (adpsgdStrategy) Setup(e *Engine) {
	g, err := e.topologyGraph()
	if err != nil {
		panic(fmt.Sprintf("ps: %v", err))
	}
	e.EnableDecentralized(g)
}

// Launch is one AD-PSGD iteration: refresh the replica from the worker's
// own model, compute the gradient on the backend, and one computation plus
// one gossip-exchange delay later commit it — the average with the chosen
// neighbor and the local step both land atomically on the event loop, the
// simulator's analogue of the paper's atomic averaging step.
func (adpsgdStrategy) Launch(e *Engine, m int) {
	e.PullLocal(m)
	wait := e.DispatchGradient(m)
	dur := e.CompSample(m) + e.CommSample(m)
	e.AfterWorker(m, dur, func() {
		if e.Done() {
			return
		}
		wait()
		e.FoldStats(m)
		e.GossipCommit(m, e.Gradient(m), 1)
	})
}

func (adpsgdStrategy) Finish(*Engine, *Result) {}
