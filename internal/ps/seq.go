package ps

import "lcasgd/internal/core"

// sgdStrategy is the single-machine SGD baseline: one replica, no
// communication, one update per mini-batch. Virtual time advances by the
// sampled computation cost of each iteration.
type sgdStrategy struct{}

func (sgdStrategy) Algo() Algo { return SGD }

// FleetSize pins the fleet to one replica regardless of Config.Workers:
// sequential SGD is by definition single-machine.
func (sgdStrategy) FleetSize(int) int { return 1 }

// FixBNMode pins the accumulator to Async-BN: with one machine the EMA
// accumulation degenerates to ordinary single-machine BN, whereas
// BNReplace's last-batch overwrite would make the baseline's evaluation
// needlessly noisy.
func (sgdStrategy) FixBNMode(core.BNMode) core.BNMode { return core.BNAsync }

func (sgdStrategy) Setup(*Engine) {}

func (sgdStrategy) Launch(e *Engine, m int) {
	e.Pull(m)
	wait := e.DispatchGradient(m)
	e.AfterWorker(m, e.CompSample(m), func() {
		if e.Done() {
			return
		}
		wait()
		// Sequential training keeps its own BN running statistics — the
		// EMA accumulation degenerates to ordinary single-machine BN.
		e.FoldStats(m)
		e.Commit(m, e.Gradient(m), 1)
	})
}

func (sgdStrategy) Finish(*Engine, *Result) {}

// flatten copies a replica's current parameter values into dst.
func flatten(r *replica, dst []float64) {
	off := 0
	for _, p := range r.params {
		off += copy(dst[off:], p.Value.Data)
	}
}

// finalize fills the derived summary fields of a result. The headline
// final errors average the last three curve points: with the reproduction's
// small evaluation sets a single end-point is dominated by sampling noise,
// and the tail mean is the stable analogue of the paper's reported final
// test error.
func finalize(res Result, cfg Config) Result {
	if n := len(res.Points); n > 0 {
		lo := n - 3
		if lo < 0 {
			lo = 0
		}
		var tr, te float64
		for _, p := range res.Points[lo:] {
			tr += p.TrainErr
			te += p.TestErr
		}
		cnt := float64(n - lo)
		res.FinalTrainErr = tr / cnt
		res.FinalTestErr = te / cnt
	}
	if res.Updates > 0 && res.VirtualMs > 0 {
		res.AvgIterVirtualMs = res.VirtualMs / float64(res.Updates)
	}
	return res
}
