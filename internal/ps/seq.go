package ps

import (
	"lcasgd/internal/core"
	"lcasgd/internal/rng"
)

// runSequential is the single-machine SGD baseline: one replica, no
// communication, one update per mini-batch. Virtual time advances by the
// sampled computation cost of each iteration.
func runSequential(env Env) Result {
	cfg := env.Cfg
	seedRng := rng.New(cfg.Seed)
	modelSeed := seedRng.Uint64()
	dataRng := seedRng.SplitLabeled(100)
	costRng := seedRng.SplitLabeled(200)

	rep := newReplica(env.Build, modelSeed, env.Train, cfg.BatchSize, dataRng)
	bnAcc := core.NewBNAccumulator(core.BNAsync, cfg.BNDecay, rep.bns)
	w := make([]float64, rep.nParams)
	flatten(rep, w)
	bpe := env.Train.Len() / cfg.BatchSize
	srv := newServer(w, bnAcc, cfg, bpe)
	rec := newRecorder(env, modelSeed)
	sampler := cfg.Cost.NewSampler(1, costRng)

	now := 0.0
	for !srv.done() {
		rep.pull(srv.w, srv.bnAcc)
		_, grad := rep.gradient()
		// Sequential training keeps its own BN running statistics — the
		// EMA accumulation degenerates to ordinary single-machine BN.
		srv.bnAcc.Update(rep.stats())
		srv.apply(grad, 1)
		now += sampler.Comp(0)
		rec.maybeRecord(srv, now, false)
	}
	points := rec.finish(srv, now)
	return finalize(Result{Algo: SGD, BNMode: cfg.BNMode, Points: points, VirtualMs: now, Updates: srv.updates}, cfg)
}

// flatten copies a replica's current parameter values into dst.
func flatten(r *replica, dst []float64) {
	off := 0
	for _, p := range r.params {
		off += copy(dst[off:], p.Value.Data)
	}
}

// finalize fills the derived summary fields of a result. The headline
// final errors average the last three curve points: with the reproduction's
// small evaluation sets a single end-point is dominated by sampling noise,
// and the tail mean is the stable analogue of the paper's reported final
// test error.
func finalize(res Result, cfg Config) Result {
	if n := len(res.Points); n > 0 {
		lo := n - 3
		if lo < 0 {
			lo = 0
		}
		var tr, te float64
		for _, p := range res.Points[lo:] {
			tr += p.TrainErr
			te += p.TestErr
		}
		cnt := float64(n - lo)
		res.FinalTrainErr = tr / cnt
		res.FinalTestErr = te / cnt
	}
	if res.Updates > 0 && res.VirtualMs > 0 {
		res.AvgIterVirtualMs = res.VirtualMs / float64(res.Updates)
	}
	return res
}
