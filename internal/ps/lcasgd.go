package ps

import (
	"lcasgd/internal/core"
	"lcasgd/internal/rng"
	"lcasgd/internal/simclock"
)

// runLC executes the paper's LC-ASGD (Algorithms 1–4). Each worker
// iteration has two server interactions:
//
//  1. After the forward pass the worker pushes state_m = {loss, BN stats,
//     t_comm, t_comp}. The server appends m to the iter log (observing the
//     realized staleness), trains the step predictor and forecasts k_m,
//     trains the loss predictor and forecasts ℓ_delay over the next k_m
//     steps (Formula 9), folds the BN statistics in per the BN mode, and
//     replies with ℓ_delay.
//  2. The worker computes the compensated gradient (Formula 5 via the
//     gradient-scaling interpretation) and pushes it; the server applies
//     Formula 8.
//
// The server-side predictor work adds PredVirtualMs to each iteration's
// virtual critical path, and the real measured predictor times are reported
// for Tables 2–3.
func runLC(env Env) Result {
	cfg := env.Cfg
	M := cfg.Workers
	seedRng := rng.New(cfg.Seed)
	modelSeed := seedRng.Uint64()
	costRng := seedRng.SplitLabeled(200)
	predRng := seedRng.SplitLabeled(400)

	shards := workerData(env, M)
	reps := make([]*replica, M)
	for m := 0; m < M; m++ {
		reps[m] = newReplica(env.Build, modelSeed, shards[m], cfg.BatchSize, seedRng.SplitLabeled(uint64(300+m)))
	}
	bnAcc := core.NewBNAccumulator(cfg.BNMode, cfg.BNDecay, reps[0].bns)
	w := make([]float64, reps[0].nParams)
	flatten(reps[0], w)
	bpe := env.Train.Len() / cfg.BatchSize
	srv := newServer(w, bnAcc, cfg, bpe)
	rec := newRecorder(env, modelSeed)
	sampler := cfg.Cost.NewSampler(M, costRng)
	clock := simclock.New()

	iterLog := core.NewIterLog()
	lossPred := core.NewLossPredictorSized(cfg.LossPredHidden, predRng.SplitLabeled(1))
	stepPred := core.NewStepPredictorSized(M, cfg.StepPredHidden, predRng.SplitLabeled(2))
	var emaLoss *emaPredictor
	if cfg.EMALossPredictor {
		emaLoss = newEMAPredictor(0.3)
	}

	grads := make([][]float64, M)
	for m := range grads {
		grads[m] = make([]float64, len(w))
	}
	snapUpdates := make([]int, M)
	lastComp := make([]float64, M) // previous iteration's t_comp per worker
	stalenessSum, stalenessN := 0, 0

	var start func(m int)
	start = func(m int) {
		if srv.done() {
			return
		}
		rep := reps[m]
		// Algorithm 1 lines 1–3: pull weights, record t_comm.
		rep.pull(srv.w, srv.bnAcc)
		snapUpdates[m] = srv.updates
		tcomm := sampler.Comm(m)
		// Lines 4–8: forward pass, record loss and BN statistics, push state.
		loss := rep.forward()
		stats := rep.stats()
		tcomp := sampler.Comp(m)
		tfwd := tcomp / 3
		tbwd := tcomp - tfwd
		clock.ScheduleAfter(tcomm+tfwd, func() {
			if srv.done() {
				return
			}
			// Algorithm 2 lines 1–7: server handles state_m.
			observed := iterLog.Append(m)
			var k int
			if cfg.NaiveStepPredictor {
				k = observed
				if k < 0 {
					k = M - 1
				}
			} else {
				k = stepPred.ObserveAndPredict(m, observed, tcomm, lastComp[m])
			}
			var ldelay float64
			if emaLoss != nil {
				emaLoss.Observe(loss)
				ldelay = emaLoss.PredictDelay(k)
			} else {
				lossPred.Observe(loss)
				ldelay = lossPred.PredictDelay(loss, k)
			}
			srv.bnAcc.Update(stats)
			// Algorithm 1 lines 9–12: compensated backward pass, push grads.
			// Compensation is gated off during the first epoch: the online
			// predictors have not seen enough of the loss series yet, and
			// the paper itself notes prediction error "generally occurs at
			// the beginning of the training process".
			scale := 1.0
			if srv.batches >= srv.bpe {
				if cfg.SumCompensation {
					scale = core.CompensationScaleSum(loss, ldelay, cfg.Lambda)
				} else {
					scale = core.CompensationScale(loss, ldelay, k, cfg.Lambda)
				}
			}
			copy(grads[m], rep.backward(scale))
			lastComp[m] = tbwd
			clock.ScheduleAfter(cfg.PredVirtualMs+tcomm+tbwd+sampler.Comm(m), func() {
				if srv.done() {
					return
				}
				stalenessSum += srv.updates - snapUpdates[m]
				stalenessN++
				srv.apply(grads[m], 1) // Formula 8
				rec.maybeRecord(srv, clock.Now(), false)
				start(m)
			})
		})
	}
	for m := 0; m < M; m++ {
		start(m)
	}
	clock.Run(func() bool { return srv.done() })

	points := rec.finish(srv, clock.Now())
	res := Result{
		Algo:          LCASGD,
		BNMode:        cfg.BNMode,
		Points:        points,
		VirtualMs:     clock.Now(),
		Updates:       srv.updates,
		LossTrace:     lossPred.Trace(),
		StepTrace:     stepPred.Trace(),
		AvgLossPredMs: lossPred.AvgTrainMs(),
		AvgStepPredMs: stepPred.AvgTrainMs(),
	}
	if stalenessN > 0 {
		res.MeanStaleness = float64(stalenessSum) / float64(stalenessN)
	}
	return finalize(res, cfg)
}

// emaPredictor is the ablation baseline for the loss predictor: an
// exponential moving average with linear trend extrapolation.
type emaPredictor struct {
	alpha float64
	level float64
	trend float64
	seen  bool
	last  float64
}

func newEMAPredictor(alpha float64) *emaPredictor { return &emaPredictor{alpha: alpha} }

// Observe updates the level/trend estimates with a new loss value.
func (p *emaPredictor) Observe(v float64) {
	if !p.seen {
		p.level, p.seen, p.last = v, true, v
		return
	}
	prevLevel := p.level
	p.level = p.alpha*v + (1-p.alpha)*p.level
	p.trend = p.alpha*(p.level-prevLevel) + (1-p.alpha)*p.trend
	p.last = v
}

// PredictDelay extrapolates k steps ahead and sums, mirroring Formula 9.
func (p *emaPredictor) PredictDelay(k int) float64 {
	sum := 0.0
	for i := 1; i <= k; i++ {
		v := p.level + float64(i)*p.trend
		if v < 0 {
			v = 0
		}
		sum += v
	}
	return sum
}
