package ps

import (
	"fmt"

	"lcasgd/internal/core"
	"lcasgd/internal/snapshot"
)

// lcStrategy executes the paper's LC-ASGD (Algorithms 1–4). Each worker
// iteration has two server interactions:
//
//  1. After the forward pass the worker pushes state_m = {loss, BN stats,
//     t_comm, t_comp}. The server appends m to the iter log (observing the
//     realized staleness), trains the step predictor and forecasts k_m,
//     trains the loss predictor and forecasts ℓ_delay over the next k_m
//     steps (Formula 9), folds the BN statistics in per the BN mode, and
//     replies with ℓ_delay.
//  2. The worker computes the compensated gradient (Formula 5 via the
//     gradient-scaling interpretation) and pushes it; the server applies
//     Formula 8.
//
// The server-side predictor work adds PredVirtualMs to each iteration's
// virtual critical path, and the real measured predictor times are reported
// for Tables 2–3. On the concurrent backend the forward and backward passes
// run on the worker's lane while the server-side predictor work stays on
// the event loop, preserving the delivery order the predictors train on.
type lcStrategy struct {
	cfg      Config // taken from the engine in Setup — the single source
	iterLog  *core.IterLog
	lossPred *core.LossPredictor
	stepPred *core.StepPredictor
	emaLoss  *emaPredictor
	lastComp []float64 // previous iteration's t_comp per worker
}

func (*lcStrategy) Algo() Algo { return LCASGD }

func (s *lcStrategy) Setup(e *Engine) {
	s.cfg = e.Config()
	predRng := e.Rng(400)
	s.iterLog = core.NewIterLog()
	s.lossPred = core.NewLossPredictorSized(s.cfg.LossPredHidden, predRng.SplitLabeled(1))
	s.stepPred = core.NewStepPredictorSized(e.Workers(), s.cfg.StepPredHidden, predRng.SplitLabeled(2))
	if s.cfg.EMALossPredictor {
		s.emaLoss = newEMAPredictor(0.3)
	}
	s.lastComp = make([]float64, e.Workers())
}

func (s *lcStrategy) Launch(e *Engine, m int) {
	// Algorithm 1 lines 1–3: pull weights, record t_comm.
	e.Pull(m)
	tcomm := e.CommSample(m)
	// Lines 4–8: forward pass, record loss and BN statistics, push state.
	fwdWait := e.DispatchForward(m)
	tcomp := e.CompSample(m)
	tfwd := tcomp / 3
	tbwd := tcomp - tfwd
	e.AfterWorker(m, tcomm+tfwd, func() {
		if e.Done() {
			return
		}
		fwdWait()
		scale := 1.0
		serverMs := s.cfg.PredVirtualMs
		if e.Partitioned(m) {
			// The server is unreachable: no state push, no predictor
			// training, no compensation reply and no server-side prediction
			// time on the critical path. The worker proceeds uncompensated;
			// its gradient will be dropped at commit time anyway.
			serverMs = 0
		} else {
			loss := e.Loss(m)
			// Algorithm 2 lines 1–7: server handles state_m.
			observed := s.iterLog.Append(m)
			var k int
			if s.cfg.NaiveStepPredictor {
				k = observed
				if k < 0 {
					k = e.Workers() - 1
				}
			} else {
				k = s.stepPred.ObserveAndPredict(m, observed, tcomm, s.lastComp[m])
			}
			var ldelay float64
			if s.emaLoss != nil {
				s.emaLoss.Observe(loss)
				ldelay = s.emaLoss.PredictDelay(k)
			} else {
				s.lossPred.Observe(loss)
				ldelay = s.lossPred.PredictDelay(loss, k)
			}
			e.FoldStats(m)
			// Algorithm 1 lines 9–12: compensated backward pass, push grads.
			// Compensation is gated off during the first epoch: the online
			// predictors have not seen enough of the loss series yet, and
			// the paper itself notes prediction error "generally occurs at
			// the beginning of the training process".
			if e.Batches() >= e.BatchesPerEpoch() {
				if s.cfg.SumCompensation {
					scale = core.CompensationScaleSum(loss, ldelay, s.cfg.Lambda)
				} else {
					scale = core.CompensationScale(loss, ldelay, k, s.cfg.Lambda)
				}
			}
			s.lastComp[m] = tbwd
		}
		bwdWait := e.DispatchBackward(m, scale)
		e.AfterWorker(m, serverMs+tcomm+tbwd+e.CommSample(m), func() {
			if e.Done() {
				return
			}
			bwdWait()
			e.Commit(m, e.Gradient(m), 1) // Formula 8
		})
	})
}

// SnapshotState freezes everything LC-ASGD accumulates on the server
// across iterations: the iter delivery log, both online LSTM predictors
// (weights, windows, traces), the EMA ablation predictor when configured,
// and the per-worker previous-computation-time memory. At a quiescent
// barrier no worker is mid-pipeline, so this is the algorithm's entire
// live state.
func (s *lcStrategy) SnapshotState(_ *Engine, w *snapshot.Writer) {
	s.iterLog.SnapshotTo(w)
	s.lossPred.SnapshotTo(w)
	s.stepPred.SnapshotTo(w)
	w.Bool(s.emaLoss != nil)
	if s.emaLoss != nil {
		w.F64(s.emaLoss.level)
		w.F64(s.emaLoss.trend)
		w.Bool(s.emaLoss.seen)
		w.F64(s.emaLoss.last)
	}
	w.F64s(s.lastComp)
}

// RestoreState loads SnapshotState's payload into a freshly Setup strategy.
func (s *lcStrategy) RestoreState(_ *Engine, r *snapshot.Reader) error {
	if err := s.iterLog.RestoreFrom(r); err != nil {
		return err
	}
	if err := s.lossPred.RestoreFrom(r); err != nil {
		return err
	}
	if err := s.stepPred.RestoreFrom(r); err != nil {
		return err
	}
	hasEMA := r.Bool()
	if r.Err() == nil && hasEMA != (s.emaLoss != nil) {
		r.Fail(fmt.Errorf("ps: checkpoint EMA-predictor presence %v, config expects %v", hasEMA, s.emaLoss != nil))
		return r.Err()
	}
	if hasEMA && r.Err() == nil {
		s.emaLoss.level = r.F64()
		s.emaLoss.trend = r.F64()
		s.emaLoss.seen = r.Bool()
		s.emaLoss.last = r.F64()
	}
	r.F64sInto(s.lastComp)
	return r.Err()
}

func (s *lcStrategy) Finish(e *Engine, res *Result) {
	res.LossTrace = s.lossPred.Trace()
	res.StepTrace = s.stepPred.Trace()
	res.AvgLossPredMs = s.lossPred.AvgTrainMs()
	res.AvgStepPredMs = s.stepPred.AvgTrainMs()
}

// emaPredictor is the ablation baseline for the loss predictor: an
// exponential moving average with linear trend extrapolation.
type emaPredictor struct {
	alpha float64
	level float64
	trend float64
	seen  bool
	last  float64
}

func newEMAPredictor(alpha float64) *emaPredictor { return &emaPredictor{alpha: alpha} }

// Observe updates the level/trend estimates with a new loss value.
func (p *emaPredictor) Observe(v float64) {
	if !p.seen {
		p.level, p.seen, p.last = v, true, v
		return
	}
	prevLevel := p.level
	p.level = p.alpha*v + (1-p.alpha)*p.level
	p.trend = p.alpha*(p.level-prevLevel) + (1-p.alpha)*p.trend
	p.last = v
}

// PredictDelay extrapolates k steps ahead and sums, mirroring Formula 9.
func (p *emaPredictor) PredictDelay(k int) float64 {
	sum := 0.0
	for i := 1; i <= k; i++ {
		v := p.level + float64(i)*p.trend
		if v < 0 {
			v = 0
		}
		sum += v
	}
	return sum
}
