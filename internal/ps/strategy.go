package ps

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"lcasgd/internal/core"
)

// Strategy is the algorithm-specific layer of a training run: how worker
// iterations are scheduled on the virtual clock and how their results
// become server updates. Everything else — fleet construction, data
// sharding, cost sampling, BN accumulation, recording, clock bookkeeping,
// backend execution — lives in the Engine, so a new algorithm is just a
// Strategy (see ROADMAP.md's Architecture section for the recipe).
type Strategy interface {
	// Algo names the algorithm; it becomes Result.Algo.
	Algo() Algo
	// Setup runs once, after the engine has built the fleet and server but
	// before any iteration. Allocate per-worker state and derive labeled
	// RNG streams here.
	Setup(e *Engine)
	// Launch begins one iteration pipeline for worker m at the current
	// virtual time. Implementations pull a snapshot, dispatch compute to
	// the backend, and schedule the events that eventually call e.Commit
	// (which re-arms the worker) or e.Apply + e.Relaunch.
	Launch(e *Engine, m int)
	// Finish lets the strategy add algorithm-specific fields to the result.
	Finish(e *Engine, res *Result)
}

// FleetSizer is an optional Strategy refinement constraining the worker
// fleet the engine builds (sequential SGD always runs one replica, whatever
// Config.Workers says).
type FleetSizer interface {
	FleetSize(configured int) int
}

// BNModeFixer is an optional Strategy refinement overriding the BN mode the
// engine accumulates statistics with. Sequential SGD uses it to keep
// ordinary single-machine EMA statistics (BNAsync) whatever Config.BNMode
// says — the BN-vs-Async-BN comparison of Table 1 is a distributed-only
// question. Result.BNMode still reports the configured mode.
type BNModeFixer interface {
	FixBNMode(configured core.BNMode) core.BNMode
}

var (
	strategyMu sync.RWMutex
	strategies = map[Algo]func(Config) Strategy{}
)

// RegisterStrategy installs a strategy factory for algo, making it runnable
// through Run. The built-in algorithms are registered at init; registering
// an empty name, a nil factory, or a name already taken panics — silently
// replacing an algorithm would let two packages fight over a name and
// corrupt every experiment referencing it.
func RegisterStrategy(algo Algo, factory func(Config) Strategy) {
	if algo == "" {
		panic("ps: RegisterStrategy with empty algorithm name")
	}
	if factory == nil {
		panic(fmt.Sprintf("ps: RegisterStrategy(%q) with nil factory", algo))
	}
	strategyMu.Lock()
	defer strategyMu.Unlock()
	if _, dup := strategies[algo]; dup {
		panic(fmt.Sprintf("ps: RegisterStrategy called twice for %q (registered: %s)",
			algo, strings.Join(registeredNamesLocked(), ", ")))
	}
	strategies[algo] = factory
}

// registeredNamesLocked returns the sorted registered algorithm names;
// callers must hold strategyMu (either mode).
func registeredNamesLocked() []string {
	names := make([]string, 0, len(strategies))
	for a := range strategies {
		names = append(names, string(a))
	}
	sort.Strings(names)
	return names
}

// RegisteredAlgos returns the sorted names of every registered algorithm —
// the vocabulary error messages and flag validation print.
func RegisteredAlgos() []string {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	return registeredNamesLocked()
}

// strategyFor instantiates the registered strategy for cfg.Algo.
func strategyFor(cfg Config) Strategy {
	strategyMu.RLock()
	factory := strategies[cfg.Algo]
	strategyMu.RUnlock()
	if factory == nil {
		panic(fmt.Sprintf("ps: unknown algorithm %q (registered: %s)",
			cfg.Algo, strings.Join(RegisteredAlgos(), ", ")))
	}
	return factory(cfg)
}

func init() {
	RegisterStrategy(SGD, func(Config) Strategy { return sgdStrategy{} })
	RegisterStrategy(SSGD, func(Config) Strategy { return &ssgdStrategy{} })
	RegisterStrategy(ASGD, func(Config) Strategy {
		return &asyncStrategy{algo: ASGD}
	})
	RegisterStrategy(DCASGD, func(Config) Strategy {
		return &asyncStrategy{algo: DCASGD, dc: true}
	})
	RegisterStrategy(LCASGD, func(Config) Strategy { return &lcStrategy{} })
	RegisterStrategy(SAASGD, func(Config) Strategy { return saStrategy{} })
	RegisterStrategy(ADPSGD, func(Config) Strategy { return adpsgdStrategy{} })
}
