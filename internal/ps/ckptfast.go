package ps

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lcasgd/internal/snapshot"
	"lcasgd/internal/tensor"
)

// This file is the checkpoint fast path: the engine state is carved into
// independent sections (snapshot.Container), each tagged with a dirty
// generation maintained at the engine's mutation sites, so a barrier
// re-encodes only what changed since the previous checkpoint. Every
// CheckpointFullEvery-th checkpoint is a self-contained full container; the
// ones between are deltas chained onto their predecessor by (BaseEpoch,
// BaseSum). Dirty sections are encoded by a bounded goroutine pool sharing
// the kernels' core budget (tensor.MatmulParallelism), and the final
// container assembly + sink write happen on a writer goroutine while the
// simulation resumes — at most one write is in flight, drained at the next
// barrier, at the end of the run, and before a restore.
//
// Byte determinism: sections appear in canonical ascending SectionID order
// and each section's encoding depends only on the frozen engine state, so
// the emitted bytes are identical whatever the pool size — a property the
// tests pin by comparing pool-of-1 and pool-of-N encodes.

// Section kinds of the engine's frozen state. The order (by kind, then
// index) is the canonical container order; restore validates that a full
// container holds exactly the expected set.
const (
	secMeta       = 0 // scalars, RNG streams, armed timeline, deferred launches — always dirty
	secServerW    = 1 // server weight vector; dirty generation srvWGen
	secBN         = 2 // global BN accumulator; dirty generation bnGen
	secStrategy   = 3 // StrategySnapshotter payload — always dirty (present iff implemented)
	secRecChunk   = 4 // learning-curve points, chunked; generation = points in chunk
	secWorker     = 5 // per-worker state, indexed by rank; dirty generation wgen[m]
	secTelMetrics = 6 // telemetry instrument registry — always dirty (present iff a recorder is attached)
	secTelTrace   = 7 // telemetry trace events, chunked; generation = events in chunk
)

// recChunkLen is the recorder chunk size: full chunks are frozen forever
// (their generation — the point count — stops moving), so only the last,
// growing chunk re-encodes at each barrier of a long run.
const recChunkLen = 64

// telChunkLen is the trace chunk size, same freezing trick as recChunkLen
// but sized for the trace's much higher event rate.
const telChunkLen = 256

// Test hooks. ckptPoolSize forces the encode pool size (0 derives it from
// the shared core budget); ckptAudit, when set, freshly re-encodes every
// section the cache marked clean and hands the hook both byte slices — the
// dirty-tracking completeness oracle: any mutation site missing a
// generation bump shows up as cached≠fresh.
var (
	ckptPoolSize int
	ckptAudit    func(id snapshot.SectionID, cached, fresh []byte)
)

// ckptBlob is one cached section encoding, valid while the section's dirty
// generation stays at gen. Payloads are immutable once encoded: a dirty
// section gets a fresh blob, never an in-place rewrite, so the writer
// goroutine can read them without synchronization.
type ckptBlob struct {
	payload []byte
	sum     uint32
	gen     uint64
}

// ckptDone is the writer goroutine's completion report: the emitted
// container's framing checksum (the next delta's BaseSum) or the sink
// error, plus the measured emission stats telemetry folds in at drain time
// (on the event loop — the writer goroutine never touches the recorder).
type ckptDone struct {
	sum     uint32
	err     error
	full    bool
	bytes   int
	writeMs float64
}

// ckptEnc is the incremental checkpoint encoder: the clean-section cache,
// the delta-chain cursor (epoch and framing checksum of the previous
// emitted container), and the in-flight writer handoff.
type ckptEnc struct {
	cache     map[snapshot.SectionID]ckptBlob
	seq       int // checkpoint ordinal of the next emission
	sinceFull int // deltas emitted since the last full
	lastEpoch int // epoch of the previous emission; -1 forces the next to be full
	lastSum   uint32
	inflight  chan ckptDone // nil when no write is in flight
}

func newCkptEnc() *ckptEnc {
	return &ckptEnc{cache: map[snapshot.SectionID]ckptBlob{}, lastEpoch: -1}
}

// drain blocks until the in-flight checkpoint write (if any) has committed,
// recording its framing checksum as the next delta's base and returning the
// completion report (ok=false when nothing was in flight). A sink error
// aborts the run here — the same contract the synchronous sink had, just
// surfaced one barrier later.
func (ck *ckptEnc) drain() (ckptDone, bool) {
	if ck.inflight == nil {
		return ckptDone{}, false
	}
	d := <-ck.inflight
	ck.inflight = nil
	if d.err != nil {
		panic(fmt.Sprintf("ps: checkpoint sink: %v", d.err))
	}
	ck.lastSum = d.sum
	return d, true
}

// sectionIDs enumerates the sections of the current engine state in
// canonical order.
func (e *Engine) sectionIDs() []snapshot.SectionID {
	nChunks := (len(e.rec.points) + recChunkLen - 1) / recChunkLen
	ids := make([]snapshot.SectionID, 0, 4+nChunks+len(e.reps))
	ids = append(ids,
		snapshot.SectionID{Kind: secMeta},
		snapshot.SectionID{Kind: secServerW},
		snapshot.SectionID{Kind: secBN},
	)
	if _, ok := e.strategy.(StrategySnapshotter); ok {
		ids = append(ids, snapshot.SectionID{Kind: secStrategy})
	}
	for i := 0; i < nChunks; i++ {
		ids = append(ids, snapshot.SectionID{Kind: secRecChunk, Index: uint32(i)})
	}
	for m := range e.reps {
		ids = append(ids, snapshot.SectionID{Kind: secWorker, Index: uint32(m)})
	}
	if e.tel != nil {
		ids = append(ids, snapshot.SectionID{Kind: secTelMetrics})
		for i := 0; i < telChunks(len(e.tel.rec.Events)); i++ {
			ids = append(ids, snapshot.SectionID{Kind: secTelTrace, Index: uint32(i)})
		}
	}
	return ids
}

// sectionGen returns the current dirty generation of a section. Meta and
// strategy sections are never cached (their state moves every barrier), so
// their generation is irrelevant; recorder chunks use the chunk's point
// count, which freezes at recChunkLen once the chunk fills.
func (e *Engine) sectionGen(id snapshot.SectionID) uint64 {
	switch id.Kind {
	case secServerW:
		return e.srvWGen
	case secBN:
		return e.bnGen
	case secRecChunk:
		n := len(e.rec.points) - int(id.Index)*recChunkLen
		if n > recChunkLen {
			n = recChunkLen
		}
		return uint64(n)
	case secWorker:
		return e.wgen[id.Index]
	case secTelTrace:
		n := len(e.tel.rec.Events) - int(id.Index)*telChunkLen
		if n > telChunkLen {
			n = telChunkLen
		}
		return uint64(n)
	}
	return 0
}

// encodeSectionPayload serializes one section into a bare codec stream. All
// encoders only read engine state — the engine is quiescent at a barrier —
// so any number may run concurrently.
func (e *Engine) encodeSectionPayload(id snapshot.SectionID) []byte {
	var buf bytes.Buffer
	w := snapshot.NewBareWriter(&buf)
	switch id.Kind {
	case secMeta:
		e.encodeMeta(w)
	case secServerW:
		w.F64s(e.srv.w)
	case secBN:
		e.srv.bnAcc.SnapshotTo(w)
	case secStrategy:
		e.strategy.(StrategySnapshotter).SnapshotState(e, w)
	case secRecChunk:
		lo := int(id.Index) * recChunkLen
		hi := lo + recChunkLen
		if hi > len(e.rec.points) {
			hi = len(e.rec.points)
		}
		pts := e.rec.points[lo:hi]
		w.Int(len(pts))
		for _, p := range pts {
			w.Int(p.Epoch)
			w.F64(p.Time)
			w.F64(p.TrainErr)
			w.F64(p.TestErr)
		}
	case secWorker:
		e.encodeWorker(w, int(id.Index))
	case secTelMetrics:
		e.encodeTelMetrics(w)
	case secTelTrace:
		e.encodeTelTrace(w, int(id.Index))
	default:
		panic(fmt.Sprintf("ps: unknown checkpoint section kind %d", id.Kind))
	}
	if err := w.Close(); err != nil {
		panic(fmt.Sprintf("ps: serialize checkpoint section: %v", err)) // in-memory buffer; cannot fail
	}
	return buf.Bytes()
}

// encodeMeta holds everything small that moves every barrier: clock, server
// scalars, RNG streams, run accounting, the armed scenario timeline, the
// deferred launches, and the presence/shape flags restore validates the
// rest of the container against.
func (e *Engine) encodeMeta(w *snapshot.Writer) {
	w.Int(len(e.reps))
	w.F64(e.clock.Now())
	w.F64(e.srv.lrScale)
	w.Int(e.srv.batches)
	w.Int(e.srv.updates)
	st := e.seedRng.State()
	w.U64s(st[:])
	e.sampler.SnapshotTo(w)
	w.Int(e.stalenessSum)
	w.Int(e.stalenessN)
	w.Int(e.maxStale)
	w.Int(e.scnApplied)
	w.Int(e.rec.lastEpoch)
	w.Int(len(e.rec.points))

	// Armed scenario events, in arm order (ascending id), skipping fired
	// tombstones. Re-arming them in this order on resume reproduces the
	// clock's FIFO tie-breaking: at the barrier every armed event was
	// scheduled before any deferred relaunch will be.
	w.Int(len(e.armed) - e.armedDead)
	for _, a := range e.armed {
		if a.dead {
			continue
		}
		writeScnEvent(w, a.ev)
	}

	// Launches deferred by the drain.
	w.Ints(e.deferred)

	if e.dec != nil {
		w.Bool(true)
		st := e.dec.sel.State()
		w.U64s(st[:])
	} else {
		w.Bool(false)
	}
	_, hasStrategy := e.strategy.(StrategySnapshotter)
	w.Bool(hasStrategy)

	// Telemetry presence and trace length: restore validates the attached
	// recorder against the former and sizes the chunk walk with the latter.
	if e.tel != nil {
		w.Bool(true)
		w.Int(len(e.tel.rec.Events))
	} else {
		w.Bool(false)
	}
}

// encodeWorker is worker m's section: batch iterator position, fleet
// membership and connectivity flags, staleness snapshot, recover-opt flag,
// and (decentralized runs) the worker's persistent model and commit
// counter. Worker replicas are deliberately absent: every strategy's Launch
// begins with Pull, which overwrites the replica's parameters, BN
// statistics and workspace, so at a quiescent boundary the iterator
// position is the only live replica state.
func (e *Engine) encodeWorker(w *snapshot.Writer, m int) {
	e.reps[m].iter.SnapshotTo(w)
	w.Bool(e.fleet.active[m])
	w.U64(e.fleet.gen[m])
	w.Bool(e.fleet.cut[m])
	w.Bool(e.fleet.parked[m])
	w.Int(e.snapUpdates[m])
	w.Bool(e.recoverPend[m])
	if e.dec != nil {
		w.F64s(e.dec.w[m])
		w.Int(e.dec.iter[m])
	}
}

// encodePoolSize bounds the section-encode pool: the kernels' shared core
// budget, capped by GOMAXPROCS and the number of dirty sections, with the
// test override winning outright.
func encodePoolSize(n int) int {
	pool := tensor.MatmulParallelism()
	if p := runtime.GOMAXPROCS(0); p < pool {
		pool = p
	}
	if ckptPoolSize > 0 {
		pool = ckptPoolSize
	}
	if pool > n {
		pool = n
	}
	if pool < 1 {
		pool = 1
	}
	return pool
}

// emitCheckpoint runs at the quiescent point of a barrier (takeCheckpoint):
// drain the previous write, decide full vs delta, re-encode the dirty
// sections in parallel, and hand the assembled container to a writer
// goroutine so the simulation resumes while the checkpoint encodes its
// framing and commits to the sink.
func (e *Engine) emitCheckpoint() {
	ck := e.ck
	e.drainCkpt()
	full := ck.lastEpoch < 0 || ck.sinceFull >= e.cfg.CheckpointFullEvery-1

	var encStart time.Time
	if e.tel != nil {
		encStart = time.Now()
	}
	ids := e.sectionIDs()
	type job struct {
		id  snapshot.SectionID
		gen uint64
	}
	dirty := make([]job, 0, len(ids))
	for _, id := range ids {
		gen := e.sectionGen(id)
		if b, ok := ck.cache[id]; ok && b.gen == gen {
			if ckptAudit != nil {
				ckptAudit(id, b.payload, e.encodeSectionPayload(id))
			}
			continue
		}
		dirty = append(dirty, job{id: id, gen: gen})
	}

	payloads := make([][]byte, len(dirty))
	sums := make([]uint32, len(dirty))
	encode := func(i int) {
		payloads[i] = e.encodeSectionPayload(dirty[i].id)
		sums[i] = snapshot.Checksum(payloads[i])
	}
	if pool := encodePoolSize(len(dirty)); pool <= 1 {
		for i := range dirty {
			encode(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for p := 0; p < pool; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(dirty) {
						return
					}
					encode(i)
				}
			}()
		}
		wg.Wait()
	}
	for i, j := range dirty {
		if j.id.Kind == secMeta || j.id.Kind == secStrategy || j.id.Kind == secTelMetrics {
			continue // always dirty; caching them would never hit
		}
		ck.cache[j.id] = ckptBlob{payload: payloads[i], sum: sums[i], gen: j.gen}
	}
	if e.tel != nil {
		e.tel.encodeMs.Observe(float64(time.Since(encStart).Nanoseconds()) / 1e6)
	}

	c := &snapshot.Container{Key: ConfigKey(e.cfg), Epoch: e.srv.epoch(), Seq: ck.seq}
	if full {
		c.Kind = snapshot.KindFull
		c.Sections = make([]snapshot.Section, 0, len(ids))
		di := 0
		for _, id := range ids {
			if di < len(dirty) && dirty[di].id == id {
				c.Sections = append(c.Sections, snapshot.Section{ID: id, Payload: payloads[di], Sum: sums[di]})
				di++
			} else {
				b := ck.cache[id]
				c.Sections = append(c.Sections, snapshot.Section{ID: id, Payload: b.payload, Sum: b.sum})
			}
		}
	} else {
		c.Kind = snapshot.KindDelta
		c.BaseEpoch = ck.lastEpoch
		c.BaseSum = ck.lastSum
		c.Sections = make([]snapshot.Section, len(dirty))
		for i, j := range dirty {
			c.Sections[i] = snapshot.Section{ID: j.id, Payload: payloads[i], Sum: sums[i]}
		}
	}

	hdr := Checkpoint{
		Epoch:     e.srv.epoch(),
		Batches:   e.srv.batches,
		Updates:   e.srv.updates,
		VirtualMs: e.clock.Now(),
		Full:      full,
		BaseEpoch: c.BaseEpoch,
	}
	sink := e.env.CheckpointSink
	done := make(chan ckptDone, 1)
	ck.inflight = done
	go func() {
		start := time.Now()
		data, err := snapshot.EncodeContainer(c)
		if err == nil {
			hdr.Data = data
			err = sink(hdr)
		}
		done <- ckptDone{
			sum: c.Sum, err: err, full: full, bytes: len(data),
			writeMs: float64(time.Since(start).Nanoseconds()) / 1e6,
		}
	}()

	ck.seq++
	ck.lastEpoch = hdr.Epoch
	if full {
		ck.sinceFull = 0
	} else {
		ck.sinceFull++
	}
}
