package ps

import (
	"fmt"
	"os"
	"testing"

	"lcasgd/internal/scenario"
)

// TestFingerprint is a temporary harness used while refactoring: it dumps
// exact float bits of every algorithm's results (stationary + scenarios) so
// a refactor can be proven numerically invisible. Run with
// FINGERPRINT=path go test -run TestFingerprint ./internal/ps
func TestFingerprint(t *testing.T) {
	path := os.Getenv("FINGERPRINT")
	if path == "" {
		t.Skip("set FINGERPRINT=path to dump")
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dump := func(label string, env Env) {
		res := Run(env)
		fmt.Fprintf(f, "== %s ==\n", label)
		fmt.Fprintf(f, "updates=%d virtual=%x maxstale=%d meanstale=%x events=%d\n",
			res.Updates, res.VirtualMs, res.MaxStaleness, res.MeanStaleness, res.ScenarioEvents)
		fmt.Fprintf(f, "final train=%x test=%x\n", res.FinalTrainErr, res.FinalTestErr)
		for i, p := range res.Points {
			fmt.Fprintf(f, "pt%d epoch=%d t=%x tr=%x te=%x\n", i, p.Epoch, p.Time, p.TrainErr, p.TestErr)
		}
		for i, tp := range res.LossTrace {
			fmt.Fprintf(f, "lt%d %d %x %x\n", i, tp.Iteration, tp.Actual, tp.Predicted)
		}
		for i, tp := range res.StepTrace {
			fmt.Fprintf(f, "st%d %d %x %x\n", i, tp.Iteration, tp.Actual, tp.Predicted)
		}
	}
	scns := append([]*scenario.Scenario{nil}, equivalenceScenarios()...)
	for _, algo := range allAlgos {
		for _, kind := range []BackendKind{BackendSequential, BackendConcurrent} {
			for _, scn := range scns {
				m := 4
				if algo == SGD {
					m = 1
				}
				env := tinyEnvSeeded(algo, m, 2)
				env.Cfg.Backend = kind
				name := "none"
				if scn != nil {
					env.Cfg.Scenario = scn
					name = scn.Name
				}
				dump(fmt.Sprintf("%s/%s/%s", algo, kind, name), env)
			}
		}
	}
	// Partitioned + DC-ASGD exercises remaining paths.
	env := tinyEnvSeeded(DCASGD, 4, 2)
	env.Cfg.Partitioned = true
	dump("DC-ASGD/partitioned", env)
	// A conv/BN/residual/pool model exercises the whole layer zoo.
	for _, algo := range []Algo{LCASGD, SSGD} {
		env := convEnvSeeded(algo, 3, 2)
		dump(fmt.Sprintf("%s/convnet", algo), env)
	}
}
