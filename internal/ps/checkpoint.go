package ps

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"lcasgd/internal/scenario"
	"lcasgd/internal/snapshot"
)

// This file is the engine's run-persistence layer: freezing a live run at a
// quiescent checkpoint barrier and restoring it to a state that replays the
// remainder float-bit-identically.
//
// The barrier discipline is what makes that possible. Closures on the event
// queue cannot be serialized, so the engine never tries: when the server
// crosses a Config.CheckpointEvery epoch boundary, launches are deferred
// instead of started, the in-flight worker pipelines drain to completion
// (commits land at their natural times), and the snapshot is taken at the
// exact moment nothing remains on the clock but armed scenario events —
// which are plain data and re-arm verbatim on resume. The deferred launches
// are recorded, and both the uninterrupted run and the resumed run re-arm
// them identically right after the barrier, so the two timelines are the
// same timeline.
//
// Consequently the barrier is part of the run's definition: a run with
// CheckpointEvery=k pauses pipelining at every k-th epoch boundary exactly
// like a real synchronous-checkpoint system does, and its results are
// bit-identical whether it runs straight through or is killed and resumed
// at any barrier — but they differ (deterministically) from a run with no
// barriers. ConfigKey therefore includes CheckpointEvery.

// Checkpoint is one frozen quiescent state, produced by the engine at each
// barrier and consumed by Resume. Data is a snapshot.Container: every
// CheckpointFullEvery-th checkpoint is self-contained (Full), the ones
// between are deltas holding only the sections dirtied since the previous
// checkpoint (see ckptfast.go). Resume takes a full container; a delta
// chain is replayed into one with snapshot.Materialize, walking BaseEpoch
// back to the nearest full.
type Checkpoint struct {
	Epoch     int     // completed global epochs at the barrier
	Batches   int     // mini-batches consumed
	Updates   int     // server updates applied
	VirtualMs float64 // virtual time of the barrier
	Full      bool    // self-contained snapshot vs delta
	BaseEpoch int     // delta only: epoch of the checkpoint it chains onto
	Data      []byte  // snapshot.Container bytes; opaque outside this package
}

// ConfigKey returns the content key identifying a run: the hex SHA-256 of
// the canonical (defaults-applied) configuration. Everything that shapes
// the trajectory is included — algorithm, seed, scenario, checkpoint
// cadence — while the execution backend and the full-snapshot cadence are
// excluded, because they are bit-identical by construction: a run may
// checkpoint on the sequential backend and resume on the concurrent one,
// and full-vs-delta is an encoding choice. The experiment store addresses
// run directories by this key, and every checkpoint embeds it so a snapshot
// cannot be restored into a different experiment.
func ConfigKey(cfg Config) string {
	c := cfg.withDefaults()
	c.Backend = ""
	// Full-snapshot cadence is pure persistence policy: the barrier timeline
	// and every result bit are identical for any value, so like Backend it
	// must not fork the key (a run may checkpoint with one cadence and
	// resume with another).
	c.CheckpointFullEvery = 0
	b, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("ps: marshal config: %v", err)) // plain data struct; cannot fail
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// StrategySnapshotter is an optional Strategy refinement for algorithms
// that carry server-side state across iterations (LC-ASGD's predictors and
// iter log). SnapshotState is called at a quiescent barrier, after Setup
// has built the strategy's structures; RestoreState is called on a freshly
// Setup strategy and must leave it exactly as the snapshotting one was.
// Strategies whose cross-iteration state is provably empty at quiescence
// (SSGD's barrier bookkeeping) need not implement it — or may implement it
// as an emptiness assertion.
type StrategySnapshotter interface {
	SnapshotState(e *Engine, w *snapshot.Writer)
	RestoreState(e *Engine, r *snapshot.Reader) error
}

// Resume rebuilds the engine for env, restores the checkpoint payload, and
// runs the remainder of the training run. The result is bit-identical to
// what the uninterrupted run (same config, same checkpoint cadence) would
// have returned — curve points and predictor traces include the restored
// prefix. The checkpoint must have been taken under the same ConfigKey;
// resuming across backends is allowed.
func Resume(env Env, ckpt []byte) (Result, error) {
	warnEvalBatchDefault(env)
	cfg := env.Cfg.withDefaults()
	env.Cfg = cfg
	if env.Train == nil || env.Test == nil || env.Build == nil {
		panic("ps: Env requires Train, Test and Build")
	}
	if cfg.CheckpointEvery <= 0 {
		return Result{}, fmt.Errorf("ps: Resume requires Config.CheckpointEvery > 0")
	}
	e := newEngine(env, strategyFor(cfg))
	defer e.backend.Close()
	e.strategy.Setup(e)
	if err := e.restore(ckpt); err != nil {
		// Release the recorder's run binding: callers retry a failed resume
		// against other checkpoints or fall back to a full rerun, and each
		// attempt must start from a pristine recorder.
		if env.Telemetry != nil {
			env.Telemetry.Rollback()
		}
		return Result{}, fmt.Errorf("ps: resume: %w", err)
	}
	e.relaunchDeferred()
	return e.loop(), nil
}

// takeCheckpoint runs at the quiescent point of a barrier drain: it drains
// any orphaned lane tasks (crashed workers whose compute nobody waited on —
// harmless, but their batch iterators must be stable before serialization),
// refreshes the RecoverOpt snapshot, hands the serialized state to the
// sink, and re-arms the launches the drain deferred.
func (e *Engine) takeCheckpoint() {
	assertQuiescent(e, "checkpoint")
	e.quiescing = false
	e.nextCkpt = (e.srv.epoch()/e.cfg.CheckpointEvery + 1) * e.cfg.CheckpointEvery
	for m, w := range e.waits {
		if w != nil {
			w()
			e.waits[m] = nil
		}
	}
	// Decentralized runs re-anchor the consensus at the barrier — an exact
	// refold, not the incremental sum — so the RecoverOpt snapshot and the
	// serialized srv.w both hold the exact mean of the workers' models as
	// of this quiescent point, and the resumed run (which refolds on
	// restore) continues from bit-identical state.
	e.anchorConsensus()
	if e.cfg.RecoverOpt {
		e.ckptW = append(e.ckptW[:0], e.srv.w...)
		e.ckptBN = e.srv.bnAcc.Clone()
		e.ckptUpdates = e.srv.updates
	}
	if e.tel != nil {
		// Trace the barrier before serializing, so the drain span and the
		// checkpoint instant are inside the snapshot — a resumed run replays
		// them instead of re-observing them. Emitted whether or not a sink
		// listens: like the barrier itself, telemetry must not depend on
		// whether anyone records the bytes.
		e.telBarrier()
	}
	if e.env.CheckpointSink != nil {
		e.emitCheckpoint()
	}
	e.relaunchDeferred()
}

// relaunchDeferred re-arms the launches deferred during a barrier drain, in
// defer order — the identical order on the straight-through and resumed
// sides of a checkpoint, which keeps the event queue's tie-breaking
// identical too.
func (e *Engine) relaunchDeferred() {
	ds := e.deferred
	e.deferred = e.deferred[:0]
	for _, m := range ds {
		e.deferredSet[m] = false
	}
	for _, m := range ds {
		e.launch(m)
	}
}

// restoreSection locates one required section of a full container and runs
// its decoder against a bare reader over the payload.
func restoreSection(c *snapshot.Container, id snapshot.SectionID, f func(r *snapshot.Reader) error) error {
	s := c.Section(id)
	if s == nil {
		return fmt.Errorf("checkpoint is missing section (%d,%d)", id.Kind, id.Index)
	}
	r, err := snapshot.NewBareReader(bytes.NewReader(s.Payload))
	if err != nil {
		return err
	}
	if err := f(r); err != nil {
		return err
	}
	return r.Close()
}

// restore loads a full checkpoint container (see ckptfast.go for the
// section layout) into a freshly built (and Setup) engine. On success the
// engine is at the barrier's quiescent point: clock set, scenario events
// re-armed, deferred launches recorded but not yet re-armed
// (relaunchDeferred does that, mirroring the straight-through
// takeCheckpoint), and the delta cache seeded so the next checkpoint — a
// forced full, since this process never emitted the chain the store holds —
// reuses the restored blobs for sections that stay clean.
func (e *Engine) restore(data []byte) error {
	c, err := snapshot.DecodeContainer(data)
	if err != nil {
		return err
	}
	if c.Kind != snapshot.KindFull {
		return fmt.Errorf("%w (materialize the delta chain first)", snapshot.ErrNotFull)
	}
	if c.Key != ConfigKey(e.cfg) {
		return fmt.Errorf("checkpoint was taken under a different configuration (key %.16s…, want %.16s…)",
			c.Key, ConfigKey(e.cfg))
	}

	// Meta first: it carries the clock, the scalar state, and the shape
	// flags (worker count, point count, presence bits) the rest of the
	// container is validated against.
	var (
		now        float64
		nPoints    int
		nTelEvents int
		armed      []scenario.Event
		deferred   []int
	)
	if err := restoreSection(c, snapshot.SectionID{Kind: secMeta}, func(r *snapshot.Reader) error {
		if workers := r.Int(); r.Err() == nil && workers != len(e.reps) {
			return fmt.Errorf("checkpoint has %d workers, engine has %d", workers, len(e.reps))
		}
		now = r.F64()
		e.srv.lrScale = r.F64()
		e.srv.batches = r.Int()
		e.srv.updates = r.Int()
		seedState := r.U64s()
		if r.Err() == nil && len(seedState) != 4 {
			return fmt.Errorf("seed stream snapshot has %d words", len(seedState))
		}
		if r.Err() == nil {
			e.seedRng.SetState([4]uint64{seedState[0], seedState[1], seedState[2], seedState[3]})
		}
		if err := e.sampler.RestoreFrom(r); err != nil {
			return err
		}
		e.stalenessSum = r.Int()
		e.stalenessN = r.Int()
		e.maxStale = r.Int()
		e.scnApplied = r.Int()
		e.rec.lastEpoch = r.Int()
		nPoints = r.Int()
		if r.Err() == nil && (nPoints < 0 || nPoints > e.srv.batches+1) {
			return fmt.Errorf("checkpoint has implausible %d curve points", nPoints)
		}
		nArmed := r.Int()
		if r.Err() == nil && (nArmed < 0 || nArmed > 1<<20) {
			return fmt.Errorf("checkpoint has implausible %d armed events", nArmed)
		}
		armed = make([]scenario.Event, 0, nArmed)
		for i := 0; i < nArmed && r.Err() == nil; i++ {
			armed = append(armed, readScnEvent(r))
		}
		deferred = r.Ints()
		for _, m := range deferred {
			if m < 0 || m >= len(e.reps) {
				return fmt.Errorf("checkpoint defers launch of worker %d of %d", m, len(e.reps))
			}
		}
		hasDec := r.Bool()
		if r.Err() == nil && hasDec != (e.dec != nil) {
			return fmt.Errorf("checkpoint decentralized-state presence %v, engine expects %v", hasDec, e.dec != nil)
		}
		if hasDec && r.Err() == nil {
			selState := r.U64s()
			if r.Err() == nil && len(selState) != 4 {
				return fmt.Errorf("neighbor stream snapshot has %d words", len(selState))
			}
			if r.Err() == nil {
				e.dec.sel.SetState([4]uint64{selState[0], selState[1], selState[2], selState[3]})
			}
		}
		hasStrategy := r.Bool()
		_, wantStrategy := e.strategy.(StrategySnapshotter)
		if r.Err() == nil && hasStrategy != wantStrategy {
			return fmt.Errorf("checkpoint strategy-state presence %v, strategy expects %v", hasStrategy, wantStrategy)
		}
		hasTel := r.Bool()
		if r.Err() == nil && hasTel != (e.tel != nil) {
			// A mismatch is not restorable: with a recorder attached the
			// resumed run's telemetry would be missing its prefix, silently
			// breaking the byte-identity contract. Callers fall back to a
			// full rerun (the trainer's resume path already does).
			return fmt.Errorf("checkpoint telemetry presence %v, engine expects %v", hasTel, e.tel != nil)
		}
		if hasTel {
			nTelEvents = r.Int()
			if r.Err() == nil && nTelEvents < 0 {
				return fmt.Errorf("checkpoint has negative %d telemetry events", nTelEvents)
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := restoreSection(c, snapshot.SectionID{Kind: secServerW}, func(r *snapshot.Reader) error {
		r.F64sInto(e.srv.w)
		return nil
	}); err != nil {
		return err
	}
	if err := restoreSection(c, snapshot.SectionID{Kind: secBN}, func(r *snapshot.Reader) error {
		return e.srv.bnAcc.RestoreFrom(r)
	}); err != nil {
		return err
	}

	nChunks := (nPoints + recChunkLen - 1) / recChunkLen
	e.rec.points = e.rec.points[:0]
	for i := 0; i < nChunks; i++ {
		want := nPoints - i*recChunkLen
		if want > recChunkLen {
			want = recChunkLen
		}
		if err := restoreSection(c, snapshot.SectionID{Kind: secRecChunk, Index: uint32(i)}, func(r *snapshot.Reader) error {
			if n := r.Int(); r.Err() == nil && n != want {
				return fmt.Errorf("curve chunk %d has %d points, meta promises %d", i, n, want)
			}
			for j := 0; j < want && r.Err() == nil; j++ {
				e.rec.points = append(e.rec.points, Point{
					Epoch: r.Int(), Time: r.F64(), TrainErr: r.F64(), TestErr: r.F64(),
				})
			}
			return nil
		}); err != nil {
			return err
		}
	}

	for m := range e.reps {
		m := m
		if err := restoreSection(c, snapshot.SectionID{Kind: secWorker, Index: uint32(m)}, func(r *snapshot.Reader) error {
			if err := e.reps[m].iter.RestoreFrom(r); err != nil {
				return err
			}
			e.fleet.active[m] = r.Bool()
			e.fleet.gen[m] = r.U64()
			e.fleet.cut[m] = r.Bool()
			e.fleet.parked[m] = r.Bool()
			e.snapUpdates[m] = r.Int()
			e.recoverPend[m] = r.Bool()
			if e.dec != nil {
				r.F64sInto(e.dec.w[m])
				e.dec.iter[m] = r.Int()
			}
			return nil
		}); err != nil {
			return err
		}
	}

	nExpected := 3 + nChunks + len(e.reps)
	if ss, ok := e.strategy.(StrategySnapshotter); ok {
		nExpected++
		if err := restoreSection(c, snapshot.SectionID{Kind: secStrategy}, func(r *snapshot.Reader) error {
			return ss.RestoreState(e, r)
		}); err != nil {
			return err
		}
	}
	if e.tel != nil {
		nTelChunks := telChunks(nTelEvents)
		nExpected += 1 + nTelChunks
		if err := restoreSection(c, snapshot.SectionID{Kind: secTelMetrics}, e.restoreTelMetrics); err != nil {
			return err
		}
		e.tel.rec.Events = e.tel.rec.Events[:0]
		for i := 0; i < nTelChunks; i++ {
			want := nTelEvents - i*telChunkLen
			if want > telChunkLen {
				want = telChunkLen
			}
			if err := restoreSection(c, snapshot.SectionID{Kind: secTelTrace, Index: uint32(i)}, func(r *snapshot.Reader) error {
				return e.restoreTelTrace(r, want)
			}); err != nil {
				return err
			}
		}
	}
	if len(c.Sections) != nExpected {
		return fmt.Errorf("checkpoint has %d sections, expected %d", len(c.Sections), nExpected)
	}

	// Everything decoded and verified; now mutate the live engine pieces
	// that need ordering: clock first, then the stall-guard counters from
	// the restored flags, then re-arm the scenario timeline in recorded
	// order (which adjusts those counters incrementally), then record the
	// deferred launches for relaunchDeferred.
	e.clock.RestoreNow(now)
	e.rebuildFleetCounters()
	e.refoldConsensusSum()
	for _, ev := range armed {
		if ev.At < now {
			return fmt.Errorf("checkpoint armed event at t=%v before barrier t=%v", ev.At, now)
		}
		e.scheduleScenarioEvent(ev)
	}
	e.deferred = append(e.deferred[:0], deferred...)
	for _, m := range e.deferred {
		e.deferredSet[m] = true
	}
	e.nextCkpt = (e.srv.epoch()/e.cfg.CheckpointEvery + 1) * e.cfg.CheckpointEvery
	if e.cfg.RecoverOpt {
		// The barrier's snapshot is by definition the last checkpoint.
		e.ckptW = append(e.ckptW[:0], e.srv.w...)
		e.ckptBN = e.srv.bnAcc.Clone()
		e.ckptUpdates = e.srv.updates
	}

	// Seed the delta cache from the restored container: sections still clean
	// at the next barrier reuse these blobs verbatim. The chain cursor stays
	// at -1 — the first post-resume checkpoint is forced full, because a
	// delta would have to base on the materialized container, which the
	// store never held (it holds the original full + deltas, whose framing
	// checksums differ).
	e.ck.seq = c.Seq + 1
	for _, s := range c.Sections {
		if s.ID.Kind == secMeta || s.ID.Kind == secStrategy || s.ID.Kind == secTelMetrics {
			continue
		}
		e.ck.cache[s.ID] = ckptBlob{payload: s.Payload, sum: s.Sum, gen: e.sectionGen(s.ID)}
	}
	return nil
}

// writeScnEvent / readScnEvent serialize one scenario timeline event.
func writeScnEvent(w *snapshot.Writer, ev scenario.Event) {
	w.F64(ev.At)
	w.F64(ev.Period)
	w.String(string(ev.Kind))
	w.Int(ev.Worker)
	w.F64(ev.CompScale)
	w.F64(ev.CommScale)
}

func readScnEvent(r *snapshot.Reader) scenario.Event {
	return scenario.Event{
		At:        r.F64(),
		Period:    r.F64(),
		Kind:      scenario.Kind(r.String()),
		Worker:    r.Int(),
		CompScale: r.F64(),
		CommScale: r.F64(),
	}
}
