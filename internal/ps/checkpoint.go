package ps

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"lcasgd/internal/scenario"
	"lcasgd/internal/snapshot"
)

// This file is the engine's run-persistence layer: freezing a live run at a
// quiescent checkpoint barrier and restoring it to a state that replays the
// remainder float-bit-identically.
//
// The barrier discipline is what makes that possible. Closures on the event
// queue cannot be serialized, so the engine never tries: when the server
// crosses a Config.CheckpointEvery epoch boundary, launches are deferred
// instead of started, the in-flight worker pipelines drain to completion
// (commits land at their natural times), and the snapshot is taken at the
// exact moment nothing remains on the clock but armed scenario events —
// which are plain data and re-arm verbatim on resume. The deferred launches
// are recorded, and both the uninterrupted run and the resumed run re-arm
// them identically right after the barrier, so the two timelines are the
// same timeline.
//
// Consequently the barrier is part of the run's definition: a run with
// CheckpointEvery=k pauses pipelining at every k-th epoch boundary exactly
// like a real synchronous-checkpoint system does, and its results are
// bit-identical whether it runs straight through or is killed and resumed
// at any barrier — but they differ (deterministically) from a run with no
// barriers. ConfigKey therefore includes CheckpointEvery.

// Checkpoint is one frozen quiescent state, produced by the engine at each
// barrier and consumed by Resume.
type Checkpoint struct {
	Epoch     int     // completed global epochs at the barrier
	Batches   int     // mini-batches consumed
	Updates   int     // server updates applied
	VirtualMs float64 // virtual time of the barrier
	Data      []byte  // codec stream; opaque outside this package
}

// ConfigKey returns the content key identifying a run: the hex SHA-256 of
// the canonical (defaults-applied) configuration. Everything that shapes
// the trajectory is included — algorithm, seed, scenario, checkpoint
// cadence — while the execution backend is excluded, because backends are
// bit-identical by construction: a run may checkpoint on the sequential
// backend and resume on the concurrent one. The experiment store addresses
// run directories by this key, and every checkpoint embeds it so a snapshot
// cannot be restored into a different experiment.
func ConfigKey(cfg Config) string {
	c := cfg.withDefaults()
	c.Backend = ""
	b, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("ps: marshal config: %v", err)) // plain data struct; cannot fail
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// StrategySnapshotter is an optional Strategy refinement for algorithms
// that carry server-side state across iterations (LC-ASGD's predictors and
// iter log). SnapshotState is called at a quiescent barrier, after Setup
// has built the strategy's structures; RestoreState is called on a freshly
// Setup strategy and must leave it exactly as the snapshotting one was.
// Strategies whose cross-iteration state is provably empty at quiescence
// (SSGD's barrier bookkeeping) need not implement it — or may implement it
// as an emptiness assertion.
type StrategySnapshotter interface {
	SnapshotState(e *Engine, w *snapshot.Writer)
	RestoreState(e *Engine, r *snapshot.Reader) error
}

// Resume rebuilds the engine for env, restores the checkpoint payload, and
// runs the remainder of the training run. The result is bit-identical to
// what the uninterrupted run (same config, same checkpoint cadence) would
// have returned — curve points and predictor traces include the restored
// prefix. The checkpoint must have been taken under the same ConfigKey;
// resuming across backends is allowed.
func Resume(env Env, ckpt []byte) (Result, error) {
	cfg := env.Cfg.withDefaults()
	env.Cfg = cfg
	if env.Train == nil || env.Test == nil || env.Build == nil {
		panic("ps: Env requires Train, Test and Build")
	}
	if cfg.CheckpointEvery <= 0 {
		return Result{}, fmt.Errorf("ps: Resume requires Config.CheckpointEvery > 0")
	}
	e := newEngine(env, strategyFor(cfg))
	defer e.backend.Close()
	e.strategy.Setup(e)
	if err := e.restore(ckpt); err != nil {
		return Result{}, fmt.Errorf("ps: resume: %w", err)
	}
	e.relaunchDeferred()
	return e.loop(), nil
}

// takeCheckpoint runs at the quiescent point of a barrier drain: it drains
// any orphaned lane tasks (crashed workers whose compute nobody waited on —
// harmless, but their batch iterators must be stable before serialization),
// refreshes the RecoverOpt snapshot, hands the serialized state to the
// sink, and re-arms the launches the drain deferred.
func (e *Engine) takeCheckpoint() {
	assertQuiescent(e, "checkpoint")
	e.quiescing = false
	e.nextCkpt = (e.srv.epoch()/e.cfg.CheckpointEvery + 1) * e.cfg.CheckpointEvery
	for m, w := range e.waits {
		if w != nil {
			w()
			e.waits[m] = nil
		}
	}
	// Decentralized runs re-anchor the consensus at the barrier — an exact
	// refold, not the incremental sum — so the RecoverOpt snapshot and the
	// serialized srv.w both hold the exact mean of the workers' models as
	// of this quiescent point, and the resumed run (which refolds on
	// restore) continues from bit-identical state.
	e.anchorConsensus()
	if e.cfg.RecoverOpt {
		e.ckptW = append(e.ckptW[:0], e.srv.w...)
		e.ckptBN = e.srv.bnAcc.Clone()
		e.ckptUpdates = e.srv.updates
	}
	if e.env.CheckpointSink != nil {
		ck := Checkpoint{
			Epoch:     e.srv.epoch(),
			Batches:   e.srv.batches,
			Updates:   e.srv.updates,
			VirtualMs: e.clock.Now(),
			Data:      e.snapshotBytes(),
		}
		if err := e.env.CheckpointSink(ck); err != nil {
			panic(fmt.Sprintf("ps: checkpoint sink: %v", err))
		}
	}
	e.relaunchDeferred()
}

// relaunchDeferred re-arms the launches deferred during a barrier drain, in
// defer order — the identical order on the straight-through and resumed
// sides of a checkpoint, which keeps the event queue's tie-breaking
// identical too.
func (e *Engine) relaunchDeferred() {
	ds := e.deferred
	e.deferred = e.deferred[:0]
	for _, m := range ds {
		e.deferredSet[m] = false
	}
	for _, m := range ds {
		e.launch(m)
	}
}

// snapshotBytes serializes the engine at a quiescent barrier. Worker
// replicas are deliberately absent: every strategy's Launch begins with
// Pull, which overwrites the replica's parameters, BN statistics and
// workspace from server state, so at a boundary where no iteration is in
// flight the only live per-worker state is the batch iterator position.
func (e *Engine) snapshotBytes() []byte {
	assertQuiescent(e, "snapshot")
	var buf bytes.Buffer
	w := snapshot.NewWriter(&buf)
	w.String(ConfigKey(e.cfg))

	// Virtual clock.
	w.F64(e.clock.Now())

	// Parameter server.
	w.F64s(e.srv.w)
	w.F64(e.srv.lrScale)
	w.Int(e.srv.batches)
	w.Int(e.srv.updates)
	e.srv.bnAcc.SnapshotTo(w)

	// RNG streams: the run's seed stream (post-Setup position) and the cost
	// sampler (its own stream plus scenario phase multipliers).
	st := e.seedRng.State()
	w.U64s(st[:])
	e.sampler.SnapshotTo(w)

	// Per-worker state: batch iterator position, fleet membership,
	// partition/parking flags, staleness snapshot, recover-opt flag.
	w.Int(len(e.reps))
	for m, rep := range e.reps {
		rep.iter.SnapshotTo(w)
		w.Bool(e.fleet.active[m])
		w.U64(e.fleet.gen[m])
		w.Bool(e.fleet.cut[m])
		w.Bool(e.fleet.parked[m])
		w.Int(e.snapUpdates[m])
		w.Bool(e.recoverPend[m])
	}

	// Decentralized per-worker model state (decentral.go). Unlike replicas,
	// which the next Pull reconstructs, each worker's local weights and
	// commit counter are live state at a barrier, and the partner-selection
	// stream's position must replay exactly.
	if e.dec != nil {
		w.Bool(true)
		for m := range e.reps {
			w.F64s(e.dec.w[m])
			w.Int(e.dec.iter[m])
		}
		st := e.dec.sel.State()
		w.U64s(st[:])
	} else {
		w.Bool(false)
	}

	// Run-level accounting.
	w.Int(e.stalenessSum)
	w.Int(e.stalenessN)
	w.Int(e.maxStale)
	w.Int(e.scnApplied)

	// Learning-curve recorder.
	w.Int(e.rec.lastEpoch)
	w.Int(len(e.rec.points))
	for _, p := range e.rec.points {
		w.Int(p.Epoch)
		w.F64(p.Time)
		w.F64(p.TrainErr)
		w.F64(p.TestErr)
	}

	// Armed scenario events, in arm order (ascending id), skipping fired
	// tombstones. Re-arming them in this order on resume reproduces the
	// clock's FIFO tie-breaking: at the barrier every armed event was
	// scheduled before any deferred relaunch will be.
	w.Int(len(e.armed) - e.armedDead)
	for _, a := range e.armed {
		if a.dead {
			continue
		}
		writeScnEvent(w, a.ev)
	}

	// Launches deferred by the drain.
	w.Ints(e.deferred)

	// Algorithm-specific server-side state.
	if ss, ok := e.strategy.(StrategySnapshotter); ok {
		w.Bool(true)
		ss.SnapshotState(e, w)
	} else {
		w.Bool(false)
	}

	if err := w.Close(); err != nil {
		panic(fmt.Sprintf("ps: serialize checkpoint: %v", err)) // in-memory buffer; cannot fail
	}
	return buf.Bytes()
}

// restore loads a snapshot produced by snapshotBytes into a freshly built
// (and Setup) engine. On success the engine is at the barrier's quiescent
// point: clock set, scenario events re-armed, deferred launches recorded
// but not yet re-armed (relaunchDeferred does that, mirroring the
// straight-through takeCheckpoint).
func (e *Engine) restore(data []byte) error {
	r, err := snapshot.NewReader(bytes.NewReader(data))
	if err != nil {
		return err
	}
	if key := r.String(); r.Err() == nil && key != ConfigKey(e.cfg) {
		return fmt.Errorf("checkpoint was taken under a different configuration (key %.16s…, want %.16s…)",
			key, ConfigKey(e.cfg))
	}

	now := r.F64()

	r.F64sInto(e.srv.w)
	e.srv.lrScale = r.F64()
	e.srv.batches = r.Int()
	e.srv.updates = r.Int()
	if err := e.srv.bnAcc.RestoreFrom(r); err != nil {
		return err
	}

	seedState := r.U64s()
	if r.Err() == nil && len(seedState) != 4 {
		return fmt.Errorf("seed stream snapshot has %d words", len(seedState))
	}
	if r.Err() == nil {
		e.seedRng.SetState([4]uint64{seedState[0], seedState[1], seedState[2], seedState[3]})
	}
	if err := e.sampler.RestoreFrom(r); err != nil {
		return err
	}

	if workers := r.Int(); r.Err() == nil && workers != len(e.reps) {
		return fmt.Errorf("checkpoint has %d workers, engine has %d", workers, len(e.reps))
	}
	for m, rep := range e.reps {
		if err := rep.iter.RestoreFrom(r); err != nil {
			return err
		}
		e.fleet.active[m] = r.Bool()
		e.fleet.gen[m] = r.U64()
		e.fleet.cut[m] = r.Bool()
		e.fleet.parked[m] = r.Bool()
		e.snapUpdates[m] = r.Int()
		e.recoverPend[m] = r.Bool()
	}

	hasDec := r.Bool()
	if r.Err() == nil && hasDec != (e.dec != nil) {
		return fmt.Errorf("checkpoint decentralized-state presence %v, engine expects %v", hasDec, e.dec != nil)
	}
	if hasDec && r.Err() == nil {
		for m := range e.reps {
			r.F64sInto(e.dec.w[m])
			e.dec.iter[m] = r.Int()
		}
		selState := r.U64s()
		if r.Err() == nil && len(selState) != 4 {
			return fmt.Errorf("neighbor stream snapshot has %d words", len(selState))
		}
		if r.Err() == nil {
			e.dec.sel.SetState([4]uint64{selState[0], selState[1], selState[2], selState[3]})
		}
	}

	e.stalenessSum = r.Int()
	e.stalenessN = r.Int()
	e.maxStale = r.Int()
	e.scnApplied = r.Int()

	e.rec.lastEpoch = r.Int()
	nPoints := r.Int()
	if r.Err() == nil && (nPoints < 0 || nPoints > e.srv.batches+1) {
		return fmt.Errorf("checkpoint has implausible %d curve points", nPoints)
	}
	e.rec.points = e.rec.points[:0]
	for i := 0; i < nPoints && r.Err() == nil; i++ {
		e.rec.points = append(e.rec.points, Point{
			Epoch: r.Int(), Time: r.F64(), TrainErr: r.F64(), TestErr: r.F64(),
		})
	}

	nArmed := r.Int()
	if r.Err() == nil && (nArmed < 0 || nArmed > 1<<20) {
		return fmt.Errorf("checkpoint has implausible %d armed events", nArmed)
	}
	armed := make([]scenario.Event, 0, nArmed)
	for i := 0; i < nArmed && r.Err() == nil; i++ {
		armed = append(armed, readScnEvent(r))
	}

	deferred := r.Ints()
	for _, m := range deferred {
		if m < 0 || m >= len(e.reps) {
			return fmt.Errorf("checkpoint defers launch of worker %d of %d", m, len(e.reps))
		}
	}

	hasStrategy := r.Bool()
	ss, wantStrategy := e.strategy.(StrategySnapshotter)
	if r.Err() == nil && hasStrategy != wantStrategy {
		return fmt.Errorf("checkpoint strategy-state presence %v, strategy expects %v", hasStrategy, wantStrategy)
	}
	if hasStrategy && r.Err() == nil {
		if err := ss.RestoreState(e, r); err != nil {
			return err
		}
	}

	if err := r.Close(); err != nil {
		return err
	}

	// Everything decoded and verified; now mutate the live engine pieces
	// that need ordering: clock first, then the stall-guard counters from
	// the restored flags, then re-arm the scenario timeline in recorded
	// order (which adjusts those counters incrementally), then record the
	// deferred launches for relaunchDeferred.
	e.clock.RestoreNow(now)
	e.rebuildFleetCounters()
	e.refoldConsensusSum()
	for _, ev := range armed {
		if ev.At < now {
			return fmt.Errorf("checkpoint armed event at t=%v before barrier t=%v", ev.At, now)
		}
		e.scheduleScenarioEvent(ev)
	}
	e.deferred = append(e.deferred[:0], deferred...)
	for _, m := range e.deferred {
		e.deferredSet[m] = true
	}
	e.nextCkpt = (e.srv.epoch()/e.cfg.CheckpointEvery + 1) * e.cfg.CheckpointEvery
	if e.cfg.RecoverOpt {
		// The barrier's snapshot is by definition the last checkpoint.
		e.ckptW = append(e.ckptW[:0], e.srv.w...)
		e.ckptBN = e.srv.bnAcc.Clone()
		e.ckptUpdates = e.srv.updates
	}
	return nil
}

// writeScnEvent / readScnEvent serialize one scenario timeline event.
func writeScnEvent(w *snapshot.Writer, ev scenario.Event) {
	w.F64(ev.At)
	w.F64(ev.Period)
	w.String(string(ev.Kind))
	w.Int(ev.Worker)
	w.F64(ev.CompScale)
	w.F64(ev.CommScale)
}

func readScnEvent(r *snapshot.Reader) scenario.Event {
	return scenario.Event{
		At:        r.F64(),
		Period:    r.F64(),
		Kind:      scenario.Kind(r.String()),
		Worker:    r.Int(),
		CompScale: r.F64(),
		CommScale: r.F64(),
	}
}
