package ps

import "lcasgd/internal/scenario"

// This file is the engine's fleet-lifecycle layer: which workers are
// currently part of the run, which are cut off from the server by a network
// partition, and how a scenario timeline (crashes, recoveries, elastic
// resizes, partitions) mutates that state on the simulated clock.
// Everything here runs on the event loop, so lane churn is identical — and
// results bit-identical — across backends.

// FleetWatcher is an optional Strategy refinement for algorithms whose
// scheduling spans workers (SSGD's barrier). The engine calls WorkerRetired
// on the event loop when a worker crashes or leaves; the worker's pending
// AfterWorker events are already cancelled at that point, so a strategy
// waiting on the worker must recompute (for a barrier: shrink the round,
// and close it if the retired worker was the last one outstanding).
// Admission needs no callback — the engine re-launches an admitted worker
// through the strategy's ordinary Launch. Partitions likewise need no
// callback: the worker stays in the fleet and keeps computing; strategies
// folding gradients across workers consult Partitioned at fold time.
type FleetWatcher interface {
	WorkerRetired(e *Engine, m int)
}

// fleet tracks per-worker membership and connectivity. gen counts a
// worker's retirements: AfterWorker events capture the generation at
// scheduling time and are dropped if it moved, which is what makes a crash
// cancel the worker's in-flight pipeline without any backend coordination
// (the dispatched compute still drains on its lane, touching only
// worker-private state). cut marks workers computing behind a network
// partition — their commits are dropped until a Heal event — and parked
// marks cut workers idled because no Heal remains armed (computing forever
// for a server that will never answer would hang the run).
type fleet struct {
	active []bool
	gen    []uint64
	cut    []bool
	parked []bool

	// activeN and cutN count the true entries of active and cut.
	// Maintained at the O(1) membership/partition transitions
	// (retire/admit/Partition/Heal/restore) so stall detection and the
	// gossip fast path never scan the fleet — at M in the thousands an
	// O(M) walk per event is what these counters exist to avoid.
	activeN int
	cutN    int
}

func newFleet(workers int, scn *scenario.Scenario) *fleet {
	f := &fleet{
		active: make([]bool, workers),
		gen:    make([]uint64, workers),
		cut:    make([]bool, workers),
		parked: make([]bool, workers),
	}
	initial := workers
	if scn != nil && scn.InitialWorkers > 0 && scn.InitialWorkers < workers {
		initial = scn.InitialWorkers
	}
	for m := 0; m < initial; m++ {
		f.active[m] = true
	}
	f.activeN = initial
	return f
}

// AfterWorker schedules f on the virtual clock like After, bound to worker
// m's current fleet generation: if m is retired before the event fires, the
// event is dropped. Strategies use it for every per-worker pipeline stage so
// a crash cancels the worker's in-flight iteration; events that must fire
// regardless of fleet churn use After. Both are counted in the engine's
// in-flight tally so a checkpoint barrier knows when the pipelines have
// drained (a generation-dropped event still occupies the clock until its
// time, and still counts down when it fires).
func (e *Engine) AfterWorker(m int, delay float64, f func()) {
	gen := e.fleet.gen[m]
	e.inflight++
	e.clock.ScheduleAfter(delay, func() {
		e.inflight--
		if e.fleet.gen[m] == gen {
			f()
		}
	})
}

// Staleness returns the number of server updates applied since worker m's
// last Pull — the τ of staleness-aware update rules.
func (e *Engine) Staleness(m int) int { return e.srv.updates - e.snapUpdates[m] }

// Partitioned reports whether worker m is currently computing behind a
// network partition. The engine already drops such a worker's Commit and
// FoldStats; strategies that fold gradients across workers outside Commit
// (SSGD's barrier average) must consult it at fold time.
func (e *Engine) Partitioned(m int) bool { return e.fleet.cut[m] }

// psBlocked reports whether worker m counts toward blockedN: an active
// worker computing behind a partition with no Heal armed cannot contribute
// progress in parameter-server mode. The predicate is evaluated at each
// flag transition to keep the counter exact.
func (e *Engine) psBlocked(m int) bool {
	return e.fleet.active[m] && e.fleet.cut[m] && e.healArmedN[m] == 0
}

// retire removes worker m from the fleet: its generation advances (dropping
// every pending AfterWorker event) and barrier-style strategies are told so
// they stop waiting for it. A parked or recover-pending flag is cleared —
// retirement supersedes both. Must only be called on an active worker.
func (e *Engine) retire(m int) {
	if e.psBlocked(m) {
		e.blockedN--
	}
	e.wgen[m]++
	e.fleet.gen[m]++
	e.fleet.active[m] = false
	e.fleet.activeN--
	e.fleet.parked[m] = false
	e.recoverPend[m] = false
	if e.dec != nil {
		// The worker's local model freezes and leaves the consensus: its
		// exact stored values come off the running sum (see decentral.go).
		csum := e.dec.csum
		for i, v := range e.dec.w[m] {
			csum[i] -= v
		}
	}
	if fw, ok := e.strategy.(FleetWatcher); ok {
		fw.WorkerRetired(e, m)
	}
}

// admit (re-)adds worker m to the fleet and starts its first iteration. The
// worker's next Pull re-snapshots the server, so a recovered worker resumes
// from current state, not from where it crashed (unless Config.RecoverOpt
// marked it to restart from the last checkpoint instead — see Pull). Must
// only be called on an inactive worker.
func (e *Engine) admit(m int) {
	e.wgen[m]++ // covers recoverPend set just before a Recover-driven admit too
	e.fleet.active[m] = true
	e.fleet.activeN++
	if e.psBlocked(m) {
		e.blockedN++
	}
	if e.dec != nil {
		// The worker re-enters the consensus with the local model it froze
		// at retirement (or its initial model, for a first Join).
		csum := e.dec.csum
		for i, v := range e.dec.w[m] {
			csum[i] += v
		}
	}
	e.launch(m)
}

// armedScn is one scheduled-but-unfired scenario event. The engine keeps
// the armed set as data (not just closures on the clock) for two reasons:
// the stall guard needs to know whether anything can still revive or heal
// the fleet, and a checkpoint must serialize exactly the pending timeline —
// closures cannot cross a process boundary, but (event, arm-order) pairs
// can, and re-arming them in order reproduces the clock's tie-breaking.
//
// A fired event is tombstoned (dead=true) rather than spliced out: ids are
// strictly ascending in the slice, so disarm is a binary search plus a flag
// write, with compaction amortized over the dead half — O(log n) amortized
// instead of the O(n) splice a thousand-event timeline would otherwise pay
// per firing. The stall guard itself never reads this slice: the counters
// below (healArmedN, reviveArmedN, blockedN) are maintained at arm/disarm.
type armedScn struct {
	id   uint64
	ev   scenario.Event
	dead bool
}

// installScenario compiles the configured scenario onto the clock. Events
// targeting ranks beyond the actual fleet are skipped, so one scenario
// serves any worker count (sequential SGD's one-replica fleet included).
func (e *Engine) installScenario() {
	scn := e.cfg.Scenario
	if scn == nil {
		return
	}
	for _, ev := range scn.Events {
		if ev.Worker >= len(e.reps) {
			continue
		}
		e.scheduleScenarioEvent(ev)
	}
}

// scheduleScenarioEvent arms one occurrence of ev and, for periodic events,
// re-arms the next occurrence after applying it. Arming maintains the
// stall-guard counters: a Heal for worker m unblocks m the moment it is
// armed (the worker will iterate toward the reconnection), so blockedN is
// adjusted before healArmedN moves 0→1.
func (e *Engine) scheduleScenarioEvent(ev scenario.Event) {
	id := e.armSeq
	e.armSeq++
	e.armed = append(e.armed, armedScn{id: id, ev: ev})
	switch ev.Kind {
	case scenario.Recover, scenario.Join:
		e.reviveArmedN++
	case scenario.Heal:
		e.reviveArmedN++
		if e.psBlocked(ev.Worker) {
			e.blockedN--
		}
		e.healArmedN[ev.Worker]++
	}
	e.clock.ScheduleAt(ev.At, func() {
		e.disarm(id)
		e.applyScenarioEvent(ev)
		if ev.Period > 0 && !e.srv.done() && !e.fleetStalled() {
			next := ev
			next.At = ev.At + ev.Period
			e.scheduleScenarioEvent(next)
		}
	})
}

// disarm tombstones a fired event in the armed set and reverses its
// contribution to the stall-guard counters. Ids are strictly ascending in
// e.armed (tombstones included), so the event is found by binary search;
// the slice compacts once more than half of it is dead.
func (e *Engine) disarm(id uint64) {
	lo, hi := 0, len(e.armed)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.armed[mid].id < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(e.armed) || e.armed[lo].id != id || e.armed[lo].dead {
		return
	}
	a := &e.armed[lo]
	a.dead = true
	e.armedDead++
	switch a.ev.Kind {
	case scenario.Recover, scenario.Join:
		e.reviveArmedN--
	case scenario.Heal:
		e.reviveArmedN--
		w := a.ev.Worker
		e.healArmedN[w]--
		if e.psBlocked(w) {
			e.blockedN++
		}
	}
	if e.armedDead*2 > len(e.armed) {
		live := e.armed[:0]
		for _, s := range e.armed {
			if !s.dead {
				live = append(live, s)
			}
		}
		e.armed = live
		e.armedDead = 0
	}
}

// reviveArmed reports whether any armed event could restore progress to a
// fleet that currently has none: a Recover or Join brings a worker back, a
// Heal reconnects a parked one.
func (e *Engine) reviveArmed() bool { return e.reviveArmedN > 0 }

// healArmed reports whether a Heal for worker m is still armed. A
// partitioned worker keeps iterating only while one is — otherwise it
// parks, since every commit it could ever produce would be dropped.
func (e *Engine) healArmed(m int) bool { return e.healArmedN[m] > 0 }

// fleetStalled reports that no worker can make progress — every member is
// retired or parked behind a heal-less partition — nothing but scenario
// events remains on the clock, and no armed event can revive or heal
// anyone. Periodic events stop re-arming at that point; otherwise a
// timeline that permanently disables the fleet would tick forever while
// training never finishes. The run then truncates deterministically
// instead of hanging.
//
// In decentralized mode a cut worker still progresses (its commits land on
// its own model), so any active worker counts; in PS mode the workers
// blocked behind heal-less partitions are subtracted. Pure counter reads —
// the O(M) fleet walk and O(armed) scans this predicate used to do made
// every periodic scenario tick quadratic at large M.
func (e *Engine) fleetStalled() bool {
	progressing := e.fleet.activeN
	if e.dec == nil {
		progressing -= e.blockedN
	}
	return progressing == 0 && e.reviveArmedN == 0 && e.inflight == 0
}

// rebuildFleetCounters recomputes the stall-guard counters from the fleet
// flags alone. It runs on the resume path, after the per-worker flags are
// restored and before the timeline re-arms — the armed list is empty at
// that point, so every healArmedN is zero and a cut active worker counts
// as blocked; scheduleScenarioEvent then adjusts the counters event by
// event exactly as the straight-through run did.
func (e *Engine) rebuildFleetCounters() {
	for m := range e.healArmedN {
		e.healArmedN[m] = 0
	}
	e.reviveArmedN = 0
	activeN, blockedN, cutN := 0, 0, 0
	for m, a := range e.fleet.active {
		if e.fleet.cut[m] {
			cutN++
		}
		if a {
			activeN++
			if e.fleet.cut[m] {
				blockedN++
			}
		}
	}
	e.fleet.activeN = activeN
	e.fleet.cutN = cutN
	e.blockedN = blockedN
}

// applyScenarioEvent executes one timeline event at its virtual time.
// Redundant events (crashing a dead worker, admitting a live one,
// partitioning a cut one) are ignored and not counted, which makes periodic
// event pairs idempotent however they interleave with the run's natural
// end.
func (e *Engine) applyScenarioEvent(ev scenario.Event) {
	switch ev.Kind {
	case scenario.PhaseShift:
		if ev.Worker < 0 {
			e.sampler.SetPhase(ev.CompScale, ev.CommScale)
		} else {
			e.sampler.SetWorkerPhase(ev.Worker, ev.CompScale, ev.CommScale)
		}
	case scenario.Crash, scenario.Leave:
		if !e.fleet.active[ev.Worker] {
			return
		}
		e.retire(ev.Worker)
	case scenario.Recover, scenario.Join:
		if e.fleet.active[ev.Worker] {
			return
		}
		if ev.Kind == scenario.Recover && e.cfg.RecoverOpt {
			// The recovered worker restarts from the last checkpoint's
			// server snapshot instead of pulling fresh state (consumed by
			// the next Pull). Join admits a brand-new worker: it has no
			// lost state to restore.
			e.recoverPend[ev.Worker] = true
		}
		e.admit(ev.Worker)
	case scenario.Partition:
		if e.fleet.cut[ev.Worker] {
			return
		}
		e.wgen[ev.Worker]++
		e.fleet.cut[ev.Worker] = true
		e.fleet.cutN++
		if e.psBlocked(ev.Worker) {
			e.blockedN++
		}
	case scenario.Heal:
		if !e.fleet.cut[ev.Worker] {
			return
		}
		e.wgen[ev.Worker]++
		if e.psBlocked(ev.Worker) {
			e.blockedN--
		}
		e.fleet.cut[ev.Worker] = false
		e.fleet.cutN--
		if e.fleet.parked[ev.Worker] {
			e.fleet.parked[ev.Worker] = false
			e.launch(ev.Worker)
		}
	}
	if e.tel != nil {
		e.telScenarioEvent(ev)
	}
	e.scnApplied++
}
