package ps

import "lcasgd/internal/scenario"

// This file is the engine's fleet-lifecycle layer: which workers are
// currently part of the run, and how a scenario timeline (crashes,
// recoveries, elastic resizes, cost phase shifts) mutates that membership on
// the simulated clock. Everything here runs on the event loop, so lane
// churn is identical — and results bit-identical — across backends.

// FleetWatcher is an optional Strategy refinement for algorithms whose
// scheduling spans workers (SSGD's barrier). The engine calls WorkerRetired
// on the event loop when a worker crashes or leaves; the worker's pending
// AfterWorker events are already cancelled at that point, so a strategy
// waiting on the worker must recompute (for a barrier: shrink the round,
// and close it if the retired worker was the last one outstanding).
// Admission needs no callback — the engine re-launches an admitted worker
// through the strategy's ordinary Launch.
type FleetWatcher interface {
	WorkerRetired(e *Engine, m int)
}

// fleet tracks per-worker membership. gen counts a worker's retirements:
// AfterWorker events capture the generation at scheduling time and are
// dropped if it moved, which is what makes a crash cancel the worker's
// in-flight pipeline without any backend coordination (the dispatched
// compute still drains on its lane, touching only worker-private state).
type fleet struct {
	active []bool
	gen    []uint64
}

func newFleet(workers int, scn *scenario.Scenario) *fleet {
	f := &fleet{active: make([]bool, workers), gen: make([]uint64, workers)}
	initial := workers
	if scn != nil && scn.InitialWorkers > 0 && scn.InitialWorkers < workers {
		initial = scn.InitialWorkers
	}
	for m := 0; m < initial; m++ {
		f.active[m] = true
	}
	return f
}

// AfterWorker schedules f on the virtual clock like After, bound to worker
// m's current fleet generation: if m is retired before the event fires, the
// event is dropped. Strategies use it for every per-worker pipeline stage so
// a crash cancels the worker's in-flight iteration; events that must fire
// regardless of fleet churn use After.
func (e *Engine) AfterWorker(m int, delay float64, f func()) {
	gen := e.fleet.gen[m]
	e.clock.ScheduleAfter(delay, func() {
		if e.fleet.gen[m] == gen {
			f()
		}
	})
}

// Staleness returns the number of server updates applied since worker m's
// last Pull — the τ of staleness-aware update rules.
func (e *Engine) Staleness(m int) int { return e.srv.updates - e.snapUpdates[m] }

// retire removes worker m from the fleet: its generation advances (dropping
// every pending AfterWorker event) and barrier-style strategies are told so
// they stop waiting for it.
func (e *Engine) retire(m int) {
	e.fleet.gen[m]++
	e.fleet.active[m] = false
	if fw, ok := e.strategy.(FleetWatcher); ok {
		fw.WorkerRetired(e, m)
	}
}

// admit (re-)adds worker m to the fleet and starts its first iteration. The
// worker's next Pull re-snapshots the server, so a recovered worker resumes
// from current state, not from where it crashed.
func (e *Engine) admit(m int) {
	e.fleet.active[m] = true
	e.launch(m)
}

// installScenario compiles the configured scenario onto the clock. Events
// targeting ranks beyond the actual fleet are skipped, so one scenario
// serves any worker count (sequential SGD's one-replica fleet included).
func (e *Engine) installScenario() {
	scn := e.cfg.Scenario
	if scn == nil {
		return
	}
	for _, ev := range scn.Events {
		if ev.Worker >= len(e.reps) {
			continue
		}
		e.scheduleScenarioEvent(ev)
	}
}

// scheduleScenarioEvent arms one occurrence of ev and, for periodic events,
// re-arms the next occurrence after applying it. scnPending/revivePending
// track how many armed events remain so the stall guard below can tell a
// temporarily idle fleet from a permanently dead one.
func (e *Engine) scheduleScenarioEvent(ev scenario.Event) {
	e.scnPending++
	revive := ev.Kind == scenario.Recover || ev.Kind == scenario.Join
	if revive {
		e.revivePending++
	}
	e.clock.ScheduleAt(ev.At, func() {
		e.scnPending--
		if revive {
			e.revivePending--
		}
		e.applyScenarioEvent(ev)
		if ev.Period > 0 && !e.srv.done() && !e.fleetStalled() {
			next := ev
			next.At = ev.At + ev.Period
			e.scheduleScenarioEvent(next)
		}
	})
}

// fleetStalled reports that no worker is active, nothing but scenario
// events remains on the clock, and no armed event can revive the fleet.
// Periodic events stop re-arming at that point; otherwise a timeline that
// permanently empties the fleet would tick forever while training never
// finishes. The run then truncates deterministically instead of hanging.
func (e *Engine) fleetStalled() bool {
	for _, a := range e.fleet.active {
		if a {
			return false
		}
	}
	return e.revivePending == 0 && e.clock.Pending() <= e.scnPending
}

// applyScenarioEvent executes one timeline event at its virtual time.
// Redundant events (crashing a dead worker, admitting a live one) are
// ignored and not counted, which makes periodic crash/recover pairs
// idempotent however they interleave with the run's natural end.
func (e *Engine) applyScenarioEvent(ev scenario.Event) {
	switch ev.Kind {
	case scenario.PhaseShift:
		if ev.Worker < 0 {
			e.sampler.SetPhase(ev.CompScale, ev.CommScale)
		} else {
			e.sampler.SetWorkerPhase(ev.Worker, ev.CompScale, ev.CommScale)
		}
	case scenario.Crash, scenario.Leave:
		if !e.fleet.active[ev.Worker] {
			return
		}
		e.retire(ev.Worker)
	case scenario.Recover, scenario.Join:
		if e.fleet.active[ev.Worker] {
			return
		}
		e.admit(ev.Worker)
	}
	e.scnApplied++
}
