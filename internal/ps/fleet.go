package ps

import "lcasgd/internal/scenario"

// This file is the engine's fleet-lifecycle layer: which workers are
// currently part of the run, which are cut off from the server by a network
// partition, and how a scenario timeline (crashes, recoveries, elastic
// resizes, partitions) mutates that state on the simulated clock.
// Everything here runs on the event loop, so lane churn is identical — and
// results bit-identical — across backends.

// FleetWatcher is an optional Strategy refinement for algorithms whose
// scheduling spans workers (SSGD's barrier). The engine calls WorkerRetired
// on the event loop when a worker crashes or leaves; the worker's pending
// AfterWorker events are already cancelled at that point, so a strategy
// waiting on the worker must recompute (for a barrier: shrink the round,
// and close it if the retired worker was the last one outstanding).
// Admission needs no callback — the engine re-launches an admitted worker
// through the strategy's ordinary Launch. Partitions likewise need no
// callback: the worker stays in the fleet and keeps computing; strategies
// folding gradients across workers consult Partitioned at fold time.
type FleetWatcher interface {
	WorkerRetired(e *Engine, m int)
}

// fleet tracks per-worker membership and connectivity. gen counts a
// worker's retirements: AfterWorker events capture the generation at
// scheduling time and are dropped if it moved, which is what makes a crash
// cancel the worker's in-flight pipeline without any backend coordination
// (the dispatched compute still drains on its lane, touching only
// worker-private state). cut marks workers computing behind a network
// partition — their commits are dropped until a Heal event — and parked
// marks cut workers idled because no Heal remains armed (computing forever
// for a server that will never answer would hang the run).
type fleet struct {
	active []bool
	gen    []uint64
	cut    []bool
	parked []bool
}

func newFleet(workers int, scn *scenario.Scenario) *fleet {
	f := &fleet{
		active: make([]bool, workers),
		gen:    make([]uint64, workers),
		cut:    make([]bool, workers),
		parked: make([]bool, workers),
	}
	initial := workers
	if scn != nil && scn.InitialWorkers > 0 && scn.InitialWorkers < workers {
		initial = scn.InitialWorkers
	}
	for m := 0; m < initial; m++ {
		f.active[m] = true
	}
	return f
}

// AfterWorker schedules f on the virtual clock like After, bound to worker
// m's current fleet generation: if m is retired before the event fires, the
// event is dropped. Strategies use it for every per-worker pipeline stage so
// a crash cancels the worker's in-flight iteration; events that must fire
// regardless of fleet churn use After. Both are counted in the engine's
// in-flight tally so a checkpoint barrier knows when the pipelines have
// drained (a generation-dropped event still occupies the clock until its
// time, and still counts down when it fires).
func (e *Engine) AfterWorker(m int, delay float64, f func()) {
	gen := e.fleet.gen[m]
	e.inflight++
	e.clock.ScheduleAfter(delay, func() {
		e.inflight--
		if e.fleet.gen[m] == gen {
			f()
		}
	})
}

// Staleness returns the number of server updates applied since worker m's
// last Pull — the τ of staleness-aware update rules.
func (e *Engine) Staleness(m int) int { return e.srv.updates - e.snapUpdates[m] }

// Partitioned reports whether worker m is currently computing behind a
// network partition. The engine already drops such a worker's Commit and
// FoldStats; strategies that fold gradients across workers outside Commit
// (SSGD's barrier average) must consult it at fold time.
func (e *Engine) Partitioned(m int) bool { return e.fleet.cut[m] }

// retire removes worker m from the fleet: its generation advances (dropping
// every pending AfterWorker event) and barrier-style strategies are told so
// they stop waiting for it. A parked or recover-pending flag is cleared —
// retirement supersedes both.
func (e *Engine) retire(m int) {
	e.fleet.gen[m]++
	e.fleet.active[m] = false
	e.fleet.parked[m] = false
	e.recoverPend[m] = false
	if fw, ok := e.strategy.(FleetWatcher); ok {
		fw.WorkerRetired(e, m)
	}
}

// admit (re-)adds worker m to the fleet and starts its first iteration. The
// worker's next Pull re-snapshots the server, so a recovered worker resumes
// from current state, not from where it crashed (unless Config.RecoverOpt
// marked it to restart from the last checkpoint instead — see Pull).
func (e *Engine) admit(m int) {
	e.fleet.active[m] = true
	e.launch(m)
}

// armedScn is one scheduled-but-unfired scenario event. The engine keeps
// the armed set as data (not just closures on the clock) for two reasons:
// the stall guard needs to know whether anything can still revive or heal
// the fleet, and a checkpoint must serialize exactly the pending timeline —
// closures cannot cross a process boundary, but (event, arm-order) pairs
// can, and re-arming them in order reproduces the clock's tie-breaking.
type armedScn struct {
	id uint64
	ev scenario.Event
}

// installScenario compiles the configured scenario onto the clock. Events
// targeting ranks beyond the actual fleet are skipped, so one scenario
// serves any worker count (sequential SGD's one-replica fleet included).
func (e *Engine) installScenario() {
	scn := e.cfg.Scenario
	if scn == nil {
		return
	}
	for _, ev := range scn.Events {
		if ev.Worker >= len(e.reps) {
			continue
		}
		e.scheduleScenarioEvent(ev)
	}
}

// scheduleScenarioEvent arms one occurrence of ev and, for periodic events,
// re-arms the next occurrence after applying it.
func (e *Engine) scheduleScenarioEvent(ev scenario.Event) {
	id := e.armSeq
	e.armSeq++
	e.armed = append(e.armed, armedScn{id: id, ev: ev})
	e.clock.ScheduleAt(ev.At, func() {
		e.disarm(id)
		e.applyScenarioEvent(ev)
		if ev.Period > 0 && !e.srv.done() && !e.fleetStalled() {
			next := ev
			next.At = ev.At + ev.Period
			e.scheduleScenarioEvent(next)
		}
	})
}

// disarm removes a fired event from the armed set.
func (e *Engine) disarm(id uint64) {
	for i, a := range e.armed {
		if a.id == id {
			e.armed = append(e.armed[:i], e.armed[i+1:]...)
			return
		}
	}
}

// reviveArmed reports whether any armed event could restore progress to a
// fleet that currently has none: a Recover or Join brings a worker back, a
// Heal reconnects a parked one.
func (e *Engine) reviveArmed() bool {
	for _, a := range e.armed {
		switch a.ev.Kind {
		case scenario.Recover, scenario.Join, scenario.Heal:
			return true
		}
	}
	return false
}

// healArmed reports whether a Heal for worker m is still armed. A
// partitioned worker keeps iterating only while one is — otherwise it
// parks, since every commit it could ever produce would be dropped.
func (e *Engine) healArmed(m int) bool {
	for _, a := range e.armed {
		if a.ev.Kind == scenario.Heal && a.ev.Worker == m {
			return true
		}
	}
	return false
}

// fleetStalled reports that no worker can make progress — every member is
// retired or parked behind a heal-less partition — nothing but scenario
// events remains on the clock, and no armed event can revive or heal
// anyone. Periodic events stop re-arming at that point; otherwise a
// timeline that permanently disables the fleet would tick forever while
// training never finishes. The run then truncates deterministically
// instead of hanging.
func (e *Engine) fleetStalled() bool {
	for m, a := range e.fleet.active {
		// In decentralized mode a cut worker still progresses (its commits
		// land on its own model), so any active worker means no stall.
		if a && (e.dec != nil || !e.fleet.cut[m] || e.healArmed(m)) {
			return false
		}
	}
	return !e.reviveArmed() && e.inflight == 0
}

// applyScenarioEvent executes one timeline event at its virtual time.
// Redundant events (crashing a dead worker, admitting a live one,
// partitioning a cut one) are ignored and not counted, which makes periodic
// event pairs idempotent however they interleave with the run's natural
// end.
func (e *Engine) applyScenarioEvent(ev scenario.Event) {
	switch ev.Kind {
	case scenario.PhaseShift:
		if ev.Worker < 0 {
			e.sampler.SetPhase(ev.CompScale, ev.CommScale)
		} else {
			e.sampler.SetWorkerPhase(ev.Worker, ev.CompScale, ev.CommScale)
		}
	case scenario.Crash, scenario.Leave:
		if !e.fleet.active[ev.Worker] {
			return
		}
		e.retire(ev.Worker)
	case scenario.Recover, scenario.Join:
		if e.fleet.active[ev.Worker] {
			return
		}
		if ev.Kind == scenario.Recover && e.cfg.RecoverOpt {
			// The recovered worker restarts from the last checkpoint's
			// server snapshot instead of pulling fresh state (consumed by
			// the next Pull). Join admits a brand-new worker: it has no
			// lost state to restore.
			e.recoverPend[ev.Worker] = true
		}
		e.admit(ev.Worker)
	case scenario.Partition:
		if e.fleet.cut[ev.Worker] {
			return
		}
		e.fleet.cut[ev.Worker] = true
	case scenario.Heal:
		if !e.fleet.cut[ev.Worker] {
			return
		}
		e.fleet.cut[ev.Worker] = false
		if e.fleet.parked[ev.Worker] {
			e.fleet.parked[ev.Worker] = false
			e.launch(ev.Worker)
		}
	}
	e.scnApplied++
}
