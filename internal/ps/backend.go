package ps

import (
	"fmt"
	"runtime"
	"sync"

	"lcasgd/internal/tensor"
)

// BackendKind selects how worker-local compute is executed.
type BackendKind string

const (
	// BackendSequential runs every compute task inline on the event loop —
	// the deterministic single-goroutine simulator the seed shipped with.
	BackendSequential BackendKind = "sequential"
	// BackendConcurrent fans worker forward/backward passes across
	// goroutines (one lane per worker) while the event loop keeps committing
	// server updates in simulated-clock order, so results stay bit-identical
	// to BackendSequential while wall-clock time drops on multi-core.
	BackendConcurrent BackendKind = "concurrent"
)

// Backend executes worker-local compute (forward/backward passes, batched
// evaluation) on behalf of the engine's event loop. The contract that makes
// concurrency safe and bit-exact:
//
//   - Dispatch may only be called from the event loop. Tasks for the same
//     worker run in dispatch order; tasks for different workers may run
//     concurrently. A task must touch only that worker's private state.
//   - All shared state (server weights, BN accumulator, predictors, cost
//     sampler, recorder) is read and written exclusively on the event loop,
//     after wait() has returned for every task whose output is consumed.
//   - ParallelFor is for data-parallel side work (evaluation shards) whose
//     combination is order-independent.
type Backend interface {
	// Kind names the backend.
	Kind() BackendKind
	// Dispatch schedules task on worker m's lane and returns a wait function
	// that blocks until the task has completed.
	Dispatch(m int, task func()) (wait func())
	// ParallelFor runs body(0) … body(n-1), possibly concurrently, and
	// returns when all have completed.
	ParallelFor(n int, body func(i int))
	// Parallelism is the number of compute lanes the backend can keep busy;
	// callers use it to size data-parallel work.
	Parallelism() int
	// Close releases backend resources. No Dispatch/ParallelFor may follow.
	Close()
}

// newBackend constructs the backend for a run; an empty kind means
// sequential, preserving the seed's default behavior.
func newBackend(kind BackendKind, workers int) Backend {
	switch kind {
	case "", BackendSequential:
		return seqBackend{}
	case BackendConcurrent:
		return newConcBackend(workers)
	default:
		panic(fmt.Sprintf("ps: unknown backend %q", kind))
	}
}

// seqBackend executes everything inline on the caller's goroutine.
type seqBackend struct{}

func (seqBackend) Kind() BackendKind { return BackendSequential }

func (seqBackend) Dispatch(_ int, task func()) func() {
	task()
	return func() {}
}

func (seqBackend) ParallelFor(n int, body func(int)) {
	for i := 0; i < n; i++ {
		body(i)
	}
}

func (seqBackend) Parallelism() int { return 1 }

func (seqBackend) Close() {}

// concBackend runs one long-lived goroutine lane per worker. The channel
// send in Dispatch happens-before the task runs, and the close of the done
// channel happens-before wait returns, so the event loop's writes to a
// replica are visible to its lane and the lane's results are visible back —
// no locks needed on the hot path.
type concBackend struct {
	lanes  []chan func()
	wg     sync.WaitGroup
	prevMM int
}

func newConcBackend(workers int) *concBackend {
	par := runtime.GOMAXPROCS(0)
	if par < 1 {
		par = 1
	}
	b := &concBackend{lanes: make([]chan func(), workers)}
	// The tensor kernels fan large matmuls across GOMAXPROCS goroutines on
	// their own. With worker lanes providing the parallelism, that nesting
	// would oversubscribe the cores (up to workers × GOMAXPROCS runnable
	// goroutines), so cap the per-matmul fan-out to the share of cores a
	// lane can actually claim. Results are unaffected: the matmul row-block
	// partitioning is bit-reproducible at any parallelism. The cap is a
	// process-global, so concurrent-backend runs serialize on concRunMu for
	// their whole lifetime — overlapping them would thrash the cores anyway.
	concRunMu.Lock()
	b.prevMM = tensor.SetMatmulParallelism(par / workers)
	for i := range b.lanes {
		ch := make(chan func(), 2)
		b.lanes[i] = ch
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			for task := range ch {
				task()
			}
		}()
	}
	return b
}

func (b *concBackend) Kind() BackendKind { return BackendConcurrent }

func (b *concBackend) Dispatch(m int, task func()) func() {
	done := make(chan struct{})
	b.lanes[m] <- func() {
		task()
		close(done)
	}
	return func() { <-done }
}

func (b *concBackend) ParallelFor(n int, body func(int)) {
	if n <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			body(i)
		}(i)
	}
	wg.Wait()
}

// Parallelism reports the lane count, not GOMAXPROCS: data-parallel work
// sized by it then composes with the per-matmul fan-out cap set at
// construction (lanes × cap ≤ cores) instead of multiplying past it.
func (b *concBackend) Parallelism() int { return len(b.lanes) }

// Close drains the lanes: in-flight tasks finish (they only touch worker
// state, so late completions are harmless) and the lane goroutines exit.
// The tensor kernels' own parallelism is restored once the lanes are gone.
func (b *concBackend) Close() {
	for _, ch := range b.lanes {
		close(ch)
	}
	b.wg.Wait()
	tensor.SetMatmulParallelism(b.prevMM)
	concRunMu.Unlock()
}

// concRunMu serializes concurrent-backend runs: each owns the process-wide
// matmul-parallelism cap from construction to Close. A sequential-backend
// run overlapping a concurrent one is memory-safe (the cap is atomic) but
// computes under the concurrent run's reduced per-matmul fan-out; callers
// wanting full kernel parallelism should not overlap the two.
var concRunMu sync.Mutex
