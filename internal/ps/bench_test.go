package ps

import (
	"testing"

	"lcasgd/internal/cluster"
	"lcasgd/internal/core"
	"lcasgd/internal/data"
	"lcasgd/internal/model"
	"lcasgd/internal/nn"
	"lcasgd/internal/rng"
)

// benchEnv is a heftier environment than the unit-test one so that per-batch
// compute dominates dispatch overhead — the regime where the concurrent
// backend's cross-worker overlap pays off.
func benchEnv(algo Algo, workers int, kind BackendKind) Env {
	d := data.Config{
		Classes: 8, C: 1, H: 12, W: 12,
		Train: 512, Test: 128,
		NoiseSigma: 0.8, SignalScale: 0.5, Smoothing: 1, Seed: 99,
	}
	train, test := data.Generate(d)
	return Env{
		Train: train,
		Test:  test,
		Build: func(g *rng.RNG) *nn.Sequential { return model.MLP("bench", 144, 96, 8, g) },
		Cfg: Config{
			Algo: algo, Workers: workers, BatchSize: 32, Epochs: 2,
			LR: 0.05, Lambda: 1, DCLambda: 0.3,
			BNMode: core.BNAsync, Seed: 7, Cost: cluster.CIFARCostModel(),
			LossPredHidden: 8, StepPredHidden: 8,
			Backend: kind,
		},
	}
}

// BenchmarkSSGDRound compares the two execution backends on SSGD rounds: a
// round's M gradient computations are independent, so the concurrent
// backend overlaps them across cores while the barrier commit stays on the
// event loop. Run with GOMAXPROCS ≥ 4 to see the speedup; record results in
// BENCH_*.json so future PRs have a perf baseline.
func BenchmarkSSGDRound(b *testing.B) {
	for _, kind := range []BackendKind{BackendSequential, BackendConcurrent} {
		b.Run(string(kind), func(b *testing.B) {
			env := benchEnv(SSGD, 4, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Run(env)
			}
		})
	}
}

// BenchmarkLCASGDFleet compares the backends on an LC-ASGD fleet, where
// forward and backward passes of different workers overlap between the
// server's event-loop interactions.
func BenchmarkLCASGDFleet(b *testing.B) {
	for _, kind := range []BackendKind{BackendSequential, BackendConcurrent} {
		b.Run(string(kind), func(b *testing.B) {
			env := benchEnv(LCASGD, 4, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Run(env)
			}
		})
	}
}

// convEnvSeeded is tinyEnvSeeded with a small ResNet so benchmarks and
// tests cover conv, BN, residual and pooling layers.
func convEnvSeeded(algo Algo, workers, epochs int) Env {
	env := tinyEnvSeeded(algo, workers, epochs)
	d := data.Config{
		Classes: 4, C: 3, H: 8, W: 8,
		Train: 80, Test: 40,
		NoiseSigma: 0.8, SignalScale: 0.5, Smoothing: 1, Seed: 99,
	}
	env.Train, env.Test = data.Generate(d)
	mc := model.ResNetLite18(4)
	env.Build = func(g *rng.RNG) *nn.Sequential { return mc.Build(g) }
	env.Cfg.BatchSize = 10
	return env
}

// benchReplica builds a standalone worker replica plus the server-side
// state one pull needs, bypassing the engine so the benchmark isolates the
// worker-local compute path.
func benchReplica(env Env) (*replica, []float64, *core.BNAccumulator) {
	cfg := env.Cfg.withDefaults()
	seedRng := rng.New(cfg.Seed)
	modelSeed := seedRng.Uint64()
	rep := newReplica(env.Build, modelSeed, env.Train, cfg.BatchSize, seedRng.SplitLabeled(300))
	bnAcc := core.NewBNAccumulator(cfg.BNMode, 0.2, rep.bns)
	w := make([]float64, rep.nParams)
	flatten(rep, w)
	return rep, w, bnAcc
}

// BenchmarkWorkerIteration measures one steady-state worker iteration —
// pull, forward, backward, stats fold — the innermost unit every algorithm
// repeats. allocs/op is the headline number: the zero-allocation hot path
// pins it to 0 (it was several hundred before the workspace refactor).
func BenchmarkWorkerIteration(b *testing.B) {
	benches := []struct {
		name string
		env  Env
	}{
		{"mlp", benchEnv(ASGD, 1, BackendSequential)},
		{"resnet", convEnvSeeded(ASGD, 1, 2)},
	}
	for _, bc := range benches {
		b.Run(bc.name, func(b *testing.B) {
			rep, w, bnAcc := benchReplica(bc.env)
			rep.pull(w, bnAcc)
			rep.gradient() // warm the layer buffers and workspace
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep.pull(w, bnAcc)
				rep.gradient()
				bnAcc.Update(rep.stats())
			}
		})
	}
}
