package ps

import (
	"fmt"
	"testing"

	"lcasgd/internal/cluster"
	"lcasgd/internal/core"
	"lcasgd/internal/data"
	"lcasgd/internal/model"
	"lcasgd/internal/nn"
	"lcasgd/internal/rng"
	"lcasgd/internal/scenario"
)

// benchEnv is a heftier environment than the unit-test one so that per-batch
// compute dominates dispatch overhead — the regime where the concurrent
// backend's cross-worker overlap pays off.
func benchEnv(algo Algo, workers int, kind BackendKind) Env {
	d := data.Config{
		Classes: 8, C: 1, H: 12, W: 12,
		Train: 512, Test: 128,
		NoiseSigma: 0.8, SignalScale: 0.5, Smoothing: 1, Seed: 99,
	}
	train, test := data.Generate(d)
	return Env{
		Train: train,
		Test:  test,
		Build: func(g *rng.RNG) *nn.Sequential { return model.MLP("bench", 144, 96, 8, g) },
		Cfg: Config{
			Algo: algo, Workers: workers, BatchSize: 32, Epochs: 2,
			LR: 0.05, Lambda: 1, DCLambda: 0.3,
			BNMode: core.BNAsync, Seed: 7, Cost: cluster.CIFARCostModel(),
			LossPredHidden: 8, StepPredHidden: 8,
			Backend: kind,
		},
	}
}

// BenchmarkSSGDRound compares the two execution backends on SSGD rounds: a
// round's M gradient computations are independent, so the concurrent
// backend overlaps them across cores while the barrier commit stays on the
// event loop. Run with GOMAXPROCS ≥ 4 to see the speedup; record results in
// BENCH_*.json so future PRs have a perf baseline.
func BenchmarkSSGDRound(b *testing.B) {
	for _, kind := range []BackendKind{BackendSequential, BackendConcurrent} {
		b.Run(string(kind), func(b *testing.B) {
			env := benchEnv(SSGD, 4, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Run(env)
			}
		})
	}
}

// BenchmarkLCASGDFleet compares the backends on an LC-ASGD fleet, where
// forward and backward passes of different workers overlap between the
// server's event-loop interactions.
func BenchmarkLCASGDFleet(b *testing.B) {
	for _, kind := range []BackendKind{BackendSequential, BackendConcurrent} {
		b.Run(string(kind), func(b *testing.B) {
			env := benchEnv(LCASGD, 4, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Run(env)
			}
		})
	}
}

// convEnvSeeded is tinyEnvSeeded with a small ResNet so benchmarks and
// tests cover conv, BN, residual and pooling layers.
func convEnvSeeded(algo Algo, workers, epochs int) Env {
	env := tinyEnvSeeded(algo, workers, epochs)
	d := data.Config{
		Classes: 4, C: 3, H: 8, W: 8,
		Train: 80, Test: 40,
		NoiseSigma: 0.8, SignalScale: 0.5, Smoothing: 1, Seed: 99,
	}
	env.Train, env.Test = data.Generate(d)
	mc := model.ResNetLite18(4)
	env.Build = func(g *rng.RNG) *nn.Sequential { return mc.Build(g) }
	env.Cfg.BatchSize = 10
	return env
}

// benchReplica builds a standalone worker replica plus the server-side
// state one pull needs, bypassing the engine so the benchmark isolates the
// worker-local compute path.
func benchReplica(env Env) (*replica, []float64, *core.BNAccumulator) {
	cfg := env.Cfg.withDefaults()
	seedRng := rng.New(cfg.Seed)
	modelSeed := seedRng.Uint64()
	rep := newReplica(env.Build, modelSeed, env.Train, cfg.BatchSize, seedRng.SplitLabeled(300))
	bnAcc := core.NewBNAccumulator(cfg.BNMode, 0.2, rep.bns)
	w := make([]float64, rep.nParams)
	flatten(rep, w)
	return rep, w, bnAcc
}

// BenchmarkWorkerIteration measures one steady-state worker iteration —
// pull, forward, backward, stats fold — the innermost unit every algorithm
// repeats. allocs/op is the headline number: the zero-allocation hot path
// pins it to 0 (it was several hundred before the workspace refactor).
func BenchmarkWorkerIteration(b *testing.B) {
	benches := []struct {
		name string
		env  Env
	}{
		{"mlp", benchEnv(ASGD, 1, BackendSequential)},
		{"resnet", convEnvSeeded(ASGD, 1, 2)},
	}
	for _, bc := range benches {
		b.Run(bc.name, func(b *testing.B) {
			rep, w, bnAcc := benchReplica(bc.env)
			rep.pull(w, bnAcc)
			rep.gradient() // warm the layer buffers and workspace
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep.pull(w, bnAcc)
				rep.gradient()
				bnAcc.Update(rep.stats())
			}
		})
	}
}

// fleetScaleEnv shrinks the ML workload to near-nothing (4 samples, a
// 4→16→16→4 MLP) so BenchmarkFleetScale measures the engine, not the network:
// scheduling, fleet bookkeeping, gossip partner draws, consensus refreshes
// and curve recording. Each worker gets the same per-worker iteration budget
// at every M (epochs scale with the fleet), so ns/event is comparable across
// fleet sizes — any per-event cost that grows with M shows up directly. The
// cost model stretches virtual iterations to ~1s so the canned flaky
// timeline (first crash at t=900ms, period 3s) genuinely churns the fleet
// within the run's span instead of expiring after it.
func fleetScaleEnv(algo Algo, workers int, scn *scenario.Scenario) Env {
	d := data.Config{
		Classes: 4, C: 1, H: 2, W: 2,
		Train: 4, Test: 4,
		NoiseSigma: 0.8, SignalScale: 0.5, Smoothing: 1, Seed: 99,
	}
	train, test := data.Generate(d)
	const itersPerWorker = 2
	const batchesPerEpoch = 1 // Train/BatchSize
	return Env{
		Train: train,
		Test:  test,
		// The hidden width keeps nParams large relative to the 4-sample
		// forward passes, so per-parameter engine work (consensus upkeep)
		// is visible over the network compute. EvalBatch matches the
		// dataset: the default (150) would pad every inference batch
		// ~40x past the data and drown the engine in dead matmul rows.
		Build: func(g *rng.RNG) *nn.Sequential { return model.MLP("fleet", 4, 16, 4, g) },
		Cfg: Config{
			Algo: algo, Workers: workers, BatchSize: 4, EvalBatch: 4,
			Epochs: workers * itersPerWorker / batchesPerEpoch,
			LR:     0.05, Lambda: 1, DCLambda: 0.3,
			BNMode: core.BNAsync, Seed: 7,
			Cost: cluster.CostModel{
				MeanComp: 900, MeanComm: 50, Sigma: 0.2,
				Heterogeneity: 0.3, StragglerProb: 0.02, StragglerFactor: 3,
			},
			LossPredHidden: 8, StepPredHidden: 8,
			Backend:  BackendSequential,
			Scenario: scn,
		},
	}
}

// BenchmarkCheckpointScale measures the checkpoint fast path at fleet
// scale: whole AD-PSGD runs (the costliest snapshot — every worker carries
// a full parameter replica) at M ∈ {16, 256, 1024, 4096} with an in-memory
// sink, at barrier cadences every ∈ {0, 1, 4}. every=0 is the
// no-checkpoint baseline, so the checkpoint path's wall-time cost is the
// ns/op delta against it. Each worker gets 8 iterations (epochs scale with
// M, like fleetScaleEnv): a barrier's quiescent drain absorbs roughly one
// full fleet round, so this yields a comparable ~7 barriers per run at
// every M. The sparse cells park 7/8 of the fleet up front — dead workers'
// sections stay clean, so deltas carry only the live eighth; that is the
// regime (most of a big fleet idle or partitioned between barriers) where
// delta encoding beats re-encoding the world. Reported metrics:
// checkpoints per run, average container size, and the full-vs-delta
// split (KB) that BENCH_ps.json records at M=1024; finalErr doubles as a
// trajectory fingerprint — it must be bit-identical across cadences and
// across the before/after binaries of a perf comparison, since checkpoint
// encoding must never perturb the run.
func BenchmarkCheckpointScale(b *testing.B) {
	const itersPerWorker = 8
	sparseScn := func(m int) *scenario.Scenario {
		scn := &scenario.Scenario{Name: "sparse"}
		for w := m / 8; w < m; w++ {
			scn.Events = append(scn.Events, scenario.Event{
				At: 1 + 0.01*float64(w), Kind: scenario.Crash, Worker: w,
			})
		}
		return scn
	}
	type cell struct {
		name  string
		every int
		scn   *scenario.Scenario
	}
	for _, m := range []int{16, 256, 1024, 4096} {
		cells := []cell{
			{"every0", 0, nil},
			{"every1", 1, nil},
			{"every4", 4, nil},
			{"sparse/every0", 0, sparseScn(m)},
			{"sparse/every1", 1, sparseScn(m)},
		}
		for _, c := range cells {
			b.Run(fmt.Sprintf("ADPSGD/M%d/%s", m, c.name), func(b *testing.B) {
				env := fleetScaleEnv(ADPSGD, m, c.scn)
				env.Cfg.Epochs = m * itersPerWorker
				env.Cfg.CheckpointEvery = c.every
				every := c.every
				var cks, total, fullB, fullN, deltaB, deltaN int
				if every > 0 {
					env.CheckpointSink = func(ck Checkpoint) error {
						cks++
						total += len(ck.Data)
						if ck.Full {
							fullB += len(ck.Data)
							fullN++
						} else {
							deltaB += len(ck.Data)
							deltaN++
						}
						return nil
					}
				}
				var fp float64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := Run(env)
					fp = res.FinalTestErr
				}
				b.StopTimer()
				b.ReportMetric(fp, "finalErr")
				if cks > 0 {
					b.ReportMetric(float64(cks)/float64(b.N), "ckpt/op")
					b.ReportMetric(float64(total)/float64(cks)/1024, "KB/ckpt")
				}
				if fullN > 0 {
					b.ReportMetric(float64(fullB)/float64(fullN)/1024, "fullKB")
				}
				if deltaN > 0 {
					b.ReportMetric(float64(deltaB)/float64(deltaN)/1024, "deltaKB")
				}
			})
		}
	}
}

// BenchmarkFleetScale drives whole runs at M ∈ {16, 256, 1024, 4096} for one
// parameter-server algorithm (ASGD) and one decentralized one (AD-PSGD),
// with and without churn, reporting ns and allocs per simulator event. The
// scaling contract under test: per-event cost stays flat as M grows (heap
// ops are O(log M); everything else on the per-event path is O(1) in the
// fleet size), so ns/event at M=4096 should sit within ~2x of M=256.
func BenchmarkFleetScale(b *testing.B) {
	flaky := scenario.Flaky()
	scns := []struct {
		name string
		scn  *scenario.Scenario
	}{{"none", nil}, {"flaky", &flaky}}
	for _, algo := range []Algo{ASGD, ADPSGD} {
		for _, m := range []int{16, 256, 1024, 4096} {
			for _, sc := range scns {
				b.Run(fmt.Sprintf("%s/M%d/%s", algo, m, sc.name), func(b *testing.B) {
					env := fleetScaleEnv(algo, m, sc.scn)
					env.Cfg = env.Cfg.withDefaults()
					b.ReportAllocs()
					b.ResetTimer()
					var events uint64
					for i := 0; i < b.N; i++ {
						e := newEngine(env, strategyFor(env.Cfg))
						e.run()
						events += e.clock.Processed()
					}
					b.StopTimer()
					if events > 0 {
						b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
						b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
					}
				})
			}
		}
	}
}
