package ps

import (
	"fmt"
	"testing"

	"lcasgd/internal/cluster"
	"lcasgd/internal/core"
	"lcasgd/internal/data"
	"lcasgd/internal/model"
	"lcasgd/internal/nn"
	"lcasgd/internal/rng"
	"lcasgd/internal/scenario"
)

// benchEnv is a heftier environment than the unit-test one so that per-batch
// compute dominates dispatch overhead — the regime where the concurrent
// backend's cross-worker overlap pays off.
func benchEnv(algo Algo, workers int, kind BackendKind) Env {
	d := data.Config{
		Classes: 8, C: 1, H: 12, W: 12,
		Train: 512, Test: 128,
		NoiseSigma: 0.8, SignalScale: 0.5, Smoothing: 1, Seed: 99,
	}
	train, test := data.Generate(d)
	return Env{
		Train: train,
		Test:  test,
		Build: func(g *rng.RNG) *nn.Sequential { return model.MLP("bench", 144, 96, 8, g) },
		Cfg: Config{
			Algo: algo, Workers: workers, BatchSize: 32, Epochs: 2,
			LR: 0.05, Lambda: 1, DCLambda: 0.3,
			BNMode: core.BNAsync, Seed: 7, Cost: cluster.CIFARCostModel(),
			LossPredHidden: 8, StepPredHidden: 8,
			Backend: kind,
		},
	}
}

// BenchmarkSSGDRound compares the two execution backends on SSGD rounds: a
// round's M gradient computations are independent, so the concurrent
// backend overlaps them across cores while the barrier commit stays on the
// event loop. Run with GOMAXPROCS ≥ 4 to see the speedup; record results in
// BENCH_*.json so future PRs have a perf baseline.
func BenchmarkSSGDRound(b *testing.B) {
	for _, kind := range []BackendKind{BackendSequential, BackendConcurrent} {
		b.Run(string(kind), func(b *testing.B) {
			env := benchEnv(SSGD, 4, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Run(env)
			}
		})
	}
}

// BenchmarkLCASGDFleet compares the backends on an LC-ASGD fleet, where
// forward and backward passes of different workers overlap between the
// server's event-loop interactions.
func BenchmarkLCASGDFleet(b *testing.B) {
	for _, kind := range []BackendKind{BackendSequential, BackendConcurrent} {
		b.Run(string(kind), func(b *testing.B) {
			env := benchEnv(LCASGD, 4, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Run(env)
			}
		})
	}
}

// convEnvSeeded is tinyEnvSeeded with a small ResNet so benchmarks and
// tests cover conv, BN, residual and pooling layers.
func convEnvSeeded(algo Algo, workers, epochs int) Env {
	env := tinyEnvSeeded(algo, workers, epochs)
	d := data.Config{
		Classes: 4, C: 3, H: 8, W: 8,
		Train: 80, Test: 40,
		NoiseSigma: 0.8, SignalScale: 0.5, Smoothing: 1, Seed: 99,
	}
	env.Train, env.Test = data.Generate(d)
	mc := model.ResNetLite18(4)
	env.Build = func(g *rng.RNG) *nn.Sequential { return mc.Build(g) }
	env.Cfg.BatchSize = 10
	return env
}

// benchReplica builds a standalone worker replica plus the server-side
// state one pull needs, bypassing the engine so the benchmark isolates the
// worker-local compute path.
func benchReplica(env Env) (*replica, []float64, *core.BNAccumulator) {
	cfg := env.Cfg.withDefaults()
	seedRng := rng.New(cfg.Seed)
	modelSeed := seedRng.Uint64()
	rep := newReplica(env.Build, modelSeed, env.Train, cfg.BatchSize, seedRng.SplitLabeled(300))
	bnAcc := core.NewBNAccumulator(cfg.BNMode, 0.2, rep.bns)
	w := make([]float64, rep.nParams)
	flatten(rep, w)
	return rep, w, bnAcc
}

// BenchmarkWorkerIteration measures one steady-state worker iteration —
// pull, forward, backward, stats fold — the innermost unit every algorithm
// repeats. allocs/op is the headline number: the zero-allocation hot path
// pins it to 0 (it was several hundred before the workspace refactor).
func BenchmarkWorkerIteration(b *testing.B) {
	benches := []struct {
		name string
		env  Env
	}{
		{"mlp", benchEnv(ASGD, 1, BackendSequential)},
		{"resnet", convEnvSeeded(ASGD, 1, 2)},
	}
	for _, bc := range benches {
		b.Run(bc.name, func(b *testing.B) {
			rep, w, bnAcc := benchReplica(bc.env)
			rep.pull(w, bnAcc)
			rep.gradient() // warm the layer buffers and workspace
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep.pull(w, bnAcc)
				rep.gradient()
				bnAcc.Update(rep.stats())
			}
		})
	}
}

// fleetScaleEnv shrinks the ML workload to near-nothing (4 samples, a
// 4→16→16→4 MLP) so BenchmarkFleetScale measures the engine, not the network:
// scheduling, fleet bookkeeping, gossip partner draws, consensus refreshes
// and curve recording. Each worker gets the same per-worker iteration budget
// at every M (epochs scale with the fleet), so ns/event is comparable across
// fleet sizes — any per-event cost that grows with M shows up directly. The
// cost model stretches virtual iterations to ~1s so the canned flaky
// timeline (first crash at t=900ms, period 3s) genuinely churns the fleet
// within the run's span instead of expiring after it.
func fleetScaleEnv(algo Algo, workers int, scn *scenario.Scenario) Env {
	d := data.Config{
		Classes: 4, C: 1, H: 2, W: 2,
		Train: 4, Test: 4,
		NoiseSigma: 0.8, SignalScale: 0.5, Smoothing: 1, Seed: 99,
	}
	train, test := data.Generate(d)
	const itersPerWorker = 2
	const batchesPerEpoch = 1 // Train/BatchSize
	return Env{
		Train: train,
		Test:  test,
		// The hidden width keeps nParams large relative to the 4-sample
		// forward passes, so per-parameter engine work (consensus upkeep)
		// is visible over the network compute. EvalBatch matches the
		// dataset: the default (150) would pad every inference batch
		// ~40x past the data and drown the engine in dead matmul rows.
		Build: func(g *rng.RNG) *nn.Sequential { return model.MLP("fleet", 4, 16, 4, g) },
		Cfg: Config{
			Algo: algo, Workers: workers, BatchSize: 4, EvalBatch: 4,
			Epochs: workers * itersPerWorker / batchesPerEpoch,
			LR:     0.05, Lambda: 1, DCLambda: 0.3,
			BNMode: core.BNAsync, Seed: 7,
			Cost: cluster.CostModel{
				MeanComp: 900, MeanComm: 50, Sigma: 0.2,
				Heterogeneity: 0.3, StragglerProb: 0.02, StragglerFactor: 3,
			},
			LossPredHidden: 8, StepPredHidden: 8,
			Backend:  BackendSequential,
			Scenario: scn,
		},
	}
}

// BenchmarkFleetScale drives whole runs at M ∈ {16, 256, 1024, 4096} for one
// parameter-server algorithm (ASGD) and one decentralized one (AD-PSGD),
// with and without churn, reporting ns and allocs per simulator event. The
// scaling contract under test: per-event cost stays flat as M grows (heap
// ops are O(log M); everything else on the per-event path is O(1) in the
// fleet size), so ns/event at M=4096 should sit within ~2x of M=256.
func BenchmarkFleetScale(b *testing.B) {
	flaky := scenario.Flaky()
	scns := []struct {
		name string
		scn  *scenario.Scenario
	}{{"none", nil}, {"flaky", &flaky}}
	for _, algo := range []Algo{ASGD, ADPSGD} {
		for _, m := range []int{16, 256, 1024, 4096} {
			for _, sc := range scns {
				b.Run(fmt.Sprintf("%s/M%d/%s", algo, m, sc.name), func(b *testing.B) {
					env := fleetScaleEnv(algo, m, sc.scn)
					env.Cfg = env.Cfg.withDefaults()
					b.ReportAllocs()
					b.ResetTimer()
					var events uint64
					for i := 0; i < b.N; i++ {
						e := newEngine(env, strategyFor(env.Cfg))
						e.run()
						events += e.clock.Processed()
					}
					b.StopTimer()
					if events > 0 {
						b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
						b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
					}
				})
			}
		}
	}
}
