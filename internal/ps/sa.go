package ps

// saStrategy executes staleness-aware ASGD (Zhang et al., "Staleness-aware
// Async-SGD for Distributed Deep Learning", IJCAI 2016). The worker loop is
// plain ASGD — snapshot, compute, commit one round-trip later — but each
// arriving gradient is modulated by its realized staleness τ: the effective
// step is γ·M/τ·g, the 1/τ rule of the paper on top of the same linearly
// scaled base rate (Goyal et al. 2017) this reproduction's SSGD uses, and
// for the same reason — under the scaled-down sample budget an unscaled
// 1/τ would cut every step by the fleet's typical staleness τ ≈ M−1 and
// underfit. At that typical staleness the effective step is ≈γ, so SA-ASGD
// matches ASGD on a calm cluster while damping the gradients that
// congestion phases, stragglers and crash recoveries delay the most —
// which is what makes it the natural robustness baseline between raw ASGD
// and the prediction-based LC-ASGD.
//
// It is registered through the same RegisterStrategy extension point any
// out-of-tree algorithm would use: the engine supplies the fleet, clock,
// staleness accounting (Staleness) and crash semantics (AfterWorker) for
// free, so the whole algorithm is the Launch body below.
type saStrategy struct{}

func (saStrategy) Algo() Algo { return SAASGD }

func (saStrategy) Setup(e *Engine) {
	e.SetLRScale(float64(e.Workers()))
}

func (saStrategy) Launch(e *Engine, m int) {
	e.Pull(m)
	wait := e.DispatchGradient(m)
	dur := e.CommSample(m) + e.CompSample(m) + e.CommSample(m)
	e.AfterWorker(m, dur, func() {
		if e.Done() {
			return
		}
		wait()
		grad := e.Gradient(m)
		// 1/τ modulation with τ floored at 1: a zero-staleness gradient is
		// simply fresh, not a license to overshoot the scaled base rate.
		if tau := e.Staleness(m); tau > 1 {
			inv := 1 / float64(tau)
			for i := range grad {
				grad[i] *= inv
			}
		}
		e.FoldStats(m)
		e.Commit(m, grad, 1)
	})
}

func (saStrategy) Finish(*Engine, *Result) {}
