// Package ps implements the five training algorithms the paper evaluates —
// sequential SGD, synchronous SGD (SSGD, Formula 1), asynchronous SGD
// (ASGD, Formula 2), delay-compensated ASGD (DC-ASGD, Formula 3, Zheng et
// al. 2017) and the paper's LC-ASGD (Algorithms 1–4) — plus algorithms
// beyond the paper: staleness-aware ASGD (SA-ASGD, Zhang et al. 2016) as a
// parameter-server strategy, and decentralized AD-PSGD (Lian et al. 2017),
// which replaces the server with gossip averaging on a communication graph
// (Config.Topology, internal/topology). All execute on a deterministic
// discrete-event cluster simulation. A Config.Scenario additionally replays
// cluster events (congestion phases, crashes/recoveries, elastic resizes,
// partitions) on the simulated clock, so every algorithm can be stressed on
// a non-stationary fleet.
//
// The package is layered (see ROADMAP.md's Architecture section):
//
//   - Engine owns everything a run shares across algorithms: replica fleet,
//     data sharding, cost sampler, BN accumulator, recorder, and the
//     discrete-event loop.
//   - Strategy is the algorithm: how worker iterations are scheduled and
//     how their gradients become server updates. The five paper algorithms
//     are compact Strategy implementations; RegisterStrategy adds more.
//   - Backend executes worker-local compute: BackendSequential inline on
//     the event loop, BackendConcurrent fanned across goroutine lanes with
//     server commits still in simulated-clock order, so both backends
//     produce bit-identical results.
//
// All algorithms perform the same total amount of sample processing
// (Epochs × dataset passes), so the error-vs-epoch curves of Figures 3/5
// compare optimization quality at equal data budgets, while the virtual
// clock gives the error-vs-seconds curves of Figures 4/6.
package ps

import (
	"fmt"

	"lcasgd/internal/cluster"
	"lcasgd/internal/core"
	"lcasgd/internal/data"
	"lcasgd/internal/nn"
	"lcasgd/internal/opt"
	"lcasgd/internal/rng"
	"lcasgd/internal/scenario"
	"lcasgd/internal/telemetry"
)

// Algo identifies a training algorithm.
type Algo string

// The five algorithms of the paper's evaluation.
const (
	SGD    Algo = "SGD"
	SSGD   Algo = "SSGD"
	ASGD   Algo = "ASGD"
	DCASGD Algo = "DC-ASGD"
	LCASGD Algo = "LC-ASGD"
)

// SAASGD is the staleness-aware ASGD of Zhang et al. (IJCAI 2016) — the
// first algorithm beyond the paper's five, added through RegisterStrategy
// (see sa.go). Each gradient's step size is divided by its staleness, so
// long-delayed gradients move the server less.
const SAASGD Algo = "SA-ASGD"

// Config controls one training run.
type Config struct {
	Algo      Algo
	Workers   int
	BatchSize int
	Epochs    int
	LR        float64 // base learning rate; the paper's step schedule is derived from it

	// Lambda is LC-ASGD's compensation mixing hyper-parameter (Formula 5);
	// 0 disables compensation, reducing LC-ASGD to ASGD plus BN handling.
	Lambda float64
	// DCLambda is DC-ASGD's variance-control parameter λ_t (Formula 3).
	DCLambda float64
	// WeightDecay is L2 regularization applied by the server update.
	WeightDecay float64

	BNMode  core.BNMode
	BNDecay float64 // EMA factor d of Formulas 6–7

	Seed uint64
	Cost cluster.CostModel

	// Scenario replays a timeline of cluster events — congestion phases,
	// worker crashes/recoveries, elastic fleet resizes — on the simulated
	// clock during the run. Nil means the stationary cluster of the paper.
	Scenario *scenario.Scenario

	// Topology names the communication graph decentralized algorithms
	// (AD-PSGD) gossip on — a topology.Parse spec: "ring" (the default when
	// empty), "complete", "star", "gossip" (seeded random), or
	// "edges:i-j,…". Parameter-server algorithms ignore it, but it is part
	// of ConfigKey like every field that can shape a trajectory.
	Topology string

	EvalEvery int // epochs between curve points (default 1)
	EvalBatch int // inference batch size (default 150)

	// Predictor sizes; zero means the paper's 64 (loss) and 128 (step).
	LossPredHidden, StepPredHidden int
	// PredVirtualMs is the virtual per-iteration server-side prediction
	// overhead injected into LC-ASGD's timeline (Tables 2–3 report the
	// real measured times alongside).
	PredVirtualMs float64

	// Ablations (DESIGN.md).
	SumCompensation    bool // use the raw-sum compensation scale
	NaiveStepPredictor bool // last-observed staleness instead of the LSTM
	EMALossPredictor   bool // EMA extrapolation instead of the LSTM

	// Partitioned gives each worker a disjoint shard of the training set
	// instead of the paper's shared-data setting — the extension the
	// paper's conclusion lists as future work.
	Partitioned bool

	// Backend selects the execution backend: BackendSequential (the
	// default) runs worker compute inline on the event loop,
	// BackendConcurrent fans it across goroutines with bit-identical
	// results.
	Backend BackendKind

	// CheckpointEvery arms a checkpoint barrier every that many global
	// epochs (0 disables persistence). At each barrier the engine quiesces —
	// new launches defer while in-flight pipelines drain — and freezes the
	// run into a snapshot delivered to Env.CheckpointSink. The barrier is
	// part of the run's timeline, like a real synchronous checkpoint: runs
	// with the same cadence are bit-identical whether they execute straight
	// through or are killed and resumed at any barrier (see checkpoint.go),
	// but a checkpointed run differs deterministically from an
	// un-checkpointed one, so the cadence is part of ConfigKey.
	CheckpointEvery int

	// CheckpointFullEvery makes every K-th checkpoint a self-contained full
	// snapshot; the checkpoints between them are deltas holding only the
	// sections dirtied since the previous checkpoint, chained onto it (see
	// ckptfast.go). 1 makes every checkpoint full; 0 means the default (8).
	// Unlike CheckpointEvery this is pure persistence policy — the barrier
	// timeline and every result bit are identical for any value — so it is
	// excluded from ConfigKey, like Backend.
	CheckpointFullEvery int

	// RecoverOpt changes what a worker re-admitted by a scenario Recover
	// event pulls first: the last checkpoint's server snapshot (weights, BN
	// statistics, update counter) instead of fresh server state. The
	// recovered gradient then commits with checkpoint-scale staleness,
	// making the cost of losing a worker's optimizer-side state measurable
	// — the robustness-table variant behind `lcexp -recover-opt`. Requires
	// CheckpointEvery > 0 to have any effect; before the first barrier the
	// pull falls back to fresh state.
	RecoverOpt bool
}

// defaultEvalBatch is the inference batch size withDefaults picks when
// Config.EvalBatch is zero. Evaluation pads remainder batches up to the
// batch size (see eval.go), so datasets smaller than this default trip the
// warning in telemetry.go.
const defaultEvalBatch = 150

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.EvalEvery == 0 {
		c.EvalEvery = 1
	}
	if c.EvalBatch == 0 {
		c.EvalBatch = defaultEvalBatch
	}
	if c.BNDecay == 0 {
		c.BNDecay = 0.2
	}
	if c.LossPredHidden == 0 {
		c.LossPredHidden = 64
	}
	if c.StepPredHidden == 0 {
		c.StepPredHidden = 128
	}
	if c.PredVirtualMs == 0 {
		c.PredVirtualMs = 2.7
	}
	if c.Backend == "" {
		c.Backend = BackendSequential
	}
	if c.CheckpointFullEvery == 0 {
		c.CheckpointFullEvery = 8
	}
	return c
}

// Env bundles the data and model for a run.
type Env struct {
	Train, Test *data.Dataset
	Build       func(g *rng.RNG) *nn.Sequential
	Cfg         Config

	// CheckpointSink receives each checkpoint taken at the barriers
	// Config.CheckpointEvery arms — typically a snapshot.Store run
	// directory. A nil sink skips serialization but keeps the barrier
	// discipline, so results do not depend on whether anyone is listening.
	// A sink error aborts the run (panic): silently dropping checkpoints
	// would defeat the persistence contract.
	CheckpointSink func(Checkpoint) error

	// Telemetry, when non-nil, attaches a deterministic observability
	// recorder to the run: every engine transition is traced and the
	// metrics registry is populated on the event loop in virtual-clock
	// order (see internal/telemetry and telemetry.go). Recording is
	// passive — results are bit-identical with or without it — and a nil
	// recorder keeps the hot paths at zero allocations. The recorder is
	// single-run (the engine binds it); under CheckpointEvery its state is
	// checkpointed and restored, so a resumed run's telemetry is
	// byte-identical to the uninterrupted run's.
	Telemetry *telemetry.Recorder
}

// Point is one sample of the learning curve.
type Point struct {
	Epoch    int
	Time     float64 // virtual milliseconds since training start
	TrainErr float64
	TestErr  float64
}

// Result is everything a run produces, sufficient to regenerate every
// figure and table row the run participates in.
type Result struct {
	Algo   Algo
	BNMode core.BNMode
	Points []Point

	FinalTrainErr, FinalTestErr float64
	VirtualMs                   float64 // total virtual duration
	Updates                     int
	MeanStaleness               float64
	MaxStaleness                int // worst staleness any committed gradient saw

	// ScenarioEvents counts the scenario timeline events that actually
	// applied during the run (0 without a scenario); redundant events —
	// crashing a dead worker, re-admitting a live one — are not counted.
	ScenarioEvents int

	// LC-ASGD extras.
	LossTrace, StepTrace         []core.TracePoint
	AvgLossPredMs, AvgStepPredMs float64 // real measured per-call times
	AvgIterVirtualMs             float64
}

// Run executes the configured algorithm and returns its result. The
// algorithm is looked up in the strategy registry, so algorithms added via
// RegisterStrategy run through the same engine as the paper's five.
func Run(env Env) Result {
	warnEvalBatchDefault(env)
	cfg := env.Cfg.withDefaults()
	env.Cfg = cfg
	if env.Train == nil || env.Test == nil || env.Build == nil {
		panic("ps: Env requires Train, Test and Build")
	}
	if cfg.BatchSize <= 0 || cfg.Epochs <= 0 {
		panic(fmt.Sprintf("ps: bad batch/epochs in %+v", cfg))
	}
	if cfg.CheckpointEvery < 0 {
		panic(fmt.Sprintf("ps: negative CheckpointEvery %d", cfg.CheckpointEvery))
	}
	if cfg.CheckpointFullEvery < 0 {
		panic(fmt.Sprintf("ps: negative CheckpointFullEvery %d", cfg.CheckpointFullEvery))
	}
	if cfg.Scenario != nil {
		if err := cfg.Scenario.Validate(); err != nil {
			panic(fmt.Sprintf("ps: %v", err))
		}
	}
	return newEngine(env, strategyFor(cfg)).run()
}

// workerData returns each worker's view of the training set: the shared
// dataset M times in the paper's setting, or disjoint shards when
// cfg.Partitioned is set.
func workerData(env Env, m int) []*data.Dataset {
	if !env.Cfg.Partitioned {
		out := make([]*data.Dataset, m)
		for i := range out {
			out[i] = env.Train
		}
		return out
	}
	shards := data.Partition(env.Train, m)
	for i, s := range shards {
		if s.Len() < env.Cfg.BatchSize {
			panic(fmt.Sprintf("ps: partitioned shard %d has %d samples < batch %d", i, s.Len(), env.Cfg.BatchSize))
		}
	}
	return shards
}

// server is the shared parameter-server state: the flat weight vector, the
// global BN statistics, the LR schedule and the epoch/progress accounting.
type server struct {
	w       []float64
	bnAcc   *core.BNAccumulator
	sched   opt.StepSchedule
	wd      float64
	lrScale float64 // SSGD's linear LR scaling (see runSSGD)
	bpe     int     // batches per (global) epoch
	batches int     // batches consumed so far
	updates int
	target  int // total batches to consume
}

func newServer(w []float64, bnAcc *core.BNAccumulator, cfg Config, bpe int) *server {
	return &server{
		w:       w,
		bnAcc:   bnAcc,
		sched:   opt.NewPaperSchedule(cfg.LR, cfg.Epochs),
		wd:      cfg.WeightDecay,
		lrScale: 1,
		bpe:     bpe,
		target:  cfg.Epochs * bpe,
	}
}

// epoch returns the number of completed global epochs.
func (s *server) epoch() int { return s.batches / s.bpe }

// done reports whether the sample budget is exhausted.
func (s *server) done() bool { return s.batches >= s.target }

// lr returns the learning rate in effect now.
func (s *server) lr() float64 { return s.lrScale * s.sched.At(s.epoch()) }

// apply performs w ← w − γ·(g + wd·w) and accounts for the consumed
// batches.
func (s *server) apply(grad []float64, batchesConsumed int) {
	lr := s.lr()
	if s.wd != 0 {
		for i, g := range grad {
			s.w[i] -= lr * (g + s.wd*s.w[i])
		}
	} else {
		for i, g := range grad {
			s.w[i] -= lr * g
		}
	}
	s.updates++
	s.batches += batchesConsumed
}
