package ps

import (
	"fmt"
	"testing"

	"lcasgd/internal/scenario"
)

// This file fuzzes the engine's churn machinery with seeded random timelines
// (scenario.Randomized): crashes, elastic resizes, partitions and phase
// shifts at generator-chosen instants, checked against the repo's core
// invariants — both backends bit-identical, checkpoint→resume equal to the
// uninterrupted run, and no stalls (the runs below terminating at all is the
// liveness assertion; a stalled fleet would hang the test binary). The
// canned equivalence scenarios pin known-tricky orderings; these tests
// sample orderings nobody thought to write down.

// randomizedEnv is tinyEnvSeeded under a Randomized timeline whose horizon
// matches the run's virtual span (iterations are ~33 virtual ms under the
// CIFAR cost model, so span ≈ 33·epochs·batchesPerEpoch/workers).
func randomizedEnv(algo Algo, workers, epochs int, seed uint64, horizon float64, events int) Env {
	scn := scenario.Randomized(seed, workers, horizon, events)
	env := tinyEnvSeeded(algo, workers, epochs)
	env.Cfg.Scenario = &scn
	return env
}

// TestRandomizedTimelineEquivalence: backend bit-identity under random
// churn, across the PS/decentralized/synchronous strategy families.
func TestRandomizedTimelineEquivalence(t *testing.T) {
	for _, algo := range []Algo{ASGD, SSGD, LCASGD, ADPSGD} {
		for seed := uint64(1); seed <= 3; seed++ {
			label := fmt.Sprintf("%s/seed%d", algo, seed)
			assertBackendEquivalent(t, label, func() Env {
				return randomizedEnv(algo, 8, 3, seed, 120, 12)
			})
		}
	}
}

// TestRandomizedTimelineResume: a run checkpointed at every barrier and
// resumed — on both backends — matches the straight-through run bit for bit,
// under random churn overlapping the barriers.
func TestRandomizedTimelineResume(t *testing.T) {
	for _, algo := range []Algo{ASGD, ADPSGD} {
		for seed := uint64(7); seed <= 9; seed++ {
			scn := scenario.Randomized(seed, 8, 120, 12)
			label := fmt.Sprintf("%s/seed%d", algo, seed)
			full, cks := runCapturing(ckptEnv(algo, 8, 3, BackendSequential, &scn))
			if len(cks) == 0 {
				t.Fatalf("%s: no checkpoints emitted", label)
			}
			for _, kind := range []BackendKind{BackendSequential, BackendConcurrent} {
				env := ckptEnv(algo, 8, 3, kind, &scn)
				res, err := Resume(env, cks[len(cks)-1].Data)
				if err != nil {
					t.Fatalf("%s: resume on %s: %v", label, kind, err)
				}
				assertResultsEqual(t, label+"/resume-"+string(kind), full, res)
			}
		}
	}
}

// TestRandomizedTimelineM256 is the mid-scale equivalence case CI runs under
// the race detector: 256 workers, ~3 iterations each, randomized churn. The
// budget (epochs·batchesPerEpoch = 96·8) gives each worker a few commits so
// churn overlaps live iterations rather than landing after the run.
func TestRandomizedTimelineM256(t *testing.T) {
	for _, algo := range []Algo{ASGD, ADPSGD} {
		assertBackendEquivalent(t, fmt.Sprintf("%s/M256", algo), func() Env {
			env := randomizedEnv(algo, 256, 96, 5, 120, 24)
			env.Cfg.EvalEvery = 16
			return env
		})
	}
}

// TestRandomizedTimelineLargeFleet pushes the same property to M=1024 — the
// scale where any O(M) cost hidden on a per-event path would make this test,
// and the fleet benches, visibly crawl.
func TestRandomizedTimelineLargeFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("large-fleet property test skipped in -short mode")
	}
	for _, algo := range []Algo{ASGD, ADPSGD} {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			t.Parallel()
			assertBackendEquivalent(t, fmt.Sprintf("%s/M1024", algo), func() Env {
				env := randomizedEnv(algo, 1024, 256, 11, 80, 40)
				env.Cfg.EvalEvery = 64
				return env
			})
			env := randomizedEnv(algo, 1024, 256, 12, 80, 40)
			env.Cfg.EvalEvery = 64
			res := Run(env)
			if res.Updates == 0 {
				t.Fatalf("%s: randomized M=1024 run made no progress", algo)
			}
		})
	}
}
