package ps

import (
	"testing"

	"lcasgd/internal/scenario"
	"lcasgd/internal/snapshot"
)

// runCapturing executes env, collecting every checkpoint the barriers emit.
// Delta checkpoints are materialized against the raw chain since the last
// full — the emitted containers, not previously materialized ones, because a
// delta's BaseSum names the container that was actually emitted — so every
// returned Checkpoint.Data is a self-contained snapshot Resume accepts.
func runCapturing(env Env) (Result, []Checkpoint) {
	var cks []Checkpoint
	var chain [][]byte
	env.CheckpointSink = func(ck Checkpoint) error {
		if ck.Full {
			chain = chain[:0]
		}
		chain = append(chain, ck.Data)
		if !ck.Full {
			data, err := snapshot.Materialize(chain...)
			if err != nil {
				return err
			}
			ck.Data = data
		}
		cks = append(cks, ck)
		return nil
	}
	return Run(env), cks
}

// ckptEnv is tinyEnvSeeded with a checkpoint barrier every epoch.
func ckptEnv(algo Algo, workers, epochs int, kind BackendKind, scn *scenario.Scenario) Env {
	env := tinyEnvSeeded(algo, workers, epochs)
	env.Cfg.CheckpointEvery = 1
	env.Cfg.Backend = kind
	env.Cfg.Scenario = scn
	return env
}

// TestResumeEquivalence is the persistence subsystem's central guarantee,
// the analogue of TestBackendEquivalence for the time axis: for every
// algorithm, both execution backends, and churning scenarios (crashes,
// elastic resizes, network partitions), a run checkpointed at a quiescent
// barrier and resumed from the serialized bytes finishes with a Result that
// is float-bit-identical to the run that executed straight through — curve
// points, virtual clock, staleness accounting and predictor traces
// included. Resumes are additionally crossed over to the other backend,
// proving a sequential checkpoint restores onto concurrent lanes and vice
// versa.
func TestResumeEquivalence(t *testing.T) {
	scns := append([]*scenario.Scenario{nil}, equivalenceScenarios()...)
	for _, algo := range allAlgos {
		for _, kind := range []BackendKind{BackendSequential, BackendConcurrent} {
			for _, scn := range scns {
				m := 4
				if algo == SGD {
					m = 1
				}
				name := "none"
				if scn != nil {
					name = scn.Name
				}
				label := string(algo) + "/" + string(kind) + "/" + name
				full, cks := runCapturing(ckptEnv(algo, m, 3, kind, scn))
				if len(cks) == 0 {
					t.Fatalf("%s: no checkpoints emitted", label)
				}
				// Resume from the first and last barrier, on the writing
				// backend and on the other one.
				for _, ci := range []int{0, len(cks) - 1} {
					for _, rkind := range []BackendKind{kind, otherBackend(kind)} {
						env := ckptEnv(algo, m, 3, rkind, scn)
						res, err := Resume(env, cks[ci].Data)
						if err != nil {
							t.Fatalf("%s: resume ckpt %d on %s: %v", label, ci, rkind, err)
						}
						assertResultsEqual(t, label+"/resume-"+string(rkind), full, res)
					}
				}
			}
		}
	}
}

func otherBackend(k BackendKind) BackendKind {
	if k == BackendSequential {
		return BackendConcurrent
	}
	return BackendSequential
}

// TestCheckpointSinkIsPassive pins that serialization itself cannot perturb
// the run: results are identical with and without a sink listening at the
// barriers.
func TestCheckpointSinkIsPassive(t *testing.T) {
	withSink, cks := runCapturing(ckptEnv(LCASGD, 4, 3, BackendSequential, nil))
	if len(cks) < 2 {
		t.Fatalf("expected barriers at epochs 1 and 2, got %d checkpoints", len(cks))
	}
	noSink := Run(ckptEnv(LCASGD, 4, 3, BackendSequential, nil))
	assertResultsEqual(t, "sink-passive", withSink, noSink)
}

// TestCheckpointMetadataMatchesRun sanity-checks the Checkpoint header
// fields the experiment store displays.
func TestCheckpointMetadataMatchesRun(t *testing.T) {
	_, cks := runCapturing(ckptEnv(ASGD, 4, 3, BackendSequential, nil))
	if len(cks) != 2 {
		t.Fatalf("3-epoch run with every-epoch barriers: %d checkpoints, want 2 (none at the final epoch)", len(cks))
	}
	for i, ck := range cks {
		if ck.Epoch != i+1 {
			t.Fatalf("checkpoint %d at epoch %d", i, ck.Epoch)
		}
		if ck.Batches < ck.Epoch*8 || ck.Updates <= 0 || ck.VirtualMs <= 0 || len(ck.Data) == 0 {
			t.Fatalf("checkpoint %d implausible: %+v (payload %d bytes)", i, ck, len(ck.Data))
		}
	}
}

// TestResumeRejectsMismatchedConfig: a checkpoint must not restore into a
// run whose trajectory-shaping configuration differs.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	_, cks := runCapturing(ckptEnv(ASGD, 4, 3, BackendSequential, nil))
	env := ckptEnv(ASGD, 4, 3, BackendSequential, nil)
	env.Cfg.LR *= 2
	if _, err := Resume(env, cks[0].Data); err == nil {
		t.Fatal("resume accepted a checkpoint from a different configuration")
	}
	// The backend is exempt: it is excluded from ConfigKey by design.
	env2 := ckptEnv(ASGD, 4, 3, BackendConcurrent, nil)
	if _, err := Resume(env2, cks[0].Data); err != nil {
		t.Fatalf("cross-backend resume rejected: %v", err)
	}
}

// TestResumeRejectsCorruptPayload: the codec's corruption detection must
// surface through Resume rather than silently restoring garbage.
func TestResumeRejectsCorruptPayload(t *testing.T) {
	_, cks := runCapturing(ckptEnv(ASGD, 4, 3, BackendSequential, nil))
	data := append([]byte(nil), cks[0].Data...)

	truncated := data[:len(data)/2]
	env := ckptEnv(ASGD, 4, 3, BackendSequential, nil)
	if _, err := Resume(env, truncated); err == nil {
		t.Fatal("resume accepted a truncated checkpoint")
	}

	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/3] ^= 0x10
	if _, err := Resume(env, flipped); err == nil {
		t.Fatal("resume accepted a bit-flipped checkpoint")
	}

	notASnapshot := []byte("definitely not a checkpoint")
	if _, err := Resume(env, notASnapshot); err == nil {
		t.Fatal("resume accepted a foreign file")
	}
}

// TestConfigKeyDiscriminates pins what run identity means: everything that
// shapes the trajectory changes the key, the execution backend does not.
func TestConfigKeyDiscriminates(t *testing.T) {
	base := tinyEnvSeeded(ASGD, 4, 3).Cfg
	key := ConfigKey(base)
	mutations := []func(*Config){
		func(c *Config) { c.Seed++ },
		func(c *Config) { c.LR *= 2 },
		func(c *Config) { c.Algo = LCASGD },
		func(c *Config) { c.Workers = 8 },
		func(c *Config) { c.CheckpointEvery = 1 },
		func(c *Config) { c.RecoverOpt = true },
		func(c *Config) { s := scenario.Flaky(); c.Scenario = &s },
	}
	for i, mut := range mutations {
		c := base
		mut(&c)
		if ConfigKey(c) == key {
			t.Fatalf("mutation %d did not change the config key", i)
		}
	}
	b := base
	b.Backend = BackendConcurrent
	if ConfigKey(b) != key {
		t.Fatal("backend changed the config key; backends are bit-identical and must share runs")
	}
	// The key is defaults-normalized: an explicitly-defaulted config and a
	// zero-field one identify the same run.
	d := base
	d.EvalBatch = 150
	if ConfigKey(d) != key {
		t.Fatal("applying an explicit default changed the key")
	}
}

// TestRecoverOptChangesRecoveryTrajectory pins the -recover-opt semantics:
// with checkpoints armed, a crash-recovery run where recovered workers
// restore the last barrier snapshot diverges from the fresh-pull default,
// still completes the full sample budget, and reports the checkpoint-scale
// staleness the stale restart incurs.
func TestRecoverOptChangesRecoveryTrajectory(t *testing.T) {
	scn := &scenario.Scenario{
		Name: "blip",
		Events: []scenario.Event{
			// The tiny env's first every-epoch barrier lands around t≈120
			// (updates≈10). The recovery must fall after the post-barrier
			// dead window (relaunched pipelines take ~33ms to commit again):
			// at t=170 the live server has drifted several updates past the
			// snapshot, so the stale restore is observable.
			{At: 100, Kind: scenario.Crash, Worker: 1},
			{At: 170, Kind: scenario.Recover, Worker: 1},
		},
	}
	mk := func(recover bool) Env {
		env := ckptEnv(ASGD, 4, 4, BackendSequential, scn)
		env.Cfg.RecoverOpt = recover
		return env
	}
	fresh := Run(mk(false))
	opt := Run(mk(true))
	if opt.Updates != fresh.Updates {
		t.Fatalf("recover-opt changed the sample budget: %d vs %d", opt.Updates, fresh.Updates)
	}
	same := true
	for i := range fresh.Points {
		if i < len(opt.Points) && fresh.Points[i] != opt.Points[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("recover-opt trajectory identical to fresh-pull recovery; restore path inert")
	}
	if opt.MaxStaleness <= fresh.MaxStaleness {
		t.Fatalf("checkpoint-stale restart did not raise max staleness: %d vs %d",
			opt.MaxStaleness, fresh.MaxStaleness)
	}

	// The variant preserves both engine guarantees: backend equivalence and
	// resume equivalence.
	assertBackendEquivalent(t, "recover-opt", func() Env { return mk(true) })
	full, cks := runCapturing(mk(true))
	res, err := Resume(mk(true), cks[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, "recover-opt/resume", full, res)
}

// TestRecoverOptBeforeFirstBarrierFallsBack: a recovery before any
// checkpoint exists must pull fresh state, matching the default exactly.
func TestRecoverOptBeforeFirstBarrierFallsBack(t *testing.T) {
	scn := &scenario.Scenario{
		Name: "early-blip",
		Events: []scenario.Event{
			{At: 40, Kind: scenario.Crash, Worker: 1},
			{At: 90, Kind: scenario.Recover, Worker: 1},
		},
	}
	mk := func(recover bool) Env {
		// Barriers every 2 epochs of a 2-epoch run: none ever fires before
		// the recovery.
		env := tinyEnvSeeded(ASGD, 4, 2)
		env.Cfg.Scenario = scn
		env.Cfg.CheckpointEvery = 2
		env.Cfg.RecoverOpt = recover
		return env
	}
	a, b := Run(mk(false)), Run(mk(true))
	// RecoverOpt is part of ConfigKey but, with no barrier before the
	// recovery, must not alter the numbers.
	assertResultsEqual(t, "recover-opt-fallback", a, b)
}

// TestSnapshotStateRoundTripViaStore exercises the full persistence loop a
// preempted runner would: checkpoint to an on-disk store, reload the bytes,
// resume.
func TestSnapshotStateRoundTripViaStore(t *testing.T) {
	st, err := snapshot.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	env := ckptEnv(LCASGD, 4, 3, BackendSequential, nil)
	rd, err := st.Run(ConfigKey(env.Cfg))
	if err != nil {
		t.Fatal(err)
	}
	rd.SetKeep(4)
	env.CheckpointSink = func(ck Checkpoint) error {
		return rd.SaveCheckpoint(ck.Data, snapshot.CkptMeta{
			Epoch: ck.Epoch, Batches: ck.Batches, Updates: ck.Updates, VirtualMs: ck.VirtualMs,
			Full: ck.Full, BaseEpoch: ck.BaseEpoch,
		})
	}
	full := Run(env)

	metas, err := rd.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) == 0 {
		t.Fatal("no checkpoints stored")
	}
	if metas[0].Full {
		t.Fatalf("latest checkpoint at epoch %d is full; this test must resume through a delta chain", metas[0].Epoch)
	}
	data, meta, err := rd.LoadChain(metas[0].Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Epoch != 2 {
		t.Fatalf("latest checkpoint at epoch %d, want 2", meta.Epoch)
	}
	env2 := ckptEnv(LCASGD, 4, 3, BackendSequential, nil)
	res, err := Resume(env2, data)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, "store-loop", full, res)
}
