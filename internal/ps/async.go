package ps

import (
	"lcasgd/internal/core"
	"lcasgd/internal/rng"
	"lcasgd/internal/simclock"
)

// runAsync executes ASGD (Formula 2) and DC-ASGD (Formula 3) on the
// discrete-event simulator. Each worker loops independently: it snapshots
// the current weights, computes a gradient, and the gradient lands on the
// server one communication+computation delay later — by which time other
// workers may have advanced the model, producing genuine gradient
// staleness. DC-ASGD additionally compensates each arriving gradient with
// λ·g⊙g⊙(w_now − w_bak), the cheap diagonal-Hessian approximation of Zheng
// et al.
func runAsync(env Env) Result {
	cfg := env.Cfg
	M := cfg.Workers
	dc := cfg.Algo == DCASGD
	seedRng := rng.New(cfg.Seed)
	modelSeed := seedRng.Uint64()
	costRng := seedRng.SplitLabeled(200)

	shards := workerData(env, M)
	reps := make([]*replica, M)
	for m := 0; m < M; m++ {
		reps[m] = newReplica(env.Build, modelSeed, shards[m], cfg.BatchSize, seedRng.SplitLabeled(uint64(300+m)))
	}
	bnAcc := core.NewBNAccumulator(cfg.BNMode, cfg.BNDecay, reps[0].bns)
	w := make([]float64, reps[0].nParams)
	flatten(reps[0], w)
	bpe := env.Train.Len() / cfg.BatchSize
	srv := newServer(w, bnAcc, cfg, bpe)
	rec := newRecorder(env, modelSeed)
	sampler := cfg.Cost.NewSampler(M, costRng)
	clock := simclock.New()

	// Per-worker in-flight state.
	grads := make([][]float64, M)
	wbak := make([][]float64, M) // DC-ASGD backup of the pulled weights
	for m := range grads {
		grads[m] = make([]float64, len(w))
		if dc {
			wbak[m] = make([]float64, len(w))
		}
	}
	snapUpdates := make([]int, M)
	stalenessSum, stalenessN := 0, 0

	var start func(m int)
	start = func(m int) {
		if srv.done() {
			return
		}
		rep := reps[m]
		rep.pull(srv.w, srv.bnAcc)
		if dc {
			copy(wbak[m], srv.w)
		}
		snapUpdates[m] = srv.updates
		_, grad := rep.gradient()
		copy(grads[m], grad)
		stats := rep.stats()
		dur := sampler.Comm(m) + sampler.Comp(m) + sampler.Comm(m)
		clock.ScheduleAfter(dur, func() {
			if srv.done() {
				return
			}
			stalenessSum += srv.updates - snapUpdates[m]
			stalenessN++
			if dc {
				compensateDC(grads[m], srv.w, wbak[m], cfg.DCLambda)
			}
			srv.bnAcc.Update(stats)
			srv.apply(grads[m], 1)
			rec.maybeRecord(srv, clock.Now(), false)
			start(m)
		})
	}
	for m := 0; m < M; m++ {
		start(m)
	}
	clock.Run(func() bool { return srv.done() })

	points := rec.finish(srv, clock.Now())
	res := Result{Algo: cfg.Algo, BNMode: cfg.BNMode, Points: points, VirtualMs: clock.Now(), Updates: srv.updates}
	if stalenessN > 0 {
		res.MeanStaleness = float64(stalenessSum) / float64(stalenessN)
	}
	return finalize(res, cfg)
}

// compensateDC applies Formula 3 in place: g ← g + λ·g⊙g⊙(w_now − w_bak).
func compensateDC(g, wNow, wBak []float64, lambda float64) {
	for i := range g {
		g[i] += lambda * g[i] * g[i] * (wNow[i] - wBak[i])
	}
}
