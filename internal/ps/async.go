package ps

// asyncStrategy executes ASGD (Formula 2) and DC-ASGD (Formula 3). Each
// worker loops independently: it snapshots the current weights, computes a
// gradient, and the gradient lands on the server one communication+
// computation delay later — by which time other workers may have advanced
// the model, producing genuine gradient staleness. DC-ASGD additionally
// compensates each arriving gradient with λ·g⊙g⊙(w_now − w_bak), the cheap
// diagonal-Hessian approximation of Zheng et al.
type asyncStrategy struct {
	algo   Algo
	dc     bool
	lambda float64
	wbak   [][]float64 // DC-ASGD backup of the pulled weights, per worker
}

func (s *asyncStrategy) Algo() Algo { return s.algo }

func (s *asyncStrategy) Setup(e *Engine) {
	if s.dc {
		s.lambda = e.Config().DCLambda
		s.wbak = make([][]float64, e.Workers())
		for m := range s.wbak {
			s.wbak[m] = make([]float64, e.NParams())
		}
	}
}

func (s *asyncStrategy) Launch(e *Engine, m int) {
	e.Pull(m)
	if s.dc {
		// Back up the weights the gradient will be computed at — the
		// replica's just-pulled parameters, which under RecoverOpt may be
		// the last checkpoint's snapshot rather than the live server state.
		e.CopyPulledWeights(m, s.wbak[m])
	}
	wait := e.DispatchGradient(m)
	dur := e.CommSample(m) + e.CompSample(m) + e.CommSample(m)
	e.AfterWorker(m, dur, func() {
		if e.Done() {
			return
		}
		wait()
		grad := e.Gradient(m)
		if s.dc {
			compensateDC(grad, e.Weights(), s.wbak[m], s.lambda)
		}
		e.FoldStats(m)
		e.Commit(m, grad, 1)
	})
}

func (*asyncStrategy) Finish(*Engine, *Result) {}

// compensateDC applies Formula 3 in place: g ← g + λ·g⊙g⊙(w_now − w_bak).
func compensateDC(g, wNow, wBak []float64, lambda float64) {
	for i := range g {
		g[i] += lambda * g[i] * g[i] * (wNow[i] - wBak[i])
	}
}
