package ps

import (
	"reflect"
	"strings"
	"testing"

	"lcasgd/internal/scenario"
)

// AD-PSGD must actually train: gossip averaging plus local steps on a ring
// should reach the same kind of error the PS algorithms do on the toy
// problem.
func TestADPSGDLearns(t *testing.T) {
	// The sample budget is shared across the fleet but gradient steps land
	// on per-worker models, so each model sees ~1/M of the steps a PS run
	// would apply — give the toy problem proportionally more epochs.
	env := tinyEnvSeeded(ADPSGD, 4, 14)
	res := Run(env)
	if res.Algo != ADPSGD {
		t.Fatalf("Algo = %q", res.Algo)
	}
	if res.FinalTestErr > 0.5 {
		t.Fatalf("AD-PSGD did not learn: final test err %.3f", res.FinalTestErr)
	}
	if res.Updates != env.Cfg.Epochs*(env.Train.Len()/env.Cfg.BatchSize) {
		t.Fatalf("updates %d, want full budget", res.Updates)
	}
}

// The decentralized staleness metric — iteration lag vs the averaged
// neighbor — must be populated: on a heterogeneous-cost fleet workers
// commit at different rates, so some exchanges must observe a lag.
func TestADPSGDStalenessPopulated(t *testing.T) {
	env := tinyEnvSeeded(ADPSGD, 8, 4)
	res := Run(env)
	if res.MeanStaleness <= 0 {
		t.Fatalf("decentralized staleness not populated: mean %.4f", res.MeanStaleness)
	}
	if res.MaxStaleness < 1 {
		t.Fatalf("max staleness %d, want ≥ 1", res.MaxStaleness)
	}
}

// Different topologies must produce different (but individually
// deterministic) trajectories: the graph is part of the run's definition.
func TestADPSGDTopologyShapesTrajectory(t *testing.T) {
	// The curve plus the staleness aggregates discriminate trajectories:
	// error rates alone quantize to 1/len(dataset) and can coincide.
	type trace struct {
		points    []Point
		meanStale float64
		maxStale  int
	}
	run := func(spec string) trace {
		env := tinyEnvSeeded(ADPSGD, 8, 4)
		env.Cfg.Topology = spec
		res := Run(env)
		return trace{res.Points, res.MeanStaleness, res.MaxStaleness}
	}
	ring1, ring2 := run("ring"), run("")
	if !reflect.DeepEqual(ring1, ring2) {
		t.Fatalf("empty topology spec must default to ring")
	}
	ring3 := run("ring")
	if !reflect.DeepEqual(ring1, ring3) {
		t.Fatalf("same topology + seed not deterministic")
	}
	if complete := run("complete"); reflect.DeepEqual(ring1, complete) {
		t.Fatalf("ring and complete produced identical trajectories")
	}
	if gossip := run("gossip"); reflect.DeepEqual(ring1, gossip) {
		t.Fatalf("ring and gossip produced identical trajectories")
	}
}

// A heal-less partition must not park a decentralized worker: it keeps
// training its own model and consuming budget, so the run completes at full
// budget — the graph-cut semantics that distinguish AD-PSGD from the PS
// algorithms (whose cut workers' commits are dropped).
func TestADPSGDPartitionedWorkerKeepsTraining(t *testing.T) {
	env := tinyEnvSeeded(ADPSGD, 4, 3)
	env.Cfg.Scenario = &scenario.Scenario{
		Name:   "cut-forever",
		Events: []scenario.Event{{At: 5, Kind: scenario.Partition, Worker: 0}},
	}
	res := Run(env)
	want := env.Cfg.Epochs * (env.Train.Len() / env.Cfg.BatchSize)
	if res.Updates != want {
		t.Fatalf("updates %d, want full budget %d — cut worker parked?", res.Updates, want)
	}
	if res.ScenarioEvents != 1 {
		t.Fatalf("scenario events %d, want 1", res.ScenarioEvents)
	}
}

// With one worker every topology degenerates to no neighbors: AD-PSGD must
// still run as plain local SGD without consuming staleness samples.
func TestADPSGDSingleWorker(t *testing.T) {
	env := tinyEnvSeeded(ADPSGD, 1, 4)
	res := Run(env)
	if res.MeanStaleness != 0 || res.MaxStaleness != 0 {
		t.Fatalf("single worker sampled staleness: mean %.3f max %d", res.MeanStaleness, res.MaxStaleness)
	}
	if res.FinalTestErr > 0.5 {
		t.Fatalf("single-worker AD-PSGD did not learn: %.3f", res.FinalTestErr)
	}
}

// A bad topology spec must fail fast with the valid vocabulary in the
// message.
func TestADPSGDBadTopologyPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("bad topology spec did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "ring") || !strings.Contains(msg, "gossip") {
			t.Fatalf("panic %v does not list the topology vocabulary", r)
		}
	}()
	env := tinyEnvSeeded(ADPSGD, 4, 1)
	env.Cfg.Topology = "mesh"
	Run(env)
}

// The registry's unknown-algorithm panic must list what is registered —
// the satellite fix this PR ships.
func TestUnknownAlgoPanicListsRegistered(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("unknown algo did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, string(LCASGD)) || !strings.Contains(msg, string(ADPSGD)) {
			t.Fatalf("panic %v does not list registered algorithms", r)
		}
	}()
	strategyFor(Config{Algo: "NOPE"})
}
