package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

// secStream encodes one bare section body holding the given floats.
func secStream(t *testing.T, v ...float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewBareWriter(&buf)
	w.F64s(v)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mustEncode(t *testing.T, c *Container) []byte {
	t.Helper()
	b, err := EncodeContainer(c)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestContainerRoundTrip(t *testing.T) {
	c := &Container{
		Kind: KindFull, Key: "abcd1234", Epoch: 3, Seq: 2,
		Sections: []Section{
			{ID: SectionID{0, 0}, Payload: secStream(t, 1, 2)},
			{ID: SectionID{1, 0}, Payload: secStream(t, 3)},
			{ID: SectionID{5, 7}, Payload: secStream(t, 4, 5, 6)},
		},
	}
	b := mustEncode(t, c)
	d, err := DecodeContainer(b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != KindFull || d.Key != c.Key || d.Epoch != 3 || d.Seq != 2 || d.Sum != c.Sum {
		t.Fatalf("header mismatch: %+v vs %+v", d, c)
	}
	if len(d.Sections) != 3 {
		t.Fatalf("got %d sections", len(d.Sections))
	}
	for i, s := range d.Sections {
		if s.ID != c.Sections[i].ID || !bytes.Equal(s.Payload, c.Sections[i].Payload) {
			t.Fatalf("section %d mismatch", i)
		}
		r, err := NewBareReader(bytes.NewReader(s.Payload))
		if err != nil {
			t.Fatal(err)
		}
		if vals := r.F64s(); len(vals) == 0 || r.Close() != nil {
			t.Fatalf("section %d body unreadable", i)
		}
	}
	// Deterministic bytes: re-encoding the decoded container is identical.
	if !bytes.Equal(mustEncode(t, d), b) {
		t.Fatal("re-encode not byte-identical")
	}
}

func TestContainerRejectsCorruption(t *testing.T) {
	c := &Container{
		Kind: KindFull, Key: "k0", Epoch: 1,
		Sections: []Section{
			{ID: SectionID{0, 0}, Payload: secStream(t, 1, 2)},
			{ID: SectionID{2, 0}, Payload: secStream(t, 3, 4, 5)},
		},
	}
	b := mustEncode(t, c)

	if _, err := DecodeContainer([]byte("not a container at all")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("foreign bytes: %v", err)
	}
	for cut := 1; cut < len(b); cut += 7 {
		if _, err := DecodeContainer(b[:len(b)-cut]); err == nil {
			t.Fatalf("accepted truncation of %d bytes", cut)
		}
	}
	// A bit flip anywhere — framing, directory, or payload — must surface.
	for pos := 4; pos < len(b); pos += 5 {
		mut := append([]byte(nil), b...)
		mut[pos] ^= 0x40
		if _, err := DecodeContainer(mut); err == nil {
			t.Fatalf("accepted bit flip at offset %d", pos)
		}
	}
	// Out-of-order sections are refused at encode time.
	bad := &Container{Kind: KindFull, Key: "k0", Sections: []Section{
		{ID: SectionID{2, 0}, Payload: secStream(t, 1)},
		{ID: SectionID{0, 0}, Payload: secStream(t, 2)},
	}}
	if _, err := EncodeContainer(bad); err == nil {
		t.Fatal("encoded out-of-order sections")
	}
}

// TestMaterializeMergesChain pins the delta semantics: later links override
// earlier sections, untouched sections survive from the base, and the
// materialized bytes equal a directly-encoded full snapshot of the final
// state.
func TestMaterializeMergesChain(t *testing.T) {
	secA0, secA1 := secStream(t, 1), secStream(t, 10)
	secB0 := secStream(t, 2)
	secC1 := secStream(t, 30) // appears only in the second delta

	full := &Container{Kind: KindFull, Key: "key", Epoch: 1, Seq: 0, Sections: []Section{
		{ID: SectionID{0, 0}, Payload: secA0},
		{ID: SectionID{1, 0}, Payload: secB0},
	}}
	fb := mustEncode(t, full)

	d1 := &Container{Kind: KindDelta, Key: "key", Epoch: 2, Seq: 1,
		BaseEpoch: full.Epoch, BaseSum: full.Sum,
		Sections: []Section{{ID: SectionID{0, 0}, Payload: secA1}}}
	db1 := mustEncode(t, d1)

	d2 := &Container{Kind: KindDelta, Key: "key", Epoch: 3, Seq: 2,
		BaseEpoch: d1.Epoch, BaseSum: d1.Sum,
		Sections: []Section{{ID: SectionID{2, 1}, Payload: secC1}}}
	db2 := mustEncode(t, d2)

	got, err := Materialize(fb, db1, db2)
	if err != nil {
		t.Fatal(err)
	}
	want := mustEncode(t, &Container{Kind: KindFull, Key: "key", Epoch: 3, Seq: 2, Sections: []Section{
		{ID: SectionID{0, 0}, Payload: secA1},
		{ID: SectionID{1, 0}, Payload: secB0},
		{ID: SectionID{2, 1}, Payload: secC1},
	}})
	if !bytes.Equal(got, want) {
		t.Fatal("materialized chain differs from direct full encode")
	}
	// A single full materializes to itself.
	self, err := Materialize(fb)
	if err != nil || !bytes.Equal(self, fb) {
		t.Fatalf("identity materialize: %v", err)
	}
}

func TestMaterializeRejectsBrokenChains(t *testing.T) {
	full := &Container{Kind: KindFull, Key: "key", Epoch: 1, Sections: []Section{
		{ID: SectionID{0, 0}, Payload: secStream(t, 1)},
	}}
	fb := mustEncode(t, full)
	delta := &Container{Kind: KindDelta, Key: "key", Epoch: 2,
		BaseEpoch: full.Epoch, BaseSum: full.Sum,
		Sections: []Section{{ID: SectionID{0, 0}, Payload: secStream(t, 2)}}}
	db := mustEncode(t, delta)

	if _, err := Materialize(db); !errors.Is(err, ErrNotFull) {
		t.Fatalf("chain starting at a delta: %v", err)
	}
	if _, err := Materialize(fb, fb); err == nil {
		t.Fatal("accepted a full as a chain link")
	}
	// Skipping a link: a delta based on a different epoch/sum than the
	// preceding one must be refused.
	skip := &Container{Kind: KindDelta, Key: "key", Epoch: 5, BaseEpoch: 4, BaseSum: 0xdead,
		Sections: []Section{{ID: SectionID{0, 0}, Payload: secStream(t, 3)}}}
	sb := mustEncode(t, skip)
	if _, err := Materialize(fb, sb); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("skipped link: %v", err)
	}
	// Key mismatch.
	alien := &Container{Kind: KindDelta, Key: "other", Epoch: 2, BaseEpoch: full.Epoch, BaseSum: full.Sum,
		Sections: []Section{{ID: SectionID{0, 0}, Payload: secStream(t, 4)}}}
	ab := mustEncode(t, alien)
	if _, err := Materialize(fb, ab); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("alien key: %v", err)
	}
	// A corrupted link anywhere in the chain surfaces.
	mut := append([]byte(nil), db...)
	mut[len(mut)/2] ^= 0x01
	if _, err := Materialize(fb, mut); err == nil {
		t.Fatal("accepted corrupted delta link")
	}
}

// TestBareStreamMatchesChecked pins that bare streams carry the exact same
// value bytes as checked streams, minus the trailer — the property that
// lets section bodies skip the CRC-64 pass without changing the format.
func TestBareStreamMatchesChecked(t *testing.T) {
	var checked, bare bytes.Buffer
	wc, wb := NewWriter(&checked), NewBareWriter(&bare)
	for _, w := range []*Writer{wc, wb} {
		w.F64s([]float64{1.5, -2.25, 3})
		w.Ints([]int{-7, 8})
		w.U64s([]uint64{9, 10})
		w.String("s")
		w.Bool(true)
	}
	if err := wc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(checked.Bytes()[:checked.Len()-8], bare.Bytes()) {
		t.Fatal("bare stream differs from checked stream body")
	}
}
