package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// This file is the checkpoint container format: a sectioned envelope around
// the value codec (codec.go) that makes checkpoints incremental and cheap
// to verify. A container is either a full snapshot — every section of the
// frozen state — or a delta holding only the sections that changed since
// the previous checkpoint, chained onto it by (BaseEpoch, BaseSum).
// Materialize replays a full container plus its deltas back into one full
// container whose bytes are identical to a directly-encoded full snapshot
// of the same state.
//
// Integrity is two-layer and covers every byte exactly once:
//
//   - each section payload carries a CRC-32C in the section directory
//     (hardware-accelerated on amd64/arm64 — the payloads are the bulk of
//     a checkpoint, and this is the only checksum pass they pay);
//   - the framing (header + directory, which binds the payload checksums)
//     carries a CRC-32C trailer.
//
// The trailer therefore identifies the whole container content
// transitively, which is what delta chaining uses: a delta's BaseSum is
// its base container's trailer value, so a chain cannot silently skip or
// reorder links even though validation never re-hashes the base payloads.
//
// Section payloads are bare codec streams (NewBareWriter): the value
// codec's CRC-64 pass is skipped because the container already covers the
// bytes. Sections appear in strictly ascending SectionID order, so the
// on-disk bytes are deterministic regardless of how many goroutines
// encoded the payloads.

// ContainerMagic identifies a checkpoint container; ContainerVersion is the
// current container format.
const (
	ContainerMagic   = "LCSC"
	ContainerVersion = 1
)

// Container kinds.
const (
	KindFull  = 0 // self-contained snapshot: every section present
	KindDelta = 1 // only sections dirty since the base checkpoint
)

var (
	// ErrNotFull marks a delta container used where a self-contained
	// snapshot is required (restore entry points take fulls; chains go
	// through Materialize).
	ErrNotFull = errors.New("snapshot: delta container where a full snapshot is required")
	// ErrChainBroken marks a delta whose (BaseEpoch, BaseSum) does not
	// match the container it is being applied to.
	ErrChainBroken = errors.New("snapshot: delta does not chain onto its base")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the container layer's payload checksum (CRC-32C).
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// SectionID identifies one section of the frozen state: a section kind
// (ps assigns meta/server/worker/… ordinals) and an index within the kind
// (worker rank, recorder chunk number). Containers order sections by
// ascending (Kind, Index).
type SectionID struct {
	Kind  uint32
	Index uint32
}

// Less is the canonical section order.
func (a SectionID) Less(b SectionID) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Index < b.Index
}

// Section is one encoded section: a bare codec stream plus its CRC-32C.
// Sum may be left zero when building a container; EncodeContainer computes
// it then. Decoded sections always carry the verified sum, and their
// Payload aliases the decoded buffer (zero-copy).
type Section struct {
	ID      SectionID
	Payload []byte
	Sum     uint32
}

// Container is one checkpoint in container form.
type Container struct {
	Kind      int    // KindFull or KindDelta
	Key       string // ConfigKey of the run; a snapshot cannot restore elsewhere
	Epoch     int    // barrier epoch of this checkpoint
	Seq       int    // 0-based checkpoint ordinal within the run
	BaseEpoch int    // delta only: barrier epoch of the base checkpoint
	BaseSum   uint32 // delta only: the base container's Sum
	Sum       uint32 // framing CRC-32C; set by EncodeContainer/DecodeContainer
	Sections  []Section
}

// Section returns the section with the given id, or nil.
func (c *Container) Section(id SectionID) *Section {
	for i := range c.Sections {
		if c.Sections[i].ID == id {
			return &c.Sections[i]
		}
	}
	return nil
}

// EncodeContainer serializes c, returning the container bytes and the
// framing checksum (also stored into c.Sum). Sections must be in strictly
// ascending ID order — that invariant is what makes the bytes independent
// of encode parallelism — and sections with Sum == 0 get their checksum
// computed here. Encoding is deterministic: same sections, same bytes.
func EncodeContainer(c *Container) ([]byte, error) {
	headerLen := 4 + 4 + 4 + 4 + len(c.Key) + 8 + 8 + 8 + 4 + 4
	dirLen := len(c.Sections) * (4 + 4 + 8 + 4)
	payloadLen := 0
	for i := range c.Sections {
		s := &c.Sections[i]
		if i > 0 && !c.Sections[i-1].ID.Less(s.ID) {
			return nil, fmt.Errorf("snapshot: container sections out of order at %d (%v after %v)",
				i, s.ID, c.Sections[i-1].ID)
		}
		if s.Sum == 0 {
			s.Sum = Checksum(s.Payload)
		}
		payloadLen += len(s.Payload)
	}
	buf := make([]byte, 0, headerLen+dirLen+payloadLen+4)
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	buf = append(buf, ContainerMagic...)
	u32(ContainerVersion)
	u32(uint32(c.Kind))
	u32(uint32(len(c.Key)))
	buf = append(buf, c.Key...)
	u64(uint64(c.Epoch))
	u64(uint64(c.Seq))
	u64(uint64(c.BaseEpoch))
	u32(c.BaseSum)
	u32(uint32(len(c.Sections)))
	for i := range c.Sections {
		s := &c.Sections[i]
		u32(s.ID.Kind)
		u32(s.ID.Index)
		u64(uint64(len(s.Payload)))
		u32(s.Sum)
	}
	c.Sum = Checksum(buf) // framing only: payload bytes are covered per-section
	for i := range c.Sections {
		buf = append(buf, c.Sections[i].Payload...)
	}
	u32(c.Sum)
	return buf, nil
}

// DecodeContainer parses and fully verifies container bytes: magic,
// version, framing checksum, section order, and every section payload's
// CRC-32C. Section payloads alias b.
func DecodeContainer(b []byte) (*Container, error) {
	pos := 0
	fail := func(what string) (*Container, error) {
		return nil, fmt.Errorf("%w: container %s (offset %d)", ErrCorrupt, what, pos)
	}
	need := func(n int) bool { return len(b)-pos >= n }
	u32 := func() uint32 { v := binary.LittleEndian.Uint32(b[pos:]); pos += 4; return v }
	u64 := func() uint64 { v := binary.LittleEndian.Uint64(b[pos:]); pos += 8; return v }
	if !need(8) || string(b[:4]) != ContainerMagic {
		return nil, ErrBadMagic
	}
	pos = 4
	if v := u32(); v > ContainerVersion {
		return nil, fmt.Errorf("%w: container format %d, this build reads <= %d", ErrFutureVersion, v, ContainerVersion)
	}
	c := &Container{}
	if !need(8) {
		return fail("truncated header")
	}
	c.Kind = int(u32())
	if c.Kind != KindFull && c.Kind != KindDelta {
		return fail("unknown kind")
	}
	keyLen := int(u32())
	if keyLen > 1<<10 || !need(keyLen+8+8+8+4+4) {
		return fail("truncated header")
	}
	c.Key = string(b[pos : pos+keyLen])
	pos += keyLen
	c.Epoch = int(int64(u64()))
	c.Seq = int(int64(u64()))
	c.BaseEpoch = int(int64(u64()))
	c.BaseSum = u32()
	nSections := int(u32())
	if nSections < 0 || nSections > 1<<24 || !need(nSections*20) {
		return fail("truncated directory")
	}
	c.Sections = make([]Section, nSections)
	lengths := make([]int, nSections)
	for i := range c.Sections {
		s := &c.Sections[i]
		s.ID.Kind = u32()
		s.ID.Index = u32()
		n := u64()
		if n > maxLen {
			return fail("implausible section length")
		}
		lengths[i] = int(n)
		s.Sum = u32()
		if i > 0 && !c.Sections[i-1].ID.Less(s.ID) {
			return fail("sections out of order")
		}
	}
	c.Sum = Checksum(b[:pos]) // framing checksum covers header + directory
	for i := range c.Sections {
		if !need(lengths[i]) {
			return fail("truncated section payload")
		}
		c.Sections[i].Payload = b[pos : pos+lengths[i] : pos+lengths[i]]
		pos += lengths[i]
	}
	if !need(4) {
		return fail("missing checksum trailer")
	}
	if u32() != c.Sum {
		return nil, fmt.Errorf("%w: container framing", ErrChecksum)
	}
	if pos != len(b) {
		return fail("trailing bytes")
	}
	for i := range c.Sections {
		if Checksum(c.Sections[i].Payload) != c.Sections[i].Sum {
			return nil, fmt.Errorf("%w: section %v", ErrChecksum, c.Sections[i].ID)
		}
	}
	return c, nil
}

// Materialize replays a delta chain — one full container followed by its
// deltas in emission order — into a single full container. The result's
// bytes are identical to a directly-encoded full snapshot of the final
// state: same header fields as the last link (with the chain references
// cleared) and the union of all sections, later links overriding earlier
// ones, in canonical order. Chain validation is exact: each delta must name
// the preceding link's epoch and framing checksum.
func Materialize(chain ...[]byte) ([]byte, error) {
	if len(chain) == 0 {
		return nil, fmt.Errorf("%w: empty checkpoint chain", ErrCorrupt)
	}
	base, err := DecodeContainer(chain[0])
	if err != nil {
		return nil, err
	}
	if base.Kind != KindFull {
		return nil, ErrNotFull
	}
	merged := map[SectionID]Section{}
	for _, s := range base.Sections {
		merged[s.ID] = s
	}
	last := base
	for i, link := range chain[1:] {
		d, err := DecodeContainer(link)
		if err != nil {
			return nil, fmt.Errorf("chain link %d: %w", i+1, err)
		}
		if d.Kind != KindDelta {
			return nil, fmt.Errorf("%w: chain link %d is not a delta", ErrCorrupt, i+1)
		}
		if d.Key != base.Key {
			return nil, fmt.Errorf("%w: chain link %d has key %.16s…, base has %.16s…", ErrChainBroken, i+1, d.Key, base.Key)
		}
		if d.BaseEpoch != last.Epoch || d.BaseSum != last.Sum {
			return nil, fmt.Errorf("%w: link %d bases on epoch %d (sum %08x), previous link is epoch %d (sum %08x)",
				ErrChainBroken, i+1, d.BaseEpoch, d.BaseSum, last.Epoch, last.Sum)
		}
		for _, s := range d.Sections {
			merged[s.ID] = s
		}
		last = d
	}
	out := &Container{Kind: KindFull, Key: base.Key, Epoch: last.Epoch, Seq: last.Seq}
	out.Sections = make([]Section, 0, len(merged))
	for _, s := range merged {
		out.Sections = append(out.Sections, s)
	}
	sort.Slice(out.Sections, func(i, j int) bool { return out.Sections[i].ID.Less(out.Sections[j].ID) })
	return EncodeContainer(out)
}
