package snapshot

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Store is the on-disk experiment store: one content-addressed directory
// per run (keyed by the run's configuration hash) holding the config, the
// latest checkpoint, the learning curve and the final result, plus a
// tables/ area for sweep-level artifacts (robustness grids). The layout is
// what makes `lcexp -resume` cheap: a completed run is one JSON load, an
// interrupted one resumes from its last checkpoint, and only never-started
// runs pay full compute.
//
//	<root>/runs/<key>/config.json      run configuration + profile metadata
//	                  ckpt-NNNNNNNN.bin   checkpoint payload at barrier epoch N
//	                  ckpt-NNNNNNNN.json  its metadata (epoch, progress)
//	                  curve.json       learning-curve points of the final result
//	                  result.json      full final result; its presence marks
//	                                   the run complete
//	<root>/tables/<name>.json|.txt     sweep artifacts
//
// Checkpoints are epoch-numbered; a RunDir retains the newest Keep of them
// (default 1), pruning older ones after each save. Keeping K > 1 lets resume
// fall back past a latest checkpoint that turns out to be unreadable or
// undecodable (disk corruption) instead of recomputing from scratch.
//
// All writes are atomic (temp file + rename), so a run killed mid-write
// leaves the previous artifact intact rather than a truncated one.
type Store struct {
	root string
}

// ErrNoCheckpoint reports that a run directory holds no checkpoint yet.
var ErrNoCheckpoint = errors.New("snapshot: no checkpoint in run directory")

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("snapshot: empty store path")
	}
	for _, sub := range []string{"runs", "tables"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("snapshot: open store: %w", err)
		}
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// Run returns the run directory for the given content key, creating it on
// first use. Keys are hex config hashes; the directory name is the first 16
// characters, enough to be unique and short enough to read.
func (s *Store) Run(key string) (*RunDir, error) {
	if len(key) < 16 {
		return nil, fmt.Errorf("snapshot: run key %q too short", key)
	}
	dir := filepath.Join(s.root, "runs", key[:16])
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: run dir: %w", err)
	}
	return &RunDir{dir: dir, key: key, keep: 1}, nil
}

// Runs lists the run-directory names currently in the store, sorted.
func (s *Store) Runs() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.root, "runs"))
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// SaveTable writes a sweep-level artifact twice: the structured rows as
// <name>.json and the rendered text as <name>.txt.
func (s *Store) SaveTable(name string, rows any, text string) error {
	if err := writeJSONAtomic(filepath.Join(s.root, "tables", name+".json"), rows); err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(s.root, "tables", name+".txt"), []byte(text))
}

// RunDir is one run's artifact directory.
type RunDir struct {
	dir  string
	key  string
	keep int // checkpoints retained (≥1)
}

// SetKeep sets how many checkpoints the directory retains; values below 1
// mean 1 (the default — only the latest survives).
func (r *RunDir) SetKeep(k int) {
	if k < 1 {
		k = 1
	}
	r.keep = k
}

// Dir returns the directory path.
func (r *RunDir) Dir() string { return r.dir }

// Key returns the full content key the directory was opened under.
func (r *RunDir) Key() string { return r.key }

// CkptMeta describes a stored checkpoint without decoding its payload.
// Full/BaseEpoch mirror the container's chain fields (container.go): a
// delta checkpoint is only restorable together with its base chain, which
// resume logic walks via BaseEpoch and prune refuses to break.
type CkptMeta struct {
	Key       string  `json:"key"` // full config hash, for collision detection
	Epoch     int     `json:"epoch"`
	Batches   int     `json:"batches"`
	Updates   int     `json:"updates"`
	VirtualMs float64 `json:"virtual_ms"`
	Full      bool    `json:"full"`       // self-contained snapshot vs delta
	BaseEpoch int     `json:"base_epoch"` // delta only: epoch of the previous link
}

// WriteConfig stores the run's configuration document (overwriting — the
// config is derived from the key, so rewrites are idempotent).
func (r *RunDir) WriteConfig(v any) error {
	return writeJSONAtomic(filepath.Join(r.dir, "config.json"), v)
}

// ckptBase returns the epoch-numbered checkpoint filename stem.
func ckptBase(epoch int) string { return fmt.Sprintf("ckpt-%08d", epoch) }

// SaveCheckpoint stores a checkpoint under its barrier epoch, then prunes
// checkpoints beyond the retention count (SetKeep). The payload is written
// before the metadata — a metadata file always has its payload — and writes
// are atomic, so a crash at any point leaves only complete checkpoints
// visible. Saving the same epoch twice overwrites idempotently.
func (r *RunDir) SaveCheckpoint(data []byte, meta CkptMeta) error {
	meta.Key = r.key
	base := ckptBase(meta.Epoch)
	if err := writeFileAtomic(filepath.Join(r.dir, base+".bin"), data); err != nil {
		return err
	}
	if err := writeJSONAtomic(filepath.Join(r.dir, base+".json"), meta); err != nil {
		return err
	}
	return r.prune()
}

// prune removes checkpoints beyond the newest keep, metadata first so a
// concurrent reader never finds a meta whose payload is gone for good, then
// any orphaned payloads left by an earlier crash.
//
// Retention is chain-closed: a retained delta checkpoint keeps its whole
// base chain (walked via CkptMeta.BaseEpoch down to a full snapshot) alive
// even when the bases fall outside the newest keep — deleting a base would
// silently make every delta above it unrestorable, which is exactly the
// corruption -ckpt-keep exists to survive.
func (r *RunDir) prune() error {
	metas, err := r.Checkpoints()
	if err != nil {
		return err
	}
	byEpoch := make(map[int]CkptMeta, len(metas))
	for _, m := range metas {
		byEpoch[m.Epoch] = m
	}
	keep := map[int]bool{}
	for i, m := range metas {
		if i >= r.keep {
			break
		}
		for !keep[m.Epoch] {
			keep[m.Epoch] = true
			if m.Full {
				break
			}
			base, ok := byEpoch[m.BaseEpoch]
			if !ok {
				break // broken chain; resume falls back past it
			}
			m = base
		}
	}
	live := map[string]bool{}
	for _, m := range metas {
		if keep[m.Epoch] {
			live[ckptBase(m.Epoch)] = true
			continue
		}
		base := ckptBase(m.Epoch)
		if err := os.Remove(filepath.Join(r.dir, base+".json")); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("snapshot: prune: %w", err)
		}
		if err := os.Remove(filepath.Join(r.dir, base+".bin")); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("snapshot: prune: %w", err)
		}
	}
	bins, err := filepath.Glob(filepath.Join(r.dir, "ckpt-*.bin"))
	if err != nil {
		return err
	}
	for _, bin := range bins {
		base := strings.TrimSuffix(filepath.Base(bin), ".bin")
		if live[base] {
			continue
		}
		if _, err := os.Stat(filepath.Join(r.dir, base+".json")); errors.Is(err, fs.ErrNotExist) {
			if err := os.Remove(bin); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return fmt.Errorf("snapshot: prune orphan: %w", err)
			}
		}
	}
	return nil
}

// Checkpoints lists the stored checkpoints' metadata, newest (highest
// epoch) first. Unreadable metadata files are skipped — resume treats them
// like absent checkpoints rather than refusing the whole run.
func (r *RunDir) Checkpoints() ([]CkptMeta, error) {
	paths, err := filepath.Glob(filepath.Join(r.dir, "ckpt-*.json"))
	if err != nil {
		return nil, err
	}
	metas := make([]CkptMeta, 0, len(paths))
	for _, p := range paths {
		var m CkptMeta
		if err := readJSON(p, &m); err != nil {
			continue
		}
		metas = append(metas, m)
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].Epoch > metas[j].Epoch })
	return metas, nil
}

// LoadCheckpointAt returns the checkpoint stored for one barrier epoch, or
// ErrNoCheckpoint. A key mismatch (two configs colliding on the same
// 16-char directory) is surfaced rather than resumed.
func (r *RunDir) LoadCheckpointAt(epoch int) ([]byte, CkptMeta, error) {
	base := ckptBase(epoch)
	var meta CkptMeta
	if err := readJSON(filepath.Join(r.dir, base+".json"), &meta); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, meta, ErrNoCheckpoint
		}
		return nil, meta, err
	}
	if meta.Key != "" && meta.Key != r.key {
		return nil, meta, fmt.Errorf("snapshot: run dir %s holds checkpoint for key %.16s…, want %.16s…",
			r.dir, meta.Key, r.key)
	}
	data, err := os.ReadFile(filepath.Join(r.dir, base+".bin"))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, meta, ErrNoCheckpoint
		}
		return nil, meta, err
	}
	return data, meta, nil
}

// LoadChain returns the checkpoint stored at epoch as a self-contained
// container: a full snapshot loads directly, a delta loads together with
// its base chain — walked via CkptMeta.BaseEpoch down to a full — and is
// replayed through Materialize. Any missing or unreadable link fails the
// whole load (the caller is expected to fall back to an older epoch via
// Checkpoints), as does a meta chain that never reaches a full snapshot.
func (r *RunDir) LoadChain(epoch int) ([]byte, CkptMeta, error) {
	var (
		links   [][]byte
		topMeta CkptMeta
	)
	seen := map[int]bool{}
	for at := epoch; ; {
		if seen[at] {
			return nil, topMeta, fmt.Errorf("snapshot: checkpoint chain at epoch %d loops", epoch)
		}
		seen[at] = true
		data, meta, err := r.LoadCheckpointAt(at)
		if err != nil {
			return nil, topMeta, err
		}
		if len(links) == 0 {
			topMeta = meta
		}
		links = append(links, data)
		if meta.Full {
			break
		}
		at = meta.BaseEpoch
	}
	if len(links) == 1 {
		// A lone full still gets verified here: the meta sidecar promised
		// Full, but only the container's own checksums prove the bytes are
		// intact, and the caller's fall-back decision happens at this load.
		c, err := DecodeContainer(links[0])
		if err != nil {
			return nil, topMeta, err
		}
		if c.Kind != KindFull {
			return nil, topMeta, ErrNotFull
		}
		return links[0], topMeta, nil
	}
	for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
		links[i], links[j] = links[j], links[i]
	}
	data, err := Materialize(links...)
	return data, topMeta, err
}

// LoadCheckpoint returns the newest stored checkpoint whose payload is
// readable, or ErrNoCheckpoint when the run has none. Key collisions are
// surfaced as errors. Deeper validation (codec checksum, config key) is the
// caller's job — ps.Resume rejects a corrupt payload, and resume logic is
// expected to fall back to older epochs via Checkpoints/LoadCheckpointAt.
func (r *RunDir) LoadCheckpoint() ([]byte, CkptMeta, error) {
	metas, err := r.Checkpoints()
	if err != nil {
		return nil, CkptMeta{}, err
	}
	for _, m := range metas {
		data, meta, err := r.LoadCheckpointAt(m.Epoch)
		if err == nil {
			return data, meta, nil
		}
		if !errors.Is(err, ErrNoCheckpoint) {
			return nil, meta, err
		}
	}
	return nil, CkptMeta{}, ErrNoCheckpoint
}

// SaveResult stores the final result document and marks the run complete.
func (r *RunDir) SaveResult(v any) error {
	return writeJSONAtomic(filepath.Join(r.dir, "result.json"), v)
}

// LoadResult decodes the final result into v; fs.ErrNotExist when the run
// never completed.
func (r *RunDir) LoadResult(v any) error {
	return readJSON(filepath.Join(r.dir, "result.json"), v)
}

// HasResult reports whether the run completed (result.json exists).
func (r *RunDir) HasResult() bool {
	_, err := os.Stat(filepath.Join(r.dir, "result.json"))
	return err == nil
}

// SaveCurve stores the learning-curve points separately from the full
// result so plotting tools can grab just the series.
func (r *RunDir) SaveCurve(v any) error {
	return writeJSONAtomic(filepath.Join(r.dir, "curve.json"), v)
}

// writeJSONAtomic marshals v (indented, trailing newline) and writes it
// atomically.
func writeJSONAtomic(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("snapshot: marshal %s: %w", filepath.Base(path), err)
	}
	return writeFileAtomic(path, append(b, '\n'))
}

// writeFileAtomic writes data to path via a temp file + rename so readers
// never observe a partial artifact.
//
// Crash ordering: the temp file is fsync'd *before* the rename (so the
// rename can never publish a name whose blocks are still unwritten — on a
// power cut that ordering is what distinguishes "old artifact" from
// "truncated garbage under the final name"), and the parent directory is
// fsync'd *after* it (the rename itself lives in the directory, so until
// the dirent is durable a crash right after commit could lose the file
// entirely even though its data blocks survived). Result: at every crash
// point the final name holds either the complete previous artifact or the
// complete new one, durably.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("snapshot: write %s: %w", filepath.Base(path), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("snapshot: sync %s: %w", filepath.Base(path), err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("snapshot: close %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("snapshot: %w", err)
	}
	return syncDir(dir)
}

// WriteFileAtomic is writeFileAtomic for sibling artifact writers (trace
// and metrics dumps next to an experiment store): the same temp-file +
// fsync + rename discipline, so a killed invocation leaves either the
// previous complete artifact or the new one, never a truncated mix.
func WriteFileAtomic(path string, data []byte) error {
	return writeFileAtomic(path, data)
}

// syncDir fsyncs a directory, making its entries (a just-committed rename)
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("snapshot: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("snapshot: sync dir %s: %w", filepath.Base(dir), err)
	}
	return nil
}

func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("snapshot: decode %s: %w", filepath.Base(path), err)
	}
	return nil
}
