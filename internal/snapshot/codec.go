// Package snapshot is the run-persistence layer of the reproduction: a
// versioned, deterministic binary codec for freezing training state
// (weights, RNG stream positions, predictor windows, clock time) with
// float64 values written as exact IEEE-754 bits, plus an on-disk experiment
// store (store.go) that keeps configs, checkpoints, learning curves and
// robustness tables in content-addressed run directories.
//
// The codec's contract is bit-exactness, not schema evolution: a snapshot
// restored into the engine that wrote it replays the remaining run
// float-bit-identically (see DESIGN.md "Persistence & resume"). The header
// carries a magic string and a format version so foreign files, truncated
// files and snapshots from a future format fail loudly instead of
// corrupting a resume; a CRC-64 trailer catches bit rot in the payload.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"
)

// Magic identifies a snapshot stream; Version is the current format.
const (
	Magic   = "LCSN"
	Version = 1
)

// maxLen caps length prefixes read from a stream: anything larger than this
// is treated as corruption rather than attempted as an allocation.
const maxLen = 1 << 31

var (
	// ErrBadMagic marks a stream that is not a snapshot at all.
	ErrBadMagic = errors.New("snapshot: bad magic (not a snapshot file)")
	// ErrFutureVersion marks a snapshot written by a newer format than this
	// build understands.
	ErrFutureVersion = errors.New("snapshot: snapshot from a future format version")
	// ErrChecksum marks a payload whose CRC trailer does not match.
	ErrChecksum = errors.New("snapshot: checksum mismatch (corrupted snapshot)")
	// ErrCorrupt marks a structurally implausible stream (oversized length
	// prefix, impossible value).
	ErrCorrupt = errors.New("snapshot: corrupted snapshot")
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Writer serializes values little-endian with a running CRC. Errors are
// sticky: the first write failure is remembered and every later call is a
// no-op, so call sites stay linear and check Close once.
type Writer struct {
	w       io.Writer
	crc     uint64
	err     error
	bare    bool
	scratch [8]byte
	slab    []byte // reusable bulk-encode buffer (F64s/Ints/U64s)
}

// NewWriter starts a snapshot stream on w by emitting the header.
func NewWriter(w io.Writer) *Writer {
	sw := &Writer{w: w}
	sw.raw([]byte(Magic))
	sw.U64(Version)
	return sw
}

// NewBareWriter starts a bare snapshot stream: same header and value
// encoding as NewWriter, but no CRC accumulation and no trailer at Close.
// Bare streams are the section bodies of checkpoint containers
// (container.go), whose integrity is covered by the container's own
// per-section CRC-32C — skipping the software CRC-64 pass here is a large
// part of the checkpoint fast path on big weight vectors.
func NewBareWriter(w io.Writer) *Writer {
	sw := &Writer{w: w, bare: true}
	sw.raw([]byte(Magic))
	sw.U64(Version)
	return sw
}

// raw writes bytes, folding them into the CRC (unless bare).
func (w *Writer) raw(b []byte) {
	if w.err != nil {
		return
	}
	if !w.bare {
		w.crc = crc64.Update(w.crc, crcTable, b)
	}
	_, w.err = w.w.Write(b)
}

// grow returns a slab of exactly n bytes for bulk encoding.
func (w *Writer) grow(n int) []byte {
	if cap(w.slab) < n {
		w.slab = make([]byte, n)
	}
	return w.slab[:n]
}

// U64 writes a fixed 8-byte little-endian unsigned integer.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.scratch[:], v)
	w.raw(w.scratch[:])
}

// I64 writes a signed integer.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes a platform int as i64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool writes a boolean as one u64 (compactness is not a goal; determinism
// and simplicity are).
func (w *Writer) Bool(v bool) {
	if v {
		w.U64(1)
	} else {
		w.U64(0)
	}
}

// F64 writes a float64 as its exact IEEE-754 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// String writes a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.raw([]byte(s))
}

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	w.raw(b)
}

// F64s writes a length-prefixed float64 slice, each element bit-exact. The
// elements are bulk-encoded into one buffer and written (and CRC'd) in a
// single pass — byte-identical to the per-element path, but at memcpy-class
// speed, which is what checkpointing M·P worker weights needs.
func (w *Writer) F64s(v []float64) {
	w.U64(uint64(len(v)))
	if len(v) == 0 {
		return
	}
	b := w.grow(8 * len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	w.raw(b)
}

// Ints writes a length-prefixed []int (bulk-encoded like F64s).
func (w *Writer) Ints(v []int) {
	w.U64(uint64(len(v)))
	if len(v) == 0 {
		return
	}
	b := w.grow(8 * len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(int64(x)))
	}
	w.raw(b)
}

// U64s writes a length-prefixed []uint64 (bulk-encoded like F64s).
func (w *Writer) U64s(v []uint64) {
	w.U64(uint64(len(v)))
	if len(v) == 0 {
		return
	}
	b := w.grow(8 * len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], x)
	}
	w.raw(b)
}

// Bools writes a length-prefixed []bool.
func (w *Writer) Bools(v []bool) {
	w.U64(uint64(len(v)))
	for _, x := range v {
		w.Bool(x)
	}
}

// Err returns the sticky error, if any.
func (w *Writer) Err() error { return w.err }

// Close appends the CRC-64 trailer and returns the sticky error. The
// trailer itself is excluded from the CRC. On a bare writer there is no
// trailer; Close just reports the sticky error.
func (w *Writer) Close() error {
	if w.err != nil || w.bare {
		return w.err
	}
	binary.LittleEndian.PutUint64(w.scratch[:], w.crc)
	_, w.err = w.w.Write(w.scratch[:])
	return w.err
}

// Reader deserializes a snapshot stream. Like Writer, errors are sticky;
// zero values are returned after a failure, and Close verifies the CRC
// trailer against everything read.
type Reader struct {
	r       io.Reader
	crc     uint64
	err     error
	bare    bool
	scratch [8]byte
}

// NewReader validates the header on r and returns a reader positioned at
// the first payload value. It returns ErrBadMagic for foreign streams and
// ErrFutureVersion (wrapped with the found version) for newer formats.
func NewReader(r io.Reader) (*Reader, error) {
	sr := &Reader{r: r}
	var magic [len(Magic)]byte
	sr.raw(magic[:])
	if sr.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, sr.err)
	}
	if string(magic[:]) != Magic {
		return nil, ErrBadMagic
	}
	v := sr.U64()
	if sr.err != nil {
		return nil, sr.err
	}
	if v > Version {
		return nil, fmt.Errorf("%w: format %d, this build reads <= %d", ErrFutureVersion, v, Version)
	}
	return sr, nil
}

// NewBareReader reads a bare stream written by NewBareWriter: same header
// validation, but no CRC accumulation and no trailer at Close. Callers are
// expected to have verified the bytes externally (the checkpoint
// container's per-section CRC-32C).
func NewBareReader(r io.Reader) (*Reader, error) {
	sr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	sr.bare = true
	return sr, nil
}

// raw fills b fully, folding it into the CRC (unless bare). Short reads
// surface as ErrCorrupt-wrapped errors so truncated files are diagnosed as
// such.
func (r *Reader) raw(b []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.r, b); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("%w: truncated stream", ErrCorrupt)
		}
		r.err = err
		return
	}
	if !r.bare {
		r.crc = crc64.Update(r.crc, crcTable, b)
	}
}

// U64 reads a fixed 8-byte little-endian unsigned integer.
func (r *Reader) U64() uint64 {
	r.raw(r.scratch[:])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(r.scratch[:])
}

// I64 reads a signed integer.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads a platform int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U64() != 0 }

// F64 reads a float64 from its exact bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// length reads and sanity-checks a length prefix.
func (r *Reader) length() int {
	n := r.U64()
	if r.err == nil && n > maxLen {
		r.err = fmt.Errorf("%w: implausible length %d", ErrCorrupt, n)
	}
	if r.err != nil {
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.length()
	if n == 0 {
		return ""
	}
	b := make([]byte, n)
	r.raw(b)
	if r.err != nil {
		return ""
	}
	return string(b)
}

// Bytes reads a length-prefixed byte slice.
func (r *Reader) Bytes() []byte {
	n := r.length()
	b := make([]byte, n)
	r.raw(b)
	if r.err != nil {
		return nil
	}
	return b
}

// F64s reads a length-prefixed float64 slice.
func (r *Reader) F64s() []float64 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = r.F64()
	}
	return v
}

// F64sInto reads a length-prefixed float64 slice into dst, requiring the
// stored length to match — the shape-validated restore path for buffers the
// engine has already allocated.
func (r *Reader) F64sInto(dst []float64) {
	n := r.length()
	if r.err == nil && n != len(dst) {
		r.err = fmt.Errorf("%w: stored %d values, want %d", ErrCorrupt, n, len(dst))
	}
	for i := 0; i < n && r.err == nil; i++ {
		dst[i] = r.F64()
	}
}

// Ints reads a length-prefixed []int.
func (r *Reader) Ints() []int {
	n := r.length()
	if r.err != nil {
		return nil
	}
	v := make([]int, n)
	for i := range v {
		v[i] = r.Int()
	}
	return v
}

// U64s reads a length-prefixed []uint64.
func (r *Reader) U64s() []uint64 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	v := make([]uint64, n)
	for i := range v {
		v[i] = r.U64()
	}
	return v
}

// Bools reads a length-prefixed []bool.
func (r *Reader) Bools() []bool {
	n := r.length()
	if r.err != nil {
		return nil
	}
	v := make([]bool, n)
	for i := range v {
		v[i] = r.Bool()
	}
	return v
}

// Err returns the sticky error, if any.
func (r *Reader) Err() error { return r.err }

// Fail injects err as the sticky error (used by callers that detect a
// semantic inconsistency — wrong worker count, mismatched layer shapes —
// while decoding).
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Close reads the CRC trailer and verifies it against everything consumed.
// It must be called after the last payload value; a mismatch (or an earlier
// sticky error) is returned. A bare reader has no trailer; Close just
// reports the sticky error.
func (r *Reader) Close() error {
	if r.err != nil || r.bare {
		return r.err
	}
	sum := r.crc // captured before the trailer read folds into it
	var trailer [8]byte
	if _, err := io.ReadFull(r.r, trailer[:]); err != nil {
		return fmt.Errorf("%w: missing checksum trailer", ErrCorrupt)
	}
	if binary.LittleEndian.Uint64(trailer[:]) != sum {
		return ErrChecksum
	}
	return nil
}
