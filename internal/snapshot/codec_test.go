package snapshot

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// roundTrip writes a fixed value sequence and returns the encoded stream.
func encodeSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(42)
	w.I64(-7)
	w.Int(123456)
	w.Bool(true)
	w.F64(math.Pi)
	w.F64(math.Inf(-1))
	w.F64(math.Copysign(0, -1))
	w.String("lc-asgd")
	w.F64s([]float64{1.5, -2.25, 0, math.MaxFloat64})
	w.Ints([]int{3, -1, 4})
	w.U64s([]uint64{9, 0, math.MaxUint64})
	w.Bools([]bool{true, false, true})
	w.Bytes([]byte{0xde, 0xad})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCodecRoundTripBitExact(t *testing.T) {
	data := encodeSample(t)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if v := r.U64(); v != 42 {
		t.Fatalf("u64 %d", v)
	}
	if v := r.I64(); v != -7 {
		t.Fatalf("i64 %d", v)
	}
	if v := r.Int(); v != 123456 {
		t.Fatalf("int %d", v)
	}
	if !r.Bool() {
		t.Fatal("bool")
	}
	if v := r.F64(); v != math.Pi {
		t.Fatalf("f64 %v", v)
	}
	if v := r.F64(); !math.IsInf(v, -1) {
		t.Fatalf("-inf became %v", v)
	}
	// -0.0 must survive as exactly -0.0: bit-identity, not value equality.
	if bits := math.Float64bits(r.F64()); bits != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatalf("-0.0 bits %x", bits)
	}
	if s := r.String(); s != "lc-asgd" {
		t.Fatalf("string %q", s)
	}
	f := r.F64s()
	if len(f) != 4 || f[0] != 1.5 || f[1] != -2.25 || f[2] != 0 || f[3] != math.MaxFloat64 {
		t.Fatalf("f64s %v", f)
	}
	if i := r.Ints(); len(i) != 3 || i[0] != 3 || i[1] != -1 || i[2] != 4 {
		t.Fatalf("ints %v", i)
	}
	if u := r.U64s(); len(u) != 3 || u[2] != math.MaxUint64 {
		t.Fatalf("u64s %v", u)
	}
	if b := r.Bools(); len(b) != 3 || !b[0] || b[1] || !b[2] {
		t.Fatalf("bools %v", b)
	}
	if b := r.Bytes(); len(b) != 2 || b[0] != 0xde || b[1] != 0xad {
		t.Fatalf("bytes %v", b)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestCodecNaNPayloadPreserved(t *testing.T) {
	// A NaN with a nonstandard payload must round-trip bit-exactly.
	nan := math.Float64frombits(0x7ff80000deadbeef)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.F64(nan)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Float64bits(r.F64()); got != 0x7ff80000deadbeef {
		t.Fatalf("NaN payload %x", got)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderRejectsWrongMagic(t *testing.T) {
	data := encodeSample(t)
	data[0] = 'X'
	if _, err := NewReader(bytes.NewReader(data)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err %v, want ErrBadMagic", err)
	}
	// An empty stream is also not a snapshot.
	if _, err := NewReader(bytes.NewReader(nil)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("empty stream err %v, want ErrBadMagic", err)
	}
}

func TestReaderRejectsFutureVersion(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(Magic)] = Version + 1 // bump the little-endian version field
	if _, err := NewReader(bytes.NewReader(data)); !errors.Is(err, ErrFutureVersion) {
		t.Fatalf("err %v, want ErrFutureVersion", err)
	}
}

func TestReaderDetectsTruncation(t *testing.T) {
	data := encodeSample(t)
	// Cut mid-payload: some read (or Close) must report corruption.
	r, err := NewReader(bytes.NewReader(data[:len(data)/2]))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64 && r.Err() == nil; i++ {
		r.U64()
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("err %v, want ErrCorrupt", r.Err())
	}
	if err := r.Close(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("close err %v, want ErrCorrupt", err)
	}
	// Cutting only the trailer must fail Close even though every payload
	// value decodes.
	r2, err := NewReader(bytes.NewReader(data[:len(data)-4]))
	if err != nil {
		t.Fatal(err)
	}
	if err := drainSample(r2); err == nil {
		t.Fatal("truncated trailer not detected")
	}
}

func TestReaderDetectsBitFlip(t *testing.T) {
	data := encodeSample(t)
	data[20] ^= 0x40 // flip one payload bit
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := drainSample(r); !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err %v, want checksum/corruption", err)
	}
}

func TestReaderRejectsImplausibleLength(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(1 << 40) // masquerades as a length prefix
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v := r.F64s(); v != nil {
		t.Fatalf("decoded %d elements from a bogus length", len(v))
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("err %v, want ErrCorrupt", r.Err())
	}
}

func TestF64sIntoValidatesLength(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.F64s([]float64{1, 2, 3})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 2)
	r.F64sInto(dst)
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("err %v, want ErrCorrupt on length mismatch", r.Err())
	}
}

// drainSample consumes the sample sequence and returns Close's verdict.
func drainSample(r *Reader) error {
	r.U64()
	r.I64()
	r.Int()
	r.Bool()
	r.F64()
	r.F64()
	r.F64()
	_ = r.String()
	r.F64s()
	r.Ints()
	r.U64s()
	r.Bools()
	r.Bytes()
	return r.Close()
}
