package snapshot

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestStoreRunLifecycle(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "0123456789abcdef0123456789abcdef"
	rd, err := st.Run(key)
	if err != nil {
		t.Fatal(err)
	}
	if rd.HasResult() {
		t.Fatal("fresh run dir claims a result")
	}
	if _, _, err := rd.LoadCheckpoint(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err %v, want ErrNoCheckpoint", err)
	}

	if err := rd.WriteConfig(map[string]any{"algo": "ASGD", "seed": 7}); err != nil {
		t.Fatal(err)
	}
	ck := []byte("pretend-checkpoint-bytes")
	if err := rd.SaveCheckpoint(ck, CkptMeta{Epoch: 3, Batches: 120, Updates: 118, VirtualMs: 4200.5}); err != nil {
		t.Fatal(err)
	}
	data, meta, err := rd.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(ck) || meta.Epoch != 3 || meta.Key != key {
		t.Fatalf("checkpoint round-trip: %q %+v", data, meta)
	}

	type res struct {
		Err  float64
		Pts  int
		Name string
	}
	if err := rd.SaveResult(res{Err: 0.125, Pts: 12, Name: "asgd"}); err != nil {
		t.Fatal(err)
	}
	if err := rd.SaveCurve([]float64{1, 0.5, 0.25}); err != nil {
		t.Fatal(err)
	}
	var back res
	if err := rd.LoadResult(&back); err != nil {
		t.Fatal(err)
	}
	if back.Err != 0.125 || back.Pts != 12 || back.Name != "asgd" {
		t.Fatalf("result round-trip: %+v", back)
	}
	if !rd.HasResult() {
		t.Fatal("completed run not detected")
	}

	// Reopening the store finds the same run.
	st2, err := OpenStore(st.Root())
	if err != nil {
		t.Fatal(err)
	}
	runs, err := st2.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0] != key[:16] {
		t.Fatalf("runs: %v", runs)
	}
}

// With the default retention (keep 1) every save prunes the previous
// checkpoint — today's single-slot behavior, now expressed as K=1.
func TestStoreKeepDefaultRetainsOne(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rd, err := st.Run("0123456789abcdef0123456789abcdef")
	if err != nil {
		t.Fatal(err)
	}
	for ep := 1; ep <= 3; ep++ {
		if err := rd.SaveCheckpoint([]byte{byte(ep)}, CkptMeta{Epoch: ep}); err != nil {
			t.Fatal(err)
		}
	}
	metas, err := rd.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 1 || metas[0].Epoch != 3 {
		t.Fatalf("default retention kept %+v, want only epoch 3", metas)
	}
}

// SetKeep(K) retains the newest K checkpoints, listed newest-first, and
// LoadCheckpoint returns the newest.
func TestStoreKeepKRetainsNewest(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rd, err := st.Run("0123456789abcdef0123456789abcdef")
	if err != nil {
		t.Fatal(err)
	}
	rd.SetKeep(2)
	for ep := 1; ep <= 4; ep++ {
		if err := rd.SaveCheckpoint([]byte{byte(ep)}, CkptMeta{Epoch: ep, Updates: ep * 10}); err != nil {
			t.Fatal(err)
		}
	}
	metas, err := rd.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 2 || metas[0].Epoch != 4 || metas[1].Epoch != 3 {
		t.Fatalf("retention kept %+v, want epochs [4 3]", metas)
	}
	data, meta, err := rd.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if meta.Epoch != 4 || data[0] != 4 {
		t.Fatalf("LoadCheckpoint returned epoch %d payload %v, want newest", meta.Epoch, data)
	}
	if _, _, err := rd.LoadCheckpointAt(1); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("pruned epoch still loads: %v", err)
	}
	// Pruned files are actually gone from disk.
	bins, _ := filepath.Glob(filepath.Join(rd.Dir(), "ckpt-*.bin"))
	if len(bins) != 2 {
		t.Fatalf("%d payload files on disk, want 2: %v", len(bins), bins)
	}
}

// When the newest checkpoint's payload is lost or mangled on disk,
// LoadCheckpoint falls back to the next-newest readable one instead of
// failing the run. (Payloads that read fine but fail codec validation are
// the resume loop's job — see trainer's resumeFromCheckpoint.)
func TestStoreFallsBackPastMissingNewestPayload(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rd, err := st.Run("0123456789abcdef0123456789abcdef")
	if err != nil {
		t.Fatal(err)
	}
	rd.SetKeep(3)
	for ep := 1; ep <= 3; ep++ {
		if err := rd.SaveCheckpoint([]byte{byte(ep)}, CkptMeta{Epoch: ep}); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(filepath.Join(rd.Dir(), "ckpt-00000003.bin")); err != nil {
		t.Fatal(err)
	}
	data, meta, err := rd.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if meta.Epoch != 2 || data[0] != 2 {
		t.Fatalf("fallback loaded epoch %d, want 2", meta.Epoch)
	}
}

func TestStoreDetectsKeyCollision(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Two keys sharing a 16-char prefix map to the same directory; loading
	// the other key's checkpoint must fail rather than resume a wrong run.
	a := "aaaaaaaaaaaaaaaa1111111111111111"
	b := "aaaaaaaaaaaaaaaa2222222222222222"
	ra, err := st.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := ra.SaveCheckpoint([]byte("x"), CkptMeta{Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	rb, err := st.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rb.LoadCheckpoint(); err == nil {
		t.Fatal("collision not detected")
	}
}

func TestStoreSaveTable(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rows := []map[string]any{{"algo": "SSGD", "err": 0.2}}
	if err := st.SaveTable("robustness", rows, "rendered table\n"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"robustness.json", "robustness.txt"} {
		if _, err := os.Stat(filepath.Join(st.Root(), "tables", name)); err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
	}
}

func TestStoreRejectsShortKey(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Run("short"); err == nil {
		t.Fatal("short key accepted")
	}
}
