// Package trainer wires datasets, models, cost models and algorithms into
// the experiment cells of the paper's evaluation, and provides the
// experiment functions behind each figure and table (see the experiment
// index in DESIGN.md).
package trainer

import (
	"time"

	"lcasgd/internal/cluster"
	"lcasgd/internal/core"
	"lcasgd/internal/data"
	"lcasgd/internal/model"
	"lcasgd/internal/ps"
	"lcasgd/internal/scenario"
	"lcasgd/internal/snapshot"
)

// Profile is one (dataset, model, training recipe) combination. Quick
// profiles keep CPU cost low enough for `go test -bench`; Full profiles are
// closer to paper scale and are run through cmd/lcexp.
type Profile struct {
	Name    string
	Data    data.Config
	Model   model.Config
	Batch   int
	Epochs  int
	LR      float64
	WD      float64 // weight decay
	Lambda  float64 // LC-ASGD compensation mixing
	DCLam   float64 // DC-ASGD variance control
	Cost    cluster.CostModel
	BNDecay float64

	// Predictor widths (paper: 64/128). Quick profiles shrink them to keep
	// the online LSTM training affordable on one CPU.
	LossPredHidden, StepPredHidden int

	// Backend selects the execution backend for every cell run under this
	// profile; empty means the deterministic sequential simulator. The
	// concurrent backend produces bit-identical results while overlapping
	// worker compute across cores (cmd/lcexp -parallel).
	Backend ps.BackendKind

	// Scenario replays a timeline of cluster events (congestion phases,
	// crashes/recoveries, elastic resizes, network partitions) during every
	// cell run under this profile; nil means the paper's stationary cluster
	// (cmd/lcexp -scenario).
	Scenario *scenario.Scenario

	// Topology names the communication graph decentralized cells (AD-PSGD)
	// gossip on — a topology.Parse spec; empty means ring (cmd/lcexp
	// -topology). Parameter-server algorithms ignore it. The robustness
	// grid overrides it per row to compare topologies.
	Topology string

	// Jobs is how many experiment cells a sweep (Fig2/Fig3Panel/Fig5Panel/
	// Table1/Robustness) runs concurrently; values <= 1 mean the classic
	// sequential loops (cmd/lcexp -jobs). Results are assembled in
	// submission order, so tables, curves and store artifacts are
	// byte-identical at any Jobs value; the pool divides the machine with
	// the matmul layer by capping tensor.SetMatmulParallelism at
	// GOMAXPROCS/Jobs (see sched.go). Incompatible with the concurrent
	// backend, which owns that cap itself.
	Jobs int

	// Progress, when non-nil, is called by sweep pools after every completed
	// cell with the number of cells finished so far, the number submitted so
	// far, the wall time since the sweep's pool was created, and the
	// completed cell's ps.ConfigKey (cmd/lcexp -v uses the key prefix to
	// name the cell and derives an ETA from done/total/elapsed). Pooled
	// sweeps invoke it from worker goroutines under the pool's lock, so
	// implementations need no synchronization of their own; they must not
	// block and should write to stderr, keeping stdout (tables, charts, CSV)
	// byte-identical with and without progress reporting.
	Progress func(done, total int, elapsed time.Duration, key string)

	// Telemetry, when non-nil, attaches a fresh telemetry.Recorder to every
	// cell run under this profile (deduplicated by ps.ConfigKey — a baseline
	// cell shared by several sweeps records once) and collects them for the
	// invocation-wide trace/metrics dumps (cmd/lcexp -trace-out,
	// -metrics-out). Telemetry is passive: results are bit-identical with
	// and without it, and the collected output is byte-identical at any
	// Jobs value.
	Telemetry *Telemetry

	// Store, when non-nil, persists every cell run under this profile into
	// the experiment store: config, checkpoints at every CkptEvery epochs,
	// the learning curve and the final result, keyed by ps.ConfigKey
	// (cmd/lcexp -ckpt-dir). With Resume set, completed cells load their
	// stored result instead of re-running and interrupted cells resume from
	// their last checkpoint — which is what lets a killed sweep continue
	// without redoing finished work (cmd/lcexp -resume).
	Store     *snapshot.Store
	CkptEvery int
	Resume    bool

	// CkptKeep is how many checkpoints each run directory retains (cmd/lcexp
	// -ckpt-keep); values below 1 mean 1, today's latest-only behavior.
	// Keeping more lets resume fall back past a corrupted latest checkpoint.
	CkptKeep int

	// CkptFullEvery is the self-contained checkpoint cadence (cmd/lcexp
	// -ckpt-full-every): every CkptFullEvery-th persisted checkpoint is a
	// full snapshot, the ones between are deltas chained onto it. 0 means
	// ps's default (8); 1 makes every checkpoint full.
	CkptFullEvery int

	// Render makes every cell load its persisted result from the Store
	// instead of computing anything (cmd/lcexp -render): figures and tables
	// re-render from a completed sweep's artifacts. A cell whose result is
	// missing panics with *RenderMissingError rather than silently
	// recomputing.
	Render bool
}

// QuickCIFAR is the CPU-budget CIFAR-10-like cell used by tests and benches.
func QuickCIFAR() Profile {
	d := data.CIFARConfig()
	d.Train, d.Test = 800, 200
	m := model.Config{
		Name: "cifarq", InC: 3, InH: 8, InW: 8,
		Stem: 6, StageReps: []int{1, 1, 1}, NumClasses: 10,
	}
	return Profile{
		Name: "cifar-quick", Data: d, Model: m,
		Batch: 20, Epochs: 12, LR: 0.08, WD: 5e-3, Lambda: 1, DCLam: 0.3,
		Cost: cluster.CIFARCostModel(), BNDecay: 0.2,
		LossPredHidden: 24, StepPredHidden: 32,
	}
}

// FullCIFAR approaches the paper's CIFAR-10 setting (scaled per DESIGN.md).
func FullCIFAR() Profile {
	p := QuickCIFAR()
	p.Name = "cifar-full"
	p.Data = data.CIFARConfig()
	p.Model = model.ResNetLite18(10)
	p.Batch = 50
	p.Epochs = 40
	p.LossPredHidden, p.StepPredHidden = 64, 128
	return p
}

// QuickImageNet is the CPU-budget ImageNet-like cell.
func QuickImageNet() Profile {
	d := data.ImageNetConfig()
	d.Train, d.Test = 1080, 270
	// The quick profile trades sample count for task difficulty: with 40
	// samples per class (vs the full profile's 100) the prototypes carry
	// more signal so the task stays learnable inside the CPU budget.
	d.SignalScale = 0.42
	m := model.Config{
		Name: "imagenetq", InC: 3, InH: 12, InW: 12,
		Stem: 8, StageReps: []int{1, 1, 1}, NumClasses: 27,
	}
	return Profile{
		Name: "imagenet-quick", Data: d, Model: m,
		Batch: 27, Epochs: 8, LR: 0.08, WD: 5e-3, Lambda: 1, DCLam: 0.3,
		Cost: cluster.ImageNetCostModel(), BNDecay: 0.2,
		LossPredHidden: 24, StepPredHidden: 32,
	}
}

// FullImageNet approaches the paper's ImageNet setting (scaled).
func FullImageNet() Profile {
	p := QuickImageNet()
	p.Name = "imagenet-full"
	p.Data = data.ImageNetConfig()
	p.Model = model.ResNetLite50(27)
	p.Batch = 50
	p.Epochs = 24
	p.LossPredHidden, p.StepPredHidden = 64, 128
	return p
}

// cellConfig assembles the ps.Config for one experiment cell.
func cellConfig(p Profile, algo ps.Algo, workers int, bnMode core.BNMode, seed uint64) ps.Config {
	return ps.Config{
		Algo:                algo,
		Workers:             workers,
		BatchSize:           p.Batch,
		Epochs:              p.Epochs,
		LR:                  p.LR,
		Lambda:              p.Lambda,
		DCLambda:            p.DCLam,
		WeightDecay:         p.WD,
		BNMode:              bnMode,
		BNDecay:             p.BNDecay,
		Seed:                seed,
		Cost:                p.Cost,
		LossPredHidden:      p.LossPredHidden,
		StepPredHidden:      p.StepPredHidden,
		Backend:             p.Backend,
		Scenario:            p.Scenario,
		Topology:            p.Topology,
		CheckpointEvery:     p.CkptEvery,
		CheckpointFullEvery: p.CkptFullEvery,
	}
}

// cellKey is the ps.ConfigKey the cell submitted with these arguments will
// run under, mutations applied — computed at submission time so progress
// reporting and telemetry can name the cell without waiting for it.
func cellKey(p Profile, algo ps.Algo, workers int, bnMode core.BNMode, seed uint64, mutate func(*ps.Config)) string {
	cfg := cellConfig(p, algo, workers, bnMode, seed)
	if mutate != nil {
		mutate(&cfg)
	}
	return ps.ConfigKey(cfg)
}

// RunCell executes one experiment cell under the profile. Dataset
// generation is deterministic, so repeated cells see identical data.
func RunCell(p Profile, algo ps.Algo, workers int, bnMode core.BNMode, seed uint64) ps.Result {
	return RunCellCfg(p, algo, workers, bnMode, seed, nil)
}

// RunCellCfg is RunCell with full control of the ps.Config for ablations:
// mutate receives the assembled config before the run.
func RunCellCfg(p Profile, algo ps.Algo, workers int, bnMode core.BNMode, seed uint64, mutate func(*ps.Config)) ps.Result {
	// Cached: sweeps run many cells against the same config, and concurrent
	// cells (Profile.Jobs) share one immutable dataset instead of each
	// regenerating it.
	train, test := data.GenerateCached(p.Data)
	cfg := cellConfig(p, algo, workers, bnMode, seed)
	if mutate != nil {
		mutate(&cfg)
	}
	env := ps.Env{Train: train, Test: test, Build: p.Model.Build, Cfg: cfg}
	if p.Telemetry != nil && !p.Render {
		// attach returns nil for a duplicate cell (same ConfigKey already
		// recording elsewhere in the invocation) — the run then simply
		// carries no recorder, which is indistinguishable by results.
		env.Telemetry = p.Telemetry.attach(cfg, ps.ConfigKey(cfg))
	}
	if p.Store != nil {
		return runCellPersisted(p, env)
	}
	if p.Render {
		panic("trainer: Render mode requires a Store (-render needs -ckpt-dir)")
	}
	return ps.Run(env)
}
