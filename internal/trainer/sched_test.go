package trainer

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"lcasgd/internal/ps"
	"lcasgd/internal/scenario"
	"lcasgd/internal/snapshot"
)

// The scheduler's contract: a sweep's output — rows, rendered tables,
// curves, persisted store bytes — is identical at any Profile.Jobs. The
// only non-deterministic Result fields are AvgLossPredMs/AvgStepPredMs
// (real measured wall times, documented in ps.Result), so comparisons
// normalize exactly those two and nothing else.

// schedProfile is a tinyProfile shrunk further for sweep-shaped tests.
func schedProfile(jobs int) Profile {
	p := tinyProfile()
	p.Epochs = 2
	p.Jobs = jobs
	return p
}

func normalizeResult(r ps.Result) ps.Result {
	r.AvgLossPredMs, r.AvgStepPredMs = 0, 0
	return r
}

func schedScenarios() []scenario.Scenario {
	return []scenario.Scenario{
		scenario.None(),
		{Name: "blip", Events: []scenario.Event{
			{At: 100, Kind: scenario.Crash, Worker: 1},
			{At: 170, Kind: scenario.Recover, Worker: 1},
		}},
	}
}

// TestRobustnessJobsDeterminism: the parallel robustness grid is equal to
// the sequential one row for row (RobustnessRow has only virtual/
// deterministic fields), and so is the rendered table.
func TestRobustnessJobsDeterminism(t *testing.T) {
	scns := schedScenarios()
	opts := RobustnessOpts{Seeds: 2, RecoverOpt: true}
	seqRows := Robustness(schedProfile(1), 4, 1, scns, opts)
	parRows := Robustness(schedProfile(3), 4, 1, scns, opts)
	if !reflect.DeepEqual(seqRows, parRows) {
		t.Fatalf("jobs=3 robustness rows differ from jobs=1:\nseq %+v\npar %+v", seqRows, parRows)
	}
	seqTb := RenderRobustness(schedProfile(1), 4, seqRows).String()
	parTb := RenderRobustness(schedProfile(3), 4, parRows).String()
	if seqTb != parTb {
		t.Fatalf("rendered robustness tables differ:\n%s\nvs\n%s", seqTb, parTb)
	}
}

// TestFig3PanelJobsDeterminism: full learning curves (every point, every
// summary field except the measured-ms pair) match across Jobs.
func TestFig3PanelJobsDeterminism(t *testing.T) {
	seq := Fig3Panel(schedProfile(1), 4, 1)
	par := Fig3Panel(schedProfile(3), 4, 1)
	if !reflect.DeepEqual(seq.Order, par.Order) {
		t.Fatalf("algo order differs: %v vs %v", seq.Order, par.Order)
	}
	for _, a := range seq.Order {
		sr, pr := normalizeResult(seq.Results[a]), normalizeResult(par.Results[a])
		if !reflect.DeepEqual(sr, pr) {
			t.Fatalf("%s: jobs=3 result differs from jobs=1", a)
		}
	}
	if seq.SeriesTable().String() != par.SeriesTable().String() {
		t.Fatal("series tables differ across Jobs")
	}
}

// TestTable1JobsDeterminism shrinks the worker grid so the full Table 1
// assembly (seed means, BN/Async pairs, baseline extraction) runs cheaply
// under both pool shapes.
func TestTable1JobsDeterminism(t *testing.T) {
	saved := WorkerCounts
	WorkerCounts = []int{2}
	defer func() { WorkerCounts = saved }()
	seeds := []uint64{1, 2}
	seqRows, sb1, sb2 := Table1(schedProfile(1), true, seeds)
	parRows, pb1, pb2 := Table1(schedProfile(3), true, seeds)
	if !reflect.DeepEqual(seqRows, parRows) || sb1 != pb1 || sb2 != pb2 {
		t.Fatalf("jobs=3 Table1 differs from jobs=1:\nseq %+v\npar %+v", seqRows, parRows)
	}
}

// TestSweepJobsStoreByteIdentical: a persisted parallel sweep leaves a
// byte-identical store to a sequential one — same run dirs, same artifact
// bytes — except result.json's two measured-ms fields, which are compared
// after normalization.
func TestSweepJobsStoreByteIdentical(t *testing.T) {
	runSweep := func(jobs int) string {
		dir := t.TempDir()
		st, err := snapshot.OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		p := schedProfile(jobs)
		p.Store = st
		p.CkptEvery = 1
		Robustness(p, 4, 1, schedScenarios(), RobustnessOpts{Seeds: 2})
		return dir
	}
	seqDir := runSweep(1)
	parDir := runSweep(3)

	relFiles := func(root string) []string {
		var files []string
		err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if !info.IsDir() {
				rel, _ := filepath.Rel(root, path)
				files = append(files, rel)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return files
	}
	seqFiles, parFiles := relFiles(seqDir), relFiles(parDir)
	if !reflect.DeepEqual(seqFiles, parFiles) {
		t.Fatalf("store layouts differ:\nseq %v\npar %v", seqFiles, parFiles)
	}
	for _, rel := range seqFiles {
		sb, err := os.ReadFile(filepath.Join(seqDir, rel))
		if err != nil {
			t.Fatal(err)
		}
		pb, err := os.ReadFile(filepath.Join(parDir, rel))
		if err != nil {
			t.Fatal(err)
		}
		if filepath.Base(rel) == "result.json" {
			var sr, pr ps.Result
			if err := json.Unmarshal(sb, &sr); err != nil {
				t.Fatalf("%s: %v", rel, err)
			}
			if err := json.Unmarshal(pb, &pr); err != nil {
				t.Fatalf("%s: %v", rel, err)
			}
			if !reflect.DeepEqual(normalizeResult(sr), normalizeResult(pr)) {
				t.Fatalf("%s differs beyond the measured-ms fields", rel)
			}
			continue
		}
		if string(sb) != string(pb) {
			t.Fatalf("store artifact %s is not byte-identical across Jobs", rel)
		}
	}
}

// TestPoolRejectsConcurrentBackend: the jobs × matmul budget rule — the
// concurrent backend owns the process-wide matmul cap, so combining it with
// a multi-job pool must fail loudly, not deadlock or oversubscribe.
func TestPoolRejectsConcurrentBackend(t *testing.T) {
	p := schedProfile(2)
	p.Backend = ps.BackendConcurrent
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("newPool accepted Jobs > 1 with the concurrent backend")
		}
		if !strings.Contains(r.(string), "concurrent backend") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	newPool(p)
}

// TestPoolPanicPropagates: a failing cell (e.g. an experiment-store error)
// aborts the sweep from wait, and the pool still releases the sweep lock so
// later sweeps are not deadlocked.
func TestPoolPanicPropagates(t *testing.T) {
	p := schedProfile(2)
	func() {
		pool := newPool(p)
		defer pool.close()
		f := pool.submit("boom-cell", func() ps.Result { panic("boom") })
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("cell panic was swallowed")
			}
		}()
		f.wait()
	}()
	// The lock must be free: a second pool acquires it without blocking.
	pool := newPool(p)
	pool.submit("noop-cell", func() ps.Result { return ps.Result{} }).wait()
	pool.close()
}

// BenchmarkRobustnessSweep measures sweep wall-clock at both pool shapes —
// the scheduler-level number recorded in BENCH_ps.json. On a multi-core
// runner jobs=4 should approach 4x; on one core the two are equal-ish,
// which is itself evidence the pool adds no overhead.
func BenchmarkRobustnessSweep(b *testing.B) {
	for _, jobs := range []int{1, 4} {
		b.Run(map[int]string{1: "jobs1", 4: "jobs4"}[jobs], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Robustness(schedProfile(jobs), 4, 1, []scenario.Scenario{scenario.None()}, RobustnessOpts{})
			}
		})
	}
}
