package trainer

import (
	"fmt"

	"lcasgd/internal/core"
	"lcasgd/internal/ps"
	"lcasgd/internal/report"
	"lcasgd/internal/scenario"
)

// RobustnessEntry is one algorithm column of the robustness grid. Topology
// is empty for the parameter-server algorithms; decentralized algorithms
// appear once per compared communication graph.
type RobustnessEntry struct {
	Algo     ps.Algo
	Topology string
}

// RobustnessEntries are the distributed algorithms compared across cluster
// scenarios: the paper's four plus the staleness-aware sixth, ordered from
// fully synchronous to fully prediction-compensated, followed by
// decentralized AD-PSGD on the sparsest (ring) and a seeded random-gossip
// graph — the sync-vs-async-vs-decentralized robustness comparison.
var RobustnessEntries = []RobustnessEntry{
	{Algo: ps.SSGD}, {Algo: ps.ASGD}, {Algo: ps.SAASGD}, {Algo: ps.DCASGD}, {Algo: ps.LCASGD},
	{Algo: ps.ADPSGD, Topology: "ring"}, {Algo: ps.ADPSGD, Topology: "gossip"},
}

// RobustnessOpts parameterizes the robustness sweep beyond the grid axes.
type RobustnessOpts struct {
	// Seeds is how many seeds each cell averages over (base seed, base+1,
	// …); values below 1 mean a single seed. With several seeds the rows
	// carry mean final error plus its spread (max − min), the robustness
	// table's analogue of the paper's seed-averaged headline numbers.
	Seeds int
	// RecoverOpt adds a second row per (scenario, algorithm) in which
	// recovered workers restore the last checkpoint's server snapshot
	// instead of pulling fresh state (ps.Config.RecoverOpt) — the
	// lost-momentum variant behind `lcexp -recover-opt`. To keep the
	// variant delta about recovery semantics alone, the whole sweep
	// (base rows included) then runs with a checkpoint barrier every
	// epoch unless the profile already sets a cadence, and variant rows
	// are emitted only for scenarios that actually contain a Recover
	// event — elsewhere they would be bit-identical to the base row.
	RecoverOpt bool
}

// RobustnessRow is one cell of the robustness grid: how one algorithm
// (variant) fared under one scenario, aggregated over seeds.
type RobustnessRow struct {
	Scenario string
	Algo     ps.Algo
	// Topology is the communication graph of a decentralized row, "" for
	// parameter-server algorithms.
	Topology string
	// Variant is "" for the standard recovery semantics and "recover-opt"
	// for checkpoint-restore recovery.
	Variant string
	Seeds   int

	FinalTestErr  float64 // mean over seeds
	ErrSpread     float64 // max − min over seeds (0 with one seed)
	MeanStaleness float64 // mean over seeds
	MaxStaleness  int     // max over seeds
	Updates       int     // mean over seeds
	VirtualMs     float64 // mean over seeds
	Events        int     // max over seeds: scenario events that applied
}

// Robustness runs every RobustnessEntries algorithm under every scenario at
// the given worker count — the experiment behind the robustness table in
// DESIGN.md. The stationary paper cluster is row zero when scns includes
// scenario.None(), so degradation reads directly against it. The scenario
// and the per-entry topology override any Profile.Scenario/Topology for
// these runs; with a profile Store every underlying cell persists, so an
// interrupted sweep resumes per cell.
func Robustness(p Profile, workers int, seed uint64, scns []scenario.Scenario, opts RobustnessOpts) []RobustnessRow {
	if opts.Seeds < 1 {
		opts.Seeds = 1
	}
	type variant struct {
		name string
		mut  func(*ps.Config)
	}
	// With RecoverOpt requested, every cell — base rows included — runs on
	// the same checkpoint-barrier timeline, so a variant row differs from
	// its base row only in what recovered workers pull.
	base := variant{mut: func(c *ps.Config) {
		if opts.RecoverOpt && c.CheckpointEvery == 0 {
			c.CheckpointEvery = 1
		}
	}}
	recOpt := variant{name: "recover-opt", mut: func(c *ps.Config) {
		c.RecoverOpt = true
		if c.CheckpointEvery == 0 {
			c.CheckpointEvery = 1
		}
	}}

	// Submit the whole scenario × algorithm × variant × seed grid to the
	// cell pool in the classic nested order, then fold each row's seeds in
	// that same order — rows are identical at any Profile.Jobs.
	pool := newPool(p)
	defer pool.close()
	type gridCell struct {
		row   RobustnessRow
		seeds []*cellFuture
	}
	var cells []gridCell
	for i := range scns {
		scn := &scns[i]
		variants := []variant{base}
		if opts.RecoverOpt && hasRecovery(scn) {
			variants = append(variants, recOpt)
		}
		for _, entry := range RobustnessEntries {
			for _, v := range variants {
				cell := gridCell{
					row: RobustnessRow{Scenario: scn.Name, Algo: entry.Algo,
						Topology: entry.Topology, Variant: v.name, Seeds: opts.Seeds},
					seeds: make([]*cellFuture, opts.Seeds),
				}
				for s := 0; s < opts.Seeds; s++ {
					mut := v.mut
					topo := entry.Topology
					cellSeed := seed + uint64(s)
					mutate := func(c *ps.Config) {
						c.Scenario = scn
						c.Topology = topo
						if mut != nil {
							mut(c)
						}
					}
					cell.seeds[s] = pool.submit(cellKey(p, entry.Algo, workers, core.BNAsync, cellSeed, mutate), func() ps.Result {
						return RunCellCfg(p, entry.Algo, workers, core.BNAsync, cellSeed, mutate)
					})
				}
				cells = append(cells, cell)
			}
		}
	}

	var rows []RobustnessRow
	for _, cell := range cells {
		row := cell.row
		loErr, hiErr := 0.0, 0.0
		for s, fut := range cell.seeds {
			res := fut.wait()
			if s == 0 || res.FinalTestErr < loErr {
				loErr = res.FinalTestErr
			}
			if s == 0 || res.FinalTestErr > hiErr {
				hiErr = res.FinalTestErr
			}
			row.FinalTestErr += res.FinalTestErr
			row.MeanStaleness += res.MeanStaleness
			row.Updates += res.Updates
			row.VirtualMs += res.VirtualMs
			if res.MaxStaleness > row.MaxStaleness {
				row.MaxStaleness = res.MaxStaleness
			}
			if res.ScenarioEvents > row.Events {
				row.Events = res.ScenarioEvents
			}
		}
		n := float64(opts.Seeds)
		row.FinalTestErr /= n
		row.MeanStaleness /= n
		row.VirtualMs /= n
		row.Updates /= opts.Seeds
		row.ErrSpread = hiErr - loErr
		rows = append(rows, row)
	}
	return rows
}

// hasRecovery reports whether the timeline re-admits any worker — the only
// scenarios where checkpoint-restore recovery can differ from fresh pulls.
func hasRecovery(scn *scenario.Scenario) bool {
	for _, ev := range scn.Events {
		if ev.Kind == scenario.Recover {
			return true
		}
	}
	return false
}

// RenderRobustness formats the robustness grid: final error (mean ± spread
// over seeds), the staleness the scenario induced, and run shape, per
// algorithm × scenario × recovery variant.
func RenderRobustness(p Profile, workers int, rows []RobustnessRow) *report.Table {
	seeds := 1
	for _, r := range rows {
		if r.Seeds > seeds {
			seeds = r.Seeds
		}
	}
	tb := report.NewTable(
		fmt.Sprintf("Robustness (%s, M=%d, seeds=%d): final test error and staleness per scenario",
			p.Name, workers, seeds),
		"scenario", "algorithm", "topology", "variant", "test err%", "±spread", "mean stale", "max stale",
		"updates", "vsec", "events")
	for _, r := range rows {
		topo := r.Topology
		if topo == "" {
			topo = "-"
		}
		variant := r.Variant
		if variant == "" {
			variant = "-"
		}
		spread := "-"
		if r.Seeds > 1 {
			spread = fmt.Sprintf("%.2f", r.ErrSpread*100)
		}
		tb.AddRow(r.Scenario, string(r.Algo), topo, variant,
			report.Pct(r.FinalTestErr),
			spread,
			fmt.Sprintf("%.2f", r.MeanStaleness),
			fmt.Sprintf("%d", r.MaxStaleness),
			fmt.Sprintf("%d", r.Updates),
			fmt.Sprintf("%.1f", r.VirtualMs/1000),
			fmt.Sprintf("%d", r.Events))
	}
	return tb
}
