package trainer

import (
	"fmt"

	"lcasgd/internal/core"
	"lcasgd/internal/ps"
	"lcasgd/internal/report"
	"lcasgd/internal/scenario"
)

// RobustnessAlgos are the distributed algorithms compared across cluster
// scenarios: the paper's four plus the staleness-aware sixth, ordered from
// fully synchronous to fully prediction-compensated.
var RobustnessAlgos = []ps.Algo{ps.SSGD, ps.ASGD, ps.SAASGD, ps.DCASGD, ps.LCASGD}

// RobustnessRow is one cell of the robustness grid: how one algorithm fared
// under one scenario.
type RobustnessRow struct {
	Scenario      string
	Algo          ps.Algo
	FinalTestErr  float64
	MeanStaleness float64
	MaxStaleness  int
	Updates       int
	VirtualMs     float64
	Events        int // scenario events that actually applied
}

// Robustness runs every RobustnessAlgos algorithm under every scenario at
// the given worker count — the experiment behind the robustness table in
// DESIGN.md. The stationary paper cluster is row zero when scns includes
// scenario.None(), so degradation reads directly against it. The scenario
// overrides any Profile.Scenario for these runs.
func Robustness(p Profile, workers int, seed uint64, scns []scenario.Scenario) []RobustnessRow {
	var rows []RobustnessRow
	for i := range scns {
		scn := &scns[i]
		for _, algo := range RobustnessAlgos {
			res := RunCellCfg(p, algo, workers, core.BNAsync, seed, func(c *ps.Config) {
				c.Scenario = scn
			})
			rows = append(rows, RobustnessRow{
				Scenario:      scn.Name,
				Algo:          algo,
				FinalTestErr:  res.FinalTestErr,
				MeanStaleness: res.MeanStaleness,
				MaxStaleness:  res.MaxStaleness,
				Updates:       res.Updates,
				VirtualMs:     res.VirtualMs,
				Events:        res.ScenarioEvents,
			})
		}
	}
	return rows
}

// RenderRobustness formats the robustness grid: final error plus the
// staleness the scenario induced, per algorithm × scenario.
func RenderRobustness(p Profile, workers int, rows []RobustnessRow) *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Robustness (%s, M=%d): final test error and staleness per scenario", p.Name, workers),
		"scenario", "algorithm", "test err%", "mean stale", "max stale", "updates", "vsec", "events")
	for _, r := range rows {
		tb.AddRow(r.Scenario, string(r.Algo),
			report.Pct(r.FinalTestErr),
			fmt.Sprintf("%.2f", r.MeanStaleness),
			fmt.Sprintf("%d", r.MaxStaleness),
			fmt.Sprintf("%d", r.Updates),
			fmt.Sprintf("%.1f", r.VirtualMs/1000),
			fmt.Sprintf("%d", r.Events))
	}
	return tb
}
