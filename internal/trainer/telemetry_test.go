package trainer

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lcasgd/internal/core"
	"lcasgd/internal/ps"
)

// telemetrySweep runs the two Fig3 panels that share the SGD baseline under
// one collector — the cross-sweep dedupe shape — and returns the collector's
// deterministic projections.
func telemetrySweep(t *testing.T, jobs int) (trace, metrics []byte, tel *Telemetry) {
	t.Helper()
	p := schedProfile(jobs)
	tel = NewTelemetry()
	p.Telemetry = tel
	Fig3Panel(p, 4, 1)
	Fig3Panel(p, 8, 1)
	trace, err := tel.TraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	metrics, err = tel.MetricsJSON(false)
	if err != nil {
		t.Fatal(err)
	}
	return trace, metrics, tel
}

// TestTelemetryJobsByteIdentity: the collected trace and deterministic
// metrics dumps are byte-identical whether the sweep ran sequentially or on
// a 3-job pool, and the SGD baseline shared by both panels records exactly
// once.
func TestTelemetryJobsByteIdentity(t *testing.T) {
	seqTrace, seqMetrics, seqTel := telemetrySweep(t, 1)
	parTrace, parMetrics, parTel := telemetrySweep(t, 3)
	// 2 panels × (SGD + 4 distributed algos), minus the shared SGD cell.
	if n := seqTel.Cells(); n != 9 || parTel.Cells() != 9 {
		t.Fatalf("cells recorded: seq %d, par %d, want 9", n, parTel.Cells())
	}
	if !bytes.Equal(seqTrace, parTrace) {
		t.Fatalf("trace bytes differ across Jobs (%d vs %d bytes)", len(seqTrace), len(parTrace))
	}
	if !bytes.Equal(seqMetrics, parMetrics) {
		t.Fatal("deterministic metrics bytes differ across Jobs")
	}
	if !strings.Contains(string(seqMetrics), "staleness") {
		t.Fatal("metrics dump missing instruments")
	}
}

// TestProgressReportsCellKeys: every progress report carries the completed
// cell's full config key, and the final report's done equals the total.
func TestProgressReportsCellKeys(t *testing.T) {
	p := schedProfile(1)
	var keys []string
	var lastDone, lastTotal int
	p.Progress = func(done, total int, elapsed time.Duration, key string) {
		keys = append(keys, key)
		lastDone, lastTotal = done, total
	}
	Fig3Panel(p, 4, 1)
	if len(keys) != 5 || lastDone != 5 || lastTotal != 5 {
		t.Fatalf("progress reported %d cells, last %d/%d, want 5, 5/5", len(keys), lastDone, lastTotal)
	}
	want := cellKey(p, ps.SGD, 1, core.BNAsync, 1, nil)
	if keys[0] != want {
		t.Fatalf("first progress key %q, want the SGD baseline's %q", keys[0], want)
	}
	for _, k := range keys {
		if len(k) != len(want) {
			t.Fatalf("short progress key %q", k)
		}
	}
}

// TestTelemetryWriteArtifacts: the trace and metrics writers land complete
// files (JSON and CSV shapes) that reflect the recorded cells.
func TestTelemetryWriteArtifacts(t *testing.T) {
	p := schedProfile(1)
	tel := NewTelemetry()
	p.Telemetry = tel
	Fig5Panel(p, 4, 1)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	jsonPath := filepath.Join(dir, "metrics.json")
	csvPath := filepath.Join(dir, "metrics.csv")
	if err := tel.WriteTrace(tracePath); err != nil {
		t.Fatal(err)
	}
	if err := tel.WriteMetrics(jsonPath); err != nil {
		t.Fatal(err)
	}
	if err := tel.WriteMetrics(csvPath); err != nil {
		t.Fatal(err)
	}
	trace, _ := os.ReadFile(tracePath)
	if !bytes.HasPrefix(trace, []byte("[")) || !strings.Contains(string(trace), `"commit"`) {
		t.Fatal("trace file is not a Chrome trace-event array with commit spans")
	}
	mj, _ := os.ReadFile(jsonPath)
	if !strings.Contains(string(mj), `"measured"`) {
		t.Fatal("metrics JSON artifact lacks the measured meter group")
	}
	mc, _ := os.ReadFile(csvPath)
	if !strings.HasPrefix(string(mc), "cell,section,name,key,value\n") {
		t.Fatal("metrics CSV artifact lacks the header row")
	}
}

// TestTelemetryResumeFallback: a persisted cell interrupted before its
// result — whose checkpoints were taken WITHOUT telemetry — re-run under
// -resume with telemetry attached cannot restore those checkpoints
// (presence mismatch), so it falls back to a full re-run: same result, and
// the recorder holds the complete run's telemetry, not a truncated suffix.
func TestTelemetryResumeFallback(t *testing.T) {
	dir := t.TempDir()
	p := persistProfile(t, dir, false)
	orig := RunCell(p, ps.ASGD, 4, core.BNAsync, 1)
	key := ps.ConfigKey(cellConfig(p, ps.ASGD, 4, core.BNAsync, 1))
	rd, err := p.Store.Run(key)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the interruption: checkpoints survive, the result does not.
	if err := os.Remove(filepath.Join(rd.Dir(), "result.json")); err != nil {
		t.Fatal(err)
	}

	pr := persistProfile(t, dir, true)
	tel := NewTelemetry()
	pr.Telemetry = tel
	res := RunCell(pr, ps.ASGD, 4, core.BNAsync, 1)
	assertSameResult(t, "resume-fallback", orig, res)
	if tel.Cells() != 1 {
		t.Fatalf("recorded %d cells, want 1", tel.Cells())
	}
	trace, err := tel.TraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	// A full-rerun trace starts at the beginning of the run: the epoch-0
	// launches are in it, which a restored suffix would lack.
	if !strings.Contains(string(trace), `"launch"`) || !strings.Contains(string(trace), `"barrier"`) {
		t.Fatal("fallback trace is missing launch/barrier events")
	}
}
