package trainer

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lcasgd/internal/core"
	"lcasgd/internal/ps"
	"lcasgd/internal/scenario"
	"lcasgd/internal/snapshot"
)

// persistProfile is tinyProfile wired to a store with every-epoch barriers.
func persistProfile(t *testing.T, dir string, resume bool) Profile {
	t.Helper()
	st, err := snapshot.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := tinyProfile()
	p.Store = st
	p.CkptEvery = 1
	p.Resume = resume
	return p
}

func assertSameResult(t *testing.T, label string, a, b ps.Result) {
	t.Helper()
	if len(a.Points) != len(b.Points) {
		t.Fatalf("%s: point counts %d vs %d", label, len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("%s: point %d differs: %+v vs %+v", label, i, a.Points[i], b.Points[i])
		}
	}
	if a.FinalTestErr != b.FinalTestErr || a.Updates != b.Updates || a.VirtualMs != b.VirtualMs {
		t.Fatalf("%s: summaries differ: (%v,%d,%v) vs (%v,%d,%v)", label,
			a.FinalTestErr, a.Updates, a.VirtualMs, b.FinalTestErr, b.Updates, b.VirtualMs)
	}
}

// TestPersistedCellLifecycle drives one cell through the store's three
// lifecycle cases: fresh run (artifacts written), completed run under
// -resume (stored result returned without recompute), and interrupted run
// under -resume (checkpoint-resumed, bit-identical to the uninterrupted
// answer — including after a corrupted checkpoint forces the full-re-run
// fallback).
func TestPersistedCellLifecycle(t *testing.T) {
	dir := t.TempDir()
	p := persistProfile(t, dir, false)

	// Fresh run: every artifact lands in the content-addressed run dir.
	orig := RunCell(p, ps.ASGD, 4, core.BNAsync, 1)
	key := ps.ConfigKey(cellConfig(p, ps.ASGD, 4, core.BNAsync, 1))
	rd, err := p.Store.Run(key)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.HasResult() {
		t.Fatal("completed run left no result.json")
	}
	for _, name := range []string{"config.json", "curve.json"} {
		if _, err := os.Stat(filepath.Join(rd.Dir(), name)); err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
	}
	metas, err := rd.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 1 { // default retention keeps only the newest barrier
		t.Fatalf("run dir retains %d checkpoints, want 1: %+v", len(metas), metas)
	}

	// Completed + resume: the stored result is returned as-is. Proven by
	// planting a sentinel in result.json — a recompute could never produce
	// it.
	var doc ps.Result
	if err := rd.LoadResult(&doc); err != nil {
		t.Fatal(err)
	}
	doc.FinalTestErr = 0.123456789
	if err := rd.SaveResult(doc); err != nil {
		t.Fatal(err)
	}
	pr := persistProfile(t, dir, true)
	cached := RunCell(pr, ps.ASGD, 4, core.BNAsync, 1)
	if cached.FinalTestErr != 0.123456789 {
		t.Fatalf("resume re-ran a completed cell (got %v, want sentinel)", cached.FinalTestErr)
	}

	// Interrupted + resume: deleting result.json simulates a kill after the
	// last barrier; the resumed run must reproduce the uninterrupted result
	// bit for bit.
	if err := os.Remove(filepath.Join(rd.Dir(), "result.json")); err != nil {
		t.Fatal(err)
	}
	resumed := RunCell(pr, ps.ASGD, 4, core.BNAsync, 1)
	assertSameResult(t, "interrupted", orig, resumed)
	if !rd.HasResult() {
		t.Fatal("resumed run did not re-persist its result")
	}

	// Corrupted checkpoint: resume falls back to a full re-run, same answer.
	if err := os.Remove(filepath.Join(rd.Dir(), "result.json")); err != nil {
		t.Fatal(err)
	}
	metas, err = rd.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	for _, meta := range metas {
		name := fmt.Sprintf("ckpt-%08d.bin", meta.Epoch)
		if err := os.WriteFile(filepath.Join(rd.Dir(), name), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	recovered := RunCell(pr, ps.ASGD, 4, core.BNAsync, 1)
	assertSameResult(t, "corrupt-fallback", orig, recovered)
}

// TestResumeFallsBackPastCorruptNewestCheckpoint: with CkptKeep > 1, a
// newest checkpoint whose payload fails to decode does not force a full
// re-run — the resume loop walks back to the next-older stored barrier and
// still reproduces the uninterrupted answer bit for bit.
func TestResumeFallsBackPastCorruptNewestCheckpoint(t *testing.T) {
	dir := t.TempDir()
	p := persistProfile(t, dir, false)
	p.CkptKeep = 2

	orig := RunCell(p, ps.ASGD, 4, core.BNAsync, 1)
	key := ps.ConfigKey(cellConfig(p, ps.ASGD, 4, core.BNAsync, 1))
	rd, err := p.Store.Run(key)
	if err != nil {
		t.Fatal(err)
	}
	metas, err := rd.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) < 2 {
		t.Fatalf("retention kept %d checkpoints, need at least 2 to test fallback", len(metas))
	}

	// Simulate a kill plus a mangled latest checkpoint.
	if err := os.Remove(filepath.Join(rd.Dir(), "result.json")); err != nil {
		t.Fatal(err)
	}
	newest := fmt.Sprintf("ckpt-%08d.bin", metas[0].Epoch)
	if err := os.WriteFile(filepath.Join(rd.Dir(), newest), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	pr := persistProfile(t, dir, true)
	pr.CkptKeep = 2
	resumed := RunCell(pr, ps.ASGD, 4, core.BNAsync, 1)
	assertSameResult(t, "fallback-resume", orig, resumed)
}

// TestRenderMode: render-mode cells return the persisted result without
// recomputing (proven by a sentinel no run could produce), and a cell whose
// result was never persisted panics with *RenderMissingError naming it.
func TestRenderMode(t *testing.T) {
	dir := t.TempDir()
	p := persistProfile(t, dir, false)
	RunCell(p, ps.ASGD, 4, core.BNAsync, 1)

	key := ps.ConfigKey(cellConfig(p, ps.ASGD, 4, core.BNAsync, 1))
	rd, err := p.Store.Run(key)
	if err != nil {
		t.Fatal(err)
	}
	var doc ps.Result
	if err := rd.LoadResult(&doc); err != nil {
		t.Fatal(err)
	}
	doc.FinalTestErr = 0.987654321
	if err := rd.SaveResult(doc); err != nil {
		t.Fatal(err)
	}

	render := persistProfile(t, dir, false)
	render.Render = true
	got := RunCell(render, ps.ASGD, 4, core.BNAsync, 1)
	if got.FinalTestErr != 0.987654321 {
		t.Fatalf("render recomputed the cell (got %v, want sentinel)", got.FinalTestErr)
	}

	// A missing cell must not silently recompute.
	func() {
		defer func() {
			rec := recover()
			miss, ok := rec.(*RenderMissingError)
			if !ok {
				t.Fatalf("recovered %v (%T), want *RenderMissingError", rec, rec)
			}
			if miss.Cfg.Seed != 77 || !strings.Contains(miss.Error(), "-ckpt-dir") {
				t.Fatalf("unhelpful render error: %v", miss)
			}
		}()
		RunCell(render, ps.ASGD, 4, core.BNAsync, 77)
		t.Fatal("render of a never-run cell returned instead of panicking")
	}()
}

// TestPersistedCellsAreContentAddressed: different configurations land in
// different run directories, identical ones share.
func TestPersistedCellsAreContentAddressed(t *testing.T) {
	dir := t.TempDir()
	p := persistProfile(t, dir, false)
	RunCell(p, ps.ASGD, 4, core.BNAsync, 1)
	RunCell(p, ps.ASGD, 4, core.BNAsync, 2) // different seed
	RunCell(p, ps.ASGD, 4, core.BNAsync, 1) // repeat: same dir
	runs, err := p.Store.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("store holds %d run dirs, want 2", len(runs))
	}
}

// TestRobustnessSeedAveraging pins the -seeds semantics: multi-seed rows
// report the mean with a non-negative spread, single-seed rows a zero one,
// and the recover-opt option doubles the rows with the variant marked.
func TestRobustnessSeedAveraging(t *testing.T) {
	p := tinyProfile()
	p.Epochs = 2
	scns := []scenario.Scenario{
		{Name: "blip", Events: []scenario.Event{
			{At: 100, Kind: scenario.Crash, Worker: 1},
			{At: 170, Kind: scenario.Recover, Worker: 1},
		}},
	}
	rows := Robustness(p, 4, 1, scns, RobustnessOpts{Seeds: 2, RecoverOpt: true})
	if len(rows) != 2*len(RobustnessEntries) {
		t.Fatalf("rows %d, want %d (base + recover-opt per entry)", len(rows), 2*len(RobustnessEntries))
	}
	variants := map[string]int{}
	for _, r := range rows {
		variants[r.Variant]++
		if r.Seeds != 2 {
			t.Fatalf("row %+v reports %d seeds", r, r.Seeds)
		}
		if r.ErrSpread < 0 {
			t.Fatalf("negative spread in %+v", r)
		}
		if r.FinalTestErr < 0 || r.FinalTestErr > 1 {
			t.Fatalf("row %+v has invalid mean error", r)
		}
	}
	if variants[""] != len(RobustnessEntries) || variants["recover-opt"] != len(RobustnessEntries) {
		t.Fatalf("variant counts %v", variants)
	}
	out := RenderRobustness(p, 4, rows).String()
	for _, want := range []string{"recover-opt", "±spread", "seeds=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// TestRobustnessTablePersists: the sweep's table artifacts land in the
// store's tables/ area and decode back.
func TestRobustnessTablePersists(t *testing.T) {
	dir := t.TempDir()
	p := persistProfile(t, dir, false)
	p.Epochs = 2
	scns := []scenario.Scenario{scenario.None()}
	rows := Robustness(p, 2, 1, scns, RobustnessOpts{})
	tb := RenderRobustness(p, 2, rows)
	if err := p.Store.SaveTable("robustness", rows, tb.String()); err != nil {
		t.Fatal(err)
	}
	var back []RobustnessRow
	b, err := os.ReadFile(filepath.Join(dir, "tables", "robustness.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rows) || back[0].Algo != rows[0].Algo {
		t.Fatalf("table round-trip: %d rows", len(back))
	}
}
