package trainer

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lcasgd/internal/core"
	"lcasgd/internal/data"
	"lcasgd/internal/ps"
	"lcasgd/internal/scenario"
	"lcasgd/internal/snapshot"
)

// persistProfile is tinyProfile wired to a store with every-epoch barriers.
func persistProfile(t *testing.T, dir string, resume bool) Profile {
	t.Helper()
	st, err := snapshot.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := tinyProfile()
	p.Store = st
	p.CkptEvery = 1
	p.Resume = resume
	return p
}

func assertSameResult(t *testing.T, label string, a, b ps.Result) {
	t.Helper()
	if len(a.Points) != len(b.Points) {
		t.Fatalf("%s: point counts %d vs %d", label, len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("%s: point %d differs: %+v vs %+v", label, i, a.Points[i], b.Points[i])
		}
	}
	if a.FinalTestErr != b.FinalTestErr || a.Updates != b.Updates || a.VirtualMs != b.VirtualMs {
		t.Fatalf("%s: summaries differ: (%v,%d,%v) vs (%v,%d,%v)", label,
			a.FinalTestErr, a.Updates, a.VirtualMs, b.FinalTestErr, b.Updates, b.VirtualMs)
	}
}

// TestPersistedCellLifecycle drives one cell through the store's three
// lifecycle cases: fresh run (artifacts written), completed run under
// -resume (stored result returned without recompute), and interrupted run
// under -resume (checkpoint-resumed, bit-identical to the uninterrupted
// answer — including after a corrupted checkpoint forces the full-re-run
// fallback).
func TestPersistedCellLifecycle(t *testing.T) {
	dir := t.TempDir()
	p := persistProfile(t, dir, false)

	// Fresh run: every artifact lands in the content-addressed run dir.
	orig := RunCell(p, ps.ASGD, 4, core.BNAsync, 1)
	key := ps.ConfigKey(cellConfig(p, ps.ASGD, 4, core.BNAsync, 1))
	rd, err := p.Store.Run(key)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.HasResult() {
		t.Fatal("completed run left no result.json")
	}
	for _, name := range []string{"config.json", "curve.json"} {
		if _, err := os.Stat(filepath.Join(rd.Dir(), name)); err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
	}
	metas, err := rd.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	// Default retention keeps the newest barrier plus — now that checkpoints
	// are delta chains — the links that barrier is based on, and nothing
	// beyond them.
	if len(metas) == 0 {
		t.Fatal("run dir retains no checkpoints")
	}
	need := map[int]bool{metas[0].Epoch: true}
	for at := metas[0]; !at.Full; {
		need[at.BaseEpoch] = true
		found := false
		for _, m := range metas {
			if m.Epoch == at.BaseEpoch {
				at, found = m, true
				break
			}
		}
		if !found {
			t.Fatalf("newest checkpoint's chain needs epoch %d, which retention dropped: %+v", at.BaseEpoch, metas)
		}
	}
	for _, m := range metas {
		if !need[m.Epoch] {
			t.Fatalf("retention kept epoch %d beyond the newest chain: %+v", m.Epoch, metas)
		}
	}
	if _, _, err := rd.LoadChain(metas[0].Epoch); err != nil {
		t.Fatalf("newest retained chain does not load: %v", err)
	}

	// Completed + resume: the stored result is returned as-is. Proven by
	// planting a sentinel in result.json — a recompute could never produce
	// it.
	var doc ps.Result
	if err := rd.LoadResult(&doc); err != nil {
		t.Fatal(err)
	}
	doc.FinalTestErr = 0.123456789
	if err := rd.SaveResult(doc); err != nil {
		t.Fatal(err)
	}
	pr := persistProfile(t, dir, true)
	cached := RunCell(pr, ps.ASGD, 4, core.BNAsync, 1)
	if cached.FinalTestErr != 0.123456789 {
		t.Fatalf("resume re-ran a completed cell (got %v, want sentinel)", cached.FinalTestErr)
	}

	// Interrupted + resume: deleting result.json simulates a kill after the
	// last barrier; the resumed run must reproduce the uninterrupted result
	// bit for bit.
	if err := os.Remove(filepath.Join(rd.Dir(), "result.json")); err != nil {
		t.Fatal(err)
	}
	resumed := RunCell(pr, ps.ASGD, 4, core.BNAsync, 1)
	assertSameResult(t, "interrupted", orig, resumed)
	if !rd.HasResult() {
		t.Fatal("resumed run did not re-persist its result")
	}

	// Corrupted checkpoint: resume falls back to a full re-run, same answer.
	if err := os.Remove(filepath.Join(rd.Dir(), "result.json")); err != nil {
		t.Fatal(err)
	}
	metas, err = rd.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	for _, meta := range metas {
		name := fmt.Sprintf("ckpt-%08d.bin", meta.Epoch)
		if err := os.WriteFile(filepath.Join(rd.Dir(), name), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	recovered := RunCell(pr, ps.ASGD, 4, core.BNAsync, 1)
	assertSameResult(t, "corrupt-fallback", orig, recovered)
}

// TestResumeFallsBackPastCorruptNewestCheckpoint: with CkptKeep > 1, a
// newest checkpoint whose payload fails to decode does not force a full
// re-run — the resume loop walks back to the next-older stored barrier and
// still reproduces the uninterrupted answer bit for bit.
func TestResumeFallsBackPastCorruptNewestCheckpoint(t *testing.T) {
	dir := t.TempDir()
	p := persistProfile(t, dir, false)
	p.CkptKeep = 2

	orig := RunCell(p, ps.ASGD, 4, core.BNAsync, 1)
	key := ps.ConfigKey(cellConfig(p, ps.ASGD, 4, core.BNAsync, 1))
	rd, err := p.Store.Run(key)
	if err != nil {
		t.Fatal(err)
	}
	metas, err := rd.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) < 2 {
		t.Fatalf("retention kept %d checkpoints, need at least 2 to test fallback", len(metas))
	}

	// Simulate a kill plus a mangled latest checkpoint.
	if err := os.Remove(filepath.Join(rd.Dir(), "result.json")); err != nil {
		t.Fatal(err)
	}
	newest := fmt.Sprintf("ckpt-%08d.bin", metas[0].Epoch)
	if err := os.WriteFile(filepath.Join(rd.Dir(), newest), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	pr := persistProfile(t, dir, true)
	pr.CkptKeep = 2
	resumed := RunCell(pr, ps.ASGD, 4, core.BNAsync, 1)
	assertSameResult(t, "fallback-resume", orig, resumed)
}

// TestResumeSurvivesMidChainCorruption: with delta checkpoints, a truncated
// chain head AND a bit-flipped base full must both be detected and skipped;
// resume then walks back (-ckpt-keep retains the history) to the newest
// checkpoint whose whole chain is intact and still reproduces the
// uninterrupted answer bit for bit — via a checkpoint, not a full re-run.
func TestResumeSurvivesMidChainCorruption(t *testing.T) {
	dir := t.TempDir()
	p := persistProfile(t, dir, false)
	p.Epochs = 6
	p.CkptKeep = 8
	p.CkptFullEvery = 3 // barriers 1..5 → full, delta, delta, full, delta

	orig := RunCell(p, ps.ASGD, 4, core.BNAsync, 1)
	key := ps.ConfigKey(cellConfig(p, ps.ASGD, 4, core.BNAsync, 1))
	rd, err := p.Store.Run(key)
	if err != nil {
		t.Fatal(err)
	}
	metas, err := rd.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) < 3 || metas[0].Full {
		t.Fatalf("scenario needs a delta head with history behind it, got %+v", metas)
	}
	head, base := metas[0].Epoch, metas[0].BaseEpoch

	corrupt := func(epoch int, mangle func([]byte) []byte) {
		name := filepath.Join(rd.Dir(), fmt.Sprintf("ckpt-%08d.bin", epoch))
		b, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(name, mangle(b), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	corrupt(head, func(b []byte) []byte { return b[:len(b)/2] }) // truncation
	corrupt(base, func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b })

	// Both poisoned chains must fail closed, not materialize garbage.
	if _, _, err := rd.LoadChain(head); err == nil {
		t.Fatal("truncated chain head still loads")
	}
	if _, _, err := rd.LoadChain(base); err == nil {
		t.Fatal("bit-flipped base full still loads")
	}

	if err := os.Remove(filepath.Join(rd.Dir(), "result.json")); err != nil {
		t.Fatal(err)
	}
	pr := persistProfile(t, dir, true)
	pr.Epochs = 6
	pr.CkptKeep = 8
	pr.CkptFullEvery = 3
	train, test := data.GenerateCached(pr.Data)
	env := ps.Env{Train: train, Test: test, Build: pr.Model.Build, Cfg: cellConfig(pr, ps.ASGD, 4, core.BNAsync, 1)}
	res, ran := resumeFromCheckpoint(pr, env, rd)
	if !ran {
		t.Fatal("resume fell back to a full re-run instead of the older intact chain")
	}
	assertSameResult(t, "mid-chain-corruption", orig, res)
}

// TestRenderMode: render-mode cells return the persisted result without
// recomputing (proven by a sentinel no run could produce), and a cell whose
// result was never persisted panics with *RenderMissingError naming it.
func TestRenderMode(t *testing.T) {
	dir := t.TempDir()
	p := persistProfile(t, dir, false)
	RunCell(p, ps.ASGD, 4, core.BNAsync, 1)

	key := ps.ConfigKey(cellConfig(p, ps.ASGD, 4, core.BNAsync, 1))
	rd, err := p.Store.Run(key)
	if err != nil {
		t.Fatal(err)
	}
	var doc ps.Result
	if err := rd.LoadResult(&doc); err != nil {
		t.Fatal(err)
	}
	doc.FinalTestErr = 0.987654321
	if err := rd.SaveResult(doc); err != nil {
		t.Fatal(err)
	}

	render := persistProfile(t, dir, false)
	render.Render = true
	got := RunCell(render, ps.ASGD, 4, core.BNAsync, 1)
	if got.FinalTestErr != 0.987654321 {
		t.Fatalf("render recomputed the cell (got %v, want sentinel)", got.FinalTestErr)
	}

	// A missing cell must not silently recompute.
	func() {
		defer func() {
			rec := recover()
			miss, ok := rec.(*RenderMissingError)
			if !ok {
				t.Fatalf("recovered %v (%T), want *RenderMissingError", rec, rec)
			}
			if miss.Cfg.Seed != 77 || !strings.Contains(miss.Error(), "-ckpt-dir") {
				t.Fatalf("unhelpful render error: %v", miss)
			}
		}()
		RunCell(render, ps.ASGD, 4, core.BNAsync, 77)
		t.Fatal("render of a never-run cell returned instead of panicking")
	}()
}

// TestPersistedCellsAreContentAddressed: different configurations land in
// different run directories, identical ones share.
func TestPersistedCellsAreContentAddressed(t *testing.T) {
	dir := t.TempDir()
	p := persistProfile(t, dir, false)
	RunCell(p, ps.ASGD, 4, core.BNAsync, 1)
	RunCell(p, ps.ASGD, 4, core.BNAsync, 2) // different seed
	RunCell(p, ps.ASGD, 4, core.BNAsync, 1) // repeat: same dir
	runs, err := p.Store.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("store holds %d run dirs, want 2", len(runs))
	}
}

// TestRobustnessSeedAveraging pins the -seeds semantics: multi-seed rows
// report the mean with a non-negative spread, single-seed rows a zero one,
// and the recover-opt option doubles the rows with the variant marked.
func TestRobustnessSeedAveraging(t *testing.T) {
	p := tinyProfile()
	p.Epochs = 2
	scns := []scenario.Scenario{
		{Name: "blip", Events: []scenario.Event{
			{At: 100, Kind: scenario.Crash, Worker: 1},
			{At: 170, Kind: scenario.Recover, Worker: 1},
		}},
	}
	rows := Robustness(p, 4, 1, scns, RobustnessOpts{Seeds: 2, RecoverOpt: true})
	if len(rows) != 2*len(RobustnessEntries) {
		t.Fatalf("rows %d, want %d (base + recover-opt per entry)", len(rows), 2*len(RobustnessEntries))
	}
	variants := map[string]int{}
	for _, r := range rows {
		variants[r.Variant]++
		if r.Seeds != 2 {
			t.Fatalf("row %+v reports %d seeds", r, r.Seeds)
		}
		if r.ErrSpread < 0 {
			t.Fatalf("negative spread in %+v", r)
		}
		if r.FinalTestErr < 0 || r.FinalTestErr > 1 {
			t.Fatalf("row %+v has invalid mean error", r)
		}
	}
	if variants[""] != len(RobustnessEntries) || variants["recover-opt"] != len(RobustnessEntries) {
		t.Fatalf("variant counts %v", variants)
	}
	out := RenderRobustness(p, 4, rows).String()
	for _, want := range []string{"recover-opt", "±spread", "seeds=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// TestRobustnessTablePersists: the sweep's table artifacts land in the
// store's tables/ area and decode back.
func TestRobustnessTablePersists(t *testing.T) {
	dir := t.TempDir()
	p := persistProfile(t, dir, false)
	p.Epochs = 2
	scns := []scenario.Scenario{scenario.None()}
	rows := Robustness(p, 2, 1, scns, RobustnessOpts{})
	tb := RenderRobustness(p, 2, rows)
	if err := p.Store.SaveTable("robustness", rows, tb.String()); err != nil {
		t.Fatal(err)
	}
	var back []RobustnessRow
	b, err := os.ReadFile(filepath.Join(dir, "tables", "robustness.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rows) || back[0].Algo != rows[0].Algo {
		t.Fatalf("table round-trip: %d rows", len(back))
	}
}
