package trainer

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"lcasgd/internal/ps"
	"lcasgd/internal/tensor"
)

// The sweep scheduler: experiment sweeps (Fig2/Fig3Panel/Fig5Panel/Table1
// and the robustness grid) are dozens to hundreds of independent cells, and
// with Profile.Jobs > 1 they run on a bounded worker pool instead of
// strictly in sequence. Determinism is preserved by construction:
//
//   - Each cell is already a pure function of its ps.Config (the simulator
//     is deterministic and datasets are generated from the config), so
//     running cells concurrently cannot change any cell's result — only
//     the order results become available.
//   - Sweeps submit cells in exactly the order the old sequential loops ran
//     them and assemble results in submission order, so tables, curves and
//     persisted store artifacts are byte-identical to a -jobs 1 run.
//   - With Jobs <= 1 submit() runs the cell inline at submission time — the
//     scheduler degenerates to the old sequential loops, not to a
//     one-worker pool, so a sequential sweep has no goroutine in the loop.
//
// The core budget is split with the matmul layer: cells * matmul goroutines
// must not oversubscribe the machine, so the pool retunes
// tensor.SetMatmulParallelism to GOMAXPROCS/jobs for its lifetime (the
// "jobs × matmul-parallelism" rule in DESIGN.md). That cap is process-wide
// state, which is why pools are serialized on sweepMu and why the
// concurrent ps backend — which needs the cap for itself and serializes
// runs on its own global lock — cannot be combined with Jobs > 1.

// sweepMu serializes multi-job sweeps; the holder owns the process-wide
// matmul parallelism cap.
var sweepMu sync.Mutex

// cellPool runs sweep cells on at most jobs goroutines.
type cellPool struct {
	jobs   int
	sem    chan struct{}
	prevMM int

	// Progress accounting (Profile.Progress): completions are counted under
	// progMu because pooled cells finish on worker goroutines; the callback
	// runs under the same lock, so sinks need no synchronization.
	progress  func(done, total int, elapsed time.Duration, key string)
	started   time.Time
	progMu    sync.Mutex
	submitted int
	completed int
}

// newPool sizes a pool from the profile. Jobs <= 1 yields the inline
// (sequential) pool; Jobs > 1 acquires the sweep lock and the matmul cap.
func newPool(p Profile) *cellPool {
	jobs := p.Jobs
	if jobs <= 1 {
		return &cellPool{jobs: 1, progress: p.Progress, started: time.Now()}
	}
	if p.Backend == ps.BackendConcurrent {
		panic("trainer: Jobs > 1 cannot be combined with the concurrent backend: " +
			"both own the process-wide matmul parallelism cap, and concurrent-backend " +
			"runs serialize on a global lock so pooled cells would not overlap anyway")
	}
	sweepMu.Lock()
	mm := runtime.GOMAXPROCS(0) / jobs
	if mm < 1 {
		mm = 1
	}
	return &cellPool{
		jobs:     jobs,
		sem:      make(chan struct{}, jobs),
		prevMM:   tensor.SetMatmulParallelism(mm),
		progress: p.Progress,
		started:  time.Now(),
	}
}

// cellDone counts a completed cell and emits a progress report naming it by
// config key. The total is the number of cells submitted so far: sweeps
// submit their whole grid before the first pooled cell can finish, so
// pooled reports show the true denominator, while inline (Jobs <= 1)
// reports grow it as the sweep walks its loops — either way the line says
// how far along the sweep is.
func (cp *cellPool) cellDone(key string) {
	if cp.progress == nil {
		return
	}
	cp.progMu.Lock()
	cp.completed++
	cp.progress(cp.completed, cp.submitted, time.Since(cp.started), key)
	cp.progMu.Unlock()
}

// close releases the matmul cap and the sweep lock. It must be called after
// every future has been waited on.
func (cp *cellPool) close() {
	if cp.jobs <= 1 {
		return
	}
	tensor.SetMatmulParallelism(cp.prevMM)
	sweepMu.Unlock()
}

// cellFuture is the handle for one submitted cell.
type cellFuture struct {
	done chan struct{}
	res  ps.Result
	pan  any
}

// submit schedules fn under the cell's config key (progress reporting names
// completed cells by it). Sequential pools run fn inline — submission order
// IS execution order, exactly the old loops. Pooled submission runs fn on a
// goroutine gated by the jobs semaphore; a panic inside fn (e.g. an
// experiment-store failure) is captured and re-raised from wait, so a
// failing cell still aborts the sweep like it did sequentially.
func (cp *cellPool) submit(key string, fn func() ps.Result) *cellFuture {
	f := &cellFuture{done: make(chan struct{})}
	cp.progMu.Lock()
	cp.submitted++
	cp.progMu.Unlock()
	if cp.jobs <= 1 {
		// No recover here: a sequential sweep propagates a cell panic from
		// the submission site immediately, exactly like the old loops.
		f.res = fn()
		close(f.done)
		cp.cellDone(key)
		return f
	}
	go func() {
		cp.sem <- struct{}{}
		defer func() {
			f.pan = recover()
			<-cp.sem
			close(f.done)
			cp.cellDone(key)
		}()
		f.res = fn()
	}()
	return f
}

// wait blocks for the cell and returns its result, re-raising any panic the
// cell died with.
func (f *cellFuture) wait() ps.Result {
	<-f.done
	if f.pan != nil {
		panic(fmt.Sprintf("trainer: sweep cell failed: %v", f.pan))
	}
	return f.res
}
