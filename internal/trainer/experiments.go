package trainer

import (
	"fmt"

	"lcasgd/internal/core"
	"lcasgd/internal/ps"
	"lcasgd/internal/report"
)

// WorkerCounts is the paper's grid of cluster sizes.
var WorkerCounts = []int{4, 8, 16}

// DistributedAlgos are the four distributed algorithms of Figures 3–6.
var DistributedAlgos = []ps.Algo{ps.SSGD, ps.ASGD, ps.DCASGD, ps.LCASGD}

// CurveSet is the output of one figure panel: per-algorithm learning curves
// for a fixed worker count.
type CurveSet struct {
	Profile string
	Workers int
	Results map[ps.Algo]ps.Result
	Order   []ps.Algo // rendering order
}

// curveCell pairs a rendering key with its scheduled cell.
type curveCell struct {
	key ps.Algo
	fut *cellFuture
}

// assemble waits for the cells in submission order and fills the curve set,
// so the result is identical at any Profile.Jobs.
func (cs *CurveSet) assemble(cells []curveCell) {
	for _, c := range cells {
		cs.Results[c.key] = c.fut.wait()
		cs.Order = append(cs.Order, c.key)
	}
}

// Fig2 reproduces Figure 2: DC-ASGD's test error across M ∈ {4,8,16} with
// sequential SGD as reference, showing the degradation that motivates
// LC-ASGD.
func Fig2(p Profile, seed uint64) CurveSet {
	pool := newPool(p)
	defer pool.close()
	cs := CurveSet{Profile: p.Name, Workers: 0, Results: map[ps.Algo]ps.Result{}}
	cells := []curveCell{{ps.SGD, pool.submit(cellKey(p, ps.SGD, 1, core.BNAsync, seed, nil), func() ps.Result {
		return RunCell(p, ps.SGD, 1, core.BNAsync, seed)
	})}}
	for _, m := range WorkerCounts {
		key := ps.Algo(fmt.Sprintf("DC-ASGD-%d", m))
		cells = append(cells, curveCell{key, pool.submit(cellKey(p, ps.DCASGD, m, core.BNAsync, seed, nil), func() ps.Result {
			return RunCell(p, ps.DCASGD, m, core.BNAsync, seed)
		})})
	}
	cs.assemble(cells)
	return cs
}

// Fig3Panel reproduces one panel of Figure 3 (and Figure 4, which is the
// same data plotted against virtual time): all five algorithms at the given
// worker count with Async-BN.
func Fig3Panel(p Profile, workers int, seed uint64) CurveSet {
	pool := newPool(p)
	defer pool.close()
	cs := CurveSet{Profile: p.Name, Workers: workers, Results: map[ps.Algo]ps.Result{}}
	cells := []curveCell{{ps.SGD, pool.submit(cellKey(p, ps.SGD, 1, core.BNAsync, seed, nil), func() ps.Result {
		return RunCell(p, ps.SGD, 1, core.BNAsync, seed)
	})}}
	for _, a := range DistributedAlgos {
		cells = append(cells, curveCell{a, pool.submit(cellKey(p, a, workers, core.BNAsync, seed, nil), func() ps.Result {
			return RunCell(p, a, workers, core.BNAsync, seed)
		})})
	}
	cs.assemble(cells)
	return cs
}

// Fig5Panel reproduces one panel of Figure 5 (and Figure 6): the four
// distributed algorithms on the ImageNet-scale profile (the paper omits
// sequential SGD there because single-machine training is impractical).
func Fig5Panel(p Profile, workers int, seed uint64) CurveSet {
	pool := newPool(p)
	defer pool.close()
	cs := CurveSet{Profile: p.Name, Workers: workers, Results: map[ps.Algo]ps.Result{}}
	var cells []curveCell
	for _, a := range DistributedAlgos {
		cells = append(cells, curveCell{a, pool.submit(cellKey(p, a, workers, core.BNAsync, seed, nil), func() ps.Result {
			return RunCell(p, a, workers, core.BNAsync, seed)
		})})
	}
	cs.assemble(cells)
	return cs
}

// ChartEpochs renders a curve set as error-vs-epoch ASCII charts (test
// error), the Figure 3/5 view.
func (cs CurveSet) ChartEpochs(width, height int) string {
	var series []report.Series
	for _, a := range cs.Order {
		r := cs.Results[a]
		s := report.Series{Name: string(a)}
		for _, pt := range r.Points {
			s.X = append(s.X, float64(pt.Epoch))
			s.Y = append(s.Y, pt.TestErr)
		}
		series = append(series, s)
	}
	title := fmt.Sprintf("%s: test error vs epoch (M=%d)", cs.Profile, cs.Workers)
	return report.Chart(title, "epoch", "test error", width, height, series...)
}

// ChartTime renders the error-vs-virtual-seconds view (Figures 4/6).
func (cs CurveSet) ChartTime(width, height int) string {
	var series []report.Series
	for _, a := range cs.Order {
		r := cs.Results[a]
		s := report.Series{Name: string(a)}
		for _, pt := range r.Points {
			s.X = append(s.X, pt.Time/1000) // virtual ms → s
			s.Y = append(s.Y, pt.TestErr)
		}
		series = append(series, s)
	}
	title := fmt.Sprintf("%s: test error vs virtual seconds (M=%d)", cs.Profile, cs.Workers)
	return report.Chart(title, "seconds", "test error", width, height, series...)
}

// SeriesTable dumps the curve points as a table (the exact rows behind the
// figure, for EXPERIMENTS.md).
func (cs CurveSet) SeriesTable() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("%s M=%d learning curves", cs.Profile, cs.Workers),
		"algo", "epoch", "vsec", "train_err%", "test_err%")
	for _, a := range cs.Order {
		for _, pt := range cs.Results[a].Points {
			tb.AddRow(string(a), fmt.Sprintf("%d", pt.Epoch),
				fmt.Sprintf("%.1f", pt.Time/1000),
				report.Pct(pt.TrainErr), report.Pct(pt.TestErr))
		}
	}
	return tb
}

// Table1Row is one line of Table 1.
type Table1Row struct {
	Workers  int
	Algo     ps.Algo
	BNErr    float64
	AsyncErr float64
}

// Table1 reproduces the paper's Table 1 for one dataset profile: final test
// error for every (M, algorithm) under regular BN and Async-BN, averaged
// over the given seeds. The returned baseline is the first row's error
// (sequential SGD when includeSGD, else SSGD at the smallest M, mirroring
// the paper's ImageNet baseline choice).
func Table1(p Profile, includeSGD bool, seeds []uint64) (rows []Table1Row, baselineBN, baselineAsync float64) {
	pool := newPool(p)
	defer pool.close()
	// Submit every (algo, workers, mode, seed) cell in the classic nested
	// order; the mean is folded in wait order = submission order.
	submitMean := func(algo ps.Algo, workers int, mode core.BNMode) []*cellFuture {
		futs := make([]*cellFuture, len(seeds))
		for i, s := range seeds {
			futs[i] = pool.submit(cellKey(p, algo, workers, mode, s, nil), func() ps.Result {
				return RunCell(p, algo, workers, mode, s)
			})
		}
		return futs
	}
	mean := func(futs []*cellFuture) float64 {
		sum := 0.0
		for _, f := range futs {
			sum += f.wait().FinalTestErr
		}
		return sum / float64(len(seeds))
	}
	var sgdFuts []*cellFuture
	if includeSGD {
		sgdFuts = submitMean(ps.SGD, 1, core.BNAsync)
	}
	type table1Cell struct {
		workers   int
		algo      ps.Algo
		bn, async []*cellFuture
	}
	var cells []table1Cell
	for _, m := range WorkerCounts {
		for _, a := range DistributedAlgos {
			cells = append(cells, table1Cell{
				workers: m, algo: a,
				bn:    submitMean(a, m, core.BNReplace),
				async: submitMean(a, m, core.BNAsync),
			})
		}
	}
	if includeSGD {
		sgdErr := mean(sgdFuts)
		rows = append(rows, Table1Row{Workers: 1, Algo: ps.SGD, BNErr: sgdErr, AsyncErr: sgdErr})
	}
	for _, c := range cells {
		rows = append(rows, Table1Row{
			Workers:  c.workers,
			Algo:     c.algo,
			BNErr:    mean(c.bn),
			AsyncErr: mean(c.async),
		})
	}
	baselineBN, baselineAsync = rows[0].BNErr, rows[0].AsyncErr
	return rows, baselineBN, baselineAsync
}

// RenderTable1 formats Table 1 rows in the paper's layout.
func RenderTable1(p Profile, rows []Table1Row, baseBN, baseAsync float64) *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Table 1 (%s): final test error, BN vs Async-BN", p.Name),
		"#workers", "algorithm", "BN err%", "BN deg%", "AsyncBN err%", "AsyncBN deg%")
	for i, r := range rows {
		bnDeg, asDeg := "baseline", "baseline"
		if i > 0 {
			bnDeg = report.Deg(r.BNErr, baseBN)
			asDeg = report.Deg(r.AsyncErr, baseAsync)
		}
		tb.AddRow(fmt.Sprintf("%d", r.Workers), string(r.Algo),
			report.Pct(r.BNErr), bnDeg, report.Pct(r.AsyncErr), asDeg)
	}
	return tb
}

// OverheadRow is one column of Tables 2–3.
type OverheadRow struct {
	Workers       int
	LossPredMs    float64 // real measured online-training+prediction time
	StepPredMs    float64
	TotalIterMs   float64 // mean virtual iteration duration
	OverheadPct   float64
	MeanStaleness float64
}

// OverheadTable reproduces Tables 2–3: per-iteration predictor cost for
// LC-ASGD across worker counts. Predictor times are real measured wall
// times of this implementation's LSTM predictors; the total iteration time
// is the virtual mean, so the overhead percentage composes a real numerator
// with the simulated denominator exactly as DESIGN.md documents. Because
// the numerator is a real wall-time measurement, this sweep ignores
// Profile.Jobs and always runs sequentially: concurrent cells contending
// for cores would inflate the measured predictor times.
func OverheadTable(p Profile, seed uint64) []OverheadRow {
	var rows []OverheadRow
	for _, m := range WorkerCounts {
		r := RunCell(p, ps.LCASGD, m, core.BNAsync, seed)
		row := OverheadRow{
			Workers:       m,
			LossPredMs:    r.AvgLossPredMs,
			StepPredMs:    r.AvgStepPredMs,
			TotalIterMs:   r.AvgIterVirtualMs * float64(m), // per-worker iteration duration
			MeanStaleness: r.MeanStaleness,
		}
		if row.TotalIterMs > 0 {
			row.OverheadPct = (row.LossPredMs + row.StepPredMs) / row.TotalIterMs * 100
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderOverhead formats Tables 2–3.
func RenderOverhead(p Profile, rows []OverheadRow) *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Predictor overhead per training iteration (%s)", p.Name),
		"#workers", "loss pred (ms)", "step pred (ms)", "total iter (ms)", "overhead (%)")
	for _, r := range rows {
		tb.AddRow(fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%.2f", r.LossPredMs),
			fmt.Sprintf("%.2f", r.StepPredMs),
			fmt.Sprintf("%.2f", r.TotalIterMs),
			fmt.Sprintf("%.2f", r.OverheadPct))
	}
	return tb
}

// PredictorTraces reproduces Figures 7–8: the loss-predictor and
// step-predictor traces from an LC-ASGD run at M=16.
func PredictorTraces(p Profile, seed uint64) (lossChart, stepChart string, res ps.Result) {
	res = RunCell(p, ps.LCASGD, 16, core.BNAsync, seed)
	window := 80 // the paper plots ~80 iterations
	lt := res.LossTrace
	if len(lt) > window {
		lt = lt[len(lt)-window:]
	}
	actual := report.Series{Name: "Loss"}
	pred := report.Series{Name: "Loss Predictor"}
	for i, tp := range lt {
		actual.X = append(actual.X, float64(i))
		actual.Y = append(actual.Y, tp.Actual)
		pred.X = append(pred.X, float64(i))
		pred.Y = append(pred.Y, tp.Predicted)
	}
	lossChart = report.Chart("Fig 7: loss predictor vs actual loss (M=16, tail window)",
		"iteration", "loss", 72, 14, actual, pred)

	st := res.StepTrace
	if len(st) > window {
		st = st[len(st)-window:]
	}
	sActual := report.Series{Name: "Finishing Order (staleness)"}
	sPred := report.Series{Name: "Step Predictor"}
	for i, tp := range st {
		sActual.X = append(sActual.X, float64(i))
		sActual.Y = append(sActual.Y, tp.Actual)
		sPred.X = append(sPred.X, float64(i))
		sPred.Y = append(sPred.Y, tp.Predicted)
	}
	stepChart = report.Chart("Fig 8: step predictor vs observed staleness (M=16, tail window)",
		"iteration", "steps", 72, 14, sActual, sPred)
	return lossChart, stepChart, res
}

// TraceMAE summarizes a predictor trace: mean absolute error over the tail
// half, used by tests asserting Figures 7–8 reproduce ("the curve of the
// prediction largely overlapped the curve of the actual loss values").
func TraceMAE(trace []core.TracePoint) float64 {
	if len(trace) == 0 {
		return 0
	}
	tail := trace[len(trace)/2:]
	sum := 0.0
	for _, tp := range tail {
		d := tp.Actual - tp.Predicted
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(tail))
}
