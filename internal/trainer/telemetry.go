package trainer

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"lcasgd/internal/ps"
	"lcasgd/internal/snapshot"
	"lcasgd/internal/telemetry"
)

// Telemetry collects per-cell recorders across a whole lcexp invocation —
// every experiment cell run under a Profile carrying it gets its own
// telemetry.Recorder (recorders are single-run), and the collector renders
// them into one Chrome trace file (one process lane-group per cell) and one
// metrics document.
//
// Determinism across schedulers: pooled sweeps (-jobs) complete cells in
// nondeterministic order, so the collector keys cells by ps.ConfigKey —
// duplicate submissions of the same cell (e.g. the shared SGD baseline of
// several figure panels) keep whichever attached first, which is safe
// because a cell's telemetry is a pure function of its config — and sorts
// cells by label at render time. Output bytes are therefore identical at
// any Profile.Jobs value.
//
// Cells whose recorder was never bound are skipped at render time: a
// -resume sweep loads completed cells from the store without running the
// engine, so they have no telemetry to show.
type Telemetry struct {
	mu    sync.Mutex
	cells []*telemetryCell
	seen  map[string]bool
}

type telemetryCell struct {
	label   string
	key     string
	workers int
	rec     *telemetry.Recorder
}

// NewTelemetry returns an empty collector, ready to hang on Profiles via
// Profile.Telemetry.
func NewTelemetry() *Telemetry {
	return &Telemetry{seen: map[string]bool{}}
}

// attach reserves a recorder for the cell about to run under cfg, or nil
// if an identical cell (same ConfigKey) already holds one.
func (t *Telemetry) attach(cfg ps.Config, key string) *telemetry.Recorder {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seen[key] {
		return nil
	}
	t.seen[key] = true
	cell := &telemetryCell{
		label: fmt.Sprintf("%s M=%d seed=%d %.12s",
			cfg.Algo, cfg.Workers, cfg.Seed, key),
		key:     key,
		workers: cfg.Workers,
		rec:     telemetry.NewRecorder(),
	}
	t.cells = append(t.cells, cell)
	return cell.rec
}

// rendered returns the bound cells in label order — the deterministic
// projection every output format shares.
func (t *Telemetry) rendered() []*telemetryCell {
	t.mu.Lock()
	defer t.mu.Unlock()
	var cells []*telemetryCell
	for _, c := range t.cells {
		if c.rec.Bound() {
			cells = append(cells, c)
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].label < cells[j].label })
	return cells
}

// Cells reports how many cells hold telemetry (ran through the engine).
func (t *Telemetry) Cells() int { return len(t.rendered()) }

// TraceJSON renders every recorded cell as one Chrome trace-event document:
// one pid (process group) per cell, one tid lane per worker plus the run
// lane — load it in Perfetto / chrome://tracing to see the timelines.
func (t *Telemetry) TraceJSON() ([]byte, error) {
	var runs []telemetry.TraceRun
	for _, c := range t.rendered() {
		runs = append(runs, telemetry.TraceRun{
			Name: c.label, Workers: c.workers, Events: c.rec.Events,
		})
	}
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, runs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteTrace writes the Chrome trace document atomically to path.
func (t *Telemetry) WriteTrace(path string) error {
	b, err := t.TraceJSON()
	if err != nil {
		return err
	}
	return snapshot.WriteFileAtomic(path, b)
}

// metricsCell is the per-cell entry of the metrics JSON document. Field
// order is the document's key order.
type metricsCell struct {
	Label    string                `json:"label"`
	Key      string                `json:"key"`
	Workers  int                   `json:"workers"`
	Metrics  any                   `json:"metrics"`
	Measured []telemetry.JSONMeter `json:"measured,omitempty"`
}

// MetricsJSON renders every recorded cell's metrics registry as one JSON
// document. includeMeasured selects whether the wall-clock meter group is
// attached; tests comparing runs byte-for-byte pass false, the -metrics-out
// artifact passes true.
func (t *Telemetry) MetricsJSON(includeMeasured bool) ([]byte, error) {
	doc := struct {
		Cells []metricsCell `json:"cells"`
	}{Cells: []metricsCell{}}
	for _, c := range t.rendered() {
		mc := metricsCell{
			Label: c.label, Key: c.key, Workers: c.workers,
			Metrics: c.rec.Metrics.MarshalJSONDoc(),
		}
		if includeMeasured {
			mc.Measured = telemetry.MetersJSON(c.rec.Meters())
		}
		doc.Cells = append(doc.Cells, mc)
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// metricsCSV renders the flat cell,section,name,key,value rows of every
// recorded cell, measured meters included.
func (t *Telemetry) metricsCSV() []byte {
	var sb strings.Builder
	sb.WriteString("cell,section,name,key,value\n")
	for _, c := range t.rendered() {
		c.rec.Metrics.AppendCSV(&sb, c.label)
		telemetry.AppendMetersCSV(&sb, c.label, c.rec.Meters())
	}
	return []byte(sb.String())
}

// WriteMetrics writes the metrics dump atomically to path: CSV when the
// path ends in .csv, the JSON document otherwise. Both include the measured
// (wall-clock) group — the artifact is for humans; byte-identity tests use
// MetricsJSON(false).
func (t *Telemetry) WriteMetrics(path string) error {
	if strings.HasSuffix(path, ".csv") {
		return snapshot.WriteFileAtomic(path, t.metricsCSV())
	}
	b, err := t.MetricsJSON(true)
	if err != nil {
		return err
	}
	return snapshot.WriteFileAtomic(path, b)
}
