package trainer

import (
	"fmt"

	"lcasgd/internal/ps"
	"lcasgd/internal/snapshot"
)

// This file wires the experiment store into the cell runner: every run
// under a Profile with a Store becomes durable. The lifecycle per cell,
// keyed by ps.ConfigKey (so the same cell in a re-invoked sweep lands in
// the same run directory):
//
//  1. Resume mode + result.json present  →  load the stored result, run
//     nothing. This is what makes `lcexp -resume` skip completed runs.
//  2. Resume mode + checkpoint present   →  ps.Resume from the latest
//     barrier; only the remaining epochs are computed, and the result is
//     bit-identical to an uninterrupted run (ps's resume-equivalence
//     contract).
//  3. Otherwise                          →  full run, with every barrier's
//     checkpoint persisted so a kill at any point loses at most
//     CkptEvery epochs of work.
//
// Store failures panic: the whole point of a persisted sweep is that its
// artifacts survive, so silently continuing without them would be worse
// than stopping.

// storedConfig is the human-readable config.json document of a run
// directory.
type storedConfig struct {
	Profile string    `json:"profile"`
	Key     string    `json:"key"`
	Config  ps.Config `json:"config"`
}

// RenderMissingError is the panic value of a render-mode cell whose
// persisted result is absent: the sweep being re-rendered never completed
// this cell. cmd/lcexp catches it to print a clear message instead of a
// stack trace.
type RenderMissingError struct {
	Profile string
	Key     string
	Cfg     ps.Config
}

func (e *RenderMissingError) Error() string {
	return fmt.Sprintf("render: no persisted result for cell %s algo=%s M=%d seed=%d (run %.16s…) — run the experiment with -ckpt-dir first",
		e.Profile, e.Cfg.Algo, e.Cfg.Workers, e.Cfg.Seed, e.Key)
}

// runCellPersisted executes env through the profile's experiment store.
func runCellPersisted(p Profile, env ps.Env) ps.Result {
	cfg := env.Cfg
	key := ps.ConfigKey(cfg)
	rd, err := p.Store.Run(key)
	if err != nil {
		panic(fmt.Sprintf("trainer: experiment store: %v", err))
	}
	rd.SetKeep(p.CkptKeep)

	if p.Render {
		// Render mode computes nothing and writes nothing: either the cell's
		// persisted result exists, or the error names exactly which cell is
		// missing.
		var res ps.Result
		if rd.HasResult() {
			if err := rd.LoadResult(&res); err == nil {
				return res
			}
		}
		panic(&RenderMissingError{Profile: p.Name, Key: key, Cfg: cfg})
	}

	if p.Resume && rd.HasResult() {
		var res ps.Result
		if err := rd.LoadResult(&res); err == nil {
			return res
		}
		// A corrupt result document falls through to recomputation.
	}

	if err := rd.WriteConfig(storedConfig{Profile: p.Name, Key: key, Config: cfg}); err != nil {
		panic(fmt.Sprintf("trainer: experiment store: %v", err))
	}
	env.CheckpointSink = func(ck ps.Checkpoint) error {
		return rd.SaveCheckpoint(ck.Data, snapshot.CkptMeta{
			Epoch: ck.Epoch, Batches: ck.Batches, Updates: ck.Updates, VirtualMs: ck.VirtualMs,
			Full: ck.Full, BaseEpoch: ck.BaseEpoch,
		})
	}

	res, ran := resumeFromCheckpoint(p, env, rd)
	if !ran {
		res = ps.Run(env)
	}

	if err := rd.SaveResult(res); err != nil {
		panic(fmt.Sprintf("trainer: experiment store: %v", err))
	}
	if err := rd.SaveCurve(res.Points); err != nil {
		panic(fmt.Sprintf("trainer: experiment store: %v", err))
	}
	return res
}

// resumeFromCheckpoint attempts case 2 of the lifecycle, trying stored
// checkpoints newest-first: a checkpoint whose delta chain reads or decodes
// badly (corrupted link, missing base, changed binary semantics) falls back
// to the next-older one (Profile.CkptKeep retains more than the latest),
// and only when every stored checkpoint fails does the cell fall back to a
// full re-run rather than aborting the sweep. A delta whose base is broken
// and the base itself both fail here, so the fallback lands on the newest
// intact full checkpoint.
func resumeFromCheckpoint(p Profile, env ps.Env, rd *snapshot.RunDir) (ps.Result, bool) {
	if !p.Resume || env.Cfg.CheckpointEvery <= 0 {
		return ps.Result{}, false
	}
	metas, err := rd.Checkpoints()
	if err != nil {
		panic(fmt.Sprintf("trainer: experiment store: %v", err))
	}
	for _, meta := range metas {
		data, _, err := rd.LoadChain(meta.Epoch)
		if err != nil {
			// Any chain failure — a missing or truncated link, a checksum
			// mismatch, a base that predates retention — just disqualifies
			// this checkpoint; an older one may still be whole.
			continue
		}
		res, err := ps.Resume(env, data)
		if err != nil {
			continue
		}
		return res, true
	}
	return ps.Result{}, false
}
