package trainer

import (
	"errors"
	"fmt"

	"lcasgd/internal/ps"
	"lcasgd/internal/snapshot"
)

// This file wires the experiment store into the cell runner: every run
// under a Profile with a Store becomes durable. The lifecycle per cell,
// keyed by ps.ConfigKey (so the same cell in a re-invoked sweep lands in
// the same run directory):
//
//  1. Resume mode + result.json present  →  load the stored result, run
//     nothing. This is what makes `lcexp -resume` skip completed runs.
//  2. Resume mode + checkpoint present   →  ps.Resume from the latest
//     barrier; only the remaining epochs are computed, and the result is
//     bit-identical to an uninterrupted run (ps's resume-equivalence
//     contract).
//  3. Otherwise                          →  full run, with every barrier's
//     checkpoint persisted so a kill at any point loses at most
//     CkptEvery epochs of work.
//
// Store failures panic: the whole point of a persisted sweep is that its
// artifacts survive, so silently continuing without them would be worse
// than stopping.

// storedConfig is the human-readable config.json document of a run
// directory.
type storedConfig struct {
	Profile string    `json:"profile"`
	Key     string    `json:"key"`
	Config  ps.Config `json:"config"`
}

// runCellPersisted executes env through the profile's experiment store.
func runCellPersisted(p Profile, env ps.Env) ps.Result {
	cfg := env.Cfg
	key := ps.ConfigKey(cfg)
	rd, err := p.Store.Run(key)
	if err != nil {
		panic(fmt.Sprintf("trainer: experiment store: %v", err))
	}

	if p.Resume && rd.HasResult() {
		var res ps.Result
		if err := rd.LoadResult(&res); err == nil {
			return res
		}
		// A corrupt result document falls through to recomputation.
	}

	if err := rd.WriteConfig(storedConfig{Profile: p.Name, Key: key, Config: cfg}); err != nil {
		panic(fmt.Sprintf("trainer: experiment store: %v", err))
	}
	env.CheckpointSink = func(ck ps.Checkpoint) error {
		return rd.SaveCheckpoint(ck.Data, snapshot.CkptMeta{
			Epoch: ck.Epoch, Batches: ck.Batches, Updates: ck.Updates, VirtualMs: ck.VirtualMs,
		})
	}

	res, ran := resumeFromCheckpoint(p, env, rd)
	if !ran {
		res = ps.Run(env)
	}

	if err := rd.SaveResult(res); err != nil {
		panic(fmt.Sprintf("trainer: experiment store: %v", err))
	}
	if err := rd.SaveCurve(res.Points); err != nil {
		panic(fmt.Sprintf("trainer: experiment store: %v", err))
	}
	return res
}

// resumeFromCheckpoint attempts case 2 of the lifecycle. A missing
// checkpoint is the normal fresh-run path; an unreadable or incompatible
// one (corrupted file, changed binary semantics) falls back to a full
// re-run rather than aborting the sweep.
func resumeFromCheckpoint(p Profile, env ps.Env, rd *snapshot.RunDir) (ps.Result, bool) {
	if !p.Resume || env.Cfg.CheckpointEvery <= 0 {
		return ps.Result{}, false
	}
	data, _, err := rd.LoadCheckpoint()
	if err != nil {
		if !errors.Is(err, snapshot.ErrNoCheckpoint) {
			panic(fmt.Sprintf("trainer: experiment store: %v", err))
		}
		return ps.Result{}, false
	}
	res, err := ps.Resume(env, data)
	if err != nil {
		return ps.Result{}, false
	}
	return res, true
}
