package trainer

import (
	"strings"
	"testing"

	"lcasgd/internal/cluster"
	"lcasgd/internal/core"
	"lcasgd/internal/data"
	"lcasgd/internal/model"
	"lcasgd/internal/ps"
	"lcasgd/internal/scenario"
)

// tinyProfile is a fast profile for harness tests (seconds, not minutes).
func tinyProfile() Profile {
	return Profile{
		Name: "tiny",
		Data: data.Config{
			Classes: 4, C: 1, H: 6, W: 6,
			Train: 160, Test: 80,
			NoiseSigma: 0.8, SignalScale: 0.5, Smoothing: 1, Seed: 99,
		},
		Model: model.Config{
			Name: "tiny", InC: 1, InH: 6, InW: 6,
			Stem: 4, StageReps: []int{1}, NumClasses: 4,
		},
		Batch: 20, Epochs: 3, LR: 0.08, WD: 1e-3, Lambda: 1, DCLam: 0.3,
		Cost: cluster.CIFARCostModel(), BNDecay: 0.2,
		LossPredHidden: 8, StepPredHidden: 8,
	}
}

func TestProfilesAreSane(t *testing.T) {
	for _, p := range []Profile{QuickCIFAR(), FullCIFAR(), QuickImageNet(), FullImageNet()} {
		if p.Batch <= 0 || p.Epochs <= 0 || p.LR <= 0 {
			t.Fatalf("%s: bad recipe %+v", p.Name, p)
		}
		if p.Data.Train%p.Batch != 0 && p.Data.Train/p.Batch == 0 {
			t.Fatalf("%s: batch larger than dataset", p.Name)
		}
		if p.Model.NumClasses != p.Data.Classes {
			t.Fatalf("%s: model classes %d != data classes %d", p.Name, p.Model.NumClasses, p.Data.Classes)
		}
		if p.Model.InFeatures() != p.Data.C*p.Data.H*p.Data.W {
			t.Fatalf("%s: model input %d != data features", p.Name, p.Model.InFeatures())
		}
		if err := p.Cost.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
}

func TestRunCellProducesResult(t *testing.T) {
	res := RunCell(tinyProfile(), ps.ASGD, 4, core.BNAsync, 1)
	if res.Algo != ps.ASGD || len(res.Points) == 0 {
		t.Fatal("empty result")
	}
}

func TestRunCellCfgMutates(t *testing.T) {
	called := false
	res := RunCellCfg(tinyProfile(), ps.LCASGD, 4, core.BNAsync, 1, func(c *ps.Config) {
		called = true
		c.Lambda = 0
	})
	if !called || len(res.Points) == 0 {
		t.Fatal("mutator not applied")
	}
}

func TestFig2Structure(t *testing.T) {
	cs := Fig2(tinyProfile(), 1)
	if len(cs.Order) != 4 { // SGD + 3 DC-ASGD variants
		t.Fatalf("fig2 series %v", cs.Order)
	}
	if _, ok := cs.Results["DC-ASGD-16"]; !ok {
		t.Fatal("missing DC-ASGD-16 series")
	}
}

func TestFig3PanelStructure(t *testing.T) {
	cs := Fig3Panel(tinyProfile(), 4, 1)
	if len(cs.Order) != 5 {
		t.Fatalf("fig3 series %v", cs.Order)
	}
	chart := cs.ChartEpochs(60, 12)
	if !strings.Contains(chart, "LC-ASGD") || !strings.Contains(chart, "test error vs epoch") {
		t.Fatalf("chart malformed:\n%s", chart)
	}
	timeChart := cs.ChartTime(60, 12)
	if !strings.Contains(timeChart, "virtual seconds") {
		t.Fatalf("time chart malformed:\n%s", timeChart)
	}
	tb := cs.SeriesTable()
	if len(tb.Rows) == 0 {
		t.Fatal("series table empty")
	}
}

func TestFig5PanelOmitsSGD(t *testing.T) {
	cs := Fig5Panel(tinyProfile(), 4, 1)
	if len(cs.Order) != 4 {
		t.Fatalf("fig5 series %v", cs.Order)
	}
	if _, ok := cs.Results[ps.SGD]; ok {
		t.Fatal("fig5 must omit sequential SGD, as the paper does")
	}
}

func TestTable1ShapeAndRender(t *testing.T) {
	rows, baseBN, baseAsync := Table1(tinyProfile(), true, []uint64{1})
	// 1 SGD row + 3 worker counts × 4 algorithms.
	if len(rows) != 13 {
		t.Fatalf("table1 rows %d", len(rows))
	}
	if baseBN <= 0 || baseAsync <= 0 {
		t.Fatalf("baselines %v %v", baseBN, baseAsync)
	}
	tb := RenderTable1(tinyProfile(), rows, baseBN, baseAsync)
	out := tb.String()
	if !strings.Contains(out, "baseline") || !strings.Contains(out, "LC-ASGD") {
		t.Fatalf("table malformed:\n%s", out)
	}
}

func TestTable1WithoutSGDBaseline(t *testing.T) {
	p := tinyProfile()
	p.Epochs = 2
	rows, _, _ := Table1(p, false, []uint64{1})
	if len(rows) != 12 {
		t.Fatalf("rows %d", len(rows))
	}
	if rows[0].Algo != ps.SSGD || rows[0].Workers != 4 {
		t.Fatalf("baseline row %+v, want SSGD M=4 as in the paper's ImageNet table", rows[0])
	}
}

func TestOverheadTable(t *testing.T) {
	rows := OverheadTable(tinyProfile(), 1)
	if len(rows) != 3 {
		t.Fatalf("overhead rows %d", len(rows))
	}
	for _, r := range rows {
		if r.LossPredMs <= 0 || r.StepPredMs <= 0 {
			t.Fatalf("unmeasured predictor times: %+v", r)
		}
		if r.TotalIterMs <= 0 || r.OverheadPct <= 0 {
			t.Fatalf("bad totals: %+v", r)
		}
	}
	out := RenderOverhead(tinyProfile(), rows).String()
	if !strings.Contains(out, "overhead") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestPredictorTraces(t *testing.T) {
	lossChart, stepChart, res := PredictorTraces(tinyProfile(), 1)
	if !strings.Contains(lossChart, "Fig 7") || !strings.Contains(stepChart, "Fig 8") {
		t.Fatal("trace charts malformed")
	}
	if len(res.LossTrace) == 0 || len(res.StepTrace) == 0 {
		t.Fatal("traces empty")
	}
}

func TestProfileScenarioReachesEngine(t *testing.T) {
	p := tinyProfile()
	p.Epochs = 2
	p.Scenario = &scenario.Scenario{
		Name: "probe",
		Events: []scenario.Event{
			{At: 30, Kind: scenario.Crash, Worker: 1},
			{At: 80, Kind: scenario.Recover, Worker: 1},
		},
	}
	res := RunCell(p, ps.ASGD, 4, core.BNAsync, 1)
	if res.ScenarioEvents != 2 {
		t.Fatalf("profile scenario not applied: %d events", res.ScenarioEvents)
	}
}

func TestRobustnessGrid(t *testing.T) {
	p := tinyProfile()
	p.Epochs = 2
	scns := []scenario.Scenario{
		scenario.None(),
		{Name: "churn", Events: []scenario.Event{
			{At: 40, Kind: scenario.Crash, Worker: 1},
			{At: 60, Kind: scenario.PhaseShift, Worker: -1, CompScale: 2, CommScale: 2},
			{At: 120, Kind: scenario.Recover, Worker: 1},
		}},
	}
	rows := Robustness(p, 4, 1, scns, RobustnessOpts{})
	if len(rows) != len(scns)*len(RobustnessEntries) {
		t.Fatalf("robustness rows %d, want %d", len(rows), len(scns)*len(RobustnessEntries))
	}
	sawSA, sawChurnEvents := false, false
	adTopos := map[string]bool{}
	for _, r := range rows {
		if r.FinalTestErr < 0 || r.FinalTestErr > 1 {
			t.Fatalf("row %+v has invalid error", r)
		}
		if r.Updates <= 0 {
			t.Fatalf("row %+v did not train", r)
		}
		if r.Scenario == "none" && r.Events != 0 {
			t.Fatalf("stationary row reports %d scenario events", r.Events)
		}
		if r.Algo == ps.SAASGD {
			sawSA = true
		}
		if r.Algo == ps.ADPSGD {
			adTopos[r.Topology] = true
			if r.MeanStaleness <= 0 {
				t.Fatalf("AD-PSGD row %+v has no decentralized staleness", r)
			}
		} else if r.Topology != "" {
			t.Fatalf("PS row %+v carries a topology", r)
		}
		if r.Scenario == "churn" && r.Events > 0 {
			sawChurnEvents = true
		}
	}
	if !sawSA {
		t.Fatal("robustness grid omits SA-ASGD")
	}
	if !adTopos["ring"] || !adTopos["gossip"] {
		t.Fatalf("robustness grid AD-PSGD topologies %v, want ring and gossip", adTopos)
	}
	if !sawChurnEvents {
		t.Fatal("churn scenario never applied an event")
	}
	out := RenderRobustness(p, 4, rows).String()
	for _, want := range []string{"SA-ASGD", "AD-PSGD", "ring", "gossip", "churn", "max stale", "topology"} {
		if !strings.Contains(out, want) {
			t.Fatalf("robustness table missing %q:\n%s", want, out)
		}
	}
}

func TestTraceMAE(t *testing.T) {
	trace := []core.TracePoint{
		{Actual: 1, Predicted: 0},   // excluded (first half)
		{Actual: 1, Predicted: 0.8}, // tail
		{Actual: 1, Predicted: 1.2},
	}
	mae := TraceMAE(trace)
	if mae < 0.19 || mae > 0.21 {
		t.Fatalf("MAE %v, want 0.2", mae)
	}
	if TraceMAE(nil) != 0 {
		t.Fatal("empty trace MAE must be 0")
	}
}
