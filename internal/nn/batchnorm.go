package nn

import (
	"fmt"
	"math"

	"lcasgd/internal/tensor"
)

// BNEpsilon is the variance floor used by batch normalization.
const BNEpsilon = 1e-5

// BatchNorm normalizes activations per channel over the batch (and spatial
// positions, for convolutional inputs), then applies a learned affine
// transform: y = γ·x̂ + β (Ioffe & Szegedy 2015).
//
// The layer is the integration point for the paper's Async-BN (Section 4,
// Formulas 6–7): the parameter server owns the global running mean/variance,
// and the distributed strategies read the worker's freshly computed batch
// statistics (BatchMean/BatchVar) and write back globally accumulated ones
// (SetRunning). Inference always normalizes with the running statistics, so
// the quality of the server's accumulation policy is directly visible in the
// measured test error — exactly the effect Table 1 reports.
type BatchNorm struct {
	C       int // channels
	Spatial int // H*W (1 for dense layers)

	Gamma, Beta *Param

	// Running statistics used at inference; updated during local training
	// with an EMA of momentum Momentum, or overwritten by the server.
	RunningMean, RunningVar []float64
	Momentum                float64

	// Last batch statistics, exposed to the distributed strategies.
	batchMean, batchVar []float64

	// Backward caches. xhat is reused across iterations (reuseFor); out/dx
	// are the layer's reused output and input-gradient buffers.
	x       *tensor.Tensor
	xhat    *tensor.Tensor
	invStd  []float64
	out, dx *tensor.Tensor
}

// NewBatchNorm builds a BN layer for c channels with the given spatial size
// per channel. γ initializes to 1, β to 0, running variance to 1.
func NewBatchNorm(name string, c, spatial int) *BatchNorm {
	bn := &BatchNorm{
		C:           c,
		Spatial:     spatial,
		Gamma:       NewParam(name+".gamma", c),
		Beta:        NewParam(name+".beta", c),
		RunningMean: make([]float64, c),
		RunningVar:  make([]float64, c),
		Momentum:    0.1,
		batchMean:   make([]float64, c),
		batchVar:    make([]float64, c),
		invStd:      make([]float64, c),
	}
	bn.Gamma.Value.Fill(1)
	for i := range bn.RunningVar {
		bn.RunningVar[i] = 1
	}
	return bn
}

// Forward normalizes x ([N, C*Spatial]). In training mode it uses batch
// statistics and updates the running EMA; in inference mode it uses the
// running statistics.
func (bn *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	feat := bn.C * bn.Spatial
	if x.Rank() != 2 || x.Shape[1] != feat {
		panic(fmt.Sprintf("nn: BatchNorm %s expects [N,%d], got %v", bn.Gamma.Name, feat, x.Shape))
	}
	n := x.Shape[0]
	out := reuse2(&bn.out, n, feat)
	if train {
		bn.x = x
		bn.xhat = reuse2(&bn.xhat, n, feat)
		m := float64(n * bn.Spatial)
		for c := 0; c < bn.C; c++ {
			sum := 0.0
			for i := 0; i < n; i++ {
				base := i*feat + c*bn.Spatial
				for s := 0; s < bn.Spatial; s++ {
					sum += x.Data[base+s]
				}
			}
			mean := sum / m
			vsum := 0.0
			for i := 0; i < n; i++ {
				base := i*feat + c*bn.Spatial
				for s := 0; s < bn.Spatial; s++ {
					d := x.Data[base+s] - mean
					vsum += d * d
				}
			}
			variance := vsum / m
			bn.batchMean[c] = mean
			bn.batchVar[c] = variance
			bn.RunningMean[c] = (1-bn.Momentum)*bn.RunningMean[c] + bn.Momentum*mean
			bn.RunningVar[c] = (1-bn.Momentum)*bn.RunningVar[c] + bn.Momentum*variance
			inv := 1 / math.Sqrt(variance+BNEpsilon)
			bn.invStd[c] = inv
			g, b := bn.Gamma.Value.Data[c], bn.Beta.Value.Data[c]
			for i := 0; i < n; i++ {
				base := i*feat + c*bn.Spatial
				for s := 0; s < bn.Spatial; s++ {
					xh := (x.Data[base+s] - mean) * inv
					bn.xhat.Data[base+s] = xh
					out.Data[base+s] = g*xh + b
				}
			}
		}
		return out
	}
	for c := 0; c < bn.C; c++ {
		inv := 1 / math.Sqrt(bn.RunningVar[c]+BNEpsilon)
		g, b := bn.Gamma.Value.Data[c], bn.Beta.Value.Data[c]
		mean := bn.RunningMean[c]
		for i := 0; i < n; i++ {
			base := i*feat + c*bn.Spatial
			for s := 0; s < bn.Spatial; s++ {
				out.Data[base+s] = g*(x.Data[base+s]-mean)*inv + b
			}
		}
	}
	return out
}

// Backward implements the standard batch-norm gradient.
func (bn *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := bn.x.Shape[0]
	feat := bn.C * bn.Spatial
	dx := reuse2(&bn.dx, n, feat) // every element is assigned below
	m := float64(n * bn.Spatial)
	for c := 0; c < bn.C; c++ {
		g := bn.Gamma.Value.Data[c]
		inv := bn.invStd[c]
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			base := i*feat + c*bn.Spatial
			for s := 0; s < bn.Spatial; s++ {
				dy := grad.Data[base+s]
				sumDy += dy
				sumDyXhat += dy * bn.xhat.Data[base+s]
			}
		}
		bn.Beta.Grad.Data[c] += sumDy
		bn.Gamma.Grad.Data[c] += sumDyXhat
		// dx = (γ·inv/m) · (m·dy − Σdy − x̂·Σ(dy·x̂))
		k := g * inv / m
		for i := 0; i < n; i++ {
			base := i*feat + c*bn.Spatial
			for s := 0; s < bn.Spatial; s++ {
				dy := grad.Data[base+s]
				xh := bn.xhat.Data[base+s]
				dx.Data[base+s] = k * (m*dy - sumDy - xh*sumDyXhat)
			}
		}
	}
	return dx
}

// Params returns γ and β.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// OutFeatures reports C*Spatial.
func (bn *BatchNorm) OutFeatures() int { return bn.C * bn.Spatial }

// BatchMean returns a copy of the most recent training-batch means.
func (bn *BatchNorm) BatchMean() []float64 {
	return append([]float64(nil), bn.batchMean...)
}

// BatchVar returns a copy of the most recent training-batch variances.
func (bn *BatchNorm) BatchVar() []float64 {
	return append([]float64(nil), bn.batchVar...)
}

// ReadBatchStats copies the most recent training-batch statistics into the
// caller-provided slices (length C each) — the allocation-free variant of
// BatchMean/BatchVar used by the per-iteration statistics push.
func (bn *BatchNorm) ReadBatchStats(mean, variance []float64) {
	if len(mean) != bn.C || len(variance) != bn.C {
		panic(fmt.Sprintf("nn: ReadBatchStats expects %d channels, got %d/%d", bn.C, len(mean), len(variance)))
	}
	copy(mean, bn.batchMean)
	copy(variance, bn.batchVar)
}

// SetRunning overwrites the running statistics — the hook the parameter
// server uses to push its globally accumulated (Async-BN) or
// latest-worker (regular distributed BN) statistics into a worker replica.
func (bn *BatchNorm) SetRunning(mean, variance []float64) {
	if len(mean) != bn.C || len(variance) != bn.C {
		panic(fmt.Sprintf("nn: SetRunning expects %d channels, got %d/%d", bn.C, len(mean), len(variance)))
	}
	copy(bn.RunningMean, mean)
	copy(bn.RunningVar, variance)
}

// Running returns copies of the current running statistics.
func (bn *BatchNorm) Running() (mean, variance []float64) {
	return append([]float64(nil), bn.RunningMean...), append([]float64(nil), bn.RunningVar...)
}
