package nn

import (
	"fmt"
	"testing"

	"lcasgd/internal/rng"
	"lcasgd/internal/tensor"
)

// Layer-level conv benchmarks: the full im2col -> matmul -> transpose path
// (forward) and the gather -> two matmuls -> col2im path (backward) at the
// paper networks' layer shapes, with post-ReLU-like activations so the
// numbers reflect what the training loop actually feeds these layers.

type convBenchShape struct {
	name          string
	inC, inH, out int
	batch         int
}

var convBenchShapes = []convBenchShape{
	{"stem12_12x12", 12, 12, 12, 20}, // ResNetLite50 stem, full-ImageNet input
	{"stage2_24_6x6", 24, 6, 24, 20}, // mid stage after one pool
	{"stage3_48_3x3", 48, 3, 48, 20}, // deepest stage
	{"quick_6_8x8", 6, 8, 6, 20},     // quick-profile stem (alloc-pinned path)
}

func benchConvInput(c convBenchShape, g *rng.RNG) *tensor.Tensor {
	x := tensor.New(c.batch, c.inC*c.inH*c.inH)
	g.FillNormal(x.Data, 1)
	// Post-ReLU profile: about half the activations are exact zeros.
	for i, v := range x.Data {
		if v < 0 {
			x.Data[i] = 0
		}
	}
	return x
}

func BenchmarkConvForward(b *testing.B) {
	for _, s := range convBenchShapes {
		b.Run(fmt.Sprintf("%s_n%d", s.name, s.batch), func(b *testing.B) {
			g := rng.New(11)
			geom := tensor.ConvGeom{InC: s.inC, InH: s.inH, InW: s.inH, KH: 3, KW: 3, Stride: 1, Pad: 1}
			layer := NewConv2D("bench", geom, s.out, g)
			x := benchConvInput(s, g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = layer.Forward(x, true)
			}
		})
	}
}

func BenchmarkConvBackward(b *testing.B) {
	for _, s := range convBenchShapes {
		b.Run(fmt.Sprintf("%s_n%d", s.name, s.batch), func(b *testing.B) {
			g := rng.New(11)
			geom := tensor.ConvGeom{InC: s.inC, InH: s.inH, InW: s.inH, KH: 3, KW: 3, Stride: 1, Pad: 1}
			layer := NewConv2D("bench", geom, s.out, g)
			x := benchConvInput(s, g)
			out := layer.Forward(x, true)
			grad := tensor.New(out.Shape[0], out.Shape[1])
			g.FillNormal(grad.Data, 0.1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = layer.Backward(grad)
			}
		})
	}
}
