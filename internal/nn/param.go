// Package nn is a from-scratch neural-network substrate: layers with
// explicit forward/backward passes, a sequential container, parameter
// flattening for parameter-server communication, and the loss functions used
// by the LC-ASGD reproduction. It supports the layer types the paper's
// networks need — dense, convolution, batch normalization (with hooks for
// distributed statistics), ReLU, pooling, and residual blocks.
package nn

import (
	"fmt"
	"math"

	"lcasgd/internal/rng"
	"lcasgd/internal/tensor"
)

// Param is one trainable parameter tensor with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter and matching gradient of the given shape.
func NewParam(name string, shape ...int) *Param {
	return &Param{Name: name, Value: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// InitHe fills the parameter with He-normal initialization for fanIn inputs,
// the standard choice for ReLU networks (He et al. 2015).
func (p *Param) InitHe(g *rng.RNG, fanIn int) {
	g.FillNormal(p.Value.Data, math.Sqrt(2/float64(fanIn)))
}

// InitXavier fills the parameter with Xavier/Glorot-normal initialization.
func (p *Param) InitXavier(g *rng.RNG, fanIn, fanOut int) {
	g.FillNormal(p.Value.Data, math.Sqrt(2/float64(fanIn+fanOut)))
}

// ParamCount sums element counts across a parameter list.
func ParamCount(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.Value.Len()
	}
	return n
}

// FlattenValues copies every parameter's values into dst in order. dst must
// have exactly ParamCount(params) elements. This is the wire format the
// simulated parameter server exchanges with workers.
func FlattenValues(dst []float64, params []*Param) {
	off := 0
	for _, p := range params {
		n := copy(dst[off:], p.Value.Data)
		off += n
	}
	if off != len(dst) {
		panic(fmt.Sprintf("nn: FlattenValues wrote %d of %d elements", off, len(dst)))
	}
}

// UnflattenValues copies src into every parameter's values in order.
func UnflattenValues(params []*Param, src []float64) {
	off := 0
	for _, p := range params {
		n := copy(p.Value.Data, src[off:off+p.Value.Len()])
		off += n
	}
	if off != len(src) {
		panic(fmt.Sprintf("nn: UnflattenValues read %d of %d elements", off, len(src)))
	}
}

// FlattenGrads copies every parameter's gradients into dst in order.
func FlattenGrads(dst []float64, params []*Param) {
	off := 0
	for _, p := range params {
		n := copy(dst[off:], p.Grad.Data)
		off += n
	}
	if off != len(dst) {
		panic(fmt.Sprintf("nn: FlattenGrads wrote %d of %d elements", off, len(dst)))
	}
}
