package nn

import (
	"fmt"
	"math"

	"lcasgd/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss over a batch of
// logits [N, classes] with integer labels, and the gradient with respect to
// the logits. The softmax and loss are fused for numerical stability; the
// fused backward pass is the familiar (softmax − onehot)/N.
type SoftmaxCrossEntropy struct {
	probs  *tensor.Tensor
	grad   *tensor.Tensor // reused logits-gradient buffer
	labels []int
}

// Forward returns the mean cross-entropy loss. The labels slice is retained
// until the matching Backward; callers reusing a labels buffer must not
// rewrite it in between (the replica iteration order guarantees this).
func (l *SoftmaxCrossEntropy) Forward(logits *tensor.Tensor, labels []int) float64 {
	if logits.Rank() != 2 || logits.Shape[0] != len(labels) {
		panic(fmt.Sprintf("nn: loss shape %v vs %d labels", logits.Shape, len(labels)))
	}
	n, c := logits.Shape[0], logits.Shape[1]
	l.probs = reuse2(&l.probs, n, c)
	tensor.Softmax(l.probs, logits)
	l.labels = labels
	loss := 0.0
	for i, y := range labels {
		if y < 0 || y >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, c))
		}
		p := l.probs.At(i, y)
		if p < 1e-300 {
			p = 1e-300 // clamp to avoid -Inf on a catastrophically wrong prediction
		}
		loss -= math.Log(p)
	}
	return loss / float64(n)
}

// Backward returns dLoss/dLogits for the most recent Forward. The optional
// scale multiplies the gradient — this is the seam the LC-ASGD loss
// compensation uses to rescale a stale gradient by the ratio of the
// compensated loss to the observed loss (see internal/core). The returned
// tensor is a reused buffer, overwritten by the next Backward call.
func (l *SoftmaxCrossEntropy) Backward(scale float64) *tensor.Tensor {
	n, c := l.probs.Shape[0], l.probs.Shape[1]
	grad := reuse2(&l.grad, n, c)
	grad.CopyFrom(l.probs)
	for i, y := range l.labels {
		grad.Data[i*c+y] -= 1
	}
	tensor.Scale(grad, grad, scale/float64(n))
	return grad
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	pred := tensor.ArgmaxRows(logits)
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// MSELoss is the scalar-regression loss used to train the LSTM predictors
// online (loss prediction and step prediction are both regressions).
type MSELoss struct {
	diff *tensor.Tensor
	grad *tensor.Tensor // reused gradient buffer
}

// Forward returns mean squared error between pred and target.
func (l *MSELoss) Forward(pred, target *tensor.Tensor) float64 {
	if pred.Len() != target.Len() {
		panic(fmt.Sprintf("nn: MSE length %d vs %d", pred.Len(), target.Len()))
	}
	l.diff = reuseFor(&l.diff, pred.Shape)
	tensor.Sub(l.diff, pred, target)
	s := 0.0
	for _, d := range l.diff.Data {
		s += d * d
	}
	return s / float64(pred.Len())
}

// Backward returns dLoss/dPred for the most recent Forward.
func (l *MSELoss) Backward() *tensor.Tensor {
	grad := reuseFor(&l.grad, l.diff.Shape)
	tensor.Scale(grad, l.diff, 2/float64(l.diff.Len()))
	return grad
}
