package nn

import "lcasgd/internal/tensor"

// Layer is one differentiable stage of a network. Inputs and outputs are
// 2-D tensors of shape [batch, features]; convolutional layers interpret the
// feature axis as channel-major (C, H, W) data.
//
// Forward must record whatever it needs for the matching Backward call;
// Backward returns the gradient with respect to the layer input and
// accumulates parameter gradients (it adds to Param.Grad rather than
// overwriting, so gradient accumulation across micro-batches works).
// Layers are not safe for concurrent use; each simulated worker owns a
// private replica of the network.
//
// Buffer-reuse contract (the zero-allocation hot path): the tensors
// returned by Forward and Backward are layer-owned buffers that the SAME
// method's next call overwrites. Consumers must finish reading a result
// before re-invoking that method on the same layer — which the strict
// forward-then-backward iteration order guarantees — and must Clone
// anything they keep across iterations. Forward activations survive the
// whole backward pass untouched because every layer's output and
// input-gradient buffers are distinct allocations.
type Layer interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*Param
	OutFeatures() int
}

// Sequential chains layers. It is itself a Layer, so residual blocks can
// nest sequential paths.
type Sequential struct {
	Layers []Layer

	// Cached layer-tree walks, invalidated by Add. ZeroGrad and the
	// per-iteration BN statistics push would otherwise re-walk and
	// re-allocate the tree every worker iteration. Mutating a nested
	// container after its parent has cached a walk is unsupported: build
	// the tree bottom-up (as internal/model does), then train.
	paramsCache []*Param
	bnsCache    []*BatchNorm
	bnsCached   bool
}

// NewSequential builds a container from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Add appends a layer and invalidates the cached Params/BatchNorms walks.
func (s *Sequential) Add(l Layer) {
	s.Layers = append(s.Layers, l)
	s.paramsCache = nil
	s.bnsCache = nil
	s.bnsCached = false
}

// Forward runs every layer in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs every layer's backward pass in reverse order.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all parameters in layer order. The walk is computed once
// and cached (Add invalidates); callers must treat the returned slice as
// read-only.
func (s *Sequential) Params() []*Param {
	if s.paramsCache == nil {
		ps := []*Param{}
		for _, l := range s.Layers {
			ps = append(ps, l.Params()...)
		}
		s.paramsCache = ps
	}
	return s.paramsCache
}

// OutFeatures reports the feature width of the final layer.
func (s *Sequential) OutFeatures() int {
	if len(s.Layers) == 0 {
		return 0
	}
	return s.Layers[len(s.Layers)-1].OutFeatures()
}

// ZeroGrad clears every parameter gradient in the container.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Params() {
		p.ZeroGrad()
	}
}

// BatchNorms returns every BatchNorm layer in the container, recursing into
// nested sequentials and residual blocks. The distributed algorithms use
// this to collect and inject normalization statistics (Async-BN). Like
// Params, the walk is cached until the next Add; treat the result as
// read-only.
func (s *Sequential) BatchNorms() []*BatchNorm {
	if s.bnsCached {
		return s.bnsCache
	}
	var bns []*BatchNorm
	var walk func(l Layer)
	walk = func(l Layer) {
		switch v := l.(type) {
		case *BatchNorm:
			bns = append(bns, v)
		case *Sequential:
			for _, inner := range v.Layers {
				walk(inner)
			}
		case *Residual:
			walk(v.Path)
			if v.Shortcut != nil {
				walk(v.Shortcut)
			}
		}
	}
	for _, l := range s.Layers {
		walk(l)
	}
	s.bnsCache = bns
	s.bnsCached = true
	return bns
}

// ReLULayer applies the rectifier elementwise. It is stateless apart from
// caching its input for the backward pass and its reused buffers.
type ReLULayer struct {
	features int
	x        *tensor.Tensor
	out, dx  *tensor.Tensor
}

// NewReLU returns a ReLU layer that reports the given feature width.
func NewReLU(features int) *ReLULayer { return &ReLULayer{features: features} }

// Forward computes max(x, 0).
func (r *ReLULayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.x = x
	out := reuseFor(&r.out, x.Shape)
	tensor.ReLU(out, x)
	return out
}

// Backward masks the incoming gradient by the sign of the cached input.
func (r *ReLULayer) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := reuseFor(&r.dx, grad.Shape)
	tensor.ReLUBackward(dx, grad, r.x)
	return dx
}

// Params returns nil; ReLU has no parameters.
func (r *ReLULayer) Params() []*Param { return nil }

// OutFeatures reports the configured feature width.
func (r *ReLULayer) OutFeatures() int { return r.features }
