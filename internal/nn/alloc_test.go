package nn

import (
	"testing"

	"lcasgd/internal/rng"
	"lcasgd/internal/tensor"
)

// convTestNet builds a net covering the whole layer zoo: conv, BN (dense
// and spatial), residual (identity and projection), max/avg pooling, ReLU,
// dense.
func convTestNet(g *rng.RNG) *Sequential {
	geom := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := NewConv2D("c0", geom, 4, g)
	path := NewSequential(
		NewConv2D("r.c", tensor.ConvGeom{InC: 4, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}, 4, g),
		NewBatchNorm("r.bn", 4, 16),
	)
	short := NewSequential(NewBatchNorm("r.s", 4, 16))
	return NewSequential(
		conv,
		NewBatchNorm("bn0", 4, 64),
		NewReLU(256),
		NewMaxPool2D(4, 8, 8, 2),
		NewResidual(path, short),
		NewGlobalAvgPool(4, 16),
		NewDense("fc", 4, 3, g),
	)
}

// TestForwardBackwardZeroAllocSteadyState pins the whole-layer-zoo training
// iteration (forward + loss + backward + ZeroGrad) to zero heap allocations
// once the per-layer buffers are warm — the regression guard for the
// zero-allocation hot path.
func TestForwardBackwardZeroAllocSteadyState(t *testing.T) {
	g := rng.New(21)
	net := convTestNet(g)
	x := tensor.New(6, 64)
	g.FillNormal(x.Data, 1)
	labels := []int{0, 1, 2, 0, 1, 2}
	var ce SoftmaxCrossEntropy
	iter := func() {
		net.ZeroGrad()
		out := net.Forward(x, true)
		ce.Forward(out, labels)
		net.Backward(ce.Backward(1))
	}
	iter() // warm the buffers (first iteration allocates them)
	if allocs := testing.AllocsPerRun(20, iter); allocs != 0 {
		t.Fatalf("steady-state forward/backward allocates %v times per iteration, want 0", allocs)
	}
}

// TestInferenceZeroAllocSteadyState pins the evaluation-mode forward pass
// (the eval-shard hot loop) to zero allocations.
func TestInferenceZeroAllocSteadyState(t *testing.T) {
	g := rng.New(22)
	net := convTestNet(g)
	x := tensor.New(6, 64)
	g.FillNormal(x.Data, 1)
	pred := make([]int, 6)
	iter := func() {
		out := net.Forward(x, false)
		tensor.ArgmaxRowsInto(pred, out)
	}
	iter()
	if allocs := testing.AllocsPerRun(20, iter); allocs != 0 {
		t.Fatalf("steady-state inference allocates %v times per run, want 0", allocs)
	}
}

// TestBackwardDoesNotCorruptForwardActivations proves the aliasing
// discipline of the reuse scheme: the activations every layer produced
// during Forward must be bit-identical before and after the full Backward
// pass, because output buffers and gradient buffers are distinct.
func TestBackwardDoesNotCorruptForwardActivations(t *testing.T) {
	g := rng.New(23)
	net := convTestNet(g)
	x := tensor.New(4, 64)
	g.FillNormal(x.Data, 1)
	labels := []int{0, 1, 2, 0}
	var ce SoftmaxCrossEntropy

	// Warm the buffers so the recorded activations ARE the reused buffers.
	out := net.Forward(x, true)
	ce.Forward(out, labels)
	net.Backward(ce.Backward(1))
	net.ZeroGrad()

	// Re-run forward, capturing each layer's live output buffer + a copy.
	var live []*tensor.Tensor
	var snap []*tensor.Tensor
	cur := x
	for _, l := range net.Layers {
		cur = l.Forward(cur, true)
		live = append(live, cur)
		snap = append(snap, cur.Clone())
	}
	ce.Forward(cur, labels)
	net.Backward(ce.Backward(1))

	for i, buf := range live {
		for j := range buf.Data {
			if buf.Data[j] != snap[i].Data[j] {
				t.Fatalf("layer %d activation[%d] corrupted by Backward: %v != %v",
					i, j, buf.Data[j], snap[i].Data[j])
			}
		}
	}
}

// TestReusedBuffersAreDeterministic re-runs the identical iteration twice on
// warm buffers and requires bit-identical losses and gradients — reuse must
// be numerically invisible.
func TestReusedBuffersAreDeterministic(t *testing.T) {
	g := rng.New(24)
	net := convTestNet(g)
	x := tensor.New(4, 64)
	g.FillNormal(x.Data, 1)
	labels := []int{2, 1, 0, 1}
	var ce SoftmaxCrossEntropy
	run := func() (float64, []float64) {
		net.ZeroGrad()
		out := net.Forward(x, true)
		v := ce.Forward(out, labels)
		net.Backward(ce.Backward(1))
		flat := make([]float64, ParamCount(net.Params()))
		FlattenGrads(flat, net.Params())
		return v, flat
	}
	run() // warm
	l1, g1 := run()
	l2, g2 := run()
	if l1 != l2 {
		t.Fatalf("loss differs across reused iterations: %v vs %v", l1, l2)
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("grad[%d] differs across reused iterations: %v vs %v", i, g1[i], g2[i])
		}
	}
}

// TestBatchSizeChangeReallocatesSafely drives the same net with alternating
// batch sizes (the evaluation remainder-batch pattern) and checks outputs
// stay correct — reuseFor must key on shape, not just capacity.
func TestBatchSizeChangeReallocatesSafely(t *testing.T) {
	g := rng.New(25)
	d := NewDense("fc", 3, 2, g)
	x4 := tensor.New(4, 3)
	x2 := tensor.New(2, 3)
	g.FillNormal(x4.Data, 1)
	copy(x2.Data, x4.Data[:6])
	out4 := d.Forward(x4, false).Clone()
	out2 := d.Forward(x2, false)
	if out2.Shape[0] != 2 {
		t.Fatalf("remainder batch output shape %v", out2.Shape)
	}
	for i := 0; i < 4; i++ { // first two rows of x4 == x2
		if out2.Data[i] != out4.Data[i] {
			t.Fatalf("batch-size change corrupted output: %v vs %v", out2.Data[i], out4.Data[i])
		}
	}
}
