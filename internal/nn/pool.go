package nn

import (
	"fmt"

	"lcasgd/internal/tensor"
)

// MaxPool2D performs kxk max pooling with stride k on channel-major images.
type MaxPool2D struct {
	C, H, W int
	K       int
	argmax  []int // flat input index chosen per output element, for backward
	inShape []int
	out, dx *tensor.Tensor // reused buffers
}

// NewMaxPool2D builds a pooling layer. H and W must be divisible by k.
func NewMaxPool2D(c, h, w, k int) *MaxPool2D {
	if h%k != 0 || w%k != 0 {
		panic(fmt.Sprintf("nn: MaxPool2D %dx%d not divisible by %d", h, w, k))
	}
	return &MaxPool2D{C: c, H: h, W: w, K: k}
}

// Forward pools each kxk window to its max.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	inFeat := p.C * p.H * p.W
	if x.Rank() != 2 || x.Shape[1] != inFeat {
		panic(fmt.Sprintf("nn: MaxPool2D expects [N,%d], got %v", inFeat, x.Shape))
	}
	n := x.Shape[0]
	oh, ow := p.H/p.K, p.W/p.K
	outFeat := p.C * oh * ow
	out := reuse2(&p.out, n, outFeat)
	if len(p.argmax) != n*outFeat {
		p.argmax = make([]int, n*outFeat)
	}
	p.inShape = x.Shape
	for i := 0; i < n; i++ {
		for c := 0; c < p.C; c++ {
			chBase := i*inFeat + c*p.H*p.W
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := x.Data[chBase+(oy*p.K)*p.W+ox*p.K]
					bestIdx := chBase + (oy*p.K)*p.W + ox*p.K
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							idx := chBase + (oy*p.K+ky)*p.W + (ox*p.K + kx)
							if v := x.Data[idx]; v > best {
								best, bestIdx = v, idx
							}
						}
					}
					oidx := i*outFeat + c*oh*ow + oy*ow + ox
					out.Data[oidx] = best
					p.argmax[oidx] = bestIdx
				}
			}
		}
	}
	return out
}

// Backward routes each output gradient to the input element that won the max.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := reuseFor(&p.dx, p.inShape)
	dx.Zero() // the scatter below accumulates
	for oidx, iidx := range p.argmax {
		dx.Data[iidx] += grad.Data[oidx]
	}
	return dx
}

// Params returns nil; pooling has no parameters.
func (p *MaxPool2D) Params() []*Param { return nil }

// OutFeatures reports C*(H/K)*(W/K).
func (p *MaxPool2D) OutFeatures() int { return p.C * (p.H / p.K) * (p.W / p.K) }

// GlobalAvgPool averages each channel's spatial plane to a single value,
// the standard ResNet head before the final classifier.
type GlobalAvgPool struct {
	C, Spatial int
	n          int
	out, dx    *tensor.Tensor // reused buffers
}

// NewGlobalAvgPool builds the layer for c channels of the given spatial size.
func NewGlobalAvgPool(c, spatial int) *GlobalAvgPool {
	return &GlobalAvgPool{C: c, Spatial: spatial}
}

// Forward averages over the spatial axis.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	inFeat := p.C * p.Spatial
	if x.Rank() != 2 || x.Shape[1] != inFeat {
		panic(fmt.Sprintf("nn: GlobalAvgPool expects [N,%d], got %v", inFeat, x.Shape))
	}
	n := x.Shape[0]
	p.n = n
	out := reuse2(&p.out, n, p.C)
	inv := 1 / float64(p.Spatial)
	for i := 0; i < n; i++ {
		for c := 0; c < p.C; c++ {
			base := i*inFeat + c*p.Spatial
			s := 0.0
			for k := 0; k < p.Spatial; k++ {
				s += x.Data[base+k]
			}
			out.Data[i*p.C+c] = s * inv
		}
	}
	return out
}

// Backward spreads each channel gradient uniformly over its spatial plane.
func (p *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	inFeat := p.C * p.Spatial
	dx := reuse2(&p.dx, p.n, inFeat) // every element is assigned below
	inv := 1 / float64(p.Spatial)
	for i := 0; i < p.n; i++ {
		for c := 0; c < p.C; c++ {
			g := grad.Data[i*p.C+c] * inv
			base := i*inFeat + c*p.Spatial
			for k := 0; k < p.Spatial; k++ {
				dx.Data[base+k] = g
			}
		}
	}
	return dx
}

// Params returns nil; pooling has no parameters.
func (p *GlobalAvgPool) Params() []*Param { return nil }

// OutFeatures reports the channel count.
func (p *GlobalAvgPool) OutFeatures() int { return p.C }
