package nn

import (
	"fmt"

	"lcasgd/internal/rng"
	"lcasgd/internal/tensor"
)

// Dense is a fully connected layer: y = x @ W + b with W of shape
// [in, out] and b of shape [out].
type Dense struct {
	In, Out int
	W, B    *Param
	x       *tensor.Tensor // cached input for backward

	// Reused buffers (see reuseFor): per-call outputs/gradients plus the
	// batch-independent gradient scratch allocated at construction.
	out, dx *tensor.Tensor
	dW, db  *tensor.Tensor
}

// NewDense constructs a dense layer with He initialization (suited to the
// ReLU networks used throughout) and zero bias.
func NewDense(name string, in, out int, g *rng.RNG) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		W:   NewParam(name+".W", in, out),
		B:   NewParam(name+".b", out),
		dW:  tensor.New(in, out),
		db:  tensor.New(out),
	}
	d.W.InitHe(g, in)
	return d
}

// Forward computes x @ W + b.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Shape[1] != d.In {
		panic(fmt.Sprintf("nn: Dense %s expects [N,%d], got %v", d.W.Name, d.In, x.Shape))
	}
	d.x = x
	out := reuse2(&d.out, x.Shape[0], d.Out)
	tensor.MatMulInto(out, x, d.W.Value)
	tensor.AddRowVector(out, out, d.B.Value)
	return out
}

// Backward accumulates dW = xᵀ @ dY, db = Σ_rows dY and returns
// dX = dY @ Wᵀ.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	tensor.MatMulTransAInto(d.dW, d.x, grad)
	tensor.AXPY(d.W.Grad, 1, d.dW)
	tensor.RowSumInto(d.db, grad)
	tensor.AXPY(d.B.Grad, 1, d.db)
	dx := reuse2(&d.dx, grad.Shape[0], d.In)
	tensor.MatMulTransBInto(dx, grad, d.W.Value)
	return dx
}

// Params returns the weight and bias.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// OutFeatures reports the output width.
func (d *Dense) OutFeatures() int { return d.Out }
