package nn

import (
	"fmt"

	"lcasgd/internal/tensor"
)

// GradCheck verifies analytic parameter gradients against central finite
// differences. It runs forward+loss at θ±ε for every sampled coordinate and
// compares to the accumulated analytic gradient. It returns the worst
// relative error observed. The loss closure must be deterministic in the
// parameters (fixed batch, fixed BN mode).
//
// stride subsamples coordinates (check every stride-th element) to keep the
// check affordable on convolution layers with thousands of weights.
func GradCheck(net *Sequential, loss func() float64, eps float64, stride int) (float64, error) {
	if stride < 1 {
		stride = 1
	}
	net.ZeroGrad()
	_ = loss() // populate activations
	// The caller's loss closure is expected to run Forward and Backward so
	// that parameter gradients are accumulated. Re-run once to be sure.
	net.ZeroGrad()
	base := loss()
	_ = base
	worst := 0.0
	for _, p := range net.Params() {
		for i := 0; i < p.Value.Len(); i += stride {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := lossOnly(net, loss)
			p.Value.Data[i] = orig - eps
			lm := lossOnly(net, loss)
			p.Value.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := p.Grad.Data[i]
			denom := maxf(1e-8, maxf(absf(numeric), absf(analytic)))
			rel := absf(numeric-analytic) / denom
			if rel > worst {
				worst = rel
			}
			if rel > 0.05 && absf(numeric-analytic) > 1e-6 {
				return worst, fmt.Errorf("nn: gradcheck %s[%d]: analytic=%g numeric=%g rel=%.3g",
					p.Name, i, analytic, numeric, rel)
			}
		}
	}
	return worst, nil
}

// lossOnly evaluates the loss without letting the closure's backward pass
// pollute the analytic gradients under test: gradients are saved/restored.
func lossOnly(net *Sequential, loss func() float64) float64 {
	saved := make([][]float64, 0)
	for _, p := range net.Params() {
		saved = append(saved, append([]float64(nil), p.Grad.Data...))
	}
	v := loss()
	for i, p := range net.Params() {
		copy(p.Grad.Data, saved[i])
	}
	return v
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// NumericInputGrad estimates dLoss/dInput by finite differences for layer
// input-gradient tests.
func NumericInputGrad(x *tensor.Tensor, loss func() float64, eps float64) *tensor.Tensor {
	g := tensor.New(x.Shape...)
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := loss()
		x.Data[i] = orig - eps
		lm := loss()
		x.Data[i] = orig
		g.Data[i] = (lp - lm) / (2 * eps)
	}
	return g
}
