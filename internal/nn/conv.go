package nn

import (
	"fmt"

	"lcasgd/internal/rng"
	"lcasgd/internal/tensor"
)

// Conv2D is a 2-D convolution implemented with im2col lowering so the inner
// kernel is the parallel matmul. Input rows are channel-major (C, H, W)
// flattened images; output rows are (OutC, OutH, OutW) flattened.
type Conv2D struct {
	Geom tensor.ConvGeom
	OutC int
	W    *Param // [InC*KH*KW, OutC]
	B    *Param // [OutC]

	x   *tensor.Tensor // cached input
	col []float64      // reusable im2col buffer for one image

	// Batch-independent scratch allocated at construction: the im2col view,
	// the per-image matmul products of both passes, and the weight-gradient
	// accumulator. out/dx are per-batch-shape (see reuseFor).
	colT    *tensor.Tensor // [ColRows, ColCols] view over col
	prod    *tensor.Tensor // [ColRows, OutC]
	dOutMat *tensor.Tensor // [ColRows, OutC], per-sample grad in [HW, OutC] layout
	dW      *tensor.Tensor // [ColCols, OutC]
	dCol    *tensor.Tensor // [ColRows, ColCols]
	out, dx *tensor.Tensor
}

// NewConv2D constructs a convolution layer with He initialization. It
// panics on invalid geometry — layer construction is programmer error
// territory, not runtime input.
func NewConv2D(name string, g tensor.ConvGeom, outC int, r *rng.RNG) *Conv2D {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	c := &Conv2D{
		Geom: g,
		OutC: outC,
		W:    NewParam(name+".W", g.ColCols(), outC),
		B:    NewParam(name+".b", outC),
	}
	c.W.InitHe(r, g.ColCols())
	c.col = make([]float64, g.ColRows()*g.ColCols())
	c.colT = tensor.FromSlice(c.col, g.ColRows(), g.ColCols())
	c.prod = tensor.New(g.ColRows(), outC)
	c.dOutMat = tensor.New(g.ColRows(), outC)
	c.dW = tensor.New(g.ColCols(), outC)
	c.dCol = tensor.New(g.ColRows(), g.ColCols())
	return c
}

// Forward convolves each image in the batch.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	inFeat := c.Geom.InC * c.Geom.InH * c.Geom.InW
	if x.Rank() != 2 || x.Shape[1] != inFeat {
		panic(fmt.Sprintf("nn: Conv2D %s expects [N,%d], got %v", c.W.Name, inFeat, x.Shape))
	}
	c.x = x
	n := x.Shape[0]
	outH, outW := c.Geom.OutH(), c.Geom.OutW()
	outFeat := c.OutC * outH * outW
	out := reuse2(&c.out, n, outFeat)
	prod := c.prod
	hw := outH * outW
	for i := 0; i < n; i++ {
		img := x.Data[i*inFeat : (i+1)*inFeat]
		tensor.Im2Col(c.col, img, c.Geom)
		tensor.MatMulInto(prod, c.colT, c.W.Value) // [HW, OutC]
		dst := out.Data[i*outFeat : (i+1)*outFeat]
		// Transpose [HW, OutC] -> channel-major [OutC, HW] and add bias.
		for p := 0; p < hw; p++ {
			row := prod.Data[p*c.OutC : (p+1)*c.OutC]
			for oc, v := range row {
				dst[oc*hw+p] = v + c.B.Value.Data[oc]
			}
		}
	}
	return out
}

// Backward accumulates weight/bias gradients and returns the input gradient.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := c.x.Shape[0]
	inFeat := c.Geom.InC * c.Geom.InH * c.Geom.InW
	outH, outW := c.Geom.OutH(), c.Geom.OutW()
	hw := outH * outW
	outFeat := c.OutC * hw
	dx := reuse2(&c.dx, n, inFeat)
	dx.Zero() // Col2Im accumulates into the image gradient
	dOutMat := c.dOutMat
	for i := 0; i < n; i++ {
		// One pass per output channel both gathers the [OutC, HW] gradient
		// into [HW, OutC] layout and sums the bias gradient over spatial
		// positions — the bias sum reads the same values in the same
		// ascending-p order the separate loop did, so fusing is bit-exact.
		gslice := grad.Data[i*outFeat : (i+1)*outFeat]
		for oc := 0; oc < c.OutC; oc++ {
			s := 0.0
			base := oc * hw
			for p := 0; p < hw; p++ {
				v := gslice[base+p]
				dOutMat.Data[p*c.OutC+oc] = v
				s += v
			}
			c.B.Grad.Data[oc] += s
		}
		// Weight gradient: colᵀ @ dOut.
		img := c.x.Data[i*inFeat : (i+1)*inFeat]
		tensor.Im2Col(c.col, img, c.Geom)
		tensor.MatMulTransAInto(c.dW, c.colT, dOutMat)
		tensor.AXPY(c.W.Grad, 1, c.dW)
		// Input gradient: (dOut @ Wᵀ) scattered by col2im.
		tensor.MatMulTransBInto(c.dCol, dOutMat, c.W.Value) // [HW, ColCols]
		tensor.Col2Im(dx.Data[i*inFeat:(i+1)*inFeat], c.dCol.Data, c.Geom)
	}
	return dx
}

// Params returns the filter weights and bias.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// OutFeatures reports OutC*OutH*OutW.
func (c *Conv2D) OutFeatures() int { return c.OutC * c.Geom.OutH() * c.Geom.OutW() }
