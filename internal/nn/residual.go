package nn

import (
	"fmt"

	"lcasgd/internal/tensor"
)

// Residual implements the ResNet basic-block skeleton: out = ReLU(path(x) +
// shortcut(x)). Shortcut may be nil for an identity skip (requires the path
// to preserve the feature width); otherwise it is typically a strided 1×1
// convolution + BN projection, matching He et al. 2016.
type Residual struct {
	Path     *Sequential
	Shortcut *Sequential // nil means identity

	sum *tensor.Tensor // pre-activation cache for the final ReLU backward

	// Reused buffers (see reuseFor).
	out, dSum, dx *tensor.Tensor
}

// NewResidual builds a residual block.
func NewResidual(path *Sequential, shortcut *Sequential) *Residual {
	if shortcut == nil && path.OutFeatures() == 0 {
		panic("nn: Residual path must report its feature width")
	}
	return &Residual{Path: path, Shortcut: shortcut}
}

// Forward computes ReLU(path(x) + shortcut(x)).
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	main := r.Path.Forward(x, train)
	var skip *tensor.Tensor
	if r.Shortcut != nil {
		skip = r.Shortcut.Forward(x, train)
	} else {
		skip = x
	}
	if !main.SameShape(skip) {
		panic(fmt.Sprintf("nn: residual shape mismatch %v vs %v (missing projection shortcut?)", main.Shape, skip.Shape))
	}
	sum := reuseFor(&r.sum, main.Shape)
	tensor.Add(sum, main, skip)
	out := reuseFor(&r.out, sum.Shape)
	tensor.ReLU(out, sum)
	return out
}

// Backward propagates through the final ReLU, then through both branches,
// summing their input gradients.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dSum := reuseFor(&r.dSum, grad.Shape)
	tensor.ReLUBackward(dSum, grad, r.sum)
	dxPath := r.Path.Backward(dSum)
	var dxSkip *tensor.Tensor
	if r.Shortcut != nil {
		dxSkip = r.Shortcut.Backward(dSum)
	} else {
		dxSkip = dSum
	}
	dx := reuseFor(&r.dx, dxPath.Shape)
	tensor.Add(dx, dxPath, dxSkip)
	return dx
}

// Params returns the parameters of both branches in a fresh slice — it must
// not append into the branches' cached walks (callers treat those as
// read-only); containers cache the combined walk anyway.
func (r *Residual) Params() []*Param {
	pathPs := r.Path.Params()
	if r.Shortcut == nil {
		return pathPs
	}
	shortPs := r.Shortcut.Params()
	ps := make([]*Param, 0, len(pathPs)+len(shortPs))
	ps = append(ps, pathPs...)
	ps = append(ps, shortPs...)
	return ps
}

// OutFeatures reports the path's output width.
func (r *Residual) OutFeatures() int { return r.Path.OutFeatures() }
