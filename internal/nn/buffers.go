package nn

import "lcasgd/internal/tensor"

// reuseFor returns the cached buffer *buf when it already has the wanted
// shape, replacing it with a fresh tensor otherwise.
//
// This is the memory model of the whole layer zoo (see DESIGN.md "Memory
// model"): every layer keeps one output buffer and one input-gradient
// buffer alive per instance instead of calling tensor.New per Forward/
// Backward. Because each simulated worker owns a private replica of the
// network (the Layer contract) this is single-owner state, and because the
// buffers are distinct per layer, forward activations cached for the
// backward pass can never alias the gradients flowing back through other
// layers. A shape change (a different batch size, e.g. an evaluation
// remainder batch) reallocates exactly once per change.
//
// The returned tensor's contents are unspecified; callers either overwrite
// every element or explicitly Zero() it first (the scatter-accumulate
// kernels).
func reuseFor(buf **tensor.Tensor, shape []int) *tensor.Tensor {
	b := *buf
	if b != nil && sameDims(b.Shape, shape) {
		return b
	}
	b = tensor.New(shape...)
	*buf = b
	return b
}

// reuse2 is reuseFor for the common [r, c] case without building a shape
// slice at the call site.
func reuse2(buf **tensor.Tensor, r, c int) *tensor.Tensor {
	b := *buf
	if b != nil && len(b.Shape) == 2 && b.Shape[0] == r && b.Shape[1] == c {
		return b
	}
	b = tensor.New(r, c)
	*buf = b
	return b
}

func sameDims(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
