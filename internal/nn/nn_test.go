package nn

import (
	"math"
	"testing"

	"lcasgd/internal/rng"
	"lcasgd/internal/tensor"
)

func TestDenseForwardKnown(t *testing.T) {
	g := rng.New(1)
	d := NewDense("fc", 2, 2, g)
	copy(d.W.Value.Data, []float64{1, 2, 3, 4}) // W = [[1,2],[3,4]]
	copy(d.B.Value.Data, []float64{10, 20})
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	y := d.Forward(x, true)
	if y.Data[0] != 14 || y.Data[1] != 26 {
		t.Fatalf("dense forward: %v", y.Data)
	}
}

func TestDenseShapePanic(t *testing.T) {
	g := rng.New(1)
	d := NewDense("fc", 3, 2, g)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input width")
		}
	}()
	d.Forward(tensor.New(1, 4), true)
}

func TestDenseGradCheck(t *testing.T) {
	g := rng.New(2)
	net := NewSequential(
		NewDense("fc1", 5, 7, g),
		NewReLU(7),
		NewDense("fc2", 7, 3, g),
	)
	x := tensor.New(4, 5)
	g.FillNormal(x.Data, 1)
	labels := []int{0, 2, 1, 2}
	var ce SoftmaxCrossEntropy
	loss := func() float64 {
		out := net.Forward(x, true)
		v := ce.Forward(out, labels)
		net.Backward(ce.Backward(1))
		return v
	}
	worst, err := GradCheck(net, loss, 1e-5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0.01 {
		t.Fatalf("dense gradcheck worst rel error %v", worst)
	}
}

func TestConvGradCheck(t *testing.T) {
	g := rng.New(3)
	geom := tensor.ConvGeom{InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := NewConv2D("c1", geom, 3, g)
	net := NewSequential(
		conv,
		NewReLU(conv.OutFeatures()),
		NewGlobalAvgPool(3, 25),
		NewDense("fc", 3, 2, g),
	)
	x := tensor.New(2, 50)
	g.FillNormal(x.Data, 1)
	labels := []int{0, 1}
	var ce SoftmaxCrossEntropy
	loss := func() float64 {
		out := net.Forward(x, true)
		v := ce.Forward(out, labels)
		net.Backward(ce.Backward(1))
		return v
	}
	worst, err := GradCheck(net, loss, 1e-5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0.01 {
		t.Fatalf("conv gradcheck worst rel error %v", worst)
	}
}

func TestConvStride2GradCheck(t *testing.T) {
	g := rng.New(4)
	geom := tensor.ConvGeom{InC: 1, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 2, Pad: 1}
	conv := NewConv2D("c1", geom, 2, g)
	net := NewSequential(conv, NewGlobalAvgPool(2, conv.Geom.OutH()*conv.Geom.OutW()), NewDense("fc", 2, 2, g))
	x := tensor.New(2, 36)
	g.FillNormal(x.Data, 1)
	labels := []int{1, 0}
	var ce SoftmaxCrossEntropy
	loss := func() float64 {
		out := net.Forward(x, true)
		v := ce.Forward(out, labels)
		net.Backward(ce.Backward(1))
		return v
	}
	if _, err := GradCheck(net, loss, 1e-5, 3); err != nil {
		t.Fatal(err)
	}
}

func TestBatchNormGradCheck(t *testing.T) {
	g := rng.New(5)
	bn := NewBatchNorm("bn", 4, 1)
	net := NewSequential(
		NewDense("fc1", 3, 4, g),
		bn,
		NewReLU(4),
		NewDense("fc2", 4, 2, g),
	)
	x := tensor.New(6, 3)
	g.FillNormal(x.Data, 1)
	labels := []int{0, 1, 0, 1, 1, 0}
	var ce SoftmaxCrossEntropy
	loss := func() float64 {
		out := net.Forward(x, true)
		v := ce.Forward(out, labels)
		net.Backward(ce.Backward(1))
		return v
	}
	worst, err := GradCheck(net, loss, 1e-5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0.02 {
		t.Fatalf("bn gradcheck worst rel error %v", worst)
	}
}

func TestBatchNormSpatialGradCheck(t *testing.T) {
	g := rng.New(6)
	geom := tensor.ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := NewConv2D("c", geom, 2, g)
	bn := NewBatchNorm("bn", 2, 16)
	net := NewSequential(conv, bn, NewReLU(32), NewGlobalAvgPool(2, 16), NewDense("fc", 2, 2, g))
	x := tensor.New(3, 16)
	g.FillNormal(x.Data, 1)
	labels := []int{0, 1, 1}
	var ce SoftmaxCrossEntropy
	loss := func() float64 {
		out := net.Forward(x, true)
		v := ce.Forward(out, labels)
		net.Backward(ce.Backward(1))
		return v
	}
	if _, err := GradCheck(net, loss, 1e-5, 3); err != nil {
		t.Fatal(err)
	}
}

func TestBatchNormNormalizesTrainingBatch(t *testing.T) {
	bn := NewBatchNorm("bn", 2, 1)
	x := tensor.New(100, 2)
	g := rng.New(7)
	for i := 0; i < 100; i++ {
		x.Set(i, 0, g.NormalScaled(5, 3))
		x.Set(i, 1, g.NormalScaled(-2, 0.5))
	}
	y := bn.Forward(x, true)
	for c := 0; c < 2; c++ {
		var sum, sumsq float64
		for i := 0; i < 100; i++ {
			v := y.At(i, c)
			sum += v
			sumsq += v * v
		}
		mean := sum / 100
		variance := sumsq/100 - mean*mean
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("channel %d mean %v after BN", c, mean)
		}
		if math.Abs(variance-1) > 0.01 {
			t.Fatalf("channel %d variance %v after BN", c, variance)
		}
	}
}

func TestBatchNormRunningStatsEMA(t *testing.T) {
	bn := NewBatchNorm("bn", 1, 1)
	bn.Momentum = 0.5
	x := tensor.FromSlice([]float64{2, 4}, 2, 1) // mean 3, var 1
	bn.Forward(x, true)
	if math.Abs(bn.RunningMean[0]-1.5) > 1e-12 { // 0.5*0 + 0.5*3
		t.Fatalf("running mean %v", bn.RunningMean[0])
	}
	if math.Abs(bn.RunningVar[0]-1.0) > 1e-12 { // 0.5*1 + 0.5*1
		t.Fatalf("running var %v", bn.RunningVar[0])
	}
	m := bn.BatchMean()
	v := bn.BatchVar()
	if m[0] != 3 || v[0] != 1 {
		t.Fatalf("batch stats %v %v", m, v)
	}
}

func TestBatchNormInferenceUsesRunning(t *testing.T) {
	bn := NewBatchNorm("bn", 1, 1)
	bn.SetRunning([]float64{10}, []float64{4})
	x := tensor.FromSlice([]float64{12}, 1, 1)
	y := bn.Forward(x, false)
	want := (12.0 - 10.0) / math.Sqrt(4+BNEpsilon)
	if math.Abs(y.Data[0]-want) > 1e-9 {
		t.Fatalf("inference BN: got %v want %v", y.Data[0], want)
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := NewMaxPool2D(1, 2, 2, 2)
	x := tensor.FromSlice([]float64{1, 5, 3, 2}, 1, 4)
	y := p.Forward(x, true)
	if y.Len() != 1 || y.Data[0] != 5 {
		t.Fatalf("maxpool forward: %v", y.Data)
	}
	dx := p.Backward(tensor.FromSlice([]float64{7}, 1, 1))
	want := []float64{0, 7, 0, 0}
	for i := range want {
		if dx.Data[i] != want[i] {
			t.Fatalf("maxpool backward: %v", dx.Data)
		}
	}
}

func TestGlobalAvgPoolForwardBackward(t *testing.T) {
	p := NewGlobalAvgPool(2, 4)
	x := tensor.FromSlice([]float64{1, 2, 3, 4, 10, 10, 10, 10}, 1, 8)
	y := p.Forward(x, true)
	if y.Data[0] != 2.5 || y.Data[1] != 10 {
		t.Fatalf("gap forward: %v", y.Data)
	}
	dx := p.Backward(tensor.FromSlice([]float64{4, 8}, 1, 2))
	if dx.Data[0] != 1 || dx.Data[4] != 2 {
		t.Fatalf("gap backward: %v", dx.Data)
	}
}

func TestResidualIdentityGradCheck(t *testing.T) {
	g := rng.New(8)
	path := NewSequential(NewDense("p1", 4, 4, g), NewReLU(4), NewDense("p2", 4, 4, g))
	block := NewResidual(path, nil)
	net := NewSequential(NewDense("in", 3, 4, g), block, NewDense("out", 4, 2, g))
	x := tensor.New(3, 3)
	g.FillNormal(x.Data, 1)
	labels := []int{0, 1, 1}
	var ce SoftmaxCrossEntropy
	loss := func() float64 {
		out := net.Forward(x, true)
		v := ce.Forward(out, labels)
		net.Backward(ce.Backward(1))
		return v
	}
	if _, err := GradCheck(net, loss, 1e-5, 1); err != nil {
		t.Fatal(err)
	}
}

func TestResidualProjectionGradCheck(t *testing.T) {
	g := rng.New(9)
	path := NewSequential(NewDense("p1", 4, 6, g))
	short := NewSequential(NewDense("s1", 4, 6, g))
	block := NewResidual(path, short)
	net := NewSequential(block, NewDense("out", 6, 2, g))
	x := tensor.New(3, 4)
	g.FillNormal(x.Data, 1)
	labels := []int{1, 0, 1}
	var ce SoftmaxCrossEntropy
	loss := func() float64 {
		out := net.Forward(x, true)
		v := ce.Forward(out, labels)
		net.Backward(ce.Backward(1))
		return v
	}
	if _, err := GradCheck(net, loss, 1e-5, 1); err != nil {
		t.Fatal(err)
	}
}

func TestResidualShapeMismatchPanics(t *testing.T) {
	g := rng.New(10)
	path := NewSequential(NewDense("p", 4, 6, g)) // widens without projection
	block := NewResidual(path, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	block.Forward(tensor.New(1, 4), true)
}

func TestSoftmaxCEKnownValue(t *testing.T) {
	var ce SoftmaxCrossEntropy
	logits := tensor.FromSlice([]float64{0, 0}, 1, 2)
	loss := ce.Forward(logits, []int{0})
	if math.Abs(loss-math.Log(2)) > 1e-12 {
		t.Fatalf("uniform CE loss = %v, want ln2", loss)
	}
	grad := ce.Backward(1)
	if math.Abs(grad.Data[0]-(-0.5)) > 1e-12 || math.Abs(grad.Data[1]-0.5) > 1e-12 {
		t.Fatalf("CE grad: %v", grad.Data)
	}
}

func TestSoftmaxCEGradientScale(t *testing.T) {
	var ce SoftmaxCrossEntropy
	logits := tensor.FromSlice([]float64{1, -1, 0.5, 2}, 2, 2)
	ce.Forward(logits, []int{0, 1})
	g1 := ce.Backward(1).Clone() // Backward reuses its buffer across calls
	g2 := ce.Backward(2.5)
	for i := range g1.Data {
		if math.Abs(g2.Data[i]-2.5*g1.Data[i]) > 1e-12 {
			t.Fatal("Backward(scale) must scale the gradient linearly")
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{2, 1, 0, 5, 1, 1}, 3, 2)
	acc := Accuracy(logits, []int{0, 1, 0})
	if math.Abs(acc-1.0) > 1e-12 {
		t.Fatalf("accuracy %v", acc)
	}
	acc = Accuracy(logits, []int{1, 0, 1})
	if math.Abs(acc) > 1e-12 {
		t.Fatalf("accuracy %v", acc)
	}
}

func TestMSELoss(t *testing.T) {
	var mse MSELoss
	pred := tensor.FromSlice([]float64{1, 2}, 2)
	target := tensor.FromSlice([]float64{0, 4}, 2)
	loss := mse.Forward(pred, target)
	if math.Abs(loss-2.5) > 1e-12 { // (1 + 4)/2
		t.Fatalf("mse %v", loss)
	}
	g := mse.Backward()
	if math.Abs(g.Data[0]-1) > 1e-12 || math.Abs(g.Data[1]-(-2)) > 1e-12 {
		t.Fatalf("mse grad %v", g.Data)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	g := rng.New(11)
	net := NewSequential(NewDense("a", 3, 4, g), NewBatchNorm("bn", 4, 1), NewDense("b", 4, 2, g))
	params := net.Params()
	n := ParamCount(params)
	buf := make([]float64, n)
	FlattenValues(buf, params)
	// Perturb and restore.
	for _, p := range params {
		p.Value.Fill(0)
	}
	UnflattenValues(params, buf)
	buf2 := make([]float64, n)
	FlattenValues(buf2, params)
	for i := range buf {
		if buf[i] != buf2[i] {
			t.Fatal("flatten/unflatten round trip failed")
		}
	}
}

func TestFlattenGrads(t *testing.T) {
	g := rng.New(12)
	net := NewSequential(NewDense("a", 2, 2, g))
	for _, p := range net.Params() {
		p.Grad.Fill(3)
	}
	buf := make([]float64, ParamCount(net.Params()))
	FlattenGrads(buf, net.Params())
	for _, v := range buf {
		if v != 3 {
			t.Fatalf("FlattenGrads: %v", buf)
		}
	}
}

func TestBatchNormsDiscovery(t *testing.T) {
	g := rng.New(13)
	inner := NewSequential(NewDense("d", 4, 4, g), NewBatchNorm("bn1", 4, 1))
	short := NewSequential(NewBatchNorm("bn2", 4, 1))
	block := NewResidual(inner, short)
	net := NewSequential(NewBatchNorm("bn0", 4, 1), block, NewSequential(NewBatchNorm("bn3", 4, 1)))
	bns := net.BatchNorms()
	if len(bns) != 4 {
		t.Fatalf("found %d BN layers, want 4", len(bns))
	}
}

func TestZeroGrad(t *testing.T) {
	g := rng.New(14)
	net := NewSequential(NewDense("a", 2, 3, g))
	for _, p := range net.Params() {
		p.Grad.Fill(1)
	}
	net.ZeroGrad()
	for _, p := range net.Params() {
		for _, v := range p.Grad.Data {
			if v != 0 {
				t.Fatal("ZeroGrad left residue")
			}
		}
	}
}

func TestGradientAccumulation(t *testing.T) {
	// Backward twice without ZeroGrad must double the gradient.
	g := rng.New(15)
	net := NewSequential(NewDense("a", 3, 2, g))
	x := tensor.New(2, 3)
	g.FillNormal(x.Data, 1)
	var ce SoftmaxCrossEntropy
	run := func() {
		out := net.Forward(x, true)
		ce.Forward(out, []int{0, 1})
		net.Backward(ce.Backward(1))
	}
	net.ZeroGrad()
	run()
	once := append([]float64(nil), net.Params()[0].Grad.Data...)
	run()
	twice := net.Params()[0].Grad.Data
	for i := range once {
		if math.Abs(twice[i]-2*once[i]) > 1e-12 {
			t.Fatal("gradients must accumulate across Backward calls")
		}
	}
}
