package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"lcasgd/internal/rng"
)

func TestConvGeomDerived(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if g.OutH() != 8 || g.OutW() != 8 {
		t.Fatalf("same-padding 3x3: out %dx%d", g.OutH(), g.OutW())
	}
	g2 := ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 2, Pad: 1}
	if g2.OutH() != 4 || g2.OutW() != 4 {
		t.Fatalf("stride-2: out %dx%d", g2.OutH(), g2.OutW())
	}
	if g.ColRows() != 64 || g.ColCols() != 27 {
		t.Fatalf("col dims %dx%d", g.ColRows(), g.ColCols())
	}
}

func TestConvGeomValidate(t *testing.T) {
	good := ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 0}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := []ConvGeom{
		{InC: 0, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1},
		{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 0},
		{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: -1},
		{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, Stride: 1, Pad: 0},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Fatalf("bad geometry %d accepted: %+v", i, g)
		}
	}
}

// naiveConv performs direct convolution of one image with one filter for
// cross-checking the im2col path.
func naiveConv(img []float64, w []float64, g ConvGeom) []float64 {
	outH, outW := g.OutH(), g.OutW()
	out := make([]float64, outH*outW)
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			s := 0.0
			for c := 0; c < g.InC; c++ {
				for ky := 0; ky < g.KH; ky++ {
					for kx := 0; kx < g.KW; kx++ {
						iy := oy*g.Stride - g.Pad + ky
						ix := ox*g.Stride - g.Pad + kx
						if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
							continue
						}
						s += img[c*g.InH*g.InW+iy*g.InW+ix] * w[c*g.KH*g.KW+ky*g.KW+kx]
					}
				}
			}
			out[oy*outW+ox] = s
		}
	}
	return out
}

func TestIm2ColMatchesNaiveConv(t *testing.T) {
	geoms := []ConvGeom{
		{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 2, InH: 7, InW: 7, KH: 3, KW: 3, Stride: 2, Pad: 1},
		{InC: 4, InH: 5, InW: 5, KH: 1, KW: 1, Stride: 1, Pad: 0},
		{InC: 1, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 0},
	}
	for gi, g := range geoms {
		r := rng.New(uint64(gi) + 100)
		img := make([]float64, g.InC*g.InH*g.InW)
		w := make([]float64, g.ColCols())
		r.FillNormal(img, 1)
		r.FillNormal(w, 1)
		col := make([]float64, g.ColRows()*g.ColCols())
		Im2Col(col, img, g)
		// conv = col @ w  (treat w as a single output filter)
		colT := FromSlice(col, g.ColRows(), g.ColCols())
		wT := FromSlice(w, g.ColCols(), 1)
		got := MatMul(colT, wT)
		want := naiveConv(img, w, g)
		for i := range want {
			if math.Abs(got.Data[i]-want[i]) > 1e-10 {
				t.Fatalf("geom %d: im2col conv mismatch at %d: %v vs %v", gi, i, got.Data[i], want[i])
			}
		}
	}
}

// TestCol2ImIsAdjoint checks <Im2Col(x), y> == <x, Col2Im(y)> — the defining
// property of an adjoint pair, which is exactly what backprop requires.
func TestCol2ImIsAdjoint(t *testing.T) {
	f := func(seed uint64) bool {
		g := ConvGeom{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}
		r := rng.New(seed)
		x := make([]float64, g.InC*g.InH*g.InW)
		y := make([]float64, g.ColRows()*g.ColCols())
		r.FillNormal(x, 1)
		r.FillNormal(y, 1)

		colX := make([]float64, len(y))
		Im2Col(colX, x, g)
		lhs := 0.0
		for i := range y {
			lhs += colX[i] * y[i]
		}

		imY := make([]float64, len(x))
		Col2Im(imY, y, g)
		rhs := 0.0
		for i := range x {
			rhs += x[i] * imY[i]
		}
		return math.Abs(lhs-rhs) < 1e-8*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCol2ImAccumulates(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	col := make([]float64, g.ColRows()*g.ColCols())
	for i := range col {
		col[i] = 1
	}
	dst := make([]float64, 16)
	dst[0] = 5 // pre-existing content must be preserved (accumulation)
	Col2Im(dst, col, g)
	if dst[0] <= 5 {
		t.Fatalf("Col2Im must accumulate, got dst[0]=%v", dst[0])
	}
	// Center pixel participates in all 9 kernel positions; corner in 4.
	center := dst[1*4+1]
	if center != 9 {
		t.Fatalf("center accumulation = %v, want 9", center)
	}
}

func TestIm2ColPanicsOnBadSizes(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Im2Col(make([]float64, 3), make([]float64, 16), g)
}
