// Package tensor implements dense row-major float64 tensors and the
// numerical kernels the neural-network substrate is built on: elementwise
// arithmetic, reductions, blocked parallel matrix multiplication, and the
// im2col/col2im transforms used by convolution layers.
//
// Everything is stdlib-only and deterministic: parallel kernels partition
// work by row ranges so the floating-point summation order is independent of
// goroutine scheduling.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major array of float64 with an explicit shape.
// Data aliasing is part of the contract: views returned by Reshape share the
// underlying slice.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it panics if the length does not match the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v requires %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.Shape) }

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.Shape) != len(u.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != u.Shape[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies u's data into t. Shapes must match in element count.
func (t *Tensor) CopyFrom(u *Tensor) {
	if len(t.Data) != len(u.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d vs %d", len(t.Data), len(u.Data)))
	}
	copy(t.Data, u.Data)
}

// Reshape returns a view with a new shape sharing the same data.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v", t.Shape, len(t.Data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// At returns the element at the given multi-index (2-D fast path).
func (t *Tensor) At(i, j int) float64 {
	return t.Data[i*t.Shape[1]+j]
}

// Set assigns the element at the given 2-D index.
func (t *Tensor) Set(i, j int, v float64) {
	t.Data[i*t.Shape[1]+j] = v
}

// Zero resets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// String renders a compact description (shape plus a data prefix), mainly
// for debugging and test failure messages.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.Shape)
	n := len(t.Data)
	show := n
	if show > 8 {
		show = 8
	}
	for i := 0; i < show; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.Data[i])
	}
	if n > show {
		fmt.Fprintf(&b, " ... (%d more)", n-show)
	}
	b.WriteString("]")
	return b.String()
}

// MaxAbs returns the maximum absolute element value, or 0 for empty tensors.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Dot returns the inner product of t and u viewed as flat vectors.
func (t *Tensor) Dot(u *Tensor) float64 {
	if len(t.Data) != len(u.Data) {
		panic("tensor: Dot length mismatch")
	}
	s := 0.0
	for i, v := range t.Data {
		s += v * u.Data[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	return math.Sqrt(t.Dot(t))
}

// HasNaN reports whether any element is NaN or Inf, used by training-loop
// sanity checks and failure-injection tests.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
