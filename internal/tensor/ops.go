package tensor

import (
	"fmt"
	"math"
)

// Add computes dst = a + b elementwise. dst may alias a or b.
func Add(dst, a, b *Tensor) {
	checkSameLen("Add", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Sub computes dst = a - b elementwise.
func Sub(dst, a, b *Tensor) {
	checkSameLen("Sub", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// Mul computes dst = a ⊙ b (elementwise / Hadamard product), the operation
// at the heart of DC-ASGD's Formula 3.
func Mul(dst, a, b *Tensor) {
	checkSameLen("Mul", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

// Scale computes dst = s * a.
func Scale(dst, a *Tensor, s float64) {
	checkSameLen("Scale", dst, a)
	for i := range dst.Data {
		dst.Data[i] = s * a.Data[i]
	}
}

// AXPY computes dst += alpha * x, the SGD weight-update kernel.
func AXPY(dst *Tensor, alpha float64, x *Tensor) {
	checkSameLen("AXPY", dst, x)
	for i := range dst.Data {
		dst.Data[i] += alpha * x.Data[i]
	}
}

// AddScalar computes dst = a + s.
func AddScalar(dst, a *Tensor, s float64) {
	checkSameLen("AddScalar", dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + s
	}
}

// Apply sets dst[i] = f(a[i]).
func Apply(dst, a *Tensor, f func(float64) float64) {
	checkSameLen("Apply", dst, a)
	for i := range dst.Data {
		dst.Data[i] = f(a.Data[i])
	}
}

// ReLU computes dst = max(a, 0).
func ReLU(dst, a *Tensor) {
	checkSameLen("ReLU", dst, a)
	for i, v := range a.Data {
		if v > 0 {
			dst.Data[i] = v
		} else {
			dst.Data[i] = 0
		}
	}
}

// ReLUBackward computes dst = grad where x > 0, else 0.
func ReLUBackward(dst, grad, x *Tensor) {
	checkSameLen("ReLUBackward", dst, grad, x)
	for i := range dst.Data {
		if x.Data[i] > 0 {
			dst.Data[i] = grad.Data[i]
		} else {
			dst.Data[i] = 0
		}
	}
}

// Transpose returns a new tensor that is the transpose of the 2-D tensor a.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose needs rank 2, got shape %v", a.Shape))
	}
	r, c := a.Shape[0], a.Shape[1]
	out := New(c, r)
	const block = 32 // cache-blocked transpose
	for ib := 0; ib < r; ib += block {
		imax := min(ib+block, r)
		for jb := 0; jb < c; jb += block {
			jmax := min(jb+block, c)
			for i := ib; i < imax; i++ {
				row := a.Data[i*c : (i+1)*c]
				for j := jb; j < jmax; j++ {
					out.Data[j*r+i] = row[j]
				}
			}
		}
	}
	return out
}

// RowSum computes, for a 2-D tensor a of shape [r, c], the per-column sum
// over rows, returning a tensor of shape [c]. Used for bias gradients.
func RowSum(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: RowSum needs rank 2, got shape %v", a.Shape))
	}
	out := New(a.Shape[1])
	rowSum(out, a)
	return out
}

// RowSumInto computes the per-column sum of the 2-D tensor a into the
// preallocated dst of shape [c]. dst is zeroed first.
func RowSumInto(dst, a *Tensor) {
	if a.Rank() != 2 || dst.Len() != a.Shape[1] {
		panic(fmt.Sprintf("tensor: RowSumInto shapes dst%v a%v", dst.Shape, a.Shape))
	}
	dst.Zero()
	rowSum(dst, a)
}

func rowSum(out, a *Tensor) {
	r, c := a.Shape[0], a.Shape[1]
	for i := 0; i < r; i++ {
		row := a.Data[i*c : (i+1)*c]
		for j, v := range row {
			out.Data[j] += v
		}
	}
}

// AddRowVector computes dst = a + broadcast(v) where v has shape [c] and a
// has shape [r, c]. Used for bias addition.
func AddRowVector(dst, a, v *Tensor) {
	if a.Rank() != 2 || v.Len() != a.Shape[1] {
		panic(fmt.Sprintf("tensor: AddRowVector shapes %v %v", a.Shape, v.Shape))
	}
	checkSameLen("AddRowVector", dst, a)
	c := a.Shape[1]
	for i := 0; i < a.Shape[0]; i++ {
		base := i * c
		for j := 0; j < c; j++ {
			dst.Data[base+j] = a.Data[base+j] + v.Data[j]
		}
	}
}

// Softmax computes row-wise softmax of the 2-D tensor logits into dst with
// the standard max-subtraction trick for numerical stability.
func Softmax(dst, logits *Tensor) {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Softmax needs rank 2, got %v", logits.Shape))
	}
	checkSameLen("Softmax", dst, logits)
	r, c := logits.Shape[0], logits.Shape[1]
	for i := 0; i < r; i++ {
		row := logits.Data[i*c : (i+1)*c]
		out := dst.Data[i*c : (i+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxv)
			out[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range out {
			out[j] *= inv
		}
	}
}

// ArgmaxRows returns, for a 2-D tensor, the index of the max element in each
// row. Used to turn logits into class predictions.
func ArgmaxRows(a *Tensor) []int {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: ArgmaxRows needs rank 2, got %v", a.Shape))
	}
	out := make([]int, a.Shape[0])
	ArgmaxRowsInto(out, a)
	return out
}

// ArgmaxRowsInto writes each row's argmax into the preallocated dst, which
// must have exactly one slot per row — the allocation-free variant the
// evaluation shards reuse across batches.
func ArgmaxRowsInto(dst []int, a *Tensor) {
	if a.Rank() != 2 || len(dst) != a.Shape[0] {
		panic(fmt.Sprintf("tensor: ArgmaxRowsInto dst len %d for shape %v", len(dst), a.Shape))
	}
	r, c := a.Shape[0], a.Shape[1]
	out := dst
	for i := 0; i < r; i++ {
		row := a.Data[i*c : (i+1)*c]
		best, bestj := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, bestj = v, j+1
			}
		}
		out[i] = bestj
	}
}

// ClipInPlace clamps every element of t into [-limit, limit]. Gradient
// clipping keeps the online LSTM predictors stable.
func ClipInPlace(t *Tensor, limit float64) {
	for i, v := range t.Data {
		if v > limit {
			t.Data[i] = limit
		} else if v < -limit {
			t.Data[i] = -limit
		}
	}
}

func checkSameLen(op string, ts ...*Tensor) {
	n := len(ts[0].Data)
	for _, t := range ts[1:] {
		if len(t.Data) != n {
			panic(fmt.Sprintf("tensor: %s length mismatch %d vs %d", op, n, len(t.Data)))
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
