package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution: input channels and
// spatial size, kernel size, stride, and zero padding. Output spatial size is
// derived. Square kernels and inputs are assumed (all the paper's networks
// use square 3×3/1×1 kernels on square feature maps).
type ConvGeom struct {
	InC, InH, InW int
	KH, KW        int
	Stride        int
	Pad           int
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// ColRows returns the number of rows of the im2col matrix for one image.
func (g ConvGeom) ColRows() int { return g.OutH() * g.OutW() }

// ColCols returns the number of columns of the im2col matrix.
func (g ConvGeom) ColCols() int { return g.InC * g.KH * g.KW }

// Validate checks the geometry is self-consistent.
func (g ConvGeom) Validate() error {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 || g.KH <= 0 || g.KW <= 0 {
		return fmt.Errorf("tensor: conv geometry has non-positive dims: %+v", g)
	}
	if g.Stride <= 0 {
		return fmt.Errorf("tensor: conv stride must be positive, got %d", g.Stride)
	}
	if g.Pad < 0 {
		return fmt.Errorf("tensor: conv pad must be non-negative, got %d", g.Pad)
	}
	if g.InH+2*g.Pad < g.KH || g.InW+2*g.Pad < g.KW {
		return fmt.Errorf("tensor: kernel larger than padded input: %+v", g)
	}
	return nil
}

// Im2Col lowers one image (shape [InC, InH, InW] flattened) into a matrix of
// shape [OutH*OutW, InC*KH*KW] so convolution becomes a matmul with the
// [InC*KH*KW, OutC] weight matrix. dst must have ColRows()*ColCols()
// elements.
func Im2Col(dst []float64, img []float64, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	cols := g.ColCols()
	if len(dst) != outH*outW*cols {
		panic(fmt.Sprintf("tensor: Im2Col dst len %d, want %d", len(dst), outH*outW*cols))
	}
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2Col img len %d, want %d", len(img), g.InC*g.InH*g.InW))
	}
	// Per output pixel, the kx loop splits into prefix zeros / an in-bounds
	// contiguous copy / suffix zeros, hoisting the per-element bounds checks
	// out of the inner loop. kx0/kx1 clamp so the segment is empty (and only
	// the zero fills run) when the whole row is out of range horizontally.
	idx := 0
	for oy := 0; oy < outH; oy++ {
		iy0 := oy*g.Stride - g.Pad
		for ox := 0; ox < outW; ox++ {
			ix0 := ox*g.Stride - g.Pad
			kx0 := min(max(-ix0, 0), g.KW)
			kx1 := max(min(g.InW-ix0, g.KW), kx0)
			for c := 0; c < g.InC; c++ {
				chBase := c * g.InH * g.InW
				for ky := 0; ky < g.KH; ky++ {
					iy := iy0 + ky
					row := dst[idx : idx+g.KW]
					idx += g.KW
					if iy < 0 || iy >= g.InH {
						for kx := range row {
							row[kx] = 0
						}
						continue
					}
					for kx := 0; kx < kx0; kx++ {
						row[kx] = 0
					}
					rowBase := chBase + iy*g.InW + ix0
					copy(row[kx0:kx1], img[rowBase+kx0:rowBase+kx1])
					for kx := kx1; kx < g.KW; kx++ {
						row[kx] = 0
					}
				}
			}
		}
	}
}

// Col2Im scatters a column matrix's gradient back into image layout,
// accumulating overlapping patches — the adjoint of Im2Col. dst (the image
// gradient, [InC, InH, InW] flattened) is accumulated into, not zeroed.
func Col2Im(dst []float64, col []float64, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	cols := g.ColCols()
	if len(col) != outH*outW*cols {
		panic(fmt.Sprintf("tensor: Col2Im col len %d, want %d", len(col), outH*outW*cols))
	}
	if len(dst) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Col2Im dst len %d, want %d", len(dst), g.InC*g.InH*g.InW))
	}
	// Same segment clipping as Im2Col: only the in-bounds [kx0, kx1) span of
	// each kernel row is accumulated; padding positions are skipped by
	// advancing idx past them.
	idx := 0
	for oy := 0; oy < outH; oy++ {
		iy0 := oy*g.Stride - g.Pad
		for ox := 0; ox < outW; ox++ {
			ix0 := ox*g.Stride - g.Pad
			kx0 := min(max(-ix0, 0), g.KW)
			kx1 := max(min(g.InW-ix0, g.KW), kx0)
			for c := 0; c < g.InC; c++ {
				chBase := c * g.InH * g.InW
				for ky := 0; ky < g.KH; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= g.InH {
						idx += g.KW
						continue
					}
					row := col[idx+kx0 : idx+kx1]
					out := dst[chBase+iy*g.InW+ix0+kx0 : chBase+iy*g.InW+ix0+kx1]
					for kx, v := range row {
						out[kx] += v
					}
					idx += g.KW
				}
			}
		}
	}
}
