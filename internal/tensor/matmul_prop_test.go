package tensor

import (
	"testing"

	"lcasgd/internal/rng"
)

// The tiled kernels promise more than numerical closeness: because tiling
// partitions the output space and leaves every element's ascending-k
// accumulation chain intact, they must match a naive triple loop (which has
// the same chain) bit for bit. These tests demand exact equality — maxDiff
// == 0 — across a shape grid that covers degenerate dims, sub-tile sizes,
// exact tile multiples, off-by-one-past-a-tile sizes, and the packed-panel
// and parallel paths.

// naiveMatMulTransA mirrors matMulTransA's per-element chain: ascending p.
func naiveMatMulTransA(a, b *Tensor) *Tensor {
	k, m, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(p, i) * b.At(p, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// naiveMatMulTransB mirrors matMulTransB's per-element chain: ascending p.
func naiveMatMulTransB(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(j, p)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

var propDims = []int{1, 2, 3, 7, 64, 65, 100}

// sparsify zeroes roughly half the elements (exact zeros, like post-ReLU
// activations) to exercise the data-dependent skip paths.
func sparsify(t *Tensor, g *rng.RNG) {
	for i := range t.Data {
		if g.Float64() < 0.5 {
			t.Data[i] = 0
		}
	}
}

func TestMatMulTiledBitExactGrid(t *testing.T) {
	g := rng.New(101)
	for _, m := range propDims {
		for _, k := range propDims {
			for _, n := range propDims {
				for _, sparse := range []bool{false, true} {
					a := randMat(g, m, k)
					b := randMat(g, k, n)
					if sparse {
						sparsify(a, g)
						sparsify(b, g)
					}
					if d := maxDiff(MatMul(a, b), naiveMatMul(a, b)); d != 0 {
						t.Fatalf("MatMul m=%d k=%d n=%d sparse=%v: diff %g", m, k, n, sparse, d)
					}
				}
			}
		}
	}
}

func TestMatMulTransATiledBitExactGrid(t *testing.T) {
	g := rng.New(103)
	for _, m := range propDims {
		for _, k := range propDims {
			for _, n := range propDims {
				for _, sparse := range []bool{false, true} {
					a := randMat(g, k, m) // aᵀ is m x k
					b := randMat(g, k, n)
					if sparse {
						sparsify(a, g)
					}
					if d := maxDiff(MatMulTransA(a, b), naiveMatMulTransA(a, b)); d != 0 {
						t.Fatalf("MatMulTransA m=%d k=%d n=%d sparse=%v: diff %g", m, k, n, sparse, d)
					}
				}
			}
		}
	}
}

func TestMatMulTransBTiledBitExactGrid(t *testing.T) {
	g := rng.New(107)
	for _, m := range propDims {
		for _, k := range propDims {
			for _, n := range propDims {
				a := randMat(g, m, k)
				b := randMat(g, n, k) // bᵀ is k x n
				if d := maxDiff(MatMulTransB(a, b), naiveMatMulTransB(a, b)); d != 0 {
					t.Fatalf("MatMulTransB m=%d k=%d n=%d: diff %g", m, k, n, d)
				}
			}
		}
	}
}

// TestMatMulPackedPanelBitExact forces the packed-panel path (k*n above
// mmDirectB) with shapes that leave partial tiles on every axis, and checks
// it against the naive chain bit for bit.
func TestMatMulPackedPanelBitExact(t *testing.T) {
	g := rng.New(109)
	for _, dims := range [][3]int{
		{9, 300, 130},                  // partial kc and nc tails
		{5, 256, 128},                  // exact kc x nc multiples
		{6, 257, 129},                  // one past a tile boundary
		{3, mmKC + mmKC/2, mmNC*2 + 1}, // mid-tile k tail, odd n tail
	} {
		m, k, n := dims[0], dims[1], dims[2]
		if k*n <= mmDirectB {
			t.Fatalf("shape %v does not reach the packed path", dims)
		}
		a := randMat(g, m, k)
		b := randMat(g, k, n)
		if d := maxDiff(MatMul(a, b), naiveMatMul(a, b)); d != 0 {
			t.Fatalf("packed MatMul m=%d k=%d n=%d: diff %g", m, k, n, d)
		}
	}
}

// TestMatMulParallelPackedMatchesSequential covers the combination of the
// goroutine row split and the packed-panel path.
func TestMatMulParallelPackedMatchesSequential(t *testing.T) {
	g := rng.New(113)
	a := randMat(g, 70, 200)
	b := randMat(g, 200, 100)
	if 200*100 <= mmDirectB || 70*200*100 < parallelRowThreshold {
		t.Fatal("shape does not reach both the packed and parallel paths")
	}
	old := SetMatmulParallelism(1)
	seq := MatMul(a, b)
	SetMatmulParallelism(8)
	par := MatMul(a, b)
	SetMatmulParallelism(old)
	if maxDiff(seq, par) != 0 {
		t.Fatal("parallel packed matmul is not bit-identical to sequential")
	}
	if d := maxDiff(seq, naiveMatMul(a, b)); d != 0 {
		t.Fatalf("packed matmul vs naive: diff %g", d)
	}
}

func TestConvSegmentsMatchReference(t *testing.T) {
	// The segment-clipped Im2Col/Col2Im against a per-element reference,
	// across strides and pads including pad wider than the input.
	for _, g := range []ConvGeom{
		{InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 2, Pad: 1},
		{InC: 1, InH: 4, InW: 4, KH: 1, KW: 1, Stride: 1, Pad: 0},
		{InC: 2, InH: 3, InW: 3, KH: 3, KW: 3, Stride: 1, Pad: 3},
		{InC: 1, InH: 2, InW: 7, KH: 5, KW: 5, Stride: 2, Pad: 4},
	} {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		r := rng.New(127)
		img := make([]float64, g.InC*g.InH*g.InW)
		r.FillNormal(img, 1)
		got := make([]float64, g.ColRows()*g.ColCols())
		Im2Col(got, img, g)
		want := make([]float64, len(got))
		refIm2Col(want, img, g)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Im2Col %+v: element %d got %g want %g", g, i, got[i], want[i])
			}
		}

		col := make([]float64, len(got))
		r.FillNormal(col, 1)
		gotImg := make([]float64, len(img))
		Col2Im(gotImg, col, g)
		wantImg := make([]float64, len(img))
		refCol2Im(wantImg, col, g)
		for i := range wantImg {
			if gotImg[i] != wantImg[i] {
				t.Fatalf("Col2Im %+v: element %d got %g want %g", g, i, gotImg[i], wantImg[i])
			}
		}
	}
}

// refIm2Col is the pre-optimization per-element implementation.
func refIm2Col(dst []float64, img []float64, g ConvGeom) {
	idx := 0
	for oy := 0; oy < g.OutH(); oy++ {
		iy0 := oy*g.Stride - g.Pad
		for ox := 0; ox < g.OutW(); ox++ {
			ix0 := ox*g.Stride - g.Pad
			for c := 0; c < g.InC; c++ {
				for ky := 0; ky < g.KH; ky++ {
					iy := iy0 + ky
					for kx := 0; kx < g.KW; kx++ {
						ix := ix0 + kx
						if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
							dst[idx] = img[c*g.InH*g.InW+iy*g.InW+ix]
						} else {
							dst[idx] = 0
						}
						idx++
					}
				}
			}
		}
	}
}

// refCol2Im is the pre-optimization per-element adjoint.
func refCol2Im(dst []float64, col []float64, g ConvGeom) {
	idx := 0
	for oy := 0; oy < g.OutH(); oy++ {
		iy0 := oy*g.Stride - g.Pad
		for ox := 0; ox < g.OutW(); ox++ {
			ix0 := ox*g.Stride - g.Pad
			for c := 0; c < g.InC; c++ {
				for ky := 0; ky < g.KH; ky++ {
					iy := iy0 + ky
					for kx := 0; kx < g.KW; kx++ {
						ix := ix0 + kx
						if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
							dst[c*g.InH*g.InW+iy*g.InW+ix] += col[idx]
						}
						idx++
					}
				}
			}
		}
	}
}
