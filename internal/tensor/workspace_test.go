package tensor

import "testing"

func TestWorkspaceReuseAfterReset(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(2, 3)
	b := ws.Get(2, 3)
	if a == b {
		t.Fatal("two Gets of the same shape before Reset must be distinct buffers")
	}
	c := ws.Get(4)
	ws.Reset()
	a2 := ws.Get(2, 3)
	b2 := ws.Get(2, 3)
	c2 := ws.Get(4)
	if a2 != a || b2 != b || c2 != c {
		t.Fatal("Gets after Reset must replay the same buffers in order")
	}
}

func TestWorkspaceGeneration(t *testing.T) {
	ws := NewWorkspace()
	if ws.Generation() != 0 {
		t.Fatalf("fresh workspace generation %d", ws.Generation())
	}
	ws.Get(1)
	if ws.Live() != 1 {
		t.Fatalf("live %d after one Get", ws.Live())
	}
	ws.Reset()
	ws.Reset()
	if ws.Generation() != 2 {
		t.Fatalf("generation %d after two Resets", ws.Generation())
	}
	if ws.Live() != 0 {
		t.Fatalf("live %d after Reset", ws.Live())
	}
}

func TestWorkspaceSteadyStateZeroAlloc(t *testing.T) {
	ws := NewWorkspace()
	iter := func() {
		ws.Reset()
		ws.Get(8, 8)
		ws.Get(8, 8)
		ws.Get(16)
	}
	iter() // warm the arena
	if allocs := testing.AllocsPerRun(50, iter); allocs != 0 {
		t.Fatalf("steady-state workspace iteration allocates %v times", allocs)
	}
}

func TestWorkspaceRankLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on rank > 4")
		}
	}()
	NewWorkspace().Get(1, 1, 1, 1, 1)
}

func TestIntoVariantsMatchAllocating(t *testing.T) {
	a := New(3, 4)
	b := New(3, 5)
	for i := range a.Data {
		a.Data[i] = float64(i%7) - 3
	}
	for i := range b.Data {
		b.Data[i] = float64(i%5) - 2
	}

	want := MatMulTransA(a, b) // [4,5]
	got := New(4, 5)
	got.Fill(9) // poison: Into must fully overwrite
	MatMulTransAInto(got, a, b)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("MatMulTransAInto[%d] %v != %v", i, got.Data[i], want.Data[i])
		}
	}

	d := New(6, 4)
	for i := range d.Data {
		d.Data[i] = float64(i%4) - 2
	}
	wantB := MatMulTransB(a, d) // [3,6]
	gotB := New(3, 6)
	gotB.Fill(9)
	MatMulTransBInto(gotB, a, d)
	for i := range wantB.Data {
		if wantB.Data[i] != gotB.Data[i] {
			t.Fatalf("MatMulTransBInto[%d] %v != %v", i, gotB.Data[i], wantB.Data[i])
		}
	}

	wantS := RowSum(a)
	gotS := New(4)
	gotS.Fill(9)
	RowSumInto(gotS, a)
	for i := range wantS.Data {
		if wantS.Data[i] != gotS.Data[i] {
			t.Fatalf("RowSumInto[%d] %v != %v", i, gotS.Data[i], wantS.Data[i])
		}
	}

	wantM := ArgmaxRows(a)
	gotM := make([]int, 3)
	ArgmaxRowsInto(gotM, a)
	for i := range wantM {
		if wantM[i] != gotM[i] {
			t.Fatalf("ArgmaxRowsInto[%d] %v != %v", i, gotM[i], wantM[i])
		}
	}
}
