package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"lcasgd/internal/rng"
)

// naiveMatMul is the reference ijk implementation the optimized kernels are
// validated against.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randMat(g *rng.RNG, r, c int) *Tensor {
	t := New(r, c)
	g.FillNormal(t.Data, 1)
	return t
}

func maxDiff(a, b *Tensor) float64 {
	m := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	c := MatMul(a, b)
	want := []float64{19, 22, 43, 50}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul: got %v want %v", c.Data, want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	g := rng.New(3)
	a := randMat(g, 7, 7)
	eye := New(7, 7)
	for i := 0; i < 7; i++ {
		eye.Set(i, i, 1)
	}
	if maxDiff(MatMul(a, eye), a) != 0 {
		t.Fatal("A @ I != A")
	}
	if maxDiff(MatMul(eye, a), a) != 0 {
		t.Fatal("I @ A != A")
	}
}

func TestMatMulAgainstNaiveQuick(t *testing.T) {
	f := func(seed uint64, mr, kr, nr uint8) bool {
		m, k, n := int(mr%16)+1, int(kr%16)+1, int(nr%16)+1
		g := rng.New(seed)
		a := randMat(g, m, k)
		b := randMat(g, k, n)
		return maxDiff(MatMul(a, b), naiveMatMul(a, b)) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulParallelMatchesSequential(t *testing.T) {
	g := rng.New(9)
	a := randMat(g, 130, 90)
	b := randMat(g, 90, 110)
	old := SetMatmulParallelism(1)
	seq := MatMul(a, b)
	SetMatmulParallelism(8)
	par := MatMul(a, b)
	SetMatmulParallelism(old)
	if maxDiff(seq, par) != 0 {
		t.Fatal("parallel matmul is not bit-identical to sequential")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner-dim mismatch")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestMatMulInto(t *testing.T) {
	g := rng.New(21)
	a := randMat(g, 5, 6)
	b := randMat(g, 6, 4)
	dst := New(5, 4)
	dst.Fill(99) // must be overwritten, not accumulated
	MatMulInto(dst, a, b)
	if maxDiff(dst, naiveMatMul(a, b)) > 1e-10 {
		t.Fatal("MatMulInto mismatch")
	}
}

func TestMatMulTransA(t *testing.T) {
	g := rng.New(33)
	a := randMat(g, 8, 5) // aᵀ is 5x8
	b := randMat(g, 8, 6)
	got := MatMulTransA(a, b)
	want := MatMul(Transpose(a), b)
	if maxDiff(got, want) > 1e-10 {
		t.Fatal("MatMulTransA mismatch")
	}
}

func TestMatMulTransB(t *testing.T) {
	g := rng.New(35)
	a := randMat(g, 4, 7)
	b := randMat(g, 9, 7) // bᵀ is 7x9
	got := MatMulTransB(a, b)
	want := MatMul(a, Transpose(b))
	if maxDiff(got, want) > 1e-10 {
		t.Fatal("MatMulTransB mismatch")
	}
}

func TestMatMulAssociativityQuick(t *testing.T) {
	// (AB)C == A(BC) within float tolerance for modest sizes.
	f := func(seed uint64) bool {
		g := rng.New(seed)
		a := randMat(g, 6, 5)
		b := randMat(g, 5, 7)
		c := randMat(g, 7, 4)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return maxDiff(left, right) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	g := rng.New(1)
	x := randMat(g, 128, 128)
	y := randMat(g, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMul(x, y)
	}
}

func BenchmarkMatMulInto128(b *testing.B) {
	g := rng.New(1)
	x := randMat(g, 128, 128)
	y := randMat(g, 128, 128)
	dst := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}
