package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"lcasgd/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapeAndLen(t *testing.T) {
	x := New(3, 4, 5)
	if x.Len() != 60 || x.Rank() != 3 || x.Dim(1) != 4 {
		t.Fatalf("bad tensor: %v", x.Shape)
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-initialize")
		}
	}
}

func TestNewPanicsNegativeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, -1)
}

func TestFromSliceRoundTrip(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	x := FromSlice(d, 2, 3)
	if x.At(1, 2) != 6 || x.At(0, 0) != 1 {
		t.Fatalf("indexing broken: %v", x)
	}
	x.Set(0, 1, 9)
	if d[1] != 9 {
		t.Fatal("FromSlice must alias the input slice")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 42
	if x.Data[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 3)
	y := x.Reshape(3, 2)
	y.Data[0] = 7
	if x.Data[0] != 7 {
		t.Fatal("Reshape must share data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad reshape")
		}
	}()
	x.Reshape(4, 2)
}

func TestAddSubMulScale(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	dst := New(3)
	Add(dst, a, b)
	if dst.Data[2] != 9 {
		t.Fatalf("Add: %v", dst.Data)
	}
	Sub(dst, b, a)
	if dst.Data[0] != 3 {
		t.Fatalf("Sub: %v", dst.Data)
	}
	Mul(dst, a, b)
	if dst.Data[1] != 10 {
		t.Fatalf("Mul: %v", dst.Data)
	}
	Scale(dst, a, -2)
	if dst.Data[2] != -6 {
		t.Fatalf("Scale: %v", dst.Data)
	}
	AXPY(dst, 1, a) // dst = -2a + a = -a
	if dst.Data[2] != -3 {
		t.Fatalf("AXPY: %v", dst.Data)
	}
}

func TestApplyAndAddScalar(t *testing.T) {
	a := FromSlice([]float64{1, 4, 9}, 3)
	dst := New(3)
	Apply(dst, a, math.Sqrt)
	if dst.Data[2] != 3 {
		t.Fatalf("Apply: %v", dst.Data)
	}
	AddScalar(dst, a, 1)
	if dst.Data[0] != 2 {
		t.Fatalf("AddScalar: %v", dst.Data)
	}
}

func TestReLUForwardBackward(t *testing.T) {
	x := FromSlice([]float64{-1, 0, 2}, 3)
	y := New(3)
	ReLU(y, x)
	if y.Data[0] != 0 || y.Data[1] != 0 || y.Data[2] != 2 {
		t.Fatalf("ReLU: %v", y.Data)
	}
	g := FromSlice([]float64{10, 10, 10}, 3)
	dx := New(3)
	ReLUBackward(dx, g, x)
	if dx.Data[0] != 0 || dx.Data[1] != 0 || dx.Data[2] != 10 {
		t.Fatalf("ReLUBackward: %v", dx.Data)
	}
}

func TestTransposeKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	want := []float64{1, 4, 2, 5, 3, 6}
	for i, v := range want {
		if at.Data[i] != v {
			t.Fatalf("Transpose: got %v want %v", at.Data, want)
		}
	}
}

func TestTransposeInvolutionQuick(t *testing.T) {
	f := func(seed uint64, rRaw, cRaw uint8) bool {
		r := int(rRaw%40) + 1
		c := int(cRaw%40) + 1
		g := rng.New(seed)
		a := New(r, c)
		g.FillNormal(a.Data, 1)
		att := Transpose(Transpose(a))
		for i := range a.Data {
			if a.Data[i] != att.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRowSum(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	s := RowSum(a)
	want := []float64{5, 7, 9}
	for i, v := range want {
		if s.Data[i] != v {
			t.Fatalf("RowSum: %v", s.Data)
		}
	}
}

func TestAddRowVector(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	v := FromSlice([]float64{10, 20}, 2)
	dst := New(2, 2)
	AddRowVector(dst, a, v)
	want := []float64{11, 22, 13, 24}
	for i := range want {
		if dst.Data[i] != want[i] {
			t.Fatalf("AddRowVector: %v", dst.Data)
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	g := rng.New(5)
	a := New(8, 10)
	g.FillNormal(a.Data, 3)
	s := New(8, 10)
	Softmax(s, a)
	for i := 0; i < 8; i++ {
		sum := 0.0
		for j := 0; j < 10; j++ {
			v := s.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += v
		}
		if !almostEq(sum, 1, 1e-12) {
			t.Fatalf("softmax row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxStableWithLargeLogits(t *testing.T) {
	a := FromSlice([]float64{1000, 1001, 999}, 1, 3)
	s := New(1, 3)
	Softmax(s, a)
	if s.HasNaN() {
		t.Fatal("softmax overflowed on large logits")
	}
	if s.Data[1] < s.Data[0] || s.Data[0] < s.Data[2] {
		t.Fatalf("softmax ordering wrong: %v", s.Data)
	}
}

func TestArgmaxRows(t *testing.T) {
	a := FromSlice([]float64{1, 5, 2, 9, 0, 3}, 2, 3)
	got := ArgmaxRows(a)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgmaxRows: %v", got)
	}
}

func TestClipInPlace(t *testing.T) {
	a := FromSlice([]float64{-10, 0.5, 10}, 3)
	ClipInPlace(a, 1)
	if a.Data[0] != -1 || a.Data[1] != 0.5 || a.Data[2] != 1 {
		t.Fatalf("Clip: %v", a.Data)
	}
}

func TestSumMeanDotNorm(t *testing.T) {
	a := FromSlice([]float64{3, 4}, 2)
	if a.Sum() != 7 || a.Mean() != 3.5 {
		t.Fatal("Sum/Mean broken")
	}
	if a.Dot(a) != 25 || a.Norm2() != 5 {
		t.Fatal("Dot/Norm2 broken")
	}
	if a.MaxAbs() != 4 {
		t.Fatal("MaxAbs broken")
	}
}

func TestHasNaN(t *testing.T) {
	a := FromSlice([]float64{1, math.NaN()}, 2)
	if !a.HasNaN() {
		t.Fatal("HasNaN missed NaN")
	}
	b := FromSlice([]float64{1, math.Inf(1)}, 2)
	if !b.HasNaN() {
		t.Fatal("HasNaN missed Inf")
	}
	c := FromSlice([]float64{1, 2}, 2)
	if c.HasNaN() {
		t.Fatal("HasNaN false positive")
	}
}
