package tensor

import (
	"fmt"
	"testing"

	"lcasgd/internal/rng"
)

// Kernel benchmarks over the shapes the paper's networks actually emit.
// Conv layers lower to [OutH*OutW, InC*KH*KW] @ [InC*KH*KW, OutC] per
// image; the MLP head and LSTM predictors emit [batch, in] @ [in, out].
// Each shape also runs with A at ~50% exact zeros — the sparsity profile of
// post-ReLU activations — which is how the pre-tiling kernels' data-
// dependent `if av == 0` skip was adjudicated:
//
// Measured on this box (Xeon 2.10GHz, go1.24, 300ms x 5 runs), the skip
// variant of matMulTransA ran conv_stem at ~103µs dense / ~130µs sparse,
// the no-skip variant at ~82µs for both. The unpredictable branch on
// scattered zeros cost 25-35%, and even the always-false compare on dense
// data cost ~20% in the tight inner loop — so the skip was dropped from
// every tiled kernel and their timing is now input-independent. The _relu
// variants below stay as the regression guard for that property: sparse
// and dense medians of the same shape should track within noise.

type mmShape struct {
	name    string
	m, k, n int
}

var benchShapes = []mmShape{
	{"mlp_50x144x96", 50, 144, 96},         // MLP hidden layer, full batch
	{"conv_stem_144x108x12", 144, 108, 12}, // ResNetLite50 stem, 12x12 input
	{"conv_mid_36x216x24", 36, 216, 24},    // stage-2 3x3 conv
	{"conv_deep_9x432x48", 9, 432, 48},     // stage-3 3x3 conv
	{"square_128", 128, 128, 128},          // generic mid-size
	{"packed_64x300x130", 64, 300, 130},    // exercises the packed-panel path
}

func benchMats(m, k, n int, sparse bool) (*Tensor, *Tensor) {
	g := rng.New(7)
	a := randMat(g, m, k)
	b := randMat(g, k, n)
	if sparse {
		sparsify(a, g)
	}
	return a, b
}

func BenchmarkMatMul(b *testing.B) {
	for _, s := range benchShapes {
		for _, sparse := range []bool{false, true} {
			name := s.name
			if sparse {
				name += "_relu"
			}
			b.Run(name, func(b *testing.B) {
				x, y := benchMats(s.m, s.k, s.n, sparse)
				dst := New(s.m, s.n)
				b.SetBytes(int64(8 * s.m * s.k * s.n))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					MatMulInto(dst, x, y)
				}
			})
		}
	}
}

func BenchmarkMatMulTransA(b *testing.B) {
	// Weight gradient: colᵀ [ColCols, HW] @ dOut [HW, OutC]; A here is the
	// im2col matrix, the post-ReLU-sparse operand.
	for _, s := range []mmShape{
		{"conv_stem", 144, 108, 12},
		{"conv_mid", 36, 216, 24},
		{"conv_deep", 9, 432, 48},
	} {
		for _, sparse := range []bool{false, true} {
			name := s.name
			if sparse {
				name += "_relu"
			}
			b.Run(name, func(b *testing.B) {
				g := rng.New(7)
				a := randMat(g, s.m, s.k) // [HW, ColCols] = aᵀ input
				if sparse {
					sparsify(a, g)
				}
				y := randMat(g, s.m, s.n)
				dst := New(s.k, s.n)
				b.SetBytes(int64(8 * s.m * s.k * s.n))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					MatMulTransAInto(dst, a, y)
				}
			})
		}
	}
}

func BenchmarkMatMulTransB(b *testing.B) {
	// Input gradient: dOut [HW, OutC] @ Wᵀ, W being [ColCols, OutC].
	for _, s := range []mmShape{
		{"conv_stem", 144, 12, 108},
		{"conv_mid", 36, 24, 216},
		{"conv_deep", 9, 48, 432},
	} {
		b.Run(s.name, func(b *testing.B) {
			g := rng.New(7)
			a := randMat(g, s.m, s.k)
			y := randMat(g, s.n, s.k)
			dst := New(s.m, s.n)
			b.SetBytes(int64(8 * s.m * s.k * s.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulTransBInto(dst, a, y)
			}
		})
	}
}

func BenchmarkIm2Col(b *testing.B) {
	for _, g := range []ConvGeom{
		{InC: 12, InH: 12, InW: 12, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 24, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1},
	} {
		b.Run(fmt.Sprintf("c%dx%d", g.InC, g.InH), func(b *testing.B) {
			r := rng.New(7)
			img := make([]float64, g.InC*g.InH*g.InW)
			r.FillNormal(img, 1)
			dst := make([]float64, g.ColRows()*g.ColCols())
			b.SetBytes(int64(8 * len(dst)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Im2Col(dst, img, g)
			}
		})
	}
}

func BenchmarkCol2Im(b *testing.B) {
	g := ConvGeom{InC: 12, InH: 12, InW: 12, KH: 3, KW: 3, Stride: 1, Pad: 1}
	r := rng.New(7)
	col := make([]float64, g.ColRows()*g.ColCols())
	r.FillNormal(col, 1)
	dst := make([]float64, g.InC*g.InH*g.InW)
	b.SetBytes(int64(8 * len(col)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Col2Im(dst, col, g)
	}
}
