package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// maxProcs caps the matmul worker count. It is a variable so tests can
// exercise the sequential and parallel paths deterministically, and atomic
// so runtime callers (the ps concurrent backend, the trainer sweep
// scheduler) can retune it while other goroutines are inside MatMul without
// a data race.
var maxProcs atomic.Int64

func init() { maxProcs.Store(int64(runtime.GOMAXPROCS(0))) }

// SetMatmulParallelism overrides the number of goroutines used by MatMul.
// n <= 1 forces the sequential path. It returns the previous value. The cap
// does not change results: row-block partitioning keeps the accumulation
// order identical at any parallelism.
func SetMatmulParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	return int(maxProcs.Swap(int64(n)))
}

// MatmulParallelism returns the current goroutine cap. Other bounded pools
// that must share the machine with the kernels — the sweep scheduler sizes
// this cap to GOMAXPROCS/jobs, and the checkpoint encoder sizes itself off
// it — read their core budget here.
func MatmulParallelism() int { return int(maxProcs.Load()) }

// parallelRowThreshold is the minimum amount of scalar work before MatMul
// spawns goroutines; below it the goroutine overhead dominates.
const parallelRowThreshold = 64 * 64 * 64

// Tiling geometry for the blocked kernels, in float64 elements. All
// decisions below are functions of the operand shapes alone — never of the
// data — so a given shape always takes the same code path and produces the
// same float bits.
//
// Every kernel accumulates each output element over k in ascending order,
// exactly like the naive triple loop: tiles partition the i/j (output)
// space, and k-panels are visited in ascending order with ascending
// interior, so the per-element addition chain is byte-for-byte the naive
// chain. That is the invariant behind the backend-equivalence and
// resume-fingerprint suites; do not reorder k.
//
// The pre-tiling kernels skipped zero a-elements; the tiled ones do not
// (see the sparsity note on mmBlock). On finite data the two are
// bit-identical: the dropped/added terms are av*bv with av == ±0, whose
// product is ±0, and x + ±0 == x bitwise for every finite x when the
// accumulator starts at +0. Inputs are finite throughout training, so the
// change is invisible to the fingerprint.
const (
	// mmDirectB: when B has at most this many elements it is streamed
	// directly (it fits comfortably in L2 and the panel copy would cost more
	// than it saves). Every matmul in the paper's networks takes this path;
	// the packed path below serves larger shapes (and keeps the kernel
	// honest for them).
	mmDirectB = 16 * 1024
	// Packed-panel tile: a kc x nc sub-block of B copied into a contiguous
	// panel (<=256 KiB, L2-resident) and reused across every row of A.
	mmKC = 256
	mmNC = 128
	// matMulTransA output tile: 64x64 floats = 32 KiB, L1-resident while k
	// streams over it.
	taIB = 64
	taJB = 64
	// matMulTransB keeps a j-tile of B rows (about 16 KiB) L1-resident
	// across the whole sweep over A's rows.
	tbTileFloats = 2048
)

// mmPanels recycles packed B panels. Only shapes with more than mmDirectB
// elements of B reach it, so the zero-allocation training paths (which are
// all below the threshold) never touch the pool.
var mmPanels = sync.Pool{New: func() any { b := make([]float64, mmKC*mmNC); return &b }}

// MatMul returns a @ b for 2-D tensors a [m,k] and b [k,n].
//
// The kernel processes four output rows at a time against a shared B row
// (register blocking: each loaded B element feeds four independent
// multiply-adds, and B is streamed once per four rows of A instead of once
// per row), falling back to a packed kc x nc B-panel micro-kernel when B
// exceeds mmDirectB. It is parallelized over row blocks of A; row-block
// partitioning keeps the floating-point accumulation order identical
// regardless of the number of goroutines, so results are bit-reproducible
// across machines.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs rank-2 operands, got %v %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	out := New(m, n)
	matMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a @ b into a preallocated dst, avoiding the
// allocation in hot training loops. dst must not alias a or b.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if b.Shape[0] != k || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shapes dst%v a%v b%v", dst.Shape, a.Shape, b.Shape))
	}
	dst.Zero()
	matMulInto(dst, a, b)
}

func matMulInto(out, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	work := m * k * n
	procs := int(maxProcs.Load())
	if work < parallelRowThreshold || procs <= 1 || m == 1 {
		matMulRows(out, a, b, 0, m)
		return
	}
	if procs > m {
		procs = m
	}
	var wg sync.WaitGroup
	chunk := (m + procs - 1) / procs
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRows(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRows computes rows [lo, hi) of out = a @ b. When B fits the direct
// threshold it is used in place; otherwise ascending kc x nc panels of B
// are packed contiguous and the same micro-kernel runs over each panel.
// Either way every output element accumulates its k terms in ascending
// order.
func matMulRows(out, a, b *Tensor, lo, hi int) {
	k := a.Shape[1]
	n := b.Shape[1]
	if k*n <= mmDirectB {
		mmBlock(out.Data, a.Data, lo, hi, k, n, 0, k, b.Data, n, 0, n)
		return
	}
	panelPtr := mmPanels.Get().(*[]float64)
	panel := *panelPtr
	for p0 := 0; p0 < k; p0 += mmKC {
		kw := min(mmKC, k-p0)
		for j0 := 0; j0 < n; j0 += mmNC {
			jw := min(mmNC, n-j0)
			for pp := 0; pp < kw; pp++ {
				src := (p0+pp)*n + j0
				copy(panel[pp*jw:pp*jw+jw], b.Data[src:src+jw])
			}
			mmBlock(out.Data, a.Data, lo, hi, k, n, p0, kw, panel, jw, j0, jw)
		}
	}
	mmPanels.Put(panelPtr)
}

// mmBlock is the register-blocked micro-kernel: it accumulates
// out[lo:hi, j0:j0+jw] += a[lo:hi, p0:p0+kw] @ panel, where panel holds the
// corresponding B sub-block with row stride bstride (B itself on the direct
// path, a packed copy otherwise). Four A rows share each loaded B element;
// per output element the k terms still arrive in ascending order.
//
// The pre-tiling kernel skipped zero A elements (`if av == 0`), which made
// kernel time silently input-dependent. The skip is gone from every tiled
// kernel: measured on post-ReLU-like inputs (~50% scattered exact zeros —
// see the sparsity benchmarks in matmul_bench_test.go) the unpredictable
// branch cost 25-35% over the straight-line loop, and even on dense inputs
// the always-false compare cost ~20% in the tight inner loop. Dropping it
// is bit-neutral on finite data — see the finiteness note on the tiling
// constants.
func mmBlock(out, a []float64, lo, hi, astride, ostride, p0, kw int, bp []float64, bstride, j0, jw int) {
	i := lo
	for ; i+4 <= hi; i += 4 {
		a0 := a[i*astride+p0 : i*astride+p0+kw]
		a1 := a[(i+1)*astride+p0 : (i+1)*astride+p0+kw]
		a2 := a[(i+2)*astride+p0 : (i+2)*astride+p0+kw]
		a3 := a[(i+3)*astride+p0 : (i+3)*astride+p0+kw]
		o0 := out[i*ostride+j0 : i*ostride+j0+jw]
		o1 := out[(i+1)*ostride+j0 : (i+1)*ostride+j0+jw]
		o2 := out[(i+2)*ostride+j0 : (i+2)*ostride+j0+jw]
		o3 := out[(i+3)*ostride+j0 : (i+3)*ostride+j0+jw]
		for pp := 0; pp < kw; pp++ {
			av0, av1, av2, av3 := a0[pp], a1[pp], a2[pp], a3[pp]
			brow := bp[pp*bstride : pp*bstride+jw]
			for j, bv := range brow {
				o0[j] += av0 * bv
				o1[j] += av1 * bv
				o2[j] += av2 * bv
				o3[j] += av3 * bv
			}
		}
	}
	for ; i < hi; i++ {
		arow := a[i*astride+p0 : i*astride+p0+kw]
		orow := out[i*ostride+j0 : i*ostride+j0+jw]
		for pp, av := range arow {
			brow := bp[pp*bstride : pp*bstride+jw]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTransA returns aᵀ @ b without materializing the transpose of a.
// a has shape [k, m] (so aᵀ is [m, k]) and b has shape [k, n].
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.Shape[0], a.Shape[1]
	if b.Shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims %d vs %d", k, b.Shape[0]))
	}
	out := New(m, b.Shape[1])
	matMulTransA(out, a, b)
	return out
}

// MatMulTransAInto computes dst = aᵀ @ b into a preallocated dst, the
// weight-gradient kernel of the zero-allocation backward pass. dst must not
// alias a or b.
func MatMulTransAInto(dst, a, b *Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	if b.Shape[0] != k || dst.Shape[0] != m || dst.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: MatMulTransAInto shapes dst%v a%v b%v", dst.Shape, a.Shape, b.Shape))
	}
	dst.Zero()
	matMulTransA(dst, a, b)
}

// matMulTransA accumulates out[i][j] += Σ_p a[p][i]·b[p][j]. The output is
// tiled into 64x64 (L1-resident) blocks; k streams over each block once, so
// out is no longer re-streamed from L2 for every p the way the untiled
// rank-1 update was. Four output rows share each loaded b element. The
// pre-tiling kernel's per-(p,i) zero skip is gone — see the sparsity note
// on mmBlock; the benchmarks showed it losing even here, where a is the
// im2col matrix of post-ReLU activations and a taken skip saves a whole
// jw-wide update. Tiles partition i/j only, so each out element's k chain
// is untouched.
func matMulTransA(out, a, b *Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	for i0 := 0; i0 < m; i0 += taIB {
		ib := min(taIB, m-i0)
		for j0 := 0; j0 < n; j0 += taJB {
			jw := min(taJB, n-j0)
			for p := 0; p < k; p++ {
				arow := a.Data[p*m+i0 : p*m+i0+ib]
				brow := b.Data[p*n+j0 : p*n+j0+jw]
				ii := 0
				for ; ii+4 <= ib; ii += 4 {
					av0, av1, av2, av3 := arow[ii], arow[ii+1], arow[ii+2], arow[ii+3]
					base := (i0 + ii) * n
					o0 := out.Data[base+j0 : base+j0+jw]
					o1 := out.Data[base+n+j0 : base+n+j0+jw]
					o2 := out.Data[base+2*n+j0 : base+2*n+j0+jw]
					o3 := out.Data[base+3*n+j0 : base+3*n+j0+jw]
					for j, bv := range brow {
						o0[j] += av0 * bv
						o1[j] += av1 * bv
						o2[j] += av2 * bv
						o3[j] += av3 * bv
					}
				}
				for ; ii < ib; ii++ {
					av := arow[ii]
					base := (i0 + ii) * n
					orow := out.Data[base+j0 : base+j0+jw]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}
	}
}

// MatMulTransB returns a @ bᵀ without materializing the transpose of b.
// a has shape [m, k] and b has shape [n, k].
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	if b.Shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims %d vs %d", k, b.Shape[1]))
	}
	out := New(m, b.Shape[0])
	matMulTransB(out, a, b)
	return out
}

// MatMulTransBInto computes dst = a @ bᵀ into a preallocated dst — the
// input-gradient kernel. dst must not alias a or b. Every element of dst is
// assigned, so no zeroing is needed.
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	if b.Shape[1] != k || dst.Shape[0] != m || dst.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMulTransBInto shapes dst%v a%v b%v", dst.Shape, a.Shape, b.Shape))
	}
	matMulTransB(dst, a, b)
}

// matMulTransB computes out[i][j] = a[i]·b[j] (row dot products). B's rows
// are tiled so a j-tile stays L1-resident across the whole sweep over A's
// rows (B is streamed from L2 once per tile instead of once per A row), and
// a 2x2 register block gives four independent accumulation chains per four
// loads. Each chain is one output element's dot product with p ascending —
// the naive order.
func matMulTransB(out, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	jt := tbTileFloats / k
	if jt < 4 {
		jt = 4
	}
	for j0 := 0; j0 < n; j0 += jt {
		j1 := min(j0+jt, n)
		i := 0
		for ; i+2 <= m; i += 2 {
			ar0 := a.Data[i*k : i*k+k]
			ar1 := a.Data[(i+1)*k : (i+1)*k+k]
			or0 := out.Data[i*n : (i+1)*n]
			or1 := out.Data[(i+1)*n : (i+2)*n]
			j := j0
			for ; j+2 <= j1; j += 2 {
				br0 := b.Data[j*k : j*k+k]
				br1 := b.Data[(j+1)*k : (j+1)*k+k]
				var s00, s01, s10, s11 float64
				for p, av0 := range ar0 {
					av1 := ar1[p]
					bv0, bv1 := br0[p], br1[p]
					s00 += av0 * bv0
					s01 += av0 * bv1
					s10 += av1 * bv0
					s11 += av1 * bv1
				}
				or0[j], or0[j+1] = s00, s01
				or1[j], or1[j+1] = s10, s11
			}
			for ; j < j1; j++ {
				brow := b.Data[j*k : j*k+k]
				var s0, s1 float64
				for p, av := range ar0 {
					s0 += av * brow[p]
				}
				for p, av := range ar1 {
					s1 += av * brow[p]
				}
				or0[j], or1[j] = s0, s1
			}
		}
		for ; i < m; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for j := j0; j < j1; j++ {
				brow := b.Data[j*k : (j+1)*k]
				s := 0.0
				for p, av := range arow {
					s += av * brow[p]
				}
				orow[j] = s
			}
		}
	}
}
