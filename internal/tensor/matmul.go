package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// maxProcs caps the matmul worker count. It is a variable so tests can
// exercise the sequential and parallel paths deterministically, and atomic
// so runtime callers (the ps concurrent backend) can retune it while other
// goroutines are inside MatMul without a data race.
var maxProcs atomic.Int64

func init() { maxProcs.Store(int64(runtime.GOMAXPROCS(0))) }

// SetMatmulParallelism overrides the number of goroutines used by MatMul.
// n <= 1 forces the sequential path. It returns the previous value. The cap
// does not change results: row-block partitioning keeps the accumulation
// order identical at any parallelism.
func SetMatmulParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	return int(maxProcs.Swap(int64(n)))
}

// parallelRowThreshold is the minimum amount of scalar work before MatMul
// spawns goroutines; below it the goroutine overhead dominates.
const parallelRowThreshold = 64 * 64 * 64

// MatMul returns a @ b for 2-D tensors a [m,k] and b [k,n].
//
// The kernel is an ikj-ordered loop over the output with the inner dimension
// streamed from b's rows, which is cache-friendly for row-major data, and is
// parallelized over row blocks of a. Row-block partitioning keeps the
// floating-point accumulation order identical regardless of the number of
// goroutines, so results are bit-reproducible across machines.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs rank-2 operands, got %v %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	out := New(m, n)
	matMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a @ b into a preallocated dst, avoiding the
// allocation in hot training loops. dst must not alias a or b.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if b.Shape[0] != k || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shapes dst%v a%v b%v", dst.Shape, a.Shape, b.Shape))
	}
	dst.Zero()
	matMulInto(dst, a, b)
}

func matMulInto(out, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	work := m * k * n
	procs := int(maxProcs.Load())
	if work < parallelRowThreshold || procs <= 1 || m == 1 {
		matMulRows(out, a, b, 0, m)
		return
	}
	if procs > m {
		procs = m
	}
	var wg sync.WaitGroup
	chunk := (m + procs - 1) / procs
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRows(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRows computes rows [lo, hi) of out = a @ b using the ikj ordering.
func matMulRows(out, a, b *Tensor, lo, hi int) {
	k := a.Shape[1]
	n := b.Shape[1]
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTransA returns aᵀ @ b without materializing the transpose of a.
// a has shape [k, m] (so aᵀ is [m, k]) and b has shape [k, n].
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.Shape[0], a.Shape[1]
	if b.Shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims %d vs %d", k, b.Shape[0]))
	}
	out := New(m, b.Shape[1])
	matMulTransA(out, a, b)
	return out
}

// MatMulTransAInto computes dst = aᵀ @ b into a preallocated dst, the
// weight-gradient kernel of the zero-allocation backward pass. dst must not
// alias a or b.
func MatMulTransAInto(dst, a, b *Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	if b.Shape[0] != k || dst.Shape[0] != m || dst.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: MatMulTransAInto shapes dst%v a%v b%v", dst.Shape, a.Shape, b.Shape))
	}
	dst.Zero()
	matMulTransA(dst, a, b)
}

func matMulTransA(out, a, b *Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	// out[i][j] = sum_p a[p][i] * b[p][j]; stream over p for locality.
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTransB returns a @ bᵀ without materializing the transpose of b.
// a has shape [m, k] and b has shape [n, k].
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	if b.Shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims %d vs %d", k, b.Shape[1]))
	}
	out := New(m, b.Shape[0])
	matMulTransB(out, a, b)
	return out
}

// MatMulTransBInto computes dst = a @ bᵀ into a preallocated dst — the
// input-gradient kernel. dst must not alias a or b. Every element of dst is
// assigned, so no zeroing is needed.
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	if b.Shape[1] != k || dst.Shape[0] != m || dst.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMulTransBInto shapes dst%v a%v b%v", dst.Shape, a.Shape, b.Shape))
	}
	matMulTransB(dst, a, b)
}

func matMulTransB(out, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
}
