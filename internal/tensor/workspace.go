package tensor

import "fmt"

// maxWorkspaceRank bounds the tensor rank a Workspace can key on. Everything
// in this codebase is rank ≤ 2; the headroom is for future 4-D layouts.
const maxWorkspaceRank = 4

// shapeKey is a comparable, allocation-free encoding of a tensor shape.
type shapeKey struct {
	rank int
	dim  [maxWorkspaceRank]int
}

// keyOf encodes shape without letting it escape (escape analysis keeps the
// caller's variadic slice on the stack, which is what makes Get hits
// allocation-free), so the panic messages mention only scalars.
func keyOf(shape []int) shapeKey {
	if len(shape) > maxWorkspaceRank {
		panic(fmt.Sprintf("tensor: Workspace supports rank <= %d, got rank %d", maxWorkspaceRank, len(shape)))
	}
	k := shapeKey{rank: len(shape)}
	for i, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: Workspace shape has negative dimension %d", d))
		}
		k.dim[i] = d
	}
	return k
}

// newFromKey materializes a tensor for a shape key; only the arena-miss path
// pays this allocation.
func newFromKey(k shapeKey) *Tensor {
	shp := make([]int, k.rank)
	n := 1
	for i := 0; i < k.rank; i++ {
		shp[i] = k.dim[i]
		n *= k.dim[i]
	}
	return &Tensor{Shape: shp, Data: make([]float64, n)}
}

// shapePool is the list of buffers of one shape, with a cursor into the
// portion handed out since the last Reset.
type shapePool struct {
	bufs []*Tensor
	next int
}

// Workspace is an arena of reusable, shape-keyed tensor buffers for a hot
// loop that allocates the same set of shapes every iteration. Get hands out
// a distinct buffer per call until Reset rewinds the arena; after a Reset,
// an identical sequence of Get calls receives the identical buffers, which
// is what makes steady-state iterations allocation-free.
//
// Ownership contract: a Workspace is single-owner state, exactly like the
// worker replica it typically belongs to — no synchronization is provided.
// Buffers obtained before a Reset must be treated as dead after it; callers
// that hold state across iterations (layer activations, gradients) must own
// their buffers instead of drawing them from a workspace.
//
// Reset is how crash-recovery stays sound: re-pulling a recovered replica
// resets its workspace, so a scenario that cancels an iteration mid-flight
// cannot leave the next iteration aliased onto stale buffers (see
// internal/ps replica.pull).
type Workspace struct {
	pools map[shapeKey]*shapePool
	gen   uint64
	live  int // buffers handed out since the last Reset
}

// NewWorkspace returns an empty arena.
func NewWorkspace() *Workspace {
	return &Workspace{pools: make(map[shapeKey]*shapePool)}
}

// Get returns a tensor of the given shape, reusing a buffer released by the
// last Reset when one of that shape is available and allocating otherwise.
// The contents are unspecified (not zeroed): callers are expected to
// overwrite fully, and the kernels that accumulate (MatMulInto and friends)
// zero their destination themselves.
func (w *Workspace) Get(shape ...int) *Tensor {
	k := keyOf(shape)
	p := w.pools[k]
	if p == nil {
		p = &shapePool{}
		w.pools[k] = p
	}
	if p.next < len(p.bufs) {
		t := p.bufs[p.next]
		p.next++
		w.live++
		return t
	}
	t := newFromKey(k)
	p.bufs = append(p.bufs, t)
	p.next = len(p.bufs)
	w.live++
	return t
}

// Reset releases every buffer back to the arena and advances the
// generation. It is O(number of distinct shapes), not O(bytes): no memory
// is freed or zeroed, only the cursors rewind.
func (w *Workspace) Reset() {
	for _, p := range w.pools {
		p.next = 0
	}
	w.gen++
	w.live = 0
}

// Generation counts Resets. Debug hooks and tests use it to assert the
// reset-on-recovery rule (a re-pull must advance the generation).
func (w *Workspace) Generation() uint64 { return w.gen }

// Live reports how many buffers have been handed out since the last Reset —
// a regression test that pins this across iterations proves the arena is
// not growing.
func (w *Workspace) Live() int { return w.live }
