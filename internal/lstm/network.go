package lstm

import (
	"fmt"

	"lcasgd/internal/rng"
)

// Network is a stack of LSTM cells with a scalar linear head — the
// architecture both of the paper's predictors use ("two LSTM layers ... and
// a linear layer at the end", Sections 4.3–4.4). It trains online: every
// observed (input, target) pair is appended to a sliding window, and each
// TrainStep runs truncated BPTT over the window.
type Network struct {
	Cells  []*Cell
	HeadW  []float64 // [H of last cell]
	HeadB  float64
	dHeadW []float64
	dHeadB float64

	Window int // truncated-BPTT window length
	LR     float64
	Clip   float64

	inputs  [][]float64
	targets []float64
}

// NewNetwork builds a stack with the given input size and hidden sizes
// (one per cell). Defaults: window 16, learning rate 0.05, clip 1.
func NewNetwork(inputSize int, hidden []int, g *rng.RNG) *Network {
	if len(hidden) == 0 {
		panic("lstm: need at least one hidden layer")
	}
	n := &Network{Window: 16, LR: 0.05, Clip: 1}
	in := inputSize
	for _, h := range hidden {
		n.Cells = append(n.Cells, NewCell(in, h, g))
		in = h
	}
	last := hidden[len(hidden)-1]
	n.HeadW = make([]float64, last)
	n.dHeadW = make([]float64, last)
	g.FillNormal(n.HeadW, 0.1)
	return n
}

// InputSize returns the expected input width.
func (n *Network) InputSize() int { return n.Cells[0].X }

// head applies the linear output layer to the top cell's hidden state.
func (n *Network) head(h []float64) float64 {
	s := n.HeadB
	for j, w := range n.HeadW {
		s += w * h[j]
	}
	return s
}

// forwardSeq runs the whole stack over a sequence from zero state,
// returning per-step outputs, per-(layer,step) caches, and final states.
func (n *Network) forwardSeq(seq [][]float64) (outs []float64, caches [][]*stepCache, finals []State) {
	states := make([]State, len(n.Cells))
	for i, c := range n.Cells {
		states[i] = NewState(c.H)
	}
	caches = make([][]*stepCache, len(n.Cells))
	outs = make([]float64, len(seq))
	for t, x := range seq {
		cur := x
		for li, cell := range n.Cells {
			var cache *stepCache
			states[li], cache = cell.Forward(cur, states[li])
			caches[li] = append(caches[li], cache)
			cur = states[li].H
		}
		outs[t] = n.head(cur)
	}
	return outs, caches, states
}

// Observe appends an (input, target) pair to the training window without
// updating weights. Used to warm the window before training begins.
func (n *Network) Observe(input []float64, target float64) {
	if len(input) != n.InputSize() {
		panic(fmt.Sprintf("lstm: input width %d, want %d", len(input), n.InputSize()))
	}
	n.inputs = append(n.inputs, append([]float64(nil), input...))
	n.targets = append(n.targets, target)
	if len(n.inputs) > n.Window {
		n.inputs = n.inputs[1:]
		n.targets = n.targets[1:]
	}
}

// TrainStep performs one online update: the pair is appended to the window
// and one truncated-BPTT pass over the window minimizes the mean squared
// one-step-ahead error. It returns the window loss before the update.
func (n *Network) TrainStep(input []float64, target float64) float64 {
	n.Observe(input, target)
	return n.fitWindow()
}

// fitWindow runs forward+backward over the current window and applies SGD.
func (n *Network) fitWindow() float64 {
	T := len(n.inputs)
	if T == 0 {
		return 0
	}
	outs, caches, _ := n.forwardSeq(n.inputs)
	loss := 0.0
	dOuts := make([]float64, T)
	for t := 0; t < T; t++ {
		d := outs[t] - n.targets[t]
		loss += d * d
		dOuts[t] = 2 * d / float64(T)
	}
	loss /= float64(T)

	for _, c := range n.Cells {
		c.ZeroGrad()
	}
	zero(n.dHeadW)
	n.dHeadB = 0

	L := len(n.Cells)
	// dh/dc flowing backward through time, one per layer.
	dhNext := make([][]float64, L)
	dcNext := make([][]float64, L)
	for li, c := range n.Cells {
		dhNext[li] = make([]float64, c.H)
		dcNext[li] = make([]float64, c.H)
	}
	for t := T - 1; t >= 0; t-- {
		// Head gradient at step t enters the top layer's dh.
		top := L - 1
		hTop := caches[top][t]
		dhTop := make([]float64, n.Cells[top].H)
		copy(dhTop, dhNext[top])
		g := dOuts[t]
		n.dHeadB += g
		topH := hTopHidden(hTop)
		for j := range n.HeadW {
			n.dHeadW[j] += g * topH[j]
			dhTop[j] += g * n.HeadW[j]
		}
		dh := dhTop
		dc := dcNext[top]
		for li := L - 1; li >= 0; li-- {
			if li < L-1 {
				// Lower layers receive dx from the layer above plus
				// their own through-time gradient.
				for j := range dh {
					dh[j] += dhNext[li][j]
				}
				dc = dcNext[li]
			}
			dx, dhPrev, dcPrev := n.Cells[li].Backward(dh, dc, caches[li][t])
			dhNext[li] = dhPrev
			dcNext[li] = dcPrev
			dh = dx
		}
	}
	for _, c := range n.Cells {
		c.SGDStep(n.LR, n.Clip)
	}
	apply(n.HeadW, n.dHeadW, n.LR, n.Clip)
	db := n.dHeadB
	if db > n.Clip {
		db = n.Clip
	} else if db < -n.Clip {
		db = -n.Clip
	}
	n.HeadB -= n.LR * db
	return loss
}

// hTopHidden recovers the hidden vector produced by a cached step: it is
// o ⊙ tanh(c), recomputed from the cache to avoid storing it twice.
func hTopHidden(c *stepCache) []float64 {
	h := make([]float64, len(c.o))
	for j := range h {
		h[j] = c.o[j] * c.tanhC[j]
	}
	return h
}

// Predict returns the one-step-ahead output after replaying the window and
// feeding the given input.
func (n *Network) Predict(input []float64) float64 {
	seq := append(append([][]float64(nil), n.inputs...), input)
	outs, _, _ := n.forwardSeq(seq)
	return outs[len(outs)-1]
}

// PredictAhead forecasts future values: it replays the window, feeds input,
// then recursively feeds each prediction back through feedback (which maps
// a scalar prediction to the next input vector) for a total of k outputs.
// This is exactly Algorithm 3's "forward-propagating goes on k iterations".
func (n *Network) PredictAhead(input []float64, k int, feedback func(out float64) []float64) []float64 {
	if k <= 0 {
		return nil
	}
	states := make([]State, len(n.Cells))
	for i, c := range n.Cells {
		states[i] = NewState(c.H)
	}
	run := func(x []float64) float64 {
		cur := x
		for li, cell := range n.Cells {
			states[li], _ = cell.Forward(cur, states[li])
			cur = states[li].H
		}
		return n.head(cur)
	}
	for _, x := range n.inputs {
		run(x)
	}
	outs := make([]float64, 0, k)
	out := run(input)
	outs = append(outs, out)
	for len(outs) < k {
		out = run(feedback(out))
		outs = append(outs, out)
	}
	return outs
}

// WindowLen returns the number of pairs currently in the training window.
func (n *Network) WindowLen() int { return len(n.inputs) }
