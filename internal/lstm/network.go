package lstm

import (
	"fmt"

	"lcasgd/internal/rng"
	"lcasgd/internal/snapshot"
)

// Network is a stack of LSTM cells with a scalar linear head — the
// architecture both of the paper's predictors use ("two LSTM layers ... and
// a linear layer at the end", Sections 4.3–4.4). It trains online: every
// observed (input, target) pair is appended to a sliding window, and each
// TrainStep runs truncated BPTT over the window.
//
// All working storage — the window, recurrent states, per-timestep caches
// and BPTT scratch — is owned by the Network and reused, so steady-state
// TrainStep/Predict/PredictAhead calls are allocation-free. Set Window
// before the first Observe/TrainStep.
type Network struct {
	Cells  []*Cell
	HeadW  []float64 // [H of last cell]
	HeadB  float64
	dHeadW []float64
	dHeadB float64

	Window int // truncated-BPTT window length
	LR     float64
	Clip   float64

	// Sliding window: rows[0:count] in oldest-first order. Rows are
	// allocated once and recycled when the window slides.
	rows    [][]float64
	targets []float64
	count   int

	// Reused compute workspaces (see ensureScratch).
	states []State        // one recurrent state per layer, updated in place
	caches [][]*stepCache // [layer][timestep], grown on demand
	outs   []float64      // per-step head outputs of the last forward
	dOuts  []float64
	dhTop  []float64   // head gradient entering the top layer at step t
	hTop   []float64   // recomputed top hidden vector (o ⊙ tanh c)
	dh, dc [][]float64 // per-layer through-time gradients
	dx     [][]float64 // per-layer input gradients
	ahead  []float64   // PredictAhead output buffer (reused across calls)
}

// NewNetwork builds a stack with the given input size and hidden sizes
// (one per cell). Defaults: window 16, learning rate 0.05, clip 1.
func NewNetwork(inputSize int, hidden []int, g *rng.RNG) *Network {
	if len(hidden) == 0 {
		panic("lstm: need at least one hidden layer")
	}
	n := &Network{Window: 16, LR: 0.05, Clip: 1}
	in := inputSize
	for _, h := range hidden {
		n.Cells = append(n.Cells, NewCell(in, h, g))
		in = h
	}
	last := hidden[len(hidden)-1]
	n.HeadW = make([]float64, last)
	n.dHeadW = make([]float64, last)
	g.FillNormal(n.HeadW, 0.1)
	n.states = make([]State, len(n.Cells))
	n.caches = make([][]*stepCache, len(n.Cells))
	n.dh = make([][]float64, len(n.Cells))
	n.dc = make([][]float64, len(n.Cells))
	n.dx = make([][]float64, len(n.Cells))
	for li, c := range n.Cells {
		n.states[li] = NewState(c.H)
		n.dh[li] = make([]float64, c.H)
		n.dc[li] = make([]float64, c.H)
		n.dx[li] = make([]float64, c.X)
	}
	n.dhTop = make([]float64, last)
	n.hTop = make([]float64, last)
	return n
}

// InputSize returns the expected input width.
func (n *Network) InputSize() int { return n.Cells[0].X }

// head applies the linear output layer to the top cell's hidden state.
func (n *Network) head(h []float64) float64 {
	s := n.HeadB
	for j, w := range n.HeadW {
		s += w * h[j]
	}
	return s
}

// cacheFor returns the (layer, timestep) cache slot, growing the pool on
// first use of a new timestep index.
func (n *Network) cacheFor(li, t int) *stepCache {
	for len(n.caches[li]) <= t {
		n.caches[li] = append(n.caches[li], newStepCache(n.Cells[li].X, n.Cells[li].H))
	}
	return n.caches[li][t]
}

// outsFor returns the reused head-output buffer resized to T steps.
func (n *Network) outsFor(T int) []float64 {
	if cap(n.outs) < T {
		n.outs = make([]float64, T)
	}
	n.outs = n.outs[:T]
	return n.outs
}

// forwardWindow runs the stack from zero state over the window rows plus an
// optional extra final input, writing per-step head outputs into the reused
// outs buffer. withCache records the step caches BPTT needs.
func (n *Network) forwardWindow(extra []float64, withCache bool) []float64 {
	T := n.count
	if extra != nil {
		T++
	}
	for li := range n.states {
		n.states[li].Zero()
	}
	outs := n.outsFor(T)
	for t := 0; t < T; t++ {
		cur := extra
		if t < n.count {
			cur = n.rows[t]
		}
		for li, cell := range n.Cells {
			var cache *stepCache
			if withCache {
				cache = n.cacheFor(li, t)
			}
			cell.Step(cur, n.states[li], cache)
			cur = n.states[li].H
		}
		outs[t] = n.head(cur)
	}
	return outs
}

// Observe appends an (input, target) pair to the training window without
// updating weights. Used to warm the window before training begins.
func (n *Network) Observe(input []float64, target float64) {
	if len(input) != n.InputSize() {
		panic(fmt.Sprintf("lstm: input width %d, want %d", len(input), n.InputSize()))
	}
	if n.Window <= 0 {
		return // degenerate: nothing can be retained
	}
	for n.count > n.Window { // Window was shrunk after observations
		n.slide()
		n.count--
	}
	if n.count == n.Window {
		// Slide: recycle the oldest row as the newest.
		n.slide()
		copy(n.rows[n.count-1], input)
		n.targets[n.count-1] = target
		return
	}
	if n.count == len(n.rows) {
		n.rows = append(n.rows, make([]float64, len(input)))
		n.targets = append(n.targets, 0)
	}
	copy(n.rows[n.count], input)
	n.targets[n.count] = target
	n.count++
}

// slide rotates the oldest row to the end of the window (its contents are
// dead; the caller overwrites or drops it).
func (n *Network) slide() {
	first := n.rows[0]
	copy(n.rows[:n.count-1], n.rows[1:n.count])
	copy(n.targets[:n.count-1], n.targets[1:n.count])
	n.rows[n.count-1] = first
}

// TrainStep performs one online update: the pair is appended to the window
// and one truncated-BPTT pass over the window minimizes the mean squared
// one-step-ahead error. It returns the window loss before the update.
func (n *Network) TrainStep(input []float64, target float64) float64 {
	n.Observe(input, target)
	return n.fitWindow()
}

// fitWindow runs forward+backward over the current window and applies SGD.
func (n *Network) fitWindow() float64 {
	T := n.count
	if T == 0 {
		return 0
	}
	outs := n.forwardWindow(nil, true)
	loss := 0.0
	if cap(n.dOuts) < T {
		n.dOuts = make([]float64, T)
	}
	dOuts := n.dOuts[:T]
	for t := 0; t < T; t++ {
		d := outs[t] - n.targets[t]
		loss += d * d
		dOuts[t] = 2 * d / float64(T)
	}
	loss /= float64(T)

	for _, c := range n.Cells {
		c.ZeroGrad()
	}
	zero(n.dHeadW)
	n.dHeadB = 0

	L := len(n.Cells)
	// dh/dc flowing backward through time, one per layer. Each layer's
	// buffer is consumed at step t (merged into the gradient from above)
	// just before its Backward overwrites it with the step-t-1 value.
	for li := range n.Cells {
		zero(n.dh[li])
		zero(n.dc[li])
	}
	for t := T - 1; t >= 0; t-- {
		// Head gradient at step t enters the top layer's dh.
		top := L - 1
		hTop := n.caches[top][t]
		dhTop := n.dhTop
		copy(dhTop, n.dh[top])
		g := dOuts[t]
		n.dHeadB += g
		topH := n.hTop
		for j := range topH {
			// Recompute o ⊙ tanh(c) from the cache instead of storing the
			// hidden vector twice.
			topH[j] = hTop.o[j] * hTop.tanhC[j]
		}
		for j := range n.HeadW {
			n.dHeadW[j] += g * topH[j]
			dhTop[j] += g * n.HeadW[j]
		}
		dh := dhTop
		dc := n.dc[top]
		for li := L - 1; li >= 0; li-- {
			if li < L-1 {
				// Lower layers receive dx from the layer above plus
				// their own through-time gradient.
				for j := range dh {
					dh[j] += n.dh[li][j]
				}
				dc = n.dc[li]
			}
			// dcPrev aliasing dc is safe (see Cell.Backward); dhPrev lands in
			// n.dh[li], which was read above before this overwrite.
			n.Cells[li].Backward(dh, dc, n.caches[li][t], n.dx[li], n.dh[li], n.dc[li])
			dh = n.dx[li]
		}
	}
	for _, c := range n.Cells {
		c.SGDStep(n.LR, n.Clip)
	}
	apply(n.HeadW, n.dHeadW, n.LR, n.Clip)
	db := n.dHeadB
	if db > n.Clip {
		db = n.Clip
	} else if db < -n.Clip {
		db = -n.Clip
	}
	n.HeadB -= n.LR * db
	return loss
}

// Predict returns the one-step-ahead output after replaying the window and
// feeding the given input.
func (n *Network) Predict(input []float64) float64 {
	outs := n.forwardWindow(input, false)
	return outs[len(outs)-1]
}

// PredictAhead forecasts future values: it replays the window, feeds input,
// then recursively feeds each prediction back through feedback (which maps
// a scalar prediction to the next input vector) for a total of k outputs.
// This is exactly Algorithm 3's "forward-propagating goes on k iterations".
// The returned slice is a reused buffer, valid until the next PredictAhead
// call.
func (n *Network) PredictAhead(input []float64, k int, feedback func(out float64) []float64) []float64 {
	if k <= 0 {
		return nil
	}
	for li := range n.states {
		n.states[li].Zero()
	}
	run := func(x []float64) float64 {
		cur := x
		for li, cell := range n.Cells {
			cell.Step(cur, n.states[li], nil)
			cur = n.states[li].H
		}
		return n.head(cur)
	}
	for t := 0; t < n.count; t++ {
		run(n.rows[t])
	}
	if cap(n.ahead) < k {
		n.ahead = make([]float64, k)
	}
	outs := n.ahead[:k]
	out := run(input)
	outs[0] = out
	for i := 1; i < k; i++ {
		out = run(feedback(out))
		outs[i] = out
	}
	return outs
}

// WindowLen returns the number of pairs currently in the training window.
func (n *Network) WindowLen() int { return n.count }

// SnapshotTo serializes everything that survives across online-training
// calls: every cell's packed weights, the linear head, and the sliding
// window (inputs, targets, fill count). Recurrent states and BPTT scratch
// are deliberately excluded — forwardWindow re-derives them from zero state
// on every call, so they carry no information between calls.
func (n *Network) SnapshotTo(w *snapshot.Writer) {
	w.Int(len(n.Cells))
	for _, c := range n.Cells {
		w.Int(c.X)
		w.Int(c.H)
		w.F64s(c.Wx)
		w.F64s(c.Wh)
		w.F64s(c.B)
	}
	w.F64s(n.HeadW)
	w.F64(n.HeadB)
	w.Int(n.count)
	for t := 0; t < n.count; t++ {
		w.F64s(n.rows[t])
		w.F64(n.targets[t])
	}
}

// RestoreFrom loads a snapshot written by SnapshotTo into a network of the
// identical architecture (same layer stack and sizes — the restore target
// is always freshly built from the run configuration). A shape mismatch is
// reported through the reader's sticky error.
func (n *Network) RestoreFrom(r *snapshot.Reader) error {
	if cells := r.Int(); cells != len(n.Cells) {
		r.Fail(fmt.Errorf("lstm: snapshot has %d cells, network has %d", cells, len(n.Cells)))
		return r.Err()
	}
	for _, c := range n.Cells {
		x, h := r.Int(), r.Int()
		if r.Err() == nil && (x != c.X || h != c.H) {
			r.Fail(fmt.Errorf("lstm: snapshot cell %dx%d, network cell %dx%d", x, h, c.X, c.H))
			return r.Err()
		}
		r.F64sInto(c.Wx)
		r.F64sInto(c.Wh)
		r.F64sInto(c.B)
	}
	r.F64sInto(n.HeadW)
	n.HeadB = r.F64()
	count := r.Int()
	if r.Err() == nil && (count < 0 || count > n.Window) {
		r.Fail(fmt.Errorf("lstm: snapshot window fill %d exceeds window %d", count, n.Window))
		return r.Err()
	}
	n.count = 0
	for t := 0; t < count && r.Err() == nil; t++ {
		row := r.F64s()
		target := r.F64()
		if r.Err() == nil && len(row) != n.InputSize() {
			r.Fail(fmt.Errorf("lstm: snapshot row width %d, want %d", len(row), n.InputSize()))
			return r.Err()
		}
		if r.Err() == nil {
			n.Observe(row, target)
		}
	}
	return r.Err()
}
