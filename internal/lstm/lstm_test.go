package lstm

import (
	"bytes"
	"math"
	"testing"

	"lcasgd/internal/rng"
	"lcasgd/internal/snapshot"
)

// cellLoss runs one forward step and returns Σh + Σc, the scalar whose
// parameter gradient the finite-difference tests verify. Step updates the
// state in place, so it runs on a scratch copy of prev.
func cellLoss(c *Cell, x []float64, prev State) float64 {
	next := prev.Clone()
	c.Step(x, next, nil)
	s := 0.0
	for _, v := range next.H {
		s += v
	}
	for _, v := range next.C {
		s += v
	}
	return s
}

func TestCellBackwardMatchesFiniteDiff(t *testing.T) {
	g := rng.New(1)
	c := NewCell(3, 4, g)
	x := []float64{0.5, -0.2, 0.8}
	prev := NewState(4)
	g.FillNormal(prev.H, 0.5)
	g.FillNormal(prev.C, 0.5)

	scratch := prev.Clone()
	cache := newStepCache(3, 4)
	c.Step(x, scratch, cache)
	c.ZeroGrad()
	ones := []float64{1, 1, 1, 1}
	dx := make([]float64, 3)
	dhPrev := make([]float64, 4)
	dcPrev := make([]float64, 4)
	c.Backward(ones, ones, cache, dx, dhPrev, dcPrev)

	const eps = 1e-6
	check := func(name string, w []float64, dw []float64) {
		for i := range w {
			orig := w[i]
			w[i] = orig + eps
			lp := cellLoss(c, x, prev)
			w[i] = orig - eps
			lm := cellLoss(c, x, prev)
			w[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-dw[i]) > 1e-5*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %g numeric %g", name, i, dw[i], num)
			}
		}
	}
	check("Wx", c.Wx, c.dWx)
	check("Wh", c.Wh, c.dWh)
	check("B", c.B, c.dB)

	// Input and previous-state gradients.
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		lp := cellLoss(c, x, prev)
		x[i] = orig - eps
		lm := cellLoss(c, x, prev)
		x[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dx[i]) > 1e-5*(1+math.Abs(num)) {
			t.Fatalf("dx[%d]: analytic %g numeric %g", i, dx[i], num)
		}
	}
	for i := range prev.H {
		orig := prev.H[i]
		prev.H[i] = orig + eps
		lp := cellLoss(c, x, prev)
		prev.H[i] = orig - eps
		lm := cellLoss(c, x, prev)
		prev.H[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dhPrev[i]) > 1e-5*(1+math.Abs(num)) {
			t.Fatalf("dhPrev[%d]: analytic %g numeric %g", i, dhPrev[i], num)
		}
	}
	for i := range prev.C {
		orig := prev.C[i]
		prev.C[i] = orig + eps
		lp := cellLoss(c, x, prev)
		prev.C[i] = orig - eps
		lm := cellLoss(c, x, prev)
		prev.C[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dcPrev[i]) > 1e-5*(1+math.Abs(num)) {
			t.Fatalf("dcPrev[%d]: analytic %g numeric %g", i, dcPrev[i], num)
		}
	}
}

func TestCellForgetBiasInit(t *testing.T) {
	c := NewCell(1, 3, rng.New(2))
	for j := 0; j < 3; j++ {
		if c.B[gateF*3+j] != 1 {
			t.Fatal("forget-gate bias must initialize to 1")
		}
		if c.B[gateI*3+j] != 0 {
			t.Fatal("other biases must initialize to 0")
		}
	}
}

func TestCellInputSizePanic(t *testing.T) {
	c := NewCell(2, 3, rng.New(3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Step([]float64{1}, NewState(3), nil)
}

func TestNetworkLearnsConstant(t *testing.T) {
	g := rng.New(4)
	n := NewNetwork(1, []int{8}, g)
	n.LR = 0.1
	var loss float64
	for i := 0; i < 300; i++ {
		loss = n.TrainStep([]float64{0.5}, 0.7)
	}
	if loss > 1e-3 {
		t.Fatalf("did not fit constant: loss %v", loss)
	}
	if math.Abs(n.Predict([]float64{0.5})-0.7) > 0.05 {
		t.Fatalf("prediction %v, want ~0.7", n.Predict([]float64{0.5}))
	}
}

func TestNetworkLearnsDecayingSeries(t *testing.T) {
	// The loss predictor's real job: track a decaying loss curve online.
	g := rng.New(5)
	n := NewNetwork(1, []int{16, 16}, g)
	n.LR = 0.05
	val := 1.0
	var lastLoss float64
	for i := 0; i < 400; i++ {
		next := val * 0.99
		lastLoss = n.TrainStep([]float64{val}, next)
		val = next
	}
	if lastLoss > 5e-3 {
		t.Fatalf("online loss on decaying series: %v", lastLoss)
	}
	pred := n.Predict([]float64{val})
	if math.Abs(pred-val*0.99) > 0.05 {
		t.Fatalf("one-step prediction %v, want ~%v", pred, val*0.99)
	}
}

func TestNetworkWindowBounded(t *testing.T) {
	n := NewNetwork(1, []int{4}, rng.New(6))
	n.Window = 5
	for i := 0; i < 20; i++ {
		n.Observe([]float64{float64(i)}, 0)
	}
	if n.WindowLen() != 5 {
		t.Fatalf("window length %d, want 5", n.WindowLen())
	}
}

func TestPredictAheadLengthAndFeedback(t *testing.T) {
	n := NewNetwork(1, []int{4}, rng.New(7))
	for i := 0; i < 8; i++ {
		n.Observe([]float64{0.1}, 0.1)
	}
	fed := 0
	outs := n.PredictAhead([]float64{0.1}, 4, func(out float64) []float64 {
		fed++
		return []float64{out}
	})
	if len(outs) != 4 {
		t.Fatalf("PredictAhead returned %d values, want 4", len(outs))
	}
	if fed != 3 {
		t.Fatalf("feedback called %d times, want 3", fed)
	}
	if n.PredictAhead([]float64{0.1}, 0, nil) != nil {
		t.Fatal("k=0 must return nil")
	}
}

func TestPredictAheadTracksDecay(t *testing.T) {
	g := rng.New(8)
	n := NewNetwork(1, []int{16, 16}, g)
	n.LR = 0.05
	val := 1.0
	for i := 0; i < 600; i++ {
		next := val * 0.995
		n.TrainStep([]float64{val}, next)
		val = next
	}
	outs := n.PredictAhead([]float64{val}, 5, func(o float64) []float64 { return []float64{o} })
	// Multi-step predictions of a decaying series should stay near the
	// series and be (weakly) decreasing in trend.
	for i, o := range outs {
		expected := val * math.Pow(0.995, float64(i+1))
		if math.Abs(o-expected) > 0.1 {
			t.Fatalf("step %d prediction %v, expected ~%v", i, o, expected)
		}
	}
}

func TestMultivariateInput(t *testing.T) {
	// The step predictor consumes 3 features; check a 3-input network
	// learns a simple function of its inputs online.
	g := rng.New(9)
	n := NewNetwork(3, []int{12}, g)
	n.LR = 0.05
	r := rng.New(10)
	var loss float64
	for i := 0; i < 800; i++ {
		a, b := r.Float64(), r.Float64()
		x := []float64{a, b, 0.5}
		loss = n.TrainStep(x, 0.5*a+0.3*b)
	}
	if loss > 0.05 {
		t.Fatalf("multivariate online loss %v", loss)
	}
}

func TestNewNetworkPanicsWithoutHidden(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNetwork(1, nil, rng.New(1))
}

func TestTrainingIsDeterministic(t *testing.T) {
	build := func() *Network {
		n := NewNetwork(1, []int{8}, rng.New(42))
		for i := 0; i < 50; i++ {
			n.TrainStep([]float64{float64(i % 5)}, float64((i+1)%5))
		}
		return n
	}
	a, b := build(), build()
	pa, pb := a.Predict([]float64{2}), b.Predict([]float64{2})
	if pa != pb {
		t.Fatalf("identical seeds diverged: %v vs %v", pa, pb)
	}
}

// TestTrainPredictZeroAllocSteadyState pins the predictor substrate's hot
// calls — online TrainStep, Predict and PredictAhead — to zero heap
// allocations once the window and scratch buffers are warm. These run on
// the parameter server once per worker iteration, and their REAL measured
// wall times feed Tables 2–3, so allocation noise here distorts a paper
// artifact.
func TestTrainPredictZeroAllocSteadyState(t *testing.T) {
	n := NewNetwork(1, []int{16, 16}, rng.New(30))
	in := []float64{0.5}
	fb := []float64{0}
	feedback := func(o float64) []float64 { fb[0] = o; return fb }
	for i := 0; i < 20; i++ { // fill the window, warm every scratch buffer
		n.TrainStep(in, 0.4)
		n.Predict(in)
		n.PredictAhead(in, 5, feedback)
	}
	if a := testing.AllocsPerRun(20, func() { n.TrainStep(in, 0.4) }); a != 0 {
		t.Fatalf("steady-state TrainStep allocates %v times, want 0", a)
	}
	if a := testing.AllocsPerRun(20, func() { n.Predict(in) }); a != 0 {
		t.Fatalf("steady-state Predict allocates %v times, want 0", a)
	}
	if a := testing.AllocsPerRun(20, func() { n.PredictAhead(in, 5, feedback) }); a != 0 {
		t.Fatalf("steady-state PredictAhead allocates %v times, want 0", a)
	}
}

func BenchmarkTrainStepH64(b *testing.B) {
	n := NewNetwork(1, []int{64, 64}, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.TrainStep([]float64{0.5}, 0.4)
	}
}

func BenchmarkPredictAhead8(b *testing.B) {
	n := NewNetwork(1, []int{64, 64}, rng.New(1))
	for i := 0; i < 16; i++ {
		n.Observe([]float64{0.5}, 0.4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.PredictAhead([]float64{0.5}, 8, func(o float64) []float64 { return []float64{o} })
	}
}

// TestNetworkSnapshotRoundTrip pins the predictor-resume contract: a
// network restored from a snapshot continues training and predicting
// bit-identically to the network that wrote it.
func TestNetworkSnapshotRoundTrip(t *testing.T) {
	build := func() *Network {
		n := NewNetwork(2, []int{6, 6}, rng.New(42))
		n.Window = 5
		n.LR = 0.1
		return n
	}
	a := build()
	in := func(i int) []float64 { return []float64{float64(i) * 0.1, float64(i%3) - 1} }
	for i := 0; i < 9; i++ {
		a.TrainStep(in(i), float64(i%4)*0.25)
	}

	var buf bytes.Buffer
	w := snapshot.NewWriter(&buf)
	a.SnapshotTo(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b := build() // fresh weights, fresh window — all overwritten by restore
	r, err := snapshot.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreFrom(r); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Both copies must now evolve identically, bit for bit.
	for i := 9; i < 20; i++ {
		la := a.TrainStep(in(i), float64(i%4)*0.25)
		lb := b.TrainStep(in(i), float64(i%4)*0.25)
		if la != lb {
			t.Fatalf("step %d: window loss diverged %x vs %x", i, la, lb)
		}
		probe := []float64{0.5, -0.5}
		if pa, pb := a.Predict(probe), b.Predict(probe); pa != pb {
			t.Fatalf("step %d: prediction diverged %x vs %x", i, pa, pb)
		}
	}
}

// TestNetworkRestoreRejectsShapeMismatch ensures a snapshot cannot be
// loaded into a different architecture.
func TestNetworkRestoreRejectsShapeMismatch(t *testing.T) {
	a := NewNetwork(2, []int{6, 6}, rng.New(42))
	a.TrainStep([]float64{1, 2}, 0.5)
	var buf bytes.Buffer
	w := snapshot.NewWriter(&buf)
	a.SnapshotTo(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b := NewNetwork(2, []int{4, 4}, rng.New(42))
	r, err := snapshot.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreFrom(r); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
