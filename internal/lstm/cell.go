// Package lstm implements a small LSTM recurrent network with a linear
// head and truncated-BPTT online training. It is the substrate for the two
// predictors that constitute LC-ASGD's contribution: the loss predictor
// (Algorithm 3) and the step predictor (Algorithm 4), both of which the
// paper describes as "two LSTM layers in the front of the network and a
// linear layer at the end", trained online on the parameter server.
package lstm

import (
	"fmt"
	"math"

	"lcasgd/internal/rng"
)

// gate index layout inside the packed 4H pre-activation vector.
const (
	gateI = iota // input gate
	gateF        // forget gate
	gateG        // candidate
	gateO        // output gate
	numGates
)

// Cell is a single LSTM layer with input size X and hidden size H.
// Parameters are packed: Wx [4H x X], Wh [4H x H], B [4H].
type Cell struct {
	X, H         int
	Wx, Wh, B    []float64
	dWx, dWh, dB []float64
}

// NewCell allocates a cell with Xavier-scaled weights and the forget-gate
// bias initialized to 1 (the standard trick that stabilizes early training).
func NewCell(x, h int, g *rng.RNG) *Cell {
	c := &Cell{
		X: x, H: h,
		Wx:  make([]float64, numGates*h*x),
		Wh:  make([]float64, numGates*h*h),
		B:   make([]float64, numGates*h),
		dWx: make([]float64, numGates*h*x),
		dWh: make([]float64, numGates*h*h),
		dB:  make([]float64, numGates*h),
	}
	g.FillNormal(c.Wx, math.Sqrt(1/float64(x+h)))
	g.FillNormal(c.Wh, math.Sqrt(1/float64(x+h)))
	for i := 0; i < h; i++ {
		c.B[gateF*h+i] = 1
	}
	return c
}

// State is the recurrent state (h, c) of one cell.
type State struct{ H, C []float64 }

// NewState returns a zero state for hidden size h.
func NewState(h int) State {
	return State{H: make([]float64, h), C: make([]float64, h)}
}

// Clone deep-copies the state.
func (s State) Clone() State {
	return State{H: append([]float64(nil), s.H...), C: append([]float64(nil), s.C...)}
}

// stepCache records everything the backward pass needs for one timestep.
type stepCache struct {
	x, hPrev, cPrev []float64
	i, f, g, o      []float64 // post-activation gate values
	c, tanhC        []float64
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// Forward advances the cell one timestep, returning the new state and the
// cache required by Backward.
func (c *Cell) Forward(x []float64, prev State) (State, *stepCache) {
	if len(x) != c.X {
		panic(fmt.Sprintf("lstm: input size %d, want %d", len(x), c.X))
	}
	h := c.H
	pre := make([]float64, numGates*h)
	copy(pre, c.B)
	for r := 0; r < numGates*h; r++ {
		rowX := c.Wx[r*c.X : (r+1)*c.X]
		s := 0.0
		for j, xv := range x {
			s += rowX[j] * xv
		}
		rowH := c.Wh[r*h : (r+1)*h]
		for j, hv := range prev.H {
			s += rowH[j] * hv
		}
		pre[r] += s
	}
	cache := &stepCache{
		x: append([]float64(nil), x...), hPrev: prev.H, cPrev: prev.C,
		i: make([]float64, h), f: make([]float64, h), g: make([]float64, h), o: make([]float64, h),
		c: make([]float64, h), tanhC: make([]float64, h),
	}
	next := NewState(h)
	for j := 0; j < h; j++ {
		iv := sigmoid(pre[gateI*h+j])
		fv := sigmoid(pre[gateF*h+j])
		gv := math.Tanh(pre[gateG*h+j])
		ov := sigmoid(pre[gateO*h+j])
		cv := fv*prev.C[j] + iv*gv
		tc := math.Tanh(cv)
		cache.i[j], cache.f[j], cache.g[j], cache.o[j] = iv, fv, gv, ov
		cache.c[j], cache.tanhC[j] = cv, tc
		next.C[j] = cv
		next.H[j] = ov * tc
	}
	return next, cache
}

// Backward consumes dh/dc for this timestep's outputs and the cache from
// Forward; it accumulates parameter gradients and returns (dx, dhPrev,
// dcPrev).
func (c *Cell) Backward(dh, dc []float64, cache *stepCache) (dx, dhPrev, dcPrev []float64) {
	h := c.H
	dAct := make([]float64, numGates*h)
	dcPrev = make([]float64, h)
	for j := 0; j < h; j++ {
		o, tc := cache.o[j], cache.tanhC[j]
		dct := dc[j] + dh[j]*o*(1-tc*tc)
		do := dh[j] * tc
		di := dct * cache.g[j]
		dg := dct * cache.i[j]
		df := dct * cache.cPrev[j]
		dcPrev[j] = dct * cache.f[j]
		dAct[gateI*h+j] = di * cache.i[j] * (1 - cache.i[j])
		dAct[gateF*h+j] = df * cache.f[j] * (1 - cache.f[j])
		dAct[gateG*h+j] = dg * (1 - cache.g[j]*cache.g[j])
		dAct[gateO*h+j] = do * o * (1 - o)
	}
	dx = make([]float64, c.X)
	dhPrev = make([]float64, h)
	for r := 0; r < numGates*h; r++ {
		da := dAct[r]
		if da == 0 {
			continue
		}
		c.dB[r] += da
		rowX := c.Wx[r*c.X : (r+1)*c.X]
		dRowX := c.dWx[r*c.X : (r+1)*c.X]
		for j := 0; j < c.X; j++ {
			dRowX[j] += da * cache.x[j]
			dx[j] += da * rowX[j]
		}
		rowH := c.Wh[r*h : (r+1)*h]
		dRowH := c.dWh[r*h : (r+1)*h]
		for j := 0; j < h; j++ {
			dRowH[j] += da * cache.hPrev[j]
			dhPrev[j] += da * rowH[j]
		}
	}
	return dx, dhPrev, dcPrev
}

// ZeroGrad clears the accumulated gradients.
func (c *Cell) ZeroGrad() {
	zero(c.dWx)
	zero(c.dWh)
	zero(c.dB)
}

// SGDStep applies one gradient-descent update with the given learning rate
// and per-element clip on the gradient.
func (c *Cell) SGDStep(lr, clip float64) {
	apply(c.Wx, c.dWx, lr, clip)
	apply(c.Wh, c.dWh, lr, clip)
	apply(c.B, c.dB, lr, clip)
}

func zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

func apply(w, g []float64, lr, clip float64) {
	for i := range w {
		gv := g[i]
		if gv > clip {
			gv = clip
		} else if gv < -clip {
			gv = -clip
		}
		w[i] -= lr * gv
	}
}
