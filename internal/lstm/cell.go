// Package lstm implements a small LSTM recurrent network with a linear
// head and truncated-BPTT online training. It is the substrate for the two
// predictors that constitute LC-ASGD's contribution: the loss predictor
// (Algorithm 3) and the step predictor (Algorithm 4), both of which the
// paper describes as "two LSTM layers in the front of the network and a
// linear layer at the end", trained online on the parameter server.
//
// The package is built for the zero-allocation hot path: a Network owns
// every buffer its train/predict calls need (step caches, recurrent
// states, BPTT scratch, the sliding window itself), so steady-state
// TrainStep/Predict/PredictAhead calls perform no heap allocations. This
// matters doubly here: the predictors run on the parameter server once per
// worker iteration, and their REAL measured wall time is a paper artifact
// (Tables 2–3) that allocation noise would distort.
package lstm

import (
	"fmt"
	"math"

	"lcasgd/internal/rng"
)

// gate index layout inside the packed 4H pre-activation vector.
const (
	gateI = iota // input gate
	gateF        // forget gate
	gateG        // candidate
	gateO        // output gate
	numGates
)

// Cell is a single LSTM layer with input size X and hidden size H.
// Parameters are packed: Wx [4H x X], Wh [4H x H], B [4H].
type Cell struct {
	X, H         int
	Wx, Wh, B    []float64
	dWx, dWh, dB []float64

	pre  []float64 // [4H] pre-activation scratch, reused every Step
	dAct []float64 // [4H] gate-gradient scratch, reused every Backward
}

// NewCell allocates a cell with Xavier-scaled weights and the forget-gate
// bias initialized to 1 (the standard trick that stabilizes early training).
func NewCell(x, h int, g *rng.RNG) *Cell {
	c := &Cell{
		X: x, H: h,
		Wx:   make([]float64, numGates*h*x),
		Wh:   make([]float64, numGates*h*h),
		B:    make([]float64, numGates*h),
		dWx:  make([]float64, numGates*h*x),
		dWh:  make([]float64, numGates*h*h),
		dB:   make([]float64, numGates*h),
		pre:  make([]float64, numGates*h),
		dAct: make([]float64, numGates*h),
	}
	g.FillNormal(c.Wx, math.Sqrt(1/float64(x+h)))
	g.FillNormal(c.Wh, math.Sqrt(1/float64(x+h)))
	for i := 0; i < h; i++ {
		c.B[gateF*h+i] = 1
	}
	return c
}

// State is the recurrent state (h, c) of one cell.
type State struct{ H, C []float64 }

// NewState returns a zero state for hidden size h.
func NewState(h int) State {
	return State{H: make([]float64, h), C: make([]float64, h)}
}

// Clone deep-copies the state.
func (s State) Clone() State {
	return State{H: append([]float64(nil), s.H...), C: append([]float64(nil), s.C...)}
}

// Zero resets the state in place.
func (s State) Zero() {
	zero(s.H)
	zero(s.C)
}

// stepCache records everything the backward pass needs for one timestep.
// All slices are cache-owned copies so the recurrent state can be updated
// in place between steps.
type stepCache struct {
	x, hPrev, cPrev []float64
	i, f, g, o      []float64 // post-activation gate values
	c, tanhC        []float64
}

// newStepCache allocates one cache slot for a cell of input size x and
// hidden size h.
func newStepCache(x, h int) *stepCache {
	return &stepCache{
		x: make([]float64, x), hPrev: make([]float64, h), cPrev: make([]float64, h),
		i: make([]float64, h), f: make([]float64, h), g: make([]float64, h), o: make([]float64, h),
		c: make([]float64, h), tanhC: make([]float64, h),
	}
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// Step advances the cell one timestep, updating s in place. When cache is
// non-nil it records everything Backward needs (including copies of the
// input and incoming state, so in-place state reuse is safe). Passing a nil
// cache is the prediction-only fast path.
func (c *Cell) Step(x []float64, s State, cache *stepCache) {
	if len(x) != c.X {
		panic(fmt.Sprintf("lstm: input size %d, want %d", len(x), c.X))
	}
	h := c.H
	pre := c.pre
	copy(pre, c.B)
	for r := 0; r < numGates*h; r++ {
		rowX := c.Wx[r*c.X : (r+1)*c.X]
		sum := 0.0
		for j, xv := range x {
			sum += rowX[j] * xv
		}
		rowH := c.Wh[r*h : (r+1)*h]
		for j, hv := range s.H {
			sum += rowH[j] * hv
		}
		pre[r] += sum
	}
	if cache != nil {
		copy(cache.x, x)
		copy(cache.hPrev, s.H)
		copy(cache.cPrev, s.C)
	}
	for j := 0; j < h; j++ {
		iv := sigmoid(pre[gateI*h+j])
		fv := sigmoid(pre[gateF*h+j])
		gv := math.Tanh(pre[gateG*h+j])
		ov := sigmoid(pre[gateO*h+j])
		cv := fv*s.C[j] + iv*gv
		tc := math.Tanh(cv)
		if cache != nil {
			cache.i[j], cache.f[j], cache.g[j], cache.o[j] = iv, fv, gv, ov
			cache.c[j], cache.tanhC[j] = cv, tc
		}
		s.C[j] = cv
		s.H[j] = ov * tc
	}
}

// Backward consumes dh/dc for this timestep's outputs and the cache from
// Step; it accumulates parameter gradients and writes the input gradient
// into dx and the through-time gradients into dhPrev/dcPrev (all
// caller-owned, sized X/H/H). dx and dhPrev are zeroed here before
// accumulation; dcPrev is fully assigned and MAY alias dc (each element is
// read before its aliased slot is written). dx and dhPrev must not alias
// dh or dc.
func (c *Cell) Backward(dh, dc []float64, cache *stepCache, dx, dhPrev, dcPrev []float64) {
	h := c.H
	dAct := c.dAct
	for j := 0; j < h; j++ {
		o, tc := cache.o[j], cache.tanhC[j]
		dct := dc[j] + dh[j]*o*(1-tc*tc)
		do := dh[j] * tc
		di := dct * cache.g[j]
		dg := dct * cache.i[j]
		df := dct * cache.cPrev[j]
		dcPrev[j] = dct * cache.f[j]
		dAct[gateI*h+j] = di * cache.i[j] * (1 - cache.i[j])
		dAct[gateF*h+j] = df * cache.f[j] * (1 - cache.f[j])
		dAct[gateG*h+j] = dg * (1 - cache.g[j]*cache.g[j])
		dAct[gateO*h+j] = do * o * (1 - o)
	}
	zero(dx)
	zero(dhPrev)
	for r := 0; r < numGates*h; r++ {
		da := dAct[r]
		if da == 0 {
			continue
		}
		c.dB[r] += da
		rowX := c.Wx[r*c.X : (r+1)*c.X]
		dRowX := c.dWx[r*c.X : (r+1)*c.X]
		for j := 0; j < c.X; j++ {
			dRowX[j] += da * cache.x[j]
			dx[j] += da * rowX[j]
		}
		rowH := c.Wh[r*h : (r+1)*h]
		dRowH := c.dWh[r*h : (r+1)*h]
		for j := 0; j < h; j++ {
			dRowH[j] += da * cache.hPrev[j]
			dhPrev[j] += da * rowH[j]
		}
	}
}

// ZeroGrad clears the accumulated gradients.
func (c *Cell) ZeroGrad() {
	zero(c.dWx)
	zero(c.dWh)
	zero(c.dB)
}

// SGDStep applies one gradient-descent update with the given learning rate
// and per-element clip on the gradient.
func (c *Cell) SGDStep(lr, clip float64) {
	apply(c.Wx, c.dWx, lr, clip)
	apply(c.Wh, c.dWh, lr, clip)
	apply(c.B, c.dB, lr, clip)
}

func zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

func apply(w, g []float64, lr, clip float64) {
	for i := range w {
		gv := g[i]
		if gv > clip {
			gv = clip
		} else if gv < -clip {
			gv = -clip
		}
		w[i] -= lr * gv
	}
}
