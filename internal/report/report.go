// Package report renders experiment results as aligned text tables, CSV,
// and ASCII line charts — the output formats of cmd/lcexp and the benchmark
// harness that regenerate the paper's figures and tables.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; it panics if the width disagrees with the headers.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(t.Headers)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting — callers
// only emit numeric and identifier cells).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Series is one named line of an ASCII chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart renders one or more series as an ASCII line chart of the given
// size, with each series drawn using successive marker runes. It is the
// text analogue of the paper's figure panels.
func Chart(title, xlabel, ylabel string, width, height int, series ...Series) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return title + " (no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	markers := []rune{'*', 'o', '+', 'x', '#', '@'}
	for si, s := range series {
		mk := markers[si%len(markers)]
		for i := range s.X {
			c := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			r := height - 1 - int(math.Round((s.Y[i]-minY)/(maxY-minY)*float64(height-1)))
			if r >= 0 && r < height && c >= 0 && c < width {
				grid[r][c] = mk
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s", markers[si%len(markers)], s.Name)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%8.3f |", maxY)
	b.WriteString(string(grid[0]))
	b.WriteByte('\n')
	for r := 1; r < height-1; r++ {
		b.WriteString("         |")
		b.WriteString(string(grid[r]))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%8.3f |", minY)
	b.WriteString(string(grid[height-1]))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "          %-*s\n", width, fmt.Sprintf("%s: %.3g .. %.3g   (%s)", xlabel, minX, maxX, ylabel))
	return b.String()
}

// Pct formats a fraction as a percentage with two decimals, e.g. 0.0515 →
// "5.15".
func Pct(v float64) string { return fmt.Sprintf("%.2f", v*100) }

// Deg formats the performance-degradation column of Table 1: the relative
// increase of err over base, in percent (negative means better than the
// baseline, as the paper reports for LC-ASGD at small M).
func Deg(err, base float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.2f", (err-base)/base*100)
}
