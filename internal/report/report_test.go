package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "A", "Algorithm", "Err")
	tb.AddRow("1", "SGD", "5.15")
	tb.AddRow("16", "LC-ASGD", "5.52")
	s := tb.String()
	if !strings.Contains(s, "Title") || !strings.Contains(s, "LC-ASGD") {
		t.Fatalf("render missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Title, header, rule, 2 rows.
	if len(lines) != 5 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), s)
	}
	// Columns align: every data line has the same prefix width for col 2.
	hdr := lines[1]
	if !strings.HasPrefix(hdr, "A ") {
		t.Fatalf("header misaligned: %q", hdr)
	}
}

func TestTableRowWidthPanics(t *testing.T) {
	tb := NewTable("", "A", "B")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.AddRow("only-one")
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "x", "y")
	tb.AddRow("1", "2")
	csv := tb.CSV()
	if csv != "x,y\n1,2\n" {
		t.Fatalf("csv: %q", csv)
	}
}

func TestChartContainsSeries(t *testing.T) {
	s1 := Series{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}}
	s2 := Series{Name: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}}
	out := Chart("test chart", "epoch", "err", 40, 10, s1, s2)
	if !strings.Contains(out, "test chart") || !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Fatalf("chart missing labels:\n%s", out)
	}
	if !strings.ContainsRune(out, '*') || !strings.ContainsRune(out, 'o') {
		t.Fatalf("chart missing markers:\n%s", out)
	}
}

func TestChartEmptyData(t *testing.T) {
	out := Chart("empty", "x", "y", 40, 10)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart: %q", out)
	}
}

func TestChartDegenerateRange(t *testing.T) {
	s := Series{Name: "flat", X: []float64{1, 1}, Y: []float64{3, 3}}
	out := Chart("flat", "x", "y", 20, 6, s)
	if out == "" || strings.Contains(out, "NaN") {
		t.Fatalf("degenerate chart: %q", out)
	}
}

func TestPct(t *testing.T) {
	if Pct(0.0515) != "5.15" {
		t.Fatalf("Pct: %s", Pct(0.0515))
	}
}

func TestDeg(t *testing.T) {
	if Deg(0.0552, 0.0515) != "+7.18" {
		t.Fatalf("Deg: %s", Deg(0.0552, 0.0515))
	}
	if Deg(0.0487, 0.0515) != "-5.44" {
		t.Fatalf("Deg: %s", Deg(0.0487, 0.0515))
	}
	if Deg(1, 0) != "n/a" {
		t.Fatal("Deg with zero base")
	}
}
