package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first output")
	}
}

func TestSplitLabeledStable(t *testing.T) {
	a, b := New(9), New(9)
	ca := a.SplitLabeled(3)
	cb := b.SplitLabeled(3)
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatalf("labeled children diverged at step %d", i)
		}
	}
}

func TestSplitLabeledDistinctLabels(t *testing.T) {
	a, b := New(9), New(9)
	if a.SplitLabeled(0).Uint64() == b.SplitLabeled(1).Uint64() {
		t.Fatal("labels 0 and 1 produced identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	seen := make(map[int]int)
	for i := 0; i < 60000; i++ {
		v := r.Intn(6)
		if v < 0 || v >= 6 {
			t.Fatalf("Intn(6) = %d out of range", v)
		}
		seen[v]++
	}
	for k := 0; k < 6; k++ {
		if seen[k] < 8000 || seen[k] > 12000 {
			t.Fatalf("Intn(6) bucket %d count %d far from uniform", k, seen[k])
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(23)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 0.5); v <= 0 {
			t.Fatalf("lognormal produced non-positive %v", v)
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(29)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(1.0, 0.3)
	}
	// Median of lognormal(mu, sigma) is exp(mu).
	below := 0
	target := math.Exp(1.0)
	for _, v := range vals {
		if v < target {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("lognormal median fraction below exp(mu) = %v, want ~0.5", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPermPropertyQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(37)
	idx := []int{5, 5, 1, 2, 3}
	r.Shuffle(idx)
	counts := map[int]int{}
	for _, v := range idx {
		counts[v]++
	}
	if counts[5] != 2 || counts[1] != 1 || counts[2] != 1 || counts[3] != 1 {
		t.Fatalf("shuffle changed elements: %v", idx)
	}
}

func TestFillNormalLength(t *testing.T) {
	r := New(41)
	buf := make([]float64, 1000)
	r.FillNormal(buf, 2.0)
	var sumsq float64
	for _, v := range buf {
		sumsq += v * v
	}
	sd := math.Sqrt(sumsq / 1000)
	if sd < 1.5 || sd > 2.5 {
		t.Fatalf("FillNormal stddev = %v, want ~2", sd)
	}
}

func TestFillUniformRange(t *testing.T) {
	r := New(43)
	buf := make([]float64, 1000)
	r.FillUniform(buf, -3, 7)
	for _, v := range buf {
		if v < -3 || v >= 7 {
			t.Fatalf("FillUniform out of range: %v", v)
		}
	}
}

func TestUint64PropertyNonSticky(t *testing.T) {
	// Property: over any window of 64 outputs, the generator never repeats
	// the same value 64 times (i.e. it is not stuck).
	f := func(seed uint64) bool {
		r := New(seed)
		first := r.Uint64()
		for i := 0; i < 63; i++ {
			if r.Uint64() != first {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Normal()
	}
}

// TestStateRoundTripPositionExact pins the snapshot contract: capturing
// State mid-stream and restoring it resumes at exactly the next draw, for
// however long the tail runs.
func TestStateRoundTripPositionExact(t *testing.T) {
	r := New(0xFEED)
	for i := 0; i < 37; i++ {
		r.Uint64()
	}
	st := r.State()
	want := make([]uint64, 100)
	for i := range want {
		want[i] = r.Uint64()
	}
	fresh := New(1)
	fresh.SetState(st)
	for i, w := range want {
		if got := fresh.Uint64(); got != w {
			t.Fatalf("draw %d after restore: %x, want %x", i, got, w)
		}
	}
}

// TestStateRoundTripSplitStreams extends the contract to derived streams:
// restoring a parent mid-stream reproduces the same Split and SplitLabeled
// children (and their own draws), and restoring a child directly resumes
// that child's position.
func TestStateRoundTripSplitStreams(t *testing.T) {
	parent := New(0xBEEF)
	parent.Float64()
	st := parent.State()
	childA := parent.SplitLabeled(7)
	childB := parent.Split()
	wantA, wantB := childA.Uint64(), childB.Uint64()

	parent2 := New(2)
	parent2.SetState(st)
	gotA := parent2.SplitLabeled(7).Uint64()
	gotB := parent2.Split().Uint64()
	if gotA != wantA || gotB != wantB {
		t.Fatalf("derived streams diverged after restore: %x/%x vs %x/%x", gotA, gotB, wantA, wantB)
	}

	// Child-level round trip, mid-child-stream.
	child := New(5).SplitLabeled(3)
	for i := 0; i < 11; i++ {
		child.Normal()
	}
	cst := child.State()
	want := child.Uint64()
	restored := New(9)
	restored.SetState(cst)
	if got := restored.Uint64(); got != want {
		t.Fatalf("child stream draw after restore: %x, want %x", got, want)
	}
}

func TestSetStateRejectsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on all-zero state")
		}
	}()
	New(1).SetState([4]uint64{})
}
