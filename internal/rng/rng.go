// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout the LC-ASGD reproduction.
//
// Reproducibility is a hard requirement for the experiment harness: every
// figure and table must regenerate bit-identically from a seed. The standard
// library's math/rand is seedable but offers no principled way to derive
// independent streams for each worker, layer, and dataset shard. This package
// implements xoshiro256** (Blackman & Vigna) seeded through SplitMix64, with
// a Split operation that derives statistically independent child streams.
package rng

import "math"

// RNG is a xoshiro256** generator. The zero value is not valid; construct
// with New or Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the state and returns the next output. It is used only
// for seeding, as recommended by the xoshiro authors.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically seeded from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	st := seed
	r.s0 = splitmix64(&st)
	r.s1 = splitmix64(&st)
	r.s2 = splitmix64(&st)
	r.s3 = splitmix64(&st)
	// xoshiro requires a nonzero state; splitmix64 of any seed gives one
	// with overwhelming probability, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split derives an independent child stream. The child is seeded from the
// parent's output so that distinct calls yield distinct streams, and the
// parent advances, so subsequent Splits differ too.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// State exposes the generator's exact position as four words — the
// serializable form the snapshot subsystem persists. Restoring it with
// SetState resumes the stream at the exact draw it was captured at, which
// is what makes checkpointed training runs replay bit-identically.
func (r *RNG) State() [4]uint64 {
	return [4]uint64{r.s0, r.s1, r.s2, r.s3}
}

// SetState rewinds (or fast-forwards) the generator to a previously
// captured State. The all-zero state is invalid for xoshiro (it is a fixed
// point that only ever outputs zero) and panics: it can only arise from a
// corrupted snapshot, never from State().
func (r *RNG) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		panic("rng: SetState with all-zero state")
	}
	r.s0, r.s1, r.s2, r.s3 = s[0], s[1], s[2], s[3]
}

// SplitLabeled derives a child stream bound to a small integer label (for
// example a worker rank or layer index). Two parents with equal state produce
// equal children for equal labels, which keeps per-worker streams stable even
// if the order of unrelated Split calls changes.
func (r *RNG) SplitLabeled(label uint64) *RNG {
	base := r.Uint64()
	return New(base ^ (label+1)*0x9e3779b97f4a7c15)
}

// Float64 returns a uniform deviate in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire-style rejection-free-enough bounded generation; bias is
	// negligible for the n used here (dataset sizes), but use rejection to
	// stay exactly uniform.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Normal returns a standard normal deviate via the Marsaglia polar method.
func (r *RNG) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// NormalScaled returns mean + stddev*Normal().
func (r *RNG) NormalScaled(mean, stddev float64) float64 {
	return mean + stddev*r.Normal()
}

// LogNormal returns a lognormal deviate with the given parameters of the
// underlying normal (mu, sigma). It is the distribution used for the
// simulated compute/communication costs of cluster workers, matching the
// heavy-tailed latencies the paper's introduction describes.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Normal())
}

// Perm returns a random permutation of [0, n) via Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes idx in place.
func (r *RNG) Shuffle(idx []int) {
	for i := len(idx) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
}

// FillNormal fills dst with independent normal deviates scaled by stddev.
func (r *RNG) FillNormal(dst []float64, stddev float64) {
	for i := range dst {
		dst[i] = r.Normal() * stddev
	}
}

// FillUniform fills dst with uniform deviates in [lo, hi).
func (r *RNG) FillUniform(dst []float64, lo, hi float64) {
	span := hi - lo
	for i := range dst {
		dst[i] = lo + span*r.Float64()
	}
}
