package opt

import (
	"math"
	"testing"
)

func TestSGDPlainStep(t *testing.T) {
	s := NewSGD(0.1)
	w := []float64{1, 2}
	g := []float64{10, -10}
	s.Step(w, g)
	if w[0] != 0 || w[1] != 3 {
		t.Fatalf("SGD step: %v", w)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	s := NewSGD(1)
	s.Momentum = 0.5
	w := []float64{0}
	s.Step(w, []float64{1}) // v=1, w=-1
	s.Step(w, []float64{1}) // v=1.5, w=-2.5
	if math.Abs(w[0]-(-2.5)) > 1e-12 {
		t.Fatalf("momentum step: %v", w)
	}
}

func TestSGDWeightDecay(t *testing.T) {
	s := NewSGD(0.1)
	s.WeightDecay = 1
	w := []float64{2}
	s.Step(w, []float64{0})
	// effective gradient = 0 + 1*2 = 2; w = 2 - 0.2 = 1.8
	if math.Abs(w[0]-1.8) > 1e-12 {
		t.Fatalf("weight decay: %v", w)
	}
}

func TestSGDLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSGD(0.1).Step([]float64{1}, []float64{1, 2})
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = (w-3)², gradient 2(w-3).
	s := NewSGD(0.1)
	w := []float64{0}
	for i := 0; i < 200; i++ {
		s.Step(w, []float64{2 * (w[0] - 3)})
	}
	if math.Abs(w[0]-3) > 1e-6 {
		t.Fatalf("did not converge: %v", w[0])
	}
}

func TestStepScheduleBoundaries(t *testing.T) {
	sch := StepSchedule{Base: 0.3, Boundaries: []int{80, 120}, Factor: 10}
	cases := []struct {
		epoch int
		want  float64
	}{
		{0, 0.3}, {79, 0.3}, {80, 0.03}, {119, 0.03}, {120, 0.003}, {159, 0.003},
	}
	for _, c := range cases {
		if got := sch.At(c.epoch); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("lr at epoch %d = %v, want %v", c.epoch, got, c.want)
		}
	}
}

func TestNewPaperScheduleProportions(t *testing.T) {
	sch := NewPaperSchedule(0.3, 160)
	if sch.Boundaries[0] != 80 || sch.Boundaries[1] != 120 {
		t.Fatalf("boundaries %v, want [80 120]", sch.Boundaries)
	}
	sch2 := NewPaperSchedule(0.1, 120)
	if sch2.Boundaries[0] != 60 || sch2.Boundaries[1] != 90 {
		t.Fatalf("boundaries %v, want [60 90]", sch2.Boundaries)
	}
}
