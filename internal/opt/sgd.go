// Package opt provides the optimizers and learning-rate schedules used by
// the training loops: plain SGD over flattened parameter vectors (the form
// the parameter server applies worker gradients in) and the step-decay
// schedule the paper uses (÷10 at fixed epoch boundaries).
package opt

import "fmt"

// SGD applies w ← w − γ·g (optionally with momentum and weight decay) to a
// flat parameter vector. The parameter-server strategies all reduce to this
// update applied to different gradient vectors, which is why it operates on
// []float64 rather than on layer structures.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	velocity    []float64
}

// NewSGD builds an optimizer with the given base learning rate.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Step applies one update to w given gradient g. With momentum m it uses
// v ← m·v + g; w ← w − γ·v.
func (s *SGD) Step(w, g []float64) {
	if len(w) != len(g) {
		panic(fmt.Sprintf("opt: Step length mismatch %d vs %d", len(w), len(g)))
	}
	if s.WeightDecay != 0 {
		for i := range w {
			g[i] += s.WeightDecay * w[i]
		}
	}
	if s.Momentum == 0 {
		for i := range w {
			w[i] -= s.LR * g[i]
		}
		return
	}
	if s.velocity == nil {
		s.velocity = make([]float64, len(w))
	}
	for i := range w {
		s.velocity[i] = s.Momentum*s.velocity[i] + g[i]
		w[i] -= s.LR * s.velocity[i]
	}
}

// StepSchedule divides the base learning rate by Factor at each boundary
// epoch, mirroring the paper's "divided by ten after 80 and 120 epochs"
// (CIFAR-10) and "reduced by ten times at the 60th and 90th epoch"
// (ImageNet).
type StepSchedule struct {
	Base       float64
	Boundaries []int
	Factor     float64
}

// NewPaperSchedule builds the schedule for a run of totalEpochs epochs with
// drops at 1/2 and 3/4 of training, the proportional positions of the
// paper's boundaries.
func NewPaperSchedule(base float64, totalEpochs int) StepSchedule {
	return StepSchedule{
		Base:       base,
		Boundaries: []int{totalEpochs / 2, totalEpochs * 3 / 4},
		Factor:     10,
	}
}

// At returns the learning rate in effect during the given epoch.
func (s StepSchedule) At(epoch int) float64 {
	lr := s.Base
	for _, b := range s.Boundaries {
		if epoch >= b {
			lr /= s.Factor
		}
	}
	return lr
}
