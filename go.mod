module lcasgd

go 1.24
