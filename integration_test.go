package lcasgd_test

// Cross-module integration tests: full training pipelines wired through
// the public harness, exercising data generation, model building, the
// event-driven cluster, the predictors and the evaluator together.

import (
	"testing"

	"lcasgd/internal/cluster"
	"lcasgd/internal/core"
	"lcasgd/internal/data"
	"lcasgd/internal/model"
	"lcasgd/internal/nn"
	"lcasgd/internal/ps"
	"lcasgd/internal/rng"
	"lcasgd/internal/trainer"
)

// integEnv is a fast end-to-end environment with a real (small) conv net.
func integEnv(algo ps.Algo, workers int) ps.Env {
	d := data.Config{
		Classes: 3, C: 1, H: 6, W: 6,
		Train: 120, Test: 60,
		NoiseSigma: 0.7, SignalScale: 0.5, Smoothing: 1, Seed: 11,
	}
	train, test := data.Generate(d)
	m := model.Config{Name: "integ", InC: 1, InH: 6, InW: 6, Stem: 4, StageReps: []int{1}, NumClasses: 3}
	return ps.Env{
		Train: train,
		Test:  test,
		Build: func(g *rng.RNG) *nn.Sequential { return m.Build(g) },
		Cfg: ps.Config{
			Algo: algo, Workers: workers, BatchSize: 20, Epochs: 8,
			LR: 0.12, Lambda: 1, DCLambda: 0.3, WeightDecay: 1e-3,
			BNMode: core.BNAsync, Seed: 5, Cost: cluster.CIFARCostModel(),
			LossPredHidden: 8, StepPredHidden: 8,
		},
	}
}

func TestEndToEndAllAlgorithmsLearnConvNet(t *testing.T) {
	for _, algo := range []ps.Algo{ps.SGD, ps.SSGD, ps.ASGD, ps.DCASGD, ps.LCASGD} {
		workers := 4
		if algo == ps.SGD {
			workers = 1
		}
		res := ps.Run(integEnv(algo, workers))
		first := res.Points[0].TrainErr
		if res.FinalTrainErr >= first {
			t.Fatalf("%s: conv net did not learn (train err %v -> %v)", algo, first, res.FinalTrainErr)
		}
		if res.FinalTestErr > 0.6 {
			t.Fatalf("%s: test error %v on an easy 3-class task", algo, res.FinalTestErr)
		}
	}
}

func TestASGDWithOneWorkerHasZeroStaleness(t *testing.T) {
	res := ps.Run(integEnv(ps.ASGD, 1))
	if res.MeanStaleness != 0 {
		t.Fatalf("single-worker ASGD staleness %v, want 0", res.MeanStaleness)
	}
}

func TestBNModesProduceDifferentGlobalStats(t *testing.T) {
	e1 := integEnv(ps.ASGD, 4)
	e1.Cfg.BNMode = core.BNReplace
	e2 := integEnv(ps.ASGD, 4)
	r1, r2 := ps.Run(e1), ps.Run(e2)
	same := true
	for i := range r1.Points {
		if r1.Points[i].TestErr != r2.Points[i].TestErr {
			same = false
			break
		}
	}
	if same {
		t.Fatal("BN vs Async-BN produced identical evaluations end-to-end")
	}
}

func TestHarnessDeterministicEndToEnd(t *testing.T) {
	p := trainer.Profile{
		Name: "integ",
		Data: data.Config{Classes: 3, C: 1, H: 6, W: 6, Train: 120, Test: 60,
			NoiseSigma: 0.7, SignalScale: 0.5, Smoothing: 1, Seed: 11},
		Model: model.Config{Name: "integ", InC: 1, InH: 6, InW: 6, Stem: 4,
			StageReps: []int{1}, NumClasses: 3},
		Batch: 20, Epochs: 2, LR: 0.08, WD: 1e-3, Lambda: 1, DCLam: 0.3,
		Cost: cluster.CIFARCostModel(), BNDecay: 0.2,
		LossPredHidden: 8, StepPredHidden: 8,
	}
	a := trainer.RunCell(p, ps.LCASGD, 4, core.BNAsync, 33)
	b := trainer.RunCell(p, ps.LCASGD, 4, core.BNAsync, 33)
	if len(a.Points) != len(b.Points) {
		t.Fatal("runs differ in length")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("harness not deterministic at point %d", i)
		}
	}
	if len(a.LossTrace) != len(b.LossTrace) {
		t.Fatal("predictor traces differ")
	}
}

func TestLCASGDRealConcurrencyFabric(t *testing.T) {
	// Run the LC-ASGD predictors against the real goroutine fabric (the
	// heterogeneous_cluster example's setup, compressed): the system must
	// survive true concurrency and the step predictor must see the
	// staleness stream without data races (run with -race).
	const workers = 4
	fabric := cluster.NewRealtime(workers, make([]float64, 8))
	pred := core.NewStepPredictorSized(workers, 8, rng.New(9))
	iterLog := core.NewIterLog()
	var observed int
	done := make(chan struct{})
	stalenessCh := make(chan [2]int, workers*30)
	go func() {
		defer close(done)
		for s := range stalenessCh {
			iterLog.Append(s[0])
			pred.ObserveAndPredict(s[0], s[1], 1, 10)
			observed++
		}
	}()
	cluster.RunWorkers(workers, func(m int) {
		for i := 0; i < 30; i++ {
			_ = fabric.Pull(m)
			st := fabric.Push(m, func(w []float64, s int) {
				for j := range w {
					w[j] += 0.001
				}
			})
			stalenessCh <- [2]int{m, st}
		}
	})
	close(stalenessCh)
	<-done
	if observed != workers*30 {
		t.Fatalf("server observed %d events, want %d", observed, workers*30)
	}
	if iterLog.Len() != workers*30 {
		t.Fatalf("iter log %d entries", iterLog.Len())
	}
}

func TestVirtualSpeedupOrdering(t *testing.T) {
	// Figures 4/6 shape: with the same sample budget, virtual duration
	// must order SGD > SSGD > LC-ASGD > ASGD... LC is slower than ASGD but
	// still far faster than sequential.
	sgd := ps.Run(integEnv(ps.SGD, 1))
	ssgd := ps.Run(integEnv(ps.SSGD, 8))
	asgd := ps.Run(integEnv(ps.ASGD, 8))
	lc := ps.Run(integEnv(ps.LCASGD, 8))
	if !(sgd.VirtualMs > ssgd.VirtualMs && ssgd.VirtualMs > asgd.VirtualMs) {
		t.Fatalf("speed ordering broken: SGD %v SSGD %v ASGD %v",
			sgd.VirtualMs, ssgd.VirtualMs, asgd.VirtualMs)
	}
	if !(lc.VirtualMs > asgd.VirtualMs && lc.VirtualMs < sgd.VirtualMs) {
		t.Fatalf("LC-ASGD virtual time %v out of expected band (ASGD %v, SGD %v)",
			lc.VirtualMs, asgd.VirtualMs, sgd.VirtualMs)
	}
}
