package lcasgd_test

// One benchmark per table and figure of the paper's evaluation section
// (DESIGN.md experiment index), plus ablation benches for the design
// choices DESIGN.md calls out. Each benchmark regenerates its artifact on
// the quick CPU-budget profile and prints the same rows/series the paper
// reports; run cmd/lcexp -full for the paper-scale versions.
//
// The experiment runs take seconds each, so the testing framework settles
// at b.N == 1; the printed artifact plus the reported metrics are the
// output that matters.

import (
	"fmt"
	"testing"

	"lcasgd/internal/core"
	"lcasgd/internal/ps"
	"lcasgd/internal/trainer"
)

const benchSeed = 7

// benchProfile trims the quick profile so the full bench suite stays
// within a reasonable wall-clock budget.
func benchProfile() trainer.Profile {
	p := trainer.QuickCIFAR()
	p.Epochs = 8
	return p
}

func benchImageNet() trainer.Profile {
	p := trainer.QuickImageNet()
	p.Epochs = 6
	return p
}

// BenchmarkFig2DCASGDDegradation regenerates Figure 2: DC-ASGD's test
// error rises with the number of workers while SGD stays put.
func BenchmarkFig2DCASGDDegradation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := trainer.Fig2(benchProfile(), benchSeed)
		fmt.Println(cs.ChartEpochs(72, 14))
		sgd := cs.Results[ps.SGD].FinalTestErr
		dc16 := cs.Results["DC-ASGD-16"].FinalTestErr
		b.ReportMetric(sgd*100, "SGD-testerr%")
		b.ReportMetric(dc16*100, "DC16-testerr%")
	}
}

// BenchmarkFig3ErrorVsEpochCIFAR regenerates one Figure 3 panel: all five
// algorithms vs epoch on the CIFAR-scale task (M=4 shown; cmd/lcexp
// produces all panels).
func BenchmarkFig3ErrorVsEpochCIFAR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := trainer.Fig3Panel(benchProfile(), 4, benchSeed)
		fmt.Println(cs.ChartEpochs(72, 14))
		b.ReportMetric(cs.Results[ps.LCASGD].FinalTestErr*100, "LC-testerr%")
		b.ReportMetric(cs.Results[ps.ASGD].FinalTestErr*100, "ASGD-testerr%")
	}
}

// BenchmarkFig4ErrorVsTimeCIFAR regenerates one Figure 4 panel: the same
// comparison against virtual wall-clock time (M=16, where the speed
// separation is widest).
func BenchmarkFig4ErrorVsTimeCIFAR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := trainer.Fig3Panel(benchProfile(), 16, benchSeed)
		fmt.Println(cs.ChartTime(72, 14))
		ssgd := cs.Results[ps.SSGD].VirtualMs
		asgd := cs.Results[ps.ASGD].VirtualMs
		b.ReportMetric(ssgd/asgd, "SSGD/ASGD-time")
		b.ReportMetric(cs.Results[ps.LCASGD].VirtualMs/asgd, "LC/ASGD-time")
	}
}

// BenchmarkFig5ErrorVsEpochImageNet regenerates one Figure 5 panel on the
// ImageNet-scale profile (no sequential SGD, as in the paper).
func BenchmarkFig5ErrorVsEpochImageNet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := trainer.Fig5Panel(benchImageNet(), 4, benchSeed)
		fmt.Println(cs.ChartEpochs(72, 14))
		b.ReportMetric(cs.Results[ps.LCASGD].FinalTestErr*100, "LC-testerr%")
	}
}

// BenchmarkFig6ErrorVsTimeImageNet regenerates one Figure 6 panel.
func BenchmarkFig6ErrorVsTimeImageNet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := trainer.Fig5Panel(benchImageNet(), 16, benchSeed)
		fmt.Println(cs.ChartTime(72, 14))
		b.ReportMetric(cs.Results[ps.ASGD].VirtualMs/1000, "ASGD-vsec")
		b.ReportMetric(cs.Results[ps.SSGD].VirtualMs/1000, "SSGD-vsec")
	}
}

// BenchmarkFig7LossPredictorTrace regenerates Figure 7: predicted vs
// actual loss during an M=16 LC-ASGD run.
func BenchmarkFig7LossPredictorTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lossChart, _, res := trainer.PredictorTraces(benchProfile(), benchSeed)
		fmt.Println(lossChart)
		b.ReportMetric(trainer.TraceMAE(res.LossTrace), "loss-MAE")
	}
}

// BenchmarkFig8StepPredictorTrace regenerates Figure 8: predicted vs
// observed staleness during the same setting.
func BenchmarkFig8StepPredictorTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, stepChart, res := trainer.PredictorTraces(benchProfile(), benchSeed)
		fmt.Println(stepChart)
		b.ReportMetric(trainer.TraceMAE(res.StepTrace), "step-MAE")
		b.ReportMetric(res.MeanStaleness, "mean-staleness")
	}
}

// BenchmarkTable1FinalErrorGrid regenerates Table 1 for the CIFAR-scale
// profile: final test error for every (M, algorithm) under BN and
// Async-BN. (The ImageNet half is in BenchmarkTable1ImageNetGrid; both are
// single-seed here — use cmd/lcexp -seeds 3 for averaged numbers.)
func BenchmarkTable1FinalErrorGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchProfile()
		rows, b1, b2 := trainer.Table1(p, true, []uint64{benchSeed})
		fmt.Println(trainer.RenderTable1(p, rows, b1, b2))
		// Headline: LC-ASGD's worst-case (M=16) Async-BN degradation.
		for _, r := range rows {
			if r.Workers == 16 && r.Algo == ps.LCASGD {
				b.ReportMetric((r.AsyncErr-b2)/b2*100, "LC16-deg%")
			}
		}
	}
}

// BenchmarkTable1ImageNetGrid is Table 1's ImageNet half (SSGD M=4 is the
// baseline, as in the paper).
func BenchmarkTable1ImageNetGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchImageNet()
		rows, b1, b2 := trainer.Table1(p, false, []uint64{benchSeed})
		fmt.Println(trainer.RenderTable1(p, rows, b1, b2))
		for _, r := range rows {
			if r.Workers == 16 && r.Algo == ps.LCASGD {
				b.ReportMetric((r.AsyncErr-b2)/b2*100, "LC16-deg%")
			}
		}
	}
}

// BenchmarkTable2PredictorOverheadCIFAR regenerates Table 2: per-iteration
// predictor cost (real measured LSTM times over the virtual iteration).
func BenchmarkTable2PredictorOverheadCIFAR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchProfile()
		rows := trainer.OverheadTable(p, benchSeed)
		fmt.Println(trainer.RenderOverhead(p, rows))
		b.ReportMetric(rows[len(rows)-1].OverheadPct, "overhead%@16")
	}
}

// BenchmarkTable3PredictorOverheadImageNet regenerates Table 3.
func BenchmarkTable3PredictorOverheadImageNet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchImageNet()
		rows := trainer.OverheadTable(p, benchSeed)
		fmt.Println(trainer.RenderOverhead(p, rows))
		b.ReportMetric(rows[len(rows)-1].OverheadPct, "overhead%@16")
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationLambda compares LC-ASGD with compensation on vs off at
// M=16; λ=0 reduces LC-ASGD to ASGD-plus-Async-BN on the LC timeline.
func BenchmarkAblationLambda(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchProfile()
		on := trainer.RunCell(p, ps.LCASGD, 16, core.BNAsync, benchSeed)
		off := trainer.RunCellCfg(p, ps.LCASGD, 16, core.BNAsync, benchSeed, func(c *ps.Config) { c.Lambda = 0 })
		fmt.Printf("ablation lambda: λ=1 test %.2f%%  λ=0 test %.2f%%\n",
			on.FinalTestErr*100, off.FinalTestErr*100)
		b.ReportMetric(on.FinalTestErr*100, "lambda1-testerr%")
		b.ReportMetric(off.FinalTestErr*100, "lambda0-testerr%")
	}
}

// BenchmarkAblationSumCompensation compares the normalized (mean-future)
// compensation against the paper-literal raw sum of Formula 9.
func BenchmarkAblationSumCompensation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchProfile()
		sum := trainer.RunCellCfg(p, ps.LCASGD, 16, core.BNAsync, benchSeed, func(c *ps.Config) { c.SumCompensation = true })
		norm := trainer.RunCell(p, ps.LCASGD, 16, core.BNAsync, benchSeed)
		fmt.Printf("ablation compensation: normalized %.2f%%  raw-sum %.2f%%\n",
			norm.FinalTestErr*100, sum.FinalTestErr*100)
		b.ReportMetric(norm.FinalTestErr*100, "normalized-testerr%")
		b.ReportMetric(sum.FinalTestErr*100, "rawsum-testerr%")
	}
}

// BenchmarkAblationNaiveStepPredictor replaces the multivariate LSTM step
// predictor with "use the last observed staleness".
func BenchmarkAblationNaiveStepPredictor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchProfile()
		naive := trainer.RunCellCfg(p, ps.LCASGD, 16, core.BNAsync, benchSeed, func(c *ps.Config) { c.NaiveStepPredictor = true })
		lstm := trainer.RunCell(p, ps.LCASGD, 16, core.BNAsync, benchSeed)
		fmt.Printf("ablation step predictor: LSTM %.2f%%  naive %.2f%%\n",
			lstm.FinalTestErr*100, naive.FinalTestErr*100)
		b.ReportMetric(lstm.FinalTestErr*100, "lstm-testerr%")
		b.ReportMetric(naive.FinalTestErr*100, "naive-testerr%")
	}
}

// BenchmarkAblationEMALossPredictor replaces the LSTM loss predictor with
// EMA + trend extrapolation.
func BenchmarkAblationEMALossPredictor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchProfile()
		ema := trainer.RunCellCfg(p, ps.LCASGD, 16, core.BNAsync, benchSeed, func(c *ps.Config) { c.EMALossPredictor = true })
		lstm := trainer.RunCell(p, ps.LCASGD, 16, core.BNAsync, benchSeed)
		fmt.Printf("ablation loss predictor: LSTM %.2f%%  EMA %.2f%%\n",
			lstm.FinalTestErr*100, ema.FinalTestErr*100)
		b.ReportMetric(lstm.FinalTestErr*100, "lstm-testerr%")
		b.ReportMetric(ema.FinalTestErr*100, "ema-testerr%")
	}
}

// BenchmarkAblationBNDecay sweeps the Async-BN EMA factor d.
func BenchmarkAblationBNDecay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchProfile()
		for _, d := range []float64{0.1, 0.5} {
			r := trainer.RunCellCfg(p, ps.ASGD, 8, core.BNAsync, benchSeed, func(c *ps.Config) { c.BNDecay = d })
			fmt.Printf("ablation BN decay d=%.1f: test %.2f%%\n", d, r.FinalTestErr*100)
			b.ReportMetric(r.FinalTestErr*100, fmt.Sprintf("d%.1f-testerr%%", d))
		}
	}
}
